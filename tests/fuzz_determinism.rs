//! End-to-end determinism for the differential fuzzer: the same seed
//! must produce byte-identical corpora, oracle reports and litmus
//! conformance documents across repeated runs and across worker-pool
//! widths, mirroring the contract `tests/determinism.rs` pins for the
//! experiment suite. Without this, CI replay of the regression corpus
//! and the `litmus-conformance` golden would both be meaningless.

use clear_fuzz::{case_seed, check_case, FuzzCase};
use clear_harness::experiments::{find, fuzz_output, parse_seed, replay_output};

const SEED_STR: &str = "0xC1EAR";
const CASES: u64 = 48;

#[test]
fn same_seed_generates_byte_identical_corpus() {
    let master = parse_seed(SEED_STR);
    for index in 0..16 {
        let a = FuzzCase::generate(master, index);
        let b = FuzzCase::generate(master, index);
        assert_eq!(case_seed(master, index), a.seed, "case seed drifted");
        assert_eq!(a.shapes, b.shapes, "index {index}: shape IR drifted");
        assert_eq!(
            format!("{:?}", a.program.instrs()),
            format!("{:?}", b.program.instrs()),
            "index {index}: lowered program drifted"
        );
        assert_eq!(a.threads, b.threads, "index {index}: thread count drifted");
        assert_eq!(
            a.invocations, b.invocations,
            "index {index}: invocation count drifted"
        );
    }
}

#[test]
fn repeated_oracle_runs_render_byte_identical_reports() {
    let a = fuzz_output(SEED_STR, CASES, 4, 0);
    let b = fuzz_output(SEED_STR, CASES, 4, 0);
    assert_eq!(a.json.to_pretty(), b.json.to_pretty(), "report drifted");
    assert_eq!(a.text, b.text, "report text drifted");
    assert_eq!(a.failures, 0, "seed corpus must be divergence-free");
}

#[test]
fn worker_width_does_not_change_the_report() {
    let narrow = fuzz_output(SEED_STR, CASES, 1, 0);
    let wide = fuzz_output(SEED_STR, CASES, 8, 0);
    assert_eq!(
        narrow.json.to_pretty(),
        wide.json.to_pretty(),
        "fuzz report depends on worker count"
    );
    assert_eq!(narrow.text, wide.text, "fuzz text depends on worker count");
}

#[test]
fn replay_is_deterministic_across_worker_widths() {
    let master = parse_seed(SEED_STR);
    let entries: Vec<(String, u64, u64)> =
        (0..8).map(|i| (format!("entry-{i}"), master, i)).collect();
    let narrow = replay_output(&entries, 1);
    let wide = replay_output(&entries, 8);
    assert_eq!(
        narrow.json.to_pretty(),
        wide.json.to_pretty(),
        "replay report depends on worker count"
    );
    assert_eq!(narrow.failures, 0, "corpus entries must replay clean");
}

#[test]
fn oracle_verdict_is_stable_per_case() {
    let master = parse_seed(SEED_STR);
    for index in 0..8 {
        let case = std::sync::Arc::new(FuzzCase::generate(master, index));
        let a = check_case(&case);
        let b = check_case(&case);
        assert_eq!(a.verdict, b.verdict, "index {index}: verdict drifted");
        assert_eq!(
            a.mode_commits, b.mode_commits,
            "index {index}: mode commit split drifted"
        );
        assert!(
            a.divergence.is_none(),
            "index {index}: seed corpus diverged"
        );
    }
}

#[test]
fn litmus_conformance_document_is_worker_independent() {
    let exp = find("litmus-conformance").expect("litmus-conformance registered");
    let narrow = {
        let mut opts = (exp.golden.as_ref().expect("gated").opts)();
        opts.workers = 1;
        (exp.run)(&opts)
    };
    let wide = {
        let mut opts = (exp.golden.as_ref().expect("gated").opts)();
        opts.workers = 8;
        (exp.run)(&opts)
    };
    assert_eq!(
        narrow.json.to_pretty(),
        wide.json.to_pretty(),
        "litmus conformance depends on worker count"
    );
    assert_eq!(narrow.failures, 0, "litmus conformance must gate clean");
}
