//! Integration tests of the CLEAR pipeline across crates: discovery →
//! decision → ordered locking through the coherence substrate.

use clear_coherence::{CoherenceConfig, CoherenceSystem, CoreId};
use clear_core::{decide, ClearConfig, Discovery, RetryMode};
use clear_mem::{lock_order, LineAddr};

#[test]
fn discovered_footprint_locks_deadlock_free_in_order() {
    let mut sys = CoherenceSystem::new(CoherenceConfig::table2(4));
    let dir = sys.dir_geometry();

    // Two cores discover overlapping footprints.
    let fp_a = [LineAddr(10), LineAddr(20), LineAddr(30)];
    let fp_b = [LineAddr(30), LineAddr(20), LineAddr(40)];

    let order_a: Vec<LineAddr> = lock_order(dir, &fp_a).into_iter().map(|(l, _)| l).collect();
    let order_b: Vec<LineAddr> = lock_order(dir, &fp_b).into_iter().map(|(l, _)| l).collect();

    // Interleave the two lock acquisitions with retries; lexicographical
    // order guarantees someone always makes progress.
    let (mut ia, mut ib) = (0, 0);
    let mut steps = 0;
    while ia < order_a.len() || ib < order_b.len() {
        steps += 1;
        assert!(steps < 1000, "livelock in ordered locking");
        if ia < order_a.len() && sys.lock_line(CoreId(0), order_a[ia]).is_ok() {
            ia += 1;
            continue;
        }
        if ib < order_b.len() && sys.lock_line(CoreId(1), order_b[ib]).is_ok() {
            ib += 1;
            continue;
        }
        // Whoever is blocked releases nothing (locks are held), but at
        // least one core must have been able to proceed above unless one
        // finished all its locks while the other waits on it.
        if ia == order_a.len() {
            sys.unlock_all(CoreId(0));
        }
        if ib == order_b.len() {
            sys.unlock_all(CoreId(1));
        }
    }
    sys.unlock_all(CoreId(0));
    sys.unlock_all(CoreId(1));
    assert_eq!(sys.locked_count(CoreId(0)), 0);
    assert_eq!(sys.locked_count(CoreId(1)), 0);
}

#[test]
fn discovery_feeds_decision_feeds_lock_list() {
    let cfg = ClearConfig::default();
    let sys = CoherenceSystem::new(CoherenceConfig::table2(2));
    let mut d = Discovery::new(&cfg, sys.dir_geometry());

    // An AR writing two lines and reading one, all direct.
    d.on_access(LineAddr(100), true, false);
    d.on_access(LineAddr(7), false, false);
    d.on_access(LineAddr(55), true, false);
    let a = d.assess(|fp| sys.fits_locked(fp));
    assert_eq!(decide(&a), RetryMode::NsCl);

    let mut alt = d.into_alt();
    alt.mark_all_needs_locking();
    let list = alt.lock_list();
    assert_eq!(list.len(), 3);
    // Lock list is in lexicographical (directory-set) order.
    let dir = sys.dir_geometry();
    let keys: Vec<_> = list
        .iter()
        .map(|&l| clear_mem::LexKey::new(dir, l))
        .collect();
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn oversized_footprint_is_never_convertible() {
    let cfg = ClearConfig::default();
    let sys = CoherenceSystem::new(CoherenceConfig::table2(2));
    let mut d = Discovery::new(&cfg, sys.dir_geometry());
    for i in 0..40u64 {
        d.on_access(LineAddr(i), false, false);
    }
    let a = d.assess(|fp| sys.fits_locked(fp));
    assert!(a.overflowed, "40 lines exceed the 32-entry ALT");
    assert_eq!(decide(&a), RetryMode::SpeculativeRetry);
}

#[test]
fn same_set_heavy_footprint_fails_the_l1_fit_check() {
    // 13 lines in the same L1 set exceed 12-way associativity.
    let sys = CoherenceSystem::new(CoherenceConfig::table2(2));
    let sets = 64u64; // Table 2 L1
    let lines: Vec<LineAddr> = (0..13).map(|i| LineAddr(5 + i * sets)).collect();
    assert!(!sys.fits_locked(&lines));

    let cfg = ClearConfig::default();
    let mut d = Discovery::new(&cfg, sys.dir_geometry());
    for &l in &lines {
        d.on_access(l, true, false);
    }
    let a = d.assess(|fp| sys.fits_locked(fp));
    assert!(!a.lockable);
    assert_eq!(decide(&a), RetryMode::SpeculativeRetry);
}

#[test]
fn nack_breaks_the_fig5_cycle() {
    // Fig. 5: core 0 holds b locked and wants a; core 1 holds a locked and
    // wants b. Non-locking loads get NACKed (probe reports the lock holder)
    // instead of waiting forever.
    let mut sys = CoherenceSystem::new(CoherenceConfig::table2(2));
    let (a, b) = (LineAddr(1), LineAddr(2));
    sys.lock_line(CoreId(0), b).unwrap();
    sys.lock_line(CoreId(1), a).unwrap();

    let p0 = sys.probe(CoreId(0), a, clear_coherence::Access::Read);
    let p1 = sys.probe(CoreId(1), b, clear_coherence::Access::Read);
    assert_eq!(p0.locked_by_other, Some(CoreId(1)));
    assert_eq!(p1.locked_by_other, Some(CoreId(0)));
    // The policy layer NACKs these loads; the aborting core releases its
    // locks, letting the other proceed.
    sys.unlock_all(CoreId(0));
    assert!(sys
        .probe(CoreId(1), b, clear_coherence::Access::Read)
        .locked_by_other
        .is_none());
}
