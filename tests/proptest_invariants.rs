//! Property-based tests over the core data structures and the end-to-end
//! machine.
//!
//! The generators are driven by the in-tree [`SplitMix64`] PRNG instead of
//! an external property-testing crate: each test derives one sub-generator
//! per case from a fixed test seed, so every run explores the same input
//! space deterministically and a failing case is reproducible from its
//! index alone.

use clear_core::{Alt, Crt, Ert};
use clear_isa::{AluOp, ProgramBuilder, Reg, Vm};
use clear_mem::rng::SplitMix64;
use clear_mem::{lock_order, CacheGeometry, LexKey, LineAddr, SetAssocCache};
use std::collections::HashSet;
use std::sync::Arc;

/// Number of generated cases per property.
const CASES: u64 = 96;

/// One independent generator per (test, case) pair.
fn case_rng(test_seed: u64, case: u64) -> SplitMix64 {
    SplitMix64::new(test_seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn vec_of(rng: &mut SplitMix64, min: usize, max: usize, bound: u64) -> Vec<u64> {
    let len = min + rng.index(max - min);
    (0..len).map(|_| rng.below(bound)).collect()
}

/// lock_order: sorted by (directory set, line), duplicate-free, with
/// exactly one group-terminator per directory set.
#[test]
fn lock_order_is_sorted_deduped_grouped() {
    for case in 0..CASES {
        let mut rng = case_rng(0x10c0, case);
        let lines = vec_of(&mut rng, 0, 40, 512);
        let sets_log = 1 + rng.below(5) as u32;

        let dir = CacheGeometry::new(1 << sets_log, 4);
        let lines: Vec<LineAddr> = lines.into_iter().map(LineAddr).collect();
        let order = lock_order(dir, &lines);

        // Sorted & unique.
        let keys: Vec<LexKey> = order.iter().map(|(l, _)| LexKey::new(dir, *l)).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "case {case}");

        // Same line set as the (deduped) input.
        let in_set: HashSet<u64> = lines.iter().map(|l| l.0).collect();
        let out_set: HashSet<u64> = order.iter().map(|(l, _)| l.0).collect();
        assert_eq!(in_set, out_set, "case {case}");

        // One terminator per contiguous group.
        let mut terminators_per_set = std::collections::HashMap::new();
        for (l, last) in &order {
            if *last {
                *terminators_per_set.entry(dir.set_index(*l)).or_insert(0) += 1;
            }
        }
        let distinct_sets: HashSet<usize> = order.iter().map(|(l, _)| dir.set_index(*l)).collect();
        assert_eq!(
            terminators_per_set.len(),
            distinct_sets.len(),
            "case {case}"
        );
        assert!(terminators_per_set.values().all(|&c| c == 1), "case {case}");
    }
}

/// SetAssocCache never exceeds per-set capacity and always finds what
/// it inserted most recently within a set's capacity window.
#[test]
fn cache_respects_capacity() {
    for case in 0..CASES {
        let mut rng = case_rng(0xcac4e, case);
        let ops = vec_of(&mut rng, 1, 200, 64);
        let ways = 1 + rng.index(3);

        let geom = CacheGeometry::new(8, ways);
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(geom);
        for (i, &line) in ops.iter().enumerate() {
            cache.insert(LineAddr(line), i as u64);
            assert!(cache.len() <= geom.lines(), "case {case}");
            // Just-inserted line is always resident with its payload.
            assert_eq!(cache.get(LineAddr(line)), Some(&(i as u64)), "case {case}");
        }
    }
}

/// fits_simultaneously agrees with actually inserting pinned lines.
#[test]
fn fits_matches_pinned_insertion() {
    for case in 0..CASES {
        let mut rng = case_rng(0xf175, case);
        let want = 1 + rng.index(19);
        let mut set = HashSet::new();
        while set.len() < want {
            set.insert(rng.below(64));
        }
        let ways = 1 + rng.index(3);

        let geom = CacheGeometry::new(4, ways);
        let lines: Vec<LineAddr> = set.into_iter().map(LineAddr).collect();
        let fits = SetAssocCache::<()>::fits_simultaneously(geom, lines.iter().copied());
        let mut cache: SetAssocCache<()> = SetAssocCache::new(geom);
        let mut all_ok = true;
        for &l in &lines {
            if cache.insert_respecting(l, (), |_| true).is_err() {
                all_ok = false;
                break;
            }
        }
        assert_eq!(fits, all_ok, "case {case}");
    }
}

/// ALT keeps entries in lexicographical order with sticky write bits
/// and bounded size, for any observation sequence.
#[test]
fn alt_order_and_stickiness() {
    for case in 0..CASES {
        let mut rng = case_rng(0xa17, case);
        let len = 1 + rng.index(63);
        let obs: Vec<(u64, bool)> = (0..len).map(|_| (rng.below(128), rng.flip())).collect();

        let dir = CacheGeometry::new(16, 4);
        let mut alt = Alt::new(32, dir);
        let mut written_lines = HashSet::new();
        for (line, written) in &obs {
            if alt.observe(LineAddr(*line), *written).is_ok() && *written {
                written_lines.insert(*line);
            }
        }
        assert!(alt.len() <= 32, "case {case}");
        let keys: Vec<LexKey> = alt.iter().map(|e| LexKey::new(dir, e.line)).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "case {case}");
        for e in alt.iter() {
            assert_eq!(
                e.needs_locking,
                written_lines.contains(&e.line.0),
                "case {case}"
            );
        }
    }
}

/// CoreBitSet agrees with a BTreeSet model for any operation sequence over
/// core ids spanning the inline word and the spilled words (0..~1000), and
/// its iterators always yield ascending ids.
#[test]
fn corebitset_matches_set_model_across_inline_and_spill() {
    use clear_mem::CoreBitSet;
    use std::collections::BTreeSet;

    for case in 0..CASES {
        let mut rng = case_rng(0xb175e7, case);
        let mut set = CoreBitSet::new();
        let mut model: BTreeSet<usize> = BTreeSet::new();
        let nops = 1 + rng.index(120);
        for _ in 0..nops {
            let id = rng.below(1000) as usize;
            match rng.below(4) {
                0 => {
                    set.insert(id);
                    model.insert(id);
                }
                1 => {
                    set.remove(id);
                    model.remove(&id);
                }
                2 => {
                    set.set_only(id);
                    model.clear();
                    model.insert(id);
                }
                _ => {
                    // Pure queries between mutations.
                    assert_eq!(set.contains(id), model.contains(&id), "case {case}");
                }
            }
            assert_eq!(set.len(), model.len(), "case {case}");
            assert_eq!(set.is_empty(), model.is_empty(), "case {case}");
            let probe = rng.below(1000) as usize;
            assert_eq!(
                set.contains_other_than(probe),
                model.iter().any(|&m| m != probe),
                "case {case}"
            );
            assert_eq!(
                set.iter().collect::<Vec<_>>(),
                model.iter().copied().collect::<Vec<_>>(),
                "case {case}: iteration must be ascending and exact"
            );
            assert_eq!(
                set.iter_without(probe).collect::<Vec<_>>(),
                model
                    .iter()
                    .copied()
                    .filter(|&m| m != probe)
                    .collect::<Vec<_>>(),
                "case {case}"
            );
        }
        let rebuilt: CoreBitSet = model.iter().copied().collect();
        assert_eq!(
            rebuilt.iter().collect::<Vec<_>>(),
            model.iter().copied().collect::<Vec<_>>(),
            "case {case}: FromIterator round-trip"
        );
        set.clear();
        assert!(set.is_empty(), "case {case}: clear must empty the set");
    }
}

/// ERT is bounded and sq-full counters saturate within [0, 3].
#[test]
fn ert_bounded_and_saturating() {
    for case in 0..CASES {
        let mut rng = case_rng(0xe47, case);
        let keys: Vec<u32> = vec_of(&mut rng, 1, 100, 64)
            .into_iter()
            .map(|k| k as u32)
            .collect();
        let nbumps = 1 + rng.index(99);
        let bumps: Vec<bool> = (0..nbumps).map(|_| rng.flip()).collect();

        let mut ert = Ert::new(16);
        for (k, b) in keys.iter().zip(bumps.iter().cycle()) {
            let e = ert.entry(*k);
            if *b {
                e.bump_sq_full();
            } else {
                e.decay_sq_full();
            }
            assert!(e.sq_full() <= 3, "case {case}");
        }
        assert!(ert.len() <= 16, "case {case}");
    }
}

/// CRT: record-then-take round-trips; take empties.
#[test]
fn crt_record_take_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng(0xc47, case);
        let lines = vec_of(&mut rng, 1, 64, 256);

        let mut crt = Crt::new(8, 8);
        for &l in &lines {
            crt.record(LineAddr(l));
            assert!(crt.contains(LineAddr(l)), "case {case}");
            assert!(crt.take(LineAddr(l)), "case {case}");
            assert!(!crt.contains(LineAddr(l)), "case {case}");
            assert!(!crt.take(LineAddr(l)), "case {case}");
        }
        assert!(crt.is_empty(), "case {case}");
    }
}

/// The VM computes ALU chains exactly like the host.
#[test]
fn vm_matches_host_arithmetic() {
    for case in 0..CASES {
        let mut rng = case_rng(0xa1b, case);
        let a = rng.next_u64();
        let b = rng.next_u64();
        let nops = 1 + rng.index(19);
        let ops: Vec<u8> = (0..nops).map(|_| rng.below(9) as u8).collect();

        let all = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Rem,
        ];
        let mut builder = ProgramBuilder::new();
        let mut expect = a;
        for &o in &ops {
            let op = all[o as usize];
            builder.alu(op, Reg(0), Reg(0), Reg(1));
            expect = op.apply(expect, b);
        }
        builder.xend();
        let mut vm = Vm::new(Arc::new(builder.build()));
        vm.set_reg(Reg(0), a);
        vm.set_reg(Reg(1), b);
        for _ in 0..ops.len() {
            vm.step();
        }
        assert_eq!(vm.reg(Reg(0)), expect, "case {case}");
    }
}

/// Indirection bits propagate through any ALU dag: a register is
/// indirect iff a load feeds it transitively.
#[test]
fn indirection_propagation_is_transitive() {
    for case in 0..CASES {
        let mut rng = case_rng(0x1d1, case);
        let nedges = 1 + rng.index(23);
        let edges: Vec<(u8, u8, u8)> = (0..nedges)
            .map(|_| (rng.below(8) as u8, rng.below(8) as u8, rng.below(8) as u8))
            .collect();

        let mut builder = ProgramBuilder::new();
        // r7 becomes indirect via a load; r0..r6 start direct.
        builder.ld(Reg(7), Reg(6), 0);
        let mut indirect = [false; 8];
        indirect[7] = true;
        for (d, s1, s2) in &edges {
            builder.add(Reg(*d), Reg(*s1), Reg(*s2));
            indirect[*d as usize] = indirect[*s1 as usize] || indirect[*s2 as usize];
        }
        builder.xend();
        let mut vm = Vm::new(Arc::new(builder.build()));
        let mut mem = clear_mem::Memory::new();
        let addr = mem.alloc_words(1);
        vm.set_reg(Reg(6), addr.0);
        match vm.step() {
            clear_isa::Effect::Load { addr, .. } => vm.finish_load(mem.load_word(addr)),
            e => panic!("expected load, got {e:?}"),
        }
        for _ in 0..edges.len() {
            vm.step();
        }
        for r in 0..8u8 {
            assert_eq!(
                vm.reg_indirect(Reg(r)),
                indirect[r as usize],
                "case {case} r{r}"
            );
        }
    }
}

mod machine_props {
    use super::*;
    use clear_isa::{ArId, ArInvocation, ArSpec, Mutability, Program, Workload, WorkloadMeta};
    use clear_machine::{Machine, Preset};
    use clear_mem::{Addr, Memory};

    /// Random mix of private and shared counter increments.
    struct MixedCounters {
        shared: Addr,
        private: Vec<Addr>,
        plan: Vec<Vec<bool>>, // per thread: true = shared op
        cursor: Vec<usize>,
        program: Arc<Program>,
        shared_ops: u64,
    }

    impl Workload for MixedCounters {
        fn meta(&self) -> WorkloadMeta {
            WorkloadMeta {
                name: "mixed-counters".into(),
                ars: vec![ArSpec {
                    id: ArId(0),
                    name: "inc".into(),
                    mutability: Mutability::Immutable,
                }],
            }
        }
        fn setup(&mut self, mem: &mut Memory, threads: usize) {
            self.shared = mem.alloc_words(1);
            self.private = (0..threads).map(|_| mem.alloc_words(1)).collect();
            self.cursor = vec![0; threads];
        }
        fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
            let i = self.cursor[tid];
            let shared = *self.plan[tid].get(i)?;
            self.cursor[tid] += 1;
            if shared {
                self.shared_ops += 1;
            }
            let target = if shared {
                self.shared
            } else {
                self.private[tid]
            };
            Some(ArInvocation {
                ar: ArId(0),
                program: Arc::clone(&self.program),
                args: vec![(Reg(0), target.0)],
                think_cycles: 7,
                static_footprint: None,
            })
        }
        fn validate(&self, mem: &Memory) -> Result<(), String> {
            let shared = mem.load_word(self.shared);
            if shared != self.shared_ops {
                return Err(format!("shared {shared} != {}", self.shared_ops));
            }
            for (t, &p) in self.private.iter().enumerate() {
                let got = mem.load_word(p);
                let want = self.plan[t].iter().filter(|s| !**s).count() as u64;
                if got != want {
                    return Err(format!("private[{t}] {got} != {want}"));
                }
            }
            Ok(())
        }
    }

    fn inc_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new();
        p.ld(Reg(1), Reg(0), 0)
            .addi(Reg(1), Reg(1), 1)
            .st(Reg(0), 0, Reg(1))
            .xend();
        Arc::new(p.build())
    }

    /// Any random plan of shared/private increments is conserved under
    /// every preset — the fundamental atomicity property, fuzzed.
    ///
    /// The whole-machine property keeps the former `proptest` case count
    /// (16), which is why it loops less than the data-structure tests.
    #[test]
    fn random_plans_conserve_counters() {
        for case in 0..16 {
            let mut rng = case_rng(0x3ac41e, case);
            let threads = 2 + rng.index(3);
            let plan: Vec<Vec<bool>> = (0..threads)
                .map(|_| {
                    let len = 1 + rng.index(19);
                    (0..len).map(|_| rng.flip()).collect()
                })
                .collect();
            let preset = Preset::ALL[rng.index(4)];
            let seed = rng.below(1000);

            let w = MixedCounters {
                shared: Addr::NULL,
                private: vec![],
                plan,
                cursor: vec![],
                program: inc_program(),
                shared_ops: 0,
            };
            let mut cfg = preset.config(threads, 3);
            cfg.seed = seed;
            let mut m = Machine::new(cfg, Box::new(w));
            let stats = m.run();
            assert!(!stats.timed_out, "case {case} {preset}");
            m.workload()
                .validate(m.memory())
                .unwrap_or_else(|e| panic!("case {case} {preset}: {e}"));
        }
    }

    /// The same conservation property quantified over the *backend* axis:
    /// every [`clear_machine::SpeculationBackend`] — CLEAR, TSX, PowerTM,
    /// SLE and the limited-R/W-set scheme — serializes random schedules of
    /// shared/private increments. Non-bounded backends must additionally
    /// report zero R/W-set buffer overflows.
    #[test]
    fn random_plans_conserve_counters_under_every_backend() {
        use clear_machine::BackendId;

        for case in 0..8 {
            let mut rng = case_rng(0xbacc, case);
            let threads = 2 + rng.index(3);
            let plan: Vec<Vec<bool>> = (0..threads)
                .map(|_| {
                    let len = 1 + rng.index(19);
                    (0..len).map(|_| rng.flip()).collect()
                })
                .collect();
            let seed = rng.below(1000);

            for id in BackendId::ALL {
                let w = MixedCounters {
                    shared: Addr::NULL,
                    private: vec![],
                    plan: plan.clone(),
                    cursor: vec![],
                    program: inc_program(),
                    shared_ops: 0,
                };
                let mut cfg = id.config(threads, 3);
                cfg.seed = seed;
                let mut m = Machine::new(cfg, Box::new(w));
                let stats = m.run();
                assert!(!stats.timed_out, "case {case} {id}");
                if id != BackendId::Lrws {
                    assert_eq!(stats.lrws_capacity_aborts(), 0, "case {case} {id}");
                }
                m.workload()
                    .validate(m.memory())
                    .unwrap_or_else(|e| panic!("case {case} {id}: {e}"));
            }
        }
    }

    /// A backend defined *outside* the built-in registry — hostile
    /// arbitration (every conflict NACKs the requester) and a fallback
    /// after a single counted retry — still serializes random schedules
    /// when plugged in through [`Machine::with_backend`]. This is the
    /// pluggability contract: atomicity lives in the shared machine
    /// layers, not in any particular backend.
    #[test]
    fn a_custom_hostile_backend_still_serializes() {
        use clear_htm::{Resolution, RetryPolicy, TxInfo};
        use clear_machine::SpeculationBackend;

        #[derive(Debug)]
        struct HostileBackend;

        impl SpeculationBackend for HostileBackend {
            fn name(&self) -> &'static str {
                "hostile"
            }
            fn resolve(&self, _requester: TxInfo, _victims: &[TxInfo]) -> Resolution {
                Resolution::NackRequester
            }
            fn must_fall_back(&self, _policy: &RetryPolicy, counted_retries: u32) -> bool {
                counted_retries >= 1
            }
        }

        for case in 0..8 {
            let mut rng = case_rng(0x4057, case);
            let threads = 2 + rng.index(3);
            let plan: Vec<Vec<bool>> = (0..threads)
                .map(|_| {
                    let len = 1 + rng.index(14);
                    (0..len).map(|_| rng.flip()).collect()
                })
                .collect();
            let seed = rng.below(1000);

            let w = MixedCounters {
                shared: Addr::NULL,
                private: vec![],
                plan,
                cursor: vec![],
                program: inc_program(),
                shared_ops: 0,
            };
            // The config's own backend axes are ignored in favour of the
            // explicit backend argument.
            let mut cfg = Preset::B.config(threads, 3);
            cfg.seed = seed;
            let mut m = Machine::with_backend(cfg, Box::new(w), Box::new(HostileBackend));
            assert_eq!(m.backend().name(), "hostile");
            let stats = m.run();
            assert!(!stats.timed_out, "case {case}");
            m.workload()
                .validate(m.memory())
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
        }
    }
}

/// RwSetTracker against a two-BTreeSet model for any access sequence and
/// any small capacity bounds: admission, overflow verdicts, the
/// write-set-pins-reads rule, and attempt-boundary clears all agree with
/// the model exactly.
#[test]
fn rwset_tracker_matches_set_model() {
    use clear_htm::{LrwsConfig, RwSetOverflow, RwSetTracker};
    use std::collections::BTreeSet;

    for case in 0..CASES {
        let mut rng = case_rng(0x125e7, case);
        let cfg = LrwsConfig {
            read_lines: 1 + rng.index(6),
            write_lines: 1 + rng.index(4),
        };
        let mut tracker = RwSetTracker::new(cfg);
        let mut reads: BTreeSet<u64> = BTreeSet::new();
        let mut writes: BTreeSet<u64> = BTreeSet::new();
        let nops = 1 + rng.index(120);
        for _ in 0..nops {
            // Occasionally hit an attempt boundary.
            if rng.below(16) == 0 {
                tracker.clear();
                reads.clear();
                writes.clear();
            }
            let line = rng.below(12);
            let is_write = rng.flip();
            let expect = if is_write {
                if writes.contains(&line) || writes.len() < cfg.write_lines {
                    writes.insert(line);
                    Ok(())
                } else {
                    Err(RwSetOverflow::Writes)
                }
            } else if writes.contains(&line) {
                // Written lines read for free and never charge the
                // read-set budget.
                Ok(())
            } else if reads.contains(&line) || reads.len() < cfg.read_lines {
                reads.insert(line);
                Ok(())
            } else {
                Err(RwSetOverflow::Reads)
            };
            let got = tracker.track(LineAddr(line), is_write);
            assert_eq!(got, expect, "case {case} line {line} write {is_write}");
            assert_eq!(tracker.read_lines(), reads.len(), "case {case}");
            assert_eq!(tracker.write_lines(), writes.len(), "case {case}");
            assert!(tracker.read_lines() <= cfg.read_lines, "case {case}");
            assert!(tracker.write_lines() <= cfg.write_lines, "case {case}");
        }
    }
}

/// ALT under random observe/mark/reset sequences: entries stay in strict
/// directory-set lexicographic order and every Conflict bit says exactly
/// "my successor shares my directory set" — the group-escalation
/// delimiter of §5 survives any interleaving of discovery, CRT upgrades,
/// lock progress, and lock-pass resets.
#[test]
fn alt_random_sequences_keep_order_and_group_bits() {
    for case in 0..CASES {
        let mut rng = case_rng(0xa17b175, case);
        let dir = CacheGeometry::new(1 << (1 + rng.below(4) as u32), 4);
        let mut alt = Alt::new(16, dir);
        let nops = 1 + rng.index(79);
        for _ in 0..nops {
            let line = LineAddr(rng.below(96));
            match rng.below(6) {
                0 | 1 => {
                    let _ = alt.observe(line, rng.flip());
                }
                2 => alt.mark_needs_locking(line),
                3 => alt.mark_locked(line),
                4 => alt.mark_hit(line, rng.flip()),
                _ => alt.reset_lock_state(),
            }
        }

        let keys: Vec<LexKey> = alt.iter().map(|e| LexKey::new(dir, e.line)).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "case {case}");

        let entries: Vec<_> = alt.iter().copied().collect();
        for (i, e) in entries.iter().enumerate() {
            let next_same_set = entries
                .get(i + 1)
                .is_some_and(|n| dir.set_index(n.line) == dir.set_index(e.line));
            assert_eq!(e.conflict, next_same_set, "case {case} entry {i}");
            // group_of returns the whole contiguous same-set run.
            let group = alt.group_of(e.line);
            let expect: Vec<LineAddr> = entries
                .iter()
                .filter(|o| dir.set_index(o.line) == dir.set_index(e.line))
                .map(|o| o.line)
                .collect();
            assert_eq!(group, expect, "case {case} entry {i}");
        }
    }
}

/// Locking an ALT's lock list and then bulk-unlocking at XEnd releases
/// exactly the locked set: the requester holds every Needs-Locking line
/// while the region runs, holds nothing afterwards, and a second core's
/// unrelated locks are untouched throughout.
#[test]
fn alt_lock_list_bulk_unlocks_exactly_locked_set_at_xend() {
    use clear_coherence::{CoherenceConfig, CoherenceSystem, CoreId};

    for case in 0..CASES {
        let mut rng = case_rng(0xb01d, case);
        let mut sys = CoherenceSystem::new(CoherenceConfig::table2(2));
        let dir_geom = sys.config().directory;

        // Core 0's footprint: distinct lines in 0..64, random write bits.
        let mut alt = Alt::new(32, dir_geom);
        let mut picked = HashSet::new();
        for _ in 0..1 + rng.index(12) {
            let l = rng.below(64);
            if picked.insert(l) {
                alt.observe(LineAddr(l), rng.flip()).unwrap();
            }
        }
        // Core 1 holds a disjoint set of locks (lines 64..128).
        let other: Vec<LineAddr> = (0..1 + rng.index(6))
            .map(|_| LineAddr(64 + rng.below(64)))
            .collect();
        for &l in &other {
            sys.lock_line(CoreId(1), l).unwrap();
        }
        let other_locked = sys.locked_count(CoreId(1));

        let list = alt.lock_list();
        for &l in &list {
            sys.lock_line(CoreId(0), l).unwrap();
            alt.mark_locked(l);
        }
        assert_eq!(sys.locked_count(CoreId(0)), list.len(), "case {case}");
        for &l in &list {
            assert_eq!(sys.locked_by(l), Some(CoreId(0)), "case {case}");
        }
        assert!(
            alt.iter().filter(|e| e.needs_locking).all(|e| e.locked),
            "case {case}"
        );

        // XEnd: one bulk release.
        sys.unlock_all(CoreId(0));
        assert_eq!(sys.locked_count(CoreId(0)), 0, "case {case}");
        for &l in &list {
            assert_eq!(sys.locked_by(l), None, "case {case}");
        }
        // The other core's locks survive untouched.
        assert_eq!(sys.locked_count(CoreId(1)), other_locked, "case {case}");
        for &l in &other {
            assert_eq!(sys.locked_by(l), Some(CoreId(1)), "case {case}");
        }
        // A second XEnd is a no-op.
        sys.unlock_all(CoreId(0));
        assert_eq!(sys.locked_count(CoreId(1)), other_locked, "case {case}");
    }
}
