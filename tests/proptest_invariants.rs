//! Property-based tests over the core data structures and the end-to-end
//! machine.

use clear_core::{Alt, Crt, Ert};
use clear_isa::{AluOp, ProgramBuilder, Reg, Vm};
use clear_mem::{lock_order, CacheGeometry, LexKey, LineAddr, SetAssocCache};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

proptest! {
    /// lock_order: sorted by (directory set, line), duplicate-free, with
    /// exactly one group-terminator per directory set.
    #[test]
    fn lock_order_is_sorted_deduped_grouped(
        lines in prop::collection::vec(0u64..512, 0..40),
        sets_log in 1u32..6,
    ) {
        let dir = CacheGeometry::new(1 << sets_log, 4);
        let lines: Vec<LineAddr> = lines.into_iter().map(LineAddr).collect();
        let order = lock_order(dir, &lines);

        // Sorted & unique.
        let keys: Vec<LexKey> = order.iter().map(|(l, _)| LexKey::new(dir, *l)).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));

        // Same line set as the (deduped) input.
        let in_set: HashSet<u64> = lines.iter().map(|l| l.0).collect();
        let out_set: HashSet<u64> = order.iter().map(|(l, _)| l.0).collect();
        prop_assert_eq!(in_set, out_set);

        // One terminator per contiguous group.
        let mut terminators_per_set = std::collections::HashMap::new();
        for (l, last) in &order {
            if *last {
                *terminators_per_set.entry(dir.set_index(*l)).or_insert(0) += 1;
            }
        }
        let distinct_sets: HashSet<usize> =
            order.iter().map(|(l, _)| dir.set_index(*l)).collect();
        prop_assert_eq!(terminators_per_set.len(), distinct_sets.len());
        prop_assert!(terminators_per_set.values().all(|&c| c == 1));
    }

    /// SetAssocCache never exceeds per-set capacity and always finds what
    /// it inserted most recently within a set's capacity window.
    #[test]
    fn cache_respects_capacity(
        ops in prop::collection::vec(0u64..64, 1..200),
        ways in 1usize..4,
    ) {
        let geom = CacheGeometry::new(8, ways);
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(geom);
        for (i, &line) in ops.iter().enumerate() {
            cache.insert(LineAddr(line), i as u64);
            prop_assert!(cache.len() <= geom.lines());
            // Just-inserted line is always resident with its payload.
            prop_assert_eq!(cache.get(LineAddr(line)), Some(&(i as u64)));
        }
    }

    /// fits_simultaneously agrees with actually inserting pinned lines.
    #[test]
    fn fits_matches_pinned_insertion(
        lines in prop::collection::hash_set(0u64..64, 1..20),
        ways in 1usize..4,
    ) {
        let geom = CacheGeometry::new(4, ways);
        let lines: Vec<LineAddr> = lines.into_iter().map(LineAddr).collect();
        let fits = SetAssocCache::<()>::fits_simultaneously(geom, lines.iter().copied());
        let mut cache: SetAssocCache<()> = SetAssocCache::new(geom);
        let mut all_ok = true;
        for &l in &lines {
            if cache.insert_respecting(l, (), |_| true).is_err() {
                all_ok = false;
                break;
            }
        }
        prop_assert_eq!(fits, all_ok);
    }

    /// ALT keeps entries in lexicographical order with sticky write bits
    /// and bounded size, for any observation sequence.
    #[test]
    fn alt_order_and_stickiness(
        obs in prop::collection::vec((0u64..128, any::<bool>()), 1..64),
    ) {
        let dir = CacheGeometry::new(16, 4);
        let mut alt = Alt::new(32, dir);
        let mut written_lines = HashSet::new();
        for (line, written) in &obs {
            if alt.observe(LineAddr(*line), *written).is_ok() && *written {
                written_lines.insert(*line);
            }
        }
        prop_assert!(alt.len() <= 32);
        let keys: Vec<LexKey> =
            alt.iter().map(|e| LexKey::new(dir, e.line)).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        for e in alt.iter() {
            prop_assert_eq!(e.needs_locking, written_lines.contains(&e.line.0));
        }
    }

    /// ERT is bounded and sq-full counters saturate within [0, 3].
    #[test]
    fn ert_bounded_and_saturating(
        keys in prop::collection::vec(0u32..64, 1..100),
        bumps in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut ert = Ert::new(16);
        for (k, b) in keys.iter().zip(bumps.iter().cycle()) {
            let e = ert.entry(*k);
            if *b {
                e.bump_sq_full();
            } else {
                e.decay_sq_full();
            }
            prop_assert!(e.sq_full() <= 3);
        }
        prop_assert!(ert.len() <= 16);
    }

    /// CRT: record-then-take round-trips; take empties.
    #[test]
    fn crt_record_take_roundtrip(lines in prop::collection::vec(0u64..256, 1..64)) {
        let mut crt = Crt::new(8, 8);
        for &l in &lines {
            crt.record(LineAddr(l));
            prop_assert!(crt.contains(LineAddr(l)));
            prop_assert!(crt.take(LineAddr(l)));
            prop_assert!(!crt.contains(LineAddr(l)));
            prop_assert!(!crt.take(LineAddr(l)));
        }
        prop_assert!(crt.is_empty());
    }

    /// The VM computes ALU chains exactly like the host.
    #[test]
    fn vm_matches_host_arithmetic(
        a in any::<u64>(),
        b in any::<u64>(),
        ops in prop::collection::vec(0u8..9, 1..20),
    ) {
        let all = [
            AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::And, AluOp::Or,
            AluOp::Xor, AluOp::Shl, AluOp::Shr, AluOp::Rem,
        ];
        let mut builder = ProgramBuilder::new();
        let mut expect = a;
        for &o in &ops {
            let op = all[o as usize];
            builder.alu(op, Reg(0), Reg(0), Reg(1));
            expect = op.apply(expect, b);
        }
        builder.xend();
        let mut vm = Vm::new(Arc::new(builder.build()));
        vm.set_reg(Reg(0), a);
        vm.set_reg(Reg(1), b);
        for _ in 0..ops.len() {
            vm.step();
        }
        prop_assert_eq!(vm.reg(Reg(0)), expect);
    }

    /// Indirection bits propagate through any ALU dag: a register is
    /// indirect iff a load feeds it transitively.
    #[test]
    fn indirection_propagation_is_transitive(
        edges in prop::collection::vec((0u8..8, 0u8..8, 0u8..8), 1..24),
    ) {
        let mut builder = ProgramBuilder::new();
        // r7 becomes indirect via a load; r0..r6 start direct.
        builder.ld(Reg(7), Reg(6), 0);
        let mut indirect = [false; 8];
        indirect[7] = true;
        for (d, s1, s2) in &edges {
            builder.add(Reg(*d), Reg(*s1), Reg(*s2));
            indirect[*d as usize] = indirect[*s1 as usize] || indirect[*s2 as usize];
        }
        builder.xend();
        let mut vm = Vm::new(Arc::new(builder.build()));
        let mut mem = clear_mem::Memory::new();
        let addr = mem.alloc_words(1);
        vm.set_reg(Reg(6), addr.0);
        match vm.step() {
            clear_isa::Effect::Load { addr, .. } => vm.finish_load(mem.load_word(addr)),
            e => panic!("expected load, got {e:?}"),
        }
        for _ in 0..edges.len() {
            vm.step();
        }
        for r in 0..8u8 {
            prop_assert_eq!(vm.reg_indirect(Reg(r)), indirect[r as usize], "r{}", r);
        }
    }
}

mod machine_props {
    use super::*;
    use clear_isa::{ArId, ArInvocation, ArSpec, Mutability, Program, Workload, WorkloadMeta};
    use clear_machine::{Machine, Preset};
    use clear_mem::{Addr, Memory};

    /// Random mix of private and shared counter increments.
    struct MixedCounters {
        shared: Addr,
        private: Vec<Addr>,
        plan: Vec<Vec<bool>>, // per thread: true = shared op
        cursor: Vec<usize>,
        program: Arc<Program>,
        shared_ops: u64,
    }

    impl Workload for MixedCounters {
        fn meta(&self) -> WorkloadMeta {
            WorkloadMeta {
                name: "mixed-counters".into(),
                ars: vec![ArSpec {
                    id: ArId(0),
                    name: "inc".into(),
                    mutability: Mutability::Immutable,
                }],
            }
        }
        fn setup(&mut self, mem: &mut Memory, threads: usize) {
            self.shared = mem.alloc_words(1);
            self.private = (0..threads).map(|_| mem.alloc_words(1)).collect();
            self.cursor = vec![0; threads];
        }
        fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
            let i = self.cursor[tid];
            let shared = *self.plan[tid].get(i)?;
            self.cursor[tid] += 1;
            if shared {
                self.shared_ops += 1;
            }
            let target = if shared { self.shared } else { self.private[tid] };
            Some(ArInvocation {
                ar: ArId(0),
                program: Arc::clone(&self.program),
                args: vec![(Reg(0), target.0)],
                think_cycles: 7,
                static_footprint: None,
            })
        }
        fn validate(&self, mem: &Memory) -> Result<(), String> {
            let shared = mem.load_word(self.shared);
            if shared != self.shared_ops {
                return Err(format!("shared {shared} != {}", self.shared_ops));
            }
            for (t, &p) in self.private.iter().enumerate() {
                let got = mem.load_word(p);
                let want = self.plan[t].iter().filter(|s| !**s).count() as u64;
                if got != want {
                    return Err(format!("private[{t}] {got} != {want}"));
                }
            }
            Ok(())
        }
    }

    fn inc_program() -> Arc<Program> {
        let mut p = ProgramBuilder::new();
        p.ld(Reg(1), Reg(0), 0).addi(Reg(1), Reg(1), 1).st(Reg(0), 0, Reg(1)).xend();
        Arc::new(p.build())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any random plan of shared/private increments is conserved under
        /// every preset — the fundamental atomicity property, fuzzed.
        #[test]
        fn random_plans_conserve_counters(
            plan in prop::collection::vec(
                prop::collection::vec(any::<bool>(), 1..20), 2..5),
            preset_idx in 0usize..4,
            seed in 0u64..1000,
        ) {
            let threads = plan.len();
            let w = MixedCounters {
                shared: Addr::NULL,
                private: vec![],
                plan,
                cursor: vec![],
                program: inc_program(),
                shared_ops: 0,
            };
            let preset = Preset::ALL[preset_idx];
            let mut cfg = preset.config(threads, 3);
            cfg.seed = seed;
            let mut m = Machine::new(cfg, Box::new(w));
            let stats = m.run();
            prop_assert!(!stats.timed_out);
            m.workload().validate(m.memory()).map_err(|e| {
                TestCaseError::fail(format!("{preset}: {e}"))
            })?;
        }
    }
}
