//! End-to-end determinism: the harness contract is that every experiment
//! is a pure function of its options, so the rendered JSON document —
//! the exact bytes golden files are made of — must reproduce across runs
//! and be independent of the worker-pool width.

use clear_harness::experiments::find;
use clear_harness::SuiteOptions;
use clear_workloads::Size;

fn tiny(workers: usize) -> SuiteOptions {
    SuiteOptions {
        size: Size::Tiny,
        cores: 8,
        seeds: vec![1, 2],
        retry_sweep: vec![2, 5],
        workers,
        ..SuiteOptions::default()
    }
}

/// Three representative experiments: `fig01` exercises the full suite
/// engine (sweep + seed aggregation), `sle` drives the machine directly
/// with a non-default speculation mode, and `trace-digest` fingerprints
/// the entire traced event stream — its rows embed FxHash digests, so a
/// byte-identical document means the digests reproduced exactly.
const REPRESENTATIVE: [&str; 3] = ["fig01", "sle", "trace-digest"];

#[test]
fn same_seed_runs_render_byte_identical_json() {
    for name in REPRESENTATIVE {
        let exp = find(name).expect(name);
        let opts = tiny(4);
        let a = (exp.run)(&opts);
        let b = (exp.run)(&opts);
        assert_eq!(
            a.json.to_pretty(),
            b.json.to_pretty(),
            "{name}: repeated run drifted"
        );
        assert_eq!(a.text, b.text, "{name}: repeated text drifted");
    }
}

#[test]
fn repeated_traced_runs_produce_identical_digests() {
    use clear_harness::trace_export::run_traced;
    use clear_machine::Preset;

    let digest = || {
        let m = run_traced("arrayswap", Preset::C, 8, 5, Size::Tiny, 1);
        (
            m.trace().recorded(),
            m.trace().dropped(),
            m.trace().digest(),
        )
    };
    let (a, b) = (digest(), digest());
    assert_eq!(a, b, "trace digest drifted between identical runs");
    assert!(a.0 > 0, "traced run recorded no events");
}

#[test]
fn worker_pool_width_does_not_change_results() {
    for name in REPRESENTATIVE {
        let exp = find(name).expect(name);
        let serial = (exp.run)(&tiny(1));
        let parallel = (exp.run)(&tiny(8));
        // The options block records the worker count nowhere, so the whole
        // document must match byte-for-byte.
        assert_eq!(
            serial.json.to_pretty(),
            parallel.json.to_pretty(),
            "{name}: 1-worker vs 8-worker run drifted"
        );
    }
}

/// `scaling-wide` options scaled down for debug-mode test runs: a 64/128
/// ladder instead of the golden's full 64→1024 sweep.
fn wide(workers: usize, sim_threads: usize) -> SuiteOptions {
    SuiteOptions {
        size: Size::Tiny,
        cores: 128,
        seeds: vec![1],
        benchmarks: vec!["arrayswap"],
        workers,
        sim_threads,
        ..SuiteOptions::default()
    }
}

/// Strips the wall-clock columns (the only host-dependent fields) plus
/// the top-level `sim_threads` echo (which records the requested thread
/// count by design) so the remaining document — every simulated counter —
/// can be compared byte-for-byte.
fn deterministic_part(json: &clear_harness::json::Json) -> String {
    json.to_pretty()
        .lines()
        .filter(|l| {
            !l.contains("wall_ns")
                && !l.contains("steps_per_sec")
                && !l.contains("ratio")
                && !l.contains("\"sim_threads\"")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn scaling_wide_reproduces_byte_identically_across_runs() {
    let exp = find("scaling-wide").expect("scaling-wide registered");
    let a = (exp.run)(&wide(4, 2));
    let b = (exp.run)(&wide(4, 2));
    assert_eq!(
        deterministic_part(&a.json),
        deterministic_part(&b.json),
        "scaling-wide drifted between identical runs"
    );
    assert_eq!(a.failures, 0);
}

#[test]
fn scaling_wide_is_independent_of_grid_workers() {
    let exp = find("scaling-wide").expect("scaling-wide registered");
    let serial = (exp.run)(&wide(1, 2));
    let parallel = (exp.run)(&wide(8, 2));
    assert_eq!(
        deterministic_part(&serial.json),
        deterministic_part(&parallel.json),
        "scaling-wide: 1-worker vs 8-worker run drifted"
    );
}

#[test]
fn scaling_wide_is_independent_of_intra_run_worker_count() {
    // Both runs have batching ON (sim_threads >= 2), so even the
    // par_batch_* counters in the rows must agree: batch formation is a
    // function of the thread mode, never of the worker count.
    let exp = find("scaling-wide").expect("scaling-wide registered");
    let two = (exp.run)(&wide(4, 2));
    let eight = (exp.run)(&wide(4, 8));
    assert_eq!(
        deterministic_part(&two.json),
        deterministic_part(&eight.json),
        "scaling-wide: sim_threads=2 vs 8 drifted"
    );
}

/// `backend-shootout` options scaled down for debug-mode test runs: two
/// benchmarks instead of the golden's full 19, all five backends.
fn shootout(workers: usize, sim_threads: usize) -> SuiteOptions {
    SuiteOptions {
        size: Size::Tiny,
        cores: 8,
        seeds: vec![1],
        retry_sweep: vec![5],
        benchmarks: vec!["arrayswap", "mwobject"],
        workers,
        sim_threads,
        ..SuiteOptions::default()
    }
}

#[test]
fn backend_shootout_reproduces_byte_identically_across_runs() {
    let exp = find("backend-shootout").expect("backend-shootout registered");
    let a = (exp.run)(&shootout(4, 1));
    let b = (exp.run)(&shootout(4, 1));
    // The shootout document carries no wall-clock fields at all, so the
    // whole thing — text and JSON — must reproduce byte-for-byte.
    assert_eq!(a.json.to_pretty(), b.json.to_pretty());
    assert_eq!(a.text, b.text);
    assert_eq!(a.failures, 0);
}

#[test]
fn backend_shootout_is_independent_of_grid_workers() {
    let exp = find("backend-shootout").expect("backend-shootout registered");
    let serial = (exp.run)(&shootout(1, 1));
    let parallel = (exp.run)(&shootout(8, 1));
    assert_eq!(
        serial.json.to_pretty(),
        parallel.json.to_pretty(),
        "backend-shootout: 1-worker vs 8-worker run drifted"
    );
}

#[test]
fn backend_shootout_is_independent_of_intra_run_threads() {
    // sim_threads toggles parallel intra-run stepping (and, under the
    // limited-R/W-set backend, forces the batching classifier off); the
    // rendered document must not notice either way.
    let exp = find("backend-shootout").expect("backend-shootout registered");
    let two = (exp.run)(&shootout(4, 2));
    let eight = (exp.run)(&shootout(4, 8));
    let sequential = (exp.run)(&shootout(4, 1));
    assert_eq!(
        two.json.to_pretty(),
        eight.json.to_pretty(),
        "backend-shootout: sim_threads=2 vs 8 drifted"
    );
    assert_eq!(
        sequential.json.to_pretty(),
        two.json.to_pretty(),
        "backend-shootout: sequential vs batched stepping drifted"
    );
}

#[test]
fn intra_run_threads_do_not_change_gated_documents() {
    // The legacy gated experiments carry no batch counters in their JSON,
    // so sequential vs parallel intra-run stepping must render the exact
    // same bytes — the guarantee that keeps all pre-existing goldens
    // valid under any thread count.
    for name in ["fig01", "sim-throughput"] {
        let exp = find(name).expect(name);
        let seq = (exp.run)(&SuiteOptions {
            sim_threads: 1,
            ..tiny(4)
        });
        let par = (exp.run)(&SuiteOptions {
            sim_threads: 4,
            ..tiny(4)
        });
        assert_eq!(
            deterministic_part(&seq.json),
            deterministic_part(&par.json),
            "{name}: sequential vs parallel intra-run stepping drifted"
        );
    }
}
