//! End-to-end determinism: the harness contract is that every experiment
//! is a pure function of its options, so the rendered JSON document —
//! the exact bytes golden files are made of — must reproduce across runs
//! and be independent of the worker-pool width.

use clear_harness::experiments::find;
use clear_harness::SuiteOptions;
use clear_workloads::Size;

fn tiny(workers: usize) -> SuiteOptions {
    SuiteOptions {
        size: Size::Tiny,
        cores: 8,
        seeds: vec![1, 2],
        retry_sweep: vec![2, 5],
        workers,
        ..SuiteOptions::default()
    }
}

/// Three representative experiments: `fig01` exercises the full suite
/// engine (sweep + seed aggregation), `sle` drives the machine directly
/// with a non-default speculation mode, and `trace-digest` fingerprints
/// the entire traced event stream — its rows embed FxHash digests, so a
/// byte-identical document means the digests reproduced exactly.
const REPRESENTATIVE: [&str; 3] = ["fig01", "sle", "trace-digest"];

#[test]
fn same_seed_runs_render_byte_identical_json() {
    for name in REPRESENTATIVE {
        let exp = find(name).expect(name);
        let opts = tiny(4);
        let a = (exp.run)(&opts);
        let b = (exp.run)(&opts);
        assert_eq!(
            a.json.to_pretty(),
            b.json.to_pretty(),
            "{name}: repeated run drifted"
        );
        assert_eq!(a.text, b.text, "{name}: repeated text drifted");
    }
}

#[test]
fn repeated_traced_runs_produce_identical_digests() {
    use clear_harness::trace_export::run_traced;
    use clear_machine::Preset;

    let digest = || {
        let m = run_traced("arrayswap", Preset::C, 8, 5, Size::Tiny, 1);
        (
            m.trace().recorded(),
            m.trace().dropped(),
            m.trace().digest(),
        )
    };
    let (a, b) = (digest(), digest());
    assert_eq!(a, b, "trace digest drifted between identical runs");
    assert!(a.0 > 0, "traced run recorded no events");
}

#[test]
fn worker_pool_width_does_not_change_results() {
    for name in REPRESENTATIVE {
        let exp = find(name).expect(name);
        let serial = (exp.run)(&tiny(1));
        let parallel = (exp.run)(&tiny(8));
        // The options block records the worker count nowhere, so the whole
        // document must match byte-for-byte.
        assert_eq!(
            serial.json.to_pretty(),
            parallel.json.to_pretty(),
            "{name}: 1-worker vs 8-worker run drifted"
        );
    }
}
