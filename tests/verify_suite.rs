//! The install-check `verify` experiment folded into `cargo test`: every
//! benchmark under every configuration must satisfy its atomicity
//! invariant at tiny size, at both a small and the paper's core count.
//! CI used to run this as a separate harness invocation; keeping it in
//! the test suite means a plain `cargo test` catches invariant breakage.

use clear_harness::experiments::find;
use clear_harness::SuiteOptions;
use clear_workloads::Size;

fn verify_at(cores: usize) {
    let exp = find("verify").expect("verify experiment registered");
    let opts = SuiteOptions {
        size: Size::Tiny,
        cores,
        seeds: vec![1],
        ..SuiteOptions::default()
    };
    let out = (exp.run)(&opts);
    assert_eq!(
        out.failures, 0,
        "verify suite failed at {cores} cores:\n{}",
        out.text
    );
    assert!(out.text.contains("all invariants hold"), "{}", out.text);
}

#[test]
fn verify_suite_tiny_8_cores() {
    verify_at(8);
}

#[test]
fn verify_suite_tiny_32_cores() {
    verify_at(32);
}
