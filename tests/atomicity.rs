//! Cross-crate integration tests: the full stack (workloads → machine →
//! CLEAR → HTM → coherence → memory) must preserve every workload's
//! atomicity invariant under varied core counts, seeds and configurations.

use clear_machine::{Machine, Preset};
use clear_workloads::{by_name, Size};

fn check(name: &str, preset: Preset, cores: usize, seed: u64) {
    let w = by_name(name, Size::Tiny, seed).unwrap();
    let mut cfg = preset.config(cores, 3);
    cfg.seed = seed;
    let mut m = Machine::new(cfg, w);
    let stats = m.run();
    assert!(
        !stats.timed_out,
        "{name}/{preset}/{cores}c/s{seed} timed out"
    );
    m.workload()
        .validate(m.memory())
        .unwrap_or_else(|e| panic!("{name}/{preset}/{cores}c/s{seed}: {e}"));
}

#[test]
fn varied_core_counts_preserve_invariants() {
    for cores in [1, 2, 3, 8, 17] {
        for name in ["arrayswap", "queue", "bst", "intruder"] {
            check(name, Preset::W, cores, 5);
        }
    }
}

#[test]
fn varied_seeds_preserve_invariants() {
    for seed in 0..6 {
        check("hashmap", Preset::C, 8, seed);
        check("vacation-h", Preset::C, 8, seed);
    }
}

#[test]
fn tight_retry_budget_still_correct() {
    // max_retries = 1: everything contended goes through fallback quickly.
    for name in ["mwobject", "sorted-list", "labyrinth"] {
        let w = by_name(name, Size::Tiny, 3).unwrap();
        let mut cfg = Preset::C.config(8, 1);
        cfg.seed = 3;
        let mut m = Machine::new(cfg, w);
        let stats = m.run();
        assert!(!stats.timed_out);
        m.workload().validate(m.memory()).unwrap();
    }
}

#[test]
fn generous_retry_budget_still_correct() {
    for name in ["mwobject", "deque"] {
        let w = by_name(name, Size::Tiny, 3).unwrap();
        let mut cfg = Preset::B.config(8, 10);
        cfg.seed = 3;
        let mut m = Machine::new(cfg, w);
        let stats = m.run();
        assert!(!stats.timed_out);
        m.workload().validate(m.memory()).unwrap();
    }
}

#[test]
fn stats_are_internally_consistent() {
    let w = by_name("queue", Size::Tiny, 9).unwrap();
    let mut cfg = Preset::C.config(8, 4);
    cfg.seed = 9;
    let mut m = Machine::new(cfg, w);
    let s = m.run();
    // Commit-by-retries (non-fallback) plus fallback equals total commits.
    let by_retries: u64 = s.commits_by_retries.values().sum();
    assert_eq!(by_retries + s.commits_by_mode.fallback, s.commits());
    // Shares are probabilities.
    for v in [
        s.first_retry_share(),
        s.fallback_share(),
        s.immutable_retry_ratio(),
    ] {
        assert!((0.0..=1.0).contains(&v), "share out of range: {v}");
    }
    // Energy is positive and consistent.
    assert!(s.energy.total() > 0.0);
    assert!(s.energy.total() >= s.energy.static_energy);
}

// `check` must reject unknown names via by_name's Option; make sure the
// helper's unwrap panics loudly rather than silently skipping.
#[test]
#[should_panic]
fn unknown_benchmark_panics() {
    check("stamp-model", Preset::B, 2, 1);
}
