//! Umbrella crate for the CLEAR reproduction: re-exports every workspace
//! crate so examples and integration tests can use one dependency.
//!
//! See the repository `README.md` for the tour, `DESIGN.md` for the
//! system inventory and per-experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub use clear_coherence as coherence;
pub use clear_core as core;
pub use clear_harness as harness;
pub use clear_htm as htm;
pub use clear_isa as isa;
pub use clear_machine as machine;
pub use clear_mem as mem;
pub use clear_workloads as workloads;
