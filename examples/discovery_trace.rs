//! Drive CLEAR's discovery machinery directly (no machine, no workload):
//! feed accesses to a [`clear_core::Discovery`], watch the Fig. 2 decision
//! tree pick a retry mode, and print the resulting ALT lock order.
//!
//! ```text
//! cargo run --example discovery_trace
//! ```

use clear_core::{decide, ClearConfig, Discovery, RetryMode};
use clear_mem::{lock_order, CacheGeometry, LineAddr};

fn assess(label: &str, feed: impl FnOnce(&mut Discovery)) {
    let dir = CacheGeometry::new(8, 16);
    let mut d = Discovery::new(&ClearConfig::default(), dir);
    feed(&mut d);
    let a = d.assess(|lines| lines.len() <= 12);
    let mode = decide(&a);
    println!("{label}:");
    println!("  footprint = {:?}", a.footprint);
    println!(
        "  overflowed={} lockable={} immutable={}",
        a.overflowed, a.lockable, a.immutable
    );
    println!("  decision  = {mode}");
    if mode == RetryMode::NsCl || mode == RetryMode::SCl {
        let order = lock_order(dir, &a.footprint);
        println!("  lock order (line, last-of-group) = {order:?}");
    }
    println!();
}

fn main() {
    // Listing 1 (arrayswap): two direct accesses, no indirection -> NS-CL.
    assess("arrayswap-like AR (immutable)", |d| {
        d.on_access(LineAddr(0x10), true, false);
        d.on_access(LineAddr(0x24), true, false);
    });

    // Listing 2 (bitcoin): addresses derived from a loaded pointer -> S-CL.
    assess("bitcoin-like AR (indirection)", |d| {
        d.on_access(LineAddr(0x8), false, false); // load users pointer
        d.on_access(LineAddr(0x40), true, true); // users[from], indirect
        d.on_access(LineAddr(0x48), true, true); // users[to], indirect
    });

    // Listing 3 (sorted-list): pointer chase with dependent branches -> S-CL,
    // and with a large footprint -> speculative retry.
    assess("sorted-list-like AR (mutable, large)", |d| {
        for i in 0..40u64 {
            d.on_access(LineAddr(0x100 + i), false, i > 0);
            d.on_branch(true);
        }
        d.on_access(LineAddr(0x200), true, true);
    });

    // Same-directory-set footprint: lexicographical conflict group.
    assess("group-locking AR (same directory set)", |d| {
        d.on_access(LineAddr(0x11), true, false);
        d.on_access(LineAddr(0x19), true, false); // same set of an 8-set directory
        d.on_access(LineAddr(0x21), true, false);
    });
}
