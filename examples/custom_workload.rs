//! Build your own atomic-region workload against the public API.
//!
//! This example implements a tiny bank: N accounts, each AR transfers
//! between two accounts chosen outside the AR (an *immutable* footprint, so
//! CLEAR converts retries to NS-CL), and checks the conservation invariant
//! at the end.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use clear_isa::{
    ArId, ArInvocation, ArSpec, Mutability, Program, ProgramBuilder, Reg, Workload, WorkloadMeta,
};
use clear_machine::{Machine, Preset};
use clear_mem::rng::Xoshiro256PlusPlus;
use clear_mem::{Addr, Memory, LINE_BYTES, WORD_BYTES};
use std::sync::Arc;

struct Bank {
    accounts: usize,
    base: Addr,
    remaining: Vec<u32>,
    rngs: Vec<Xoshiro256PlusPlus>,
    program: Arc<Program>,
}

impl Bank {
    fn new(accounts: usize) -> Self {
        // r0 = &from, r1 = &to, r2 = amount
        let mut p = ProgramBuilder::new();
        p.ld(Reg(3), Reg(0), 0)
            .alu(clear_isa::AluOp::Sub, Reg(3), Reg(3), Reg(2))
            .st(Reg(0), 0, Reg(3))
            .ld(Reg(4), Reg(1), 0)
            .add(Reg(4), Reg(4), Reg(2))
            .st(Reg(1), 0, Reg(4))
            .xend();
        Bank {
            accounts,
            base: Addr::NULL,
            remaining: vec![],
            rngs: vec![],
            program: Arc::new(p.build()),
        }
    }

    fn account(&self, i: usize) -> Addr {
        Addr(self.base.0 + i as u64 * LINE_BYTES)
    }
}

impl Workload for Bank {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "bank".into(),
            ars: vec![ArSpec {
                id: ArId(0),
                name: "transfer".into(),
                mutability: Mutability::Immutable,
            }],
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.base = mem.alloc_words(self.accounts as u64 * (LINE_BYTES / WORD_BYTES));
        for i in 0..self.accounts {
            mem.store_word(self.account(i), 10_000);
        }
        self.remaining = vec![150; threads];
        self.rngs = (0..threads)
            .map(|t| Xoshiro256PlusPlus::seed_from_u64(0xBA2C + t as u64))
            .collect();
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        let n = self.accounts;
        let (from, to, amount, think) = {
            let rng = &mut self.rngs[tid];
            let from = rng.gen_range(0..n);
            let to = (from + rng.gen_range(1..n)) % n;
            (from, to, rng.gen_range(1..100), rng.gen_range(10..30))
        };
        Some(ArInvocation {
            ar: ArId(0),
            program: Arc::clone(&self.program),
            args: vec![
                (Reg(0), self.account(from).0),
                (Reg(1), self.account(to).0),
                (Reg(2), amount),
            ],
            think_cycles: think,
            static_footprint: None,
        })
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let total: u64 = (0..self.accounts)
            .map(|i| mem.load_word(self.account(i)))
            .sum();
        let want = 10_000 * self.accounts as u64;
        (total == want)
            .then_some(())
            .ok_or_else(|| format!("money not conserved: {total} != {want}"))
    }
}

fn main() {
    for preset in Preset::ALL {
        let mut config = preset.config(16, 5);
        config.seed = 7;
        let mut machine = Machine::new(config, Box::new(Bank::new(12)));
        let stats = machine.run();
        machine
            .workload()
            .validate(machine.memory())
            .expect("conservation");
        println!(
            "{}: {:>9} cycles, {:>6} commits ({} NS-CL, {} S-CL, {} fallback), {:.2} aborts/commit",
            preset.letter(),
            stats.total_cycles,
            stats.commits(),
            stats.commits_by_mode.nscl,
            stats.commits_by_mode.scl,
            stats.commits_by_mode.fallback,
            stats.aborts_per_commit()
        );
    }
    println!("\nall four configurations conserved the total balance");
}
