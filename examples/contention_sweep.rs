//! Sweep thread count on a contended benchmark and watch the fallback
//! share grow under the baseline while CLEAR keeps retries bounded —
//! the paper's core claim, as a scaling curve.
//!
//! ```text
//! cargo run --release --example contention_sweep [benchmark]
//! ```

use clear_machine::{Machine, Preset};
use clear_workloads::{by_name, Size};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "mwobject".to_string());
    println!("benchmark: {name} (small input)\n");
    println!(
        "{:>6} | {:>12} {:>10} {:>9} | {:>12} {:>10} {:>9}",
        "cores", "B cycles", "B apc", "B fb%", "C cycles", "C apc", "C fb%"
    );
    for cores in [2, 4, 8, 16, 32] {
        let mut row = Vec::new();
        for preset in [Preset::B, Preset::C] {
            let workload = by_name(&name, Size::Small, 99).expect("known benchmark");
            let mut config = preset.config(cores, 5);
            config.seed = 99;
            let mut machine = Machine::new(config, workload);
            let stats = machine.run();
            machine
                .workload()
                .validate(machine.memory())
                .expect("invariant");
            row.push((
                stats.total_cycles,
                stats.aborts_per_commit(),
                100.0 * stats.commits_by_mode.fallback as f64 / stats.commits() as f64,
            ));
        }
        println!(
            "{:>6} | {:>12} {:>10.2} {:>9.1} | {:>12} {:>10.2} {:>9.1}",
            cores, row[0].0, row[0].1, row[0].2, row[1].0, row[1].1, row[1].2
        );
    }
    println!("\napc = aborts per commit; fb% = share of ARs completing on the fallback path");
}
