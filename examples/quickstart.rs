//! Quickstart: run one benchmark under the four configurations of the
//! paper (B = requester-wins, P = PowerTM, C = CLEAR over requester-wins,
//! W = CLEAR over PowerTM) and print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark] [cores]
//! ```

use clear_machine::{Machine, Preset};
use clear_workloads::{by_name, Size};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "queue".to_string());
    let cores: usize = args.next().map(|c| c.parse().expect("cores")).unwrap_or(16);

    println!("benchmark: {name}, {cores} simulated cores, medium input\n");
    println!(
        "{:>3} {:>12} {:>10} {:>13} {:>10} {:>10}",
        "cfg", "cycles", "norm", "aborts/commit", "1st-retry", "fallback"
    );

    let mut base = 0u64;
    for preset in Preset::ALL {
        let workload = by_name(&name, Size::Medium, 42).unwrap_or_else(|| {
            eprintln!("unknown benchmark {name}; see clear_workloads::BENCHMARK_NAMES");
            std::process::exit(1);
        });
        let mut config = preset.config(cores, 5);
        config.seed = 42;
        let mut machine = Machine::new(config, workload);
        let stats = machine.run();
        machine
            .workload()
            .validate(machine.memory())
            .expect("atomicity invariant must hold");
        if preset == Preset::B {
            base = stats.total_cycles;
        }
        println!(
            "{:>3} {:>12} {:>10.2} {:>13.2} {:>10.2} {:>10.2}",
            preset.letter(),
            stats.total_cycles,
            stats.total_cycles as f64 / base as f64,
            stats.aborts_per_commit(),
            stats.first_retry_share(),
            stats.fallback_share(),
        );
    }
    println!("\nCLEAR (C/W) should commit most retried ARs on their first retry.");
}
