//! Behavioural tests of the machine's policy layer: fallback semantics,
//! PowerTM, ERT learning and CLEAR mode selection, observed through stats
//! and traces.

use clear_isa::{
    ArId, ArInvocation, ArSpec, Mutability, Program, ProgramBuilder, Reg, Workload, WorkloadMeta,
};
use clear_machine::{Machine, Preset, TraceEvent};
use clear_mem::{Addr, Memory};
use std::sync::Arc;

fn inc_program() -> Arc<Program> {
    let mut p = ProgramBuilder::new();
    p.ld(Reg(1), Reg(0), 0)
        .addi(Reg(1), Reg(1), 1)
        .st(Reg(0), 0, Reg(1))
        .xend();
    Arc::new(p.build())
}

/// Shared counter with an indirection: the counter address is loaded from a
/// pointer slot inside the AR, so CLEAR can only ever choose S-CL.
struct IndirectCounter {
    slot: Addr,
    counter: Addr,
    remaining: Vec<u32>,
    ops: u32,
    program: Arc<Program>,
}

impl IndirectCounter {
    fn new(ops: u32) -> Self {
        let mut p = ProgramBuilder::new();
        p.ld(Reg(1), Reg(0), 0) // counter address (indirection)
            .ld(Reg(2), Reg(1), 0)
            .addi(Reg(2), Reg(2), 1)
            .st(Reg(1), 0, Reg(2))
            .xend();
        IndirectCounter {
            slot: Addr::NULL,
            counter: Addr::NULL,
            remaining: vec![],
            ops,
            program: Arc::new(p.build()),
        }
    }
}

impl Workload for IndirectCounter {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "indirect-counter".into(),
            ars: vec![ArSpec {
                id: ArId(0),
                name: "inc".into(),
                mutability: Mutability::LikelyImmutable,
            }],
        }
    }
    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.slot = mem.alloc_words(1);
        self.counter = mem.alloc_words(1);
        mem.store_word(self.slot, self.counter.0);
        self.remaining = vec![self.ops; threads];
    }
    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        Some(ArInvocation {
            ar: ArId(0),
            program: Arc::clone(&self.program),
            args: vec![(Reg(0), self.slot.0)],
            think_cycles: 12,
            static_footprint: None,
        })
    }
    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let v = mem.load_word(self.counter);
        let want = self.ops as u64 * self.remaining.len() as u64;
        (v == want)
            .then_some(())
            .ok_or_else(|| format!("{v} != {want}"))
    }
}

/// Plain shared counter (immutable footprint).
struct SharedCounter {
    addr: Addr,
    remaining: Vec<u32>,
    ops: u32,
    program: Arc<Program>,
}

impl SharedCounter {
    fn new(ops: u32) -> Self {
        SharedCounter {
            addr: Addr::NULL,
            remaining: vec![],
            ops,
            program: inc_program(),
        }
    }
}

impl Workload for SharedCounter {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "shared-counter".into(),
            ars: vec![ArSpec {
                id: ArId(0),
                name: "inc".into(),
                mutability: Mutability::Immutable,
            }],
        }
    }
    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.addr = mem.alloc_words(1);
        self.remaining = vec![self.ops; threads];
    }
    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        Some(ArInvocation {
            ar: ArId(0),
            program: Arc::clone(&self.program),
            args: vec![(Reg(0), self.addr.0)],
            think_cycles: 12,
            static_footprint: None,
        })
    }
    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let v = mem.load_word(self.addr);
        let want = self.ops as u64 * self.remaining.len() as u64;
        (v == want)
            .then_some(())
            .ok_or_else(|| format!("{v} != {want}"))
    }
}

#[test]
fn indirect_footprint_converts_to_scl_never_nscl() {
    let mut cfg = Preset::C.config(6, 5);
    cfg.seed = 3;
    let mut m = Machine::new(cfg, Box::new(IndirectCounter::new(30)));
    m.enable_tracing();
    let s = m.run();
    m.workload().validate(m.memory()).unwrap();
    assert_eq!(s.commits_by_mode.nscl, 0, "indirections forbid NS-CL");
    assert!(
        s.commits_by_mode.scl > 0,
        "contended likely-immutable AR should use S-CL"
    );
    // Every decision must classify the AR as not immutable.
    for r in m.trace().records() {
        if let TraceEvent::Decision { immutable, .. } = &r.event {
            assert!(
                !immutable,
                "indirection must clear the immutable assessment"
            );
        }
    }
}

#[test]
fn tiny_retry_budget_forces_fallback_commits() {
    let mut cfg = Preset::B.config(8, 1);
    cfg.seed = 11;
    let mut m = Machine::new(cfg, Box::new(SharedCounter::new(30)));
    let s = m.run();
    m.workload().validate(m.memory()).unwrap();
    assert!(
        s.commits_by_mode.fallback > 0,
        "with max_retries=1 under contention some ARs must fall back"
    );
    assert!(s.aborts.get(clear_htm::AbortKind::ExplicitFallback) > 0);
}

#[test]
fn powertm_reduces_aborts_vs_requester_wins() {
    let run = |preset: Preset| {
        let mut cfg = preset.config(8, 5);
        cfg.seed = 17;
        let mut m = Machine::new(cfg, Box::new(SharedCounter::new(40)));
        let s = m.run();
        m.workload().validate(m.memory()).unwrap();
        s
    };
    let b = run(Preset::B);
    let p = run(Preset::P);
    // The paper notes PowerTM may *increase* raw abort counts as a side
    // effect; the win is in execution time and fallback pressure. Power
    // NACKs must appear, and the power transaction's priority should keep
    // performance in the baseline's neighbourhood.
    assert!(
        p.aborts.get(clear_htm::AbortKind::Nacked) > 0,
        "power NACKs must appear"
    );
    assert!(
        p.total_cycles as f64 <= b.total_cycles as f64 * 1.3,
        "PowerTM should not collapse: B={} P={}",
        b.total_cycles,
        p.total_cycles
    );
    // (Fallback counts at this tiny scale are noisy in either direction —
    // the suite-level Fig. 13 harness shows the average trend.)
}

#[test]
fn clear_decisions_match_ar_immutability() {
    let mut cfg = Preset::C.config(6, 5);
    cfg.seed = 23;
    let mut m = Machine::new(cfg, Box::new(SharedCounter::new(30)));
    m.enable_tracing();
    let s = m.run();
    m.workload().validate(m.memory()).unwrap();
    assert!(s.commits_by_mode.nscl > 0);
    assert_eq!(
        s.commits_by_mode.scl, 0,
        "a direct-address AR never needs S-CL"
    );
    for r in m.trace().records() {
        if let TraceEvent::Decision {
            immutable,
            footprint,
            ..
        } = &r.event
        {
            assert!(immutable);
            // Counter line + fallback-lock subscription is not part of the
            // AR body; footprint is exactly one line.
            assert_eq!(*footprint, 1);
        }
    }
}

#[test]
fn fallback_executions_are_serialized() {
    // With retries=1 everything funnels through fallback quickly; the lock
    // is exclusive, so commits still conserve the counter and no two
    // fallback commits can race (validated by the final value).
    let mut cfg = Preset::B.config(16, 1);
    cfg.seed = 29;
    let mut m = Machine::new(cfg, Box::new(SharedCounter::new(20)));
    let s = m.run();
    m.workload().validate(m.memory()).unwrap();
    assert_eq!(s.commits(), 320);
}

#[test]
fn abort_penalty_shows_up_in_wasted_instructions() {
    let mut cfg = Preset::B.config(8, 5);
    cfg.seed = 31;
    let mut m = Machine::new(cfg, Box::new(SharedCounter::new(30)));
    let s = m.run();
    assert!(s.instructions_wasted > 0, "contended runs waste work");
    assert!(
        s.instructions_retired >= s.commits() * 4,
        "4 instructions per committed inc"
    );
}

#[test]
fn a_priori_locking_runs_eligible_ars_in_nscl_from_the_start() {
    // SharedCounter invocations carry no static footprint; build one that
    // does via the workloads crate instead: mwobject-style single line.
    struct StaticInc {
        addr: Addr,
        remaining: Vec<u32>,
        program: Arc<Program>,
    }
    impl Workload for StaticInc {
        fn meta(&self) -> WorkloadMeta {
            WorkloadMeta {
                name: "static-inc".into(),
                ars: vec![ArSpec {
                    id: ArId(0),
                    name: "inc".into(),
                    mutability: Mutability::Immutable,
                }],
            }
        }
        fn setup(&mut self, mem: &mut Memory, threads: usize) {
            self.addr = mem.alloc_words(1);
            self.remaining = vec![25; threads];
        }
        fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
            if self.remaining[tid] == 0 {
                return None;
            }
            self.remaining[tid] -= 1;
            Some(ArInvocation {
                ar: ArId(0),
                program: Arc::clone(&self.program),
                args: vec![(Reg(0), self.addr.0)],
                think_cycles: 10,
                static_footprint: Some(vec![self.addr.line()]),
            })
        }
        fn validate(&self, mem: &Memory) -> Result<(), String> {
            let v = mem.load_word(self.addr);
            let want = 25 * self.remaining.len() as u64;
            (v == want)
                .then_some(())
                .ok_or_else(|| format!("{v} != {want}"))
        }
    }

    let w = StaticInc {
        addr: Addr::NULL,
        remaining: vec![],
        program: inc_program(),
    };
    let mut cfg = Preset::B.config(4, 5);
    cfg.seed = 13;
    cfg.a_priori_locking = true;
    let mut m = Machine::new(cfg, Box::new(w));
    let s = m.run();
    m.workload().validate(m.memory()).unwrap();
    assert_eq!(s.commits(), 100);
    assert_eq!(
        s.commits_by_mode.nscl, 100,
        "every eligible AR must run NS-CL from its first attempt: {:?}",
        s.commits_by_mode
    );
    assert_eq!(
        s.aborts.total(),
        0,
        "non-speculative execution cannot abort"
    );
}

#[test]
fn a_priori_locking_ignores_footprint_free_ars() {
    let mut cfg = Preset::B.config(4, 5);
    cfg.seed = 13;
    cfg.a_priori_locking = true;
    let mut m = Machine::new(cfg, Box::new(SharedCounter::new(25)));
    let s = m.run();
    m.workload().validate(m.memory()).unwrap();
    assert_eq!(
        s.commits_by_mode.nscl, 0,
        "no static footprint, no a-priori NS-CL"
    );
}

#[test]
fn explicit_abort_retries_until_data_allows_commit() {
    // Thread 0 spins on a flag with XAbort (a program-level conditional
    // retry, as in STAMP); thread 1 eventually sets the flag. Exercises the
    // Explicit abort path everywhere, including on the fallback path.
    struct FlagWait {
        flag: Addr,
        done: Addr,
        issued: [bool; 2],
        waiter: Arc<Program>,
        setter: Arc<Program>,
    }
    impl Workload for FlagWait {
        fn meta(&self) -> WorkloadMeta {
            WorkloadMeta {
                name: "flag-wait".into(),
                ars: vec![
                    ArSpec {
                        id: ArId(0),
                        name: "wait".into(),
                        mutability: Mutability::Mutable,
                    },
                    ArSpec {
                        id: ArId(1),
                        name: "set".into(),
                        mutability: Mutability::Immutable,
                    },
                ],
            }
        }
        fn setup(&mut self, mem: &mut Memory, _threads: usize) {
            self.flag = mem.alloc_words(1);
            self.done = mem.alloc_words(1);
        }
        fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
            if self.issued[tid] {
                return None;
            }
            self.issued[tid] = true;
            if tid == 0 {
                Some(ArInvocation {
                    ar: ArId(0),
                    program: Arc::clone(&self.waiter),
                    args: vec![(Reg(0), self.flag.0), (Reg(1), self.done.0), (Reg(5), 0)],
                    think_cycles: 1,
                    static_footprint: None,
                })
            } else {
                Some(ArInvocation {
                    ar: ArId(1),
                    program: Arc::clone(&self.setter),
                    args: vec![(Reg(0), self.flag.0)],
                    // The setter arrives late so the waiter aborts a few
                    // times first (speculatively and then in fallback).
                    think_cycles: 2_000,
                    static_footprint: None,
                })
            }
        }
        fn validate(&self, mem: &Memory) -> Result<(), String> {
            (mem.load_word(self.done) == 1)
                .then_some(())
                .ok_or_else(|| "waiter never completed".into())
        }
    }

    // waiter: if flag == 0 { xabort } else { done = 1 }
    let mut wp = ProgramBuilder::new();
    let go = wp.label();
    wp.ld(Reg(2), Reg(0), 0)
        .branch(clear_isa::Cond::Ne, Reg(2), Reg(5), go)
        .xabort(1)
        .bind(go)
        .li(Reg(3), 1)
        .st(Reg(1), 0, Reg(3))
        .xend();
    // setter: flag = 1
    let mut sp = ProgramBuilder::new();
    sp.li(Reg(2), 1).st(Reg(0), 0, Reg(2)).xend();

    let w = FlagWait {
        flag: Addr::NULL,
        done: Addr::NULL,
        issued: [false; 2],
        waiter: Arc::new(wp.build()),
        setter: Arc::new(sp.build()),
    };
    let mut cfg = Preset::B.config(2, 2);
    cfg.seed = 37;
    let mut m = Machine::new(cfg, Box::new(w));
    let s = m.run();
    assert!(
        !s.timed_out,
        "fallback XAbort must not deadlock the machine"
    );
    m.workload().validate(m.memory()).unwrap();
    assert!(
        s.aborts.get(clear_htm::AbortKind::Explicit) > 0,
        "the waiter must have explicitly aborted at least once: {:?}",
        s.aborts
    );
    assert_eq!(s.commits(), 2);
}
