//! Tests of the resource-exhaustion paths: ALT overflow, store-queue
//! overflow during failed-mode discovery, and simulated faults.

use clear_isa::{
    ArId, ArInvocation, ArSpec, Mutability, Program, ProgramBuilder, Reg, Workload, WorkloadMeta,
};
use clear_machine::{Machine, Preset, TraceEvent};
use clear_mem::{Addr, Memory, LINE_BYTES};
use std::sync::Arc;

/// An AR touching `lines` distinct cachelines (reads) plus one contended
/// counter (RMW), so it both overflows structures and conflicts.
struct WideAr {
    lines: u64,
    region: Addr,
    counter: Addr,
    remaining: Vec<u32>,
    program: Arc<Program>,
}

impl WideAr {
    fn new(lines: u64) -> Self {
        let mut p = ProgramBuilder::new();
        for i in 0..lines as i64 {
            p.ld(Reg(2), Reg(0), i * LINE_BYTES as i64);
        }
        p.ld(Reg(3), Reg(1), 0)
            .addi(Reg(3), Reg(3), 1)
            .st(Reg(1), 0, Reg(3))
            .xend();
        WideAr {
            lines,
            region: Addr::NULL,
            counter: Addr::NULL,
            remaining: vec![],
            program: Arc::new(p.build()),
        }
    }
}

impl Workload for WideAr {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "wide-ar".into(),
            ars: vec![ArSpec {
                id: ArId(0),
                name: "wide".into(),
                mutability: Mutability::Immutable,
            }],
        }
    }
    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.region = mem.alloc_words(self.lines * 8);
        self.counter = mem.alloc_words(1);
        self.remaining = vec![20; threads];
    }
    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        Some(ArInvocation {
            ar: ArId(0),
            program: Arc::clone(&self.program),
            args: vec![(Reg(0), self.region.0), (Reg(1), self.counter.0)],
            think_cycles: 8,
            static_footprint: None,
        })
    }
    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let v = mem.load_word(self.counter);
        let want = 20 * self.remaining.len() as u64;
        (v == want)
            .then_some(())
            .ok_or_else(|| format!("{v} != {want}"))
    }
}

/// An AR issuing `stores` store instructions (to few lines) plus one
/// contended RMW — exercises the failed-mode SQ bound.
struct StoreHeavyAr {
    stores: u64,
    region: Addr,
    counter: Addr,
    remaining: Vec<u32>,
    program: Arc<Program>,
}

impl StoreHeavyAr {
    fn new(stores: u64) -> Self {
        // The contended RMW comes FIRST so a conflict (losing the counter
        // line to another core) lands while the long store tail is still
        // running — i.e. inside failed-mode discovery.
        let mut p = ProgramBuilder::new();
        p.ld(Reg(3), Reg(1), 0)
            .addi(Reg(3), Reg(3), 1)
            .st(Reg(1), 0, Reg(3));
        p.li(Reg(2), 7);
        for i in 0..stores as i64 {
            p.st(Reg(0), (i % 8) * 8, Reg(2));
        }
        p.xend();
        StoreHeavyAr {
            stores,
            region: Addr::NULL,
            counter: Addr::NULL,
            remaining: vec![],
            program: Arc::new(p.build()),
        }
    }
}

impl Workload for StoreHeavyAr {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "store-heavy".into(),
            ars: vec![ArSpec {
                id: ArId(0),
                name: "stores".into(),
                mutability: Mutability::Immutable,
            }],
        }
    }
    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.region = mem.alloc_words(8);
        self.counter = mem.alloc_words(1);
        self.remaining = vec![15; threads];
        let _ = self.stores;
    }
    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        Some(ArInvocation {
            ar: ArId(0),
            program: Arc::clone(&self.program),
            args: vec![(Reg(0), self.region.0), (Reg(1), self.counter.0)],
            think_cycles: 8,
            static_footprint: None,
        })
    }
    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let v = mem.load_word(self.counter);
        let want = 15 * self.remaining.len() as u64;
        (v == want)
            .then_some(())
            .ok_or_else(|| format!("{v} != {want}"))
    }
}

#[test]
fn alt_overflowing_ar_never_converts() {
    // 40 lines > 32 ALT entries.
    let mut cfg = Preset::C.config(6, 4);
    cfg.seed = 19;
    let mut m = Machine::new(cfg, Box::new(WideAr::new(40)));
    m.enable_tracing();
    let s = m.run();
    m.workload().validate(m.memory()).unwrap();
    assert_eq!(
        s.commits_by_mode.nscl + s.commits_by_mode.scl,
        0,
        "oversized footprint must stay unconverted: {:?}",
        s.commits_by_mode
    );
    // No decision event can choose a CL mode.
    for r in m.trace().records() {
        if let TraceEvent::Decision { mode, .. } = &r.event {
            assert_eq!(*mode, clear_core::RetryMode::SpeculativeRetry);
        }
    }
}

#[test]
fn small_footprint_wide_enough_ar_converts() {
    // Control: the same shape with 8 lines converts to NS-CL.
    let mut cfg = Preset::C.config(6, 4);
    cfg.seed = 19;
    let mut m = Machine::new(cfg, Box::new(WideAr::new(8)));
    let s = m.run();
    m.workload().validate(m.memory()).unwrap();
    assert!(s.commits_by_mode.nscl > 0, "{:?}", s.commits_by_mode);
}

#[test]
fn sq_overflow_in_failed_mode_aborts_discovery() {
    // 200 stores far exceed the 72-entry SQ once discovery enters failed
    // mode near the leading RMW.
    let mut cfg = Preset::C.config(6, 4);
    cfg.seed = 21;
    let mut m = Machine::new(cfg, Box::new(StoreHeavyAr::new(200)));
    m.enable_tracing();
    let _ = m.run();
    m.workload().validate(m.memory()).unwrap();
    let mut entered_failed = 0;
    let mut decisions = 0;
    for r in m.trace().records() {
        match &r.event {
            TraceEvent::EnterFailedMode => entered_failed += 1,
            TraceEvent::Decision { .. } => decisions += 1,
            _ => {}
        }
    }
    assert!(entered_failed > 0, "contended run must enter failed mode");
    assert!(
        decisions < entered_failed,
        "SQ overflow must cut some discoveries short \
         ({decisions} decisions from {entered_failed} failed discoveries)"
    );
}

#[test]
fn store_heavy_but_within_sq_still_converts() {
    let mut cfg = Preset::C.config(6, 4);
    cfg.seed = 21;
    let mut m = Machine::new(cfg, Box::new(StoreHeavyAr::new(40)));
    let s = m.run();
    m.workload().validate(m.memory()).unwrap();
    assert!(
        s.commits_by_mode.nscl > 0,
        "40 stores fit the SQ; the AR is immutable and small: {:?}",
        s.commits_by_mode
    );
    assert_eq!(s.commits(), 90);
}

/// An AR that dereferences a null pointer: a workload bug that must be
/// caught loudly once the AR reaches the non-speculative fallback path.
struct FaultyAr {
    remaining: u32,
    program: Arc<Program>,
}

impl Workload for FaultyAr {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "faulty".into(),
            ars: vec![ArSpec {
                id: ArId(0),
                name: "null-deref".into(),
                mutability: Mutability::Immutable,
            }],
        }
    }
    fn setup(&mut self, _mem: &mut Memory, _threads: usize) {}
    fn next_ar(&mut self, _tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(ArInvocation {
            ar: ArId(0),
            program: Arc::clone(&self.program),
            args: vec![(Reg(0), 0)], // null base
            think_cycles: 5,
            static_footprint: None,
        })
    }
}

#[test]
#[should_panic(expected = "fault")]
fn persistent_fault_panics_on_the_fallback_path() {
    let mut p = ProgramBuilder::new();
    p.ld(Reg(1), Reg(0), 0).xend();
    let w = FaultyAr {
        remaining: 5,
        program: Arc::new(p.build()),
    };
    let mut cfg = Preset::B.config(1, 2);
    cfg.seed = 1;
    // Speculative attempts abort with kind Other; after the retry budget
    // the AR enters fallback, where the fault is a hard error.
    Machine::new(cfg, Box::new(w)).run();
}
