//! End-to-end machine tests: tiny synthetic workloads driven through every
//! preset, checking atomicity and the expected mode behaviour.

use clear_isa::{
    ArId, ArInvocation, ArSpec, Mutability, Program, ProgramBuilder, Reg, Workload, WorkloadMeta,
};
use clear_machine::{Machine, Preset};
use clear_mem::{Addr, Memory};
use std::sync::Arc;

/// Builds the canonical increment program: `mem[r0] += 1`.
fn inc_program() -> Arc<Program> {
    let mut p = ProgramBuilder::new();
    p.ld(Reg(1), Reg(0), 0)
        .addi(Reg(1), Reg(1), 1)
        .st(Reg(0), 0, Reg(1))
        .xend();
    Arc::new(p.build())
}

/// N threads increment a single shared counter `ops` times each: the
/// highest-contention immutable AR possible.
struct SharedCounter {
    addr: Addr,
    remaining: Vec<u32>,
    ops: u32,
    program: Arc<Program>,
}

impl SharedCounter {
    fn new(ops: u32) -> Self {
        SharedCounter {
            addr: Addr::NULL,
            remaining: vec![],
            ops,
            program: inc_program(),
        }
    }
}

impl Workload for SharedCounter {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "shared-counter".into(),
            ars: vec![ArSpec {
                id: ArId(0),
                name: "inc".into(),
                mutability: Mutability::Immutable,
            }],
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.addr = mem.alloc_words(1);
        self.remaining = vec![self.ops; threads];
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        Some(ArInvocation {
            ar: ArId(0),
            program: Arc::clone(&self.program),
            args: vec![(Reg(0), self.addr.0)],
            think_cycles: 15,
            static_footprint: None,
        })
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let v = mem.load_word(self.addr);
        let expect = self.ops as u64 * self.remaining.len() as u64;
        if v == expect {
            Ok(())
        } else {
            Err(format!("counter is {v}, expected {expect}"))
        }
    }
}

/// Each thread increments its own counter: zero contention.
struct PrivateCounters {
    addrs: Vec<Addr>,
    remaining: Vec<u32>,
    ops: u32,
    program: Arc<Program>,
}

impl PrivateCounters {
    fn new(ops: u32) -> Self {
        PrivateCounters {
            addrs: vec![],
            remaining: vec![],
            ops,
            program: inc_program(),
        }
    }
}

impl Workload for PrivateCounters {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "private-counters".into(),
            ars: vec![ArSpec {
                id: ArId(0),
                name: "inc".into(),
                mutability: Mutability::Immutable,
            }],
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.addrs = (0..threads).map(|_| mem.alloc_words(1)).collect();
        self.remaining = vec![self.ops; threads];
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        Some(ArInvocation {
            ar: ArId(0),
            program: Arc::clone(&self.program),
            args: vec![(Reg(0), self.addrs[tid].0)],
            think_cycles: 10,
            static_footprint: None,
        })
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        for (t, &a) in self.addrs.iter().enumerate() {
            let v = mem.load_word(a);
            if v != self.ops as u64 {
                return Err(format!("thread {t} counter is {v}, expected {}", self.ops));
            }
        }
        Ok(())
    }
}

fn run(preset: Preset, cores: usize, w: Box<dyn Workload>) -> (Machine, clear_machine::RunStats) {
    let mut cfg = preset.config(cores, 4);
    cfg.seed = 42;
    let mut m = Machine::new(cfg, w);
    let stats = m.run();
    (m, stats)
}

#[test]
fn shared_counter_conserved_under_all_presets() {
    for preset in Preset::ALL {
        let (m, stats) = run(preset, 4, Box::new(SharedCounter::new(40)));
        assert!(!stats.timed_out, "{preset}: timed out");
        assert_eq!(stats.commits(), 160, "{preset}: wrong commit count");
        m.workload()
            .validate(m.memory())
            .unwrap_or_else(|e| panic!("{preset}: atomicity violated: {e}"));
    }
}

#[test]
fn private_counters_commit_speculatively_without_aborts() {
    for preset in Preset::ALL {
        let (m, stats) = run(preset, 4, Box::new(PrivateCounters::new(50)));
        assert!(!stats.timed_out);
        assert_eq!(stats.commits(), 200, "{preset}");
        m.workload().validate(m.memory()).unwrap();
        assert_eq!(
            stats.commits_by_mode.speculative, 200,
            "{preset}: low contention should commit speculatively"
        );
        assert_eq!(stats.aborts.total(), 0, "{preset}: no conflicts expected");
        assert_eq!(stats.commits_by_retries.get(&0), Some(&200), "{preset}");
    }
}

#[test]
fn contended_baseline_aborts_and_clear_uses_cl_modes() {
    let (_, b) = run(Preset::B, 4, Box::new(SharedCounter::new(40)));
    assert!(b.aborts.total() > 0, "high contention must abort");
    assert_eq!(b.commits_by_mode.nscl + b.commits_by_mode.scl, 0);

    let (_, c) = run(Preset::C, 4, Box::new(SharedCounter::new(40)));
    assert!(
        c.commits_by_mode.nscl > 0,
        "immutable AR under CLEAR should commit in NS-CL: {:?}",
        c.commits_by_mode
    );
}

#[test]
fn clear_reduces_aborts_per_commit_under_contention() {
    let (_, b) = run(Preset::B, 8, Box::new(SharedCounter::new(30)));
    let (_, c) = run(Preset::C, 8, Box::new(SharedCounter::new(30)));
    assert!(
        c.aborts_per_commit() < b.aborts_per_commit(),
        "CLEAR should reduce aborts/commit: B={:.2} C={:.2}",
        b.aborts_per_commit(),
        c.aborts_per_commit()
    );
}

#[test]
fn clear_improves_first_retry_share() {
    let (_, b) = run(Preset::B, 8, Box::new(SharedCounter::new(30)));
    let (_, c) = run(Preset::C, 8, Box::new(SharedCounter::new(30)));
    assert!(
        c.first_retry_share() >= b.first_retry_share(),
        "B={:.2} C={:.2}",
        b.first_retry_share(),
        c.first_retry_share()
    );
}

#[test]
fn runs_are_deterministic() {
    let (_, a) = run(Preset::W, 4, Box::new(SharedCounter::new(25)));
    let (_, b) = run(Preset::W, 4, Box::new(SharedCounter::new(25)));
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.aborts.total(), b.aborts.total());
    assert_eq!(a.commits_by_mode, b.commits_by_mode);
}

#[test]
fn energy_is_positive_and_includes_both_components() {
    let (_, s) = run(Preset::B, 2, Box::new(SharedCounter::new(10)));
    assert!(s.energy.static_energy > 0.0);
    assert!(s.energy.dynamic_energy > 0.0);
    assert!(s.energy.total() > s.energy.static_energy);
}

#[test]
fn single_core_never_conflicts() {
    let (m, s) = run(Preset::B, 1, Box::new(SharedCounter::new(100)));
    assert_eq!(s.commits(), 100);
    assert_eq!(s.aborts.total(), 0);
    m.workload().validate(m.memory()).unwrap();
}

/// A single AR that executes far more instructions than the ROB holds.
struct BigAr {
    addr: Addr,
    remaining: Vec<u32>,
    program: Arc<Program>,
}

impl BigAr {
    fn new(instrs: u32) -> Self {
        let mut p = ProgramBuilder::new();
        // A long compute loop followed by one shared increment.
        let top = p.label();
        let done = p.label();
        p.li(Reg(2), 0).li(Reg(3), instrs as u64);
        p.bind(top)
            .branch(clear_isa::Cond::Ge, Reg(2), Reg(3), done)
            .addi(Reg(2), Reg(2), 1)
            .jmp(top)
            .bind(done)
            .ld(Reg(1), Reg(0), 0)
            .addi(Reg(1), Reg(1), 1)
            .st(Reg(0), 0, Reg(1))
            .xend();
        BigAr {
            addr: Addr::NULL,
            remaining: vec![],
            program: Arc::new(p.build()),
        }
    }
}

impl Workload for BigAr {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "big-ar".into(),
            ars: vec![ArSpec {
                id: ArId(0),
                name: "long".into(),
                mutability: Mutability::Immutable,
            }],
        }
    }
    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.addr = mem.alloc_words(1);
        self.remaining = vec![8; threads];
    }
    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        Some(ArInvocation {
            ar: ArId(0),
            program: Arc::clone(&self.program),
            args: vec![(Reg(0), self.addr.0)],
            think_cycles: 10,
            static_footprint: None,
        })
    }
    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let v = mem.load_word(self.addr);
        let want = 8 * self.remaining.len() as u64;
        (v == want)
            .then_some(())
            .ok_or_else(|| format!("counter {v} != {want}"))
    }
}

#[test]
fn in_core_speculation_bounds_ar_size_to_the_rob() {
    use clear_machine::SpeculationKind;
    // ~600 retired instructions per AR: exceeds the 352-entry ROB.
    let w = BigAr::new(200);
    let mut cfg = Preset::C.config(4, 3);
    cfg.seed = 5;
    cfg.speculation = SpeculationKind::InCore;
    let mut m = Machine::new(cfg, Box::new(w));
    let s = m.run();
    assert!(!s.timed_out);
    assert_eq!(s.commits(), 32);
    m.workload().validate(m.memory()).unwrap();
    // Every AR overflows the window: no speculative or CL commits at all.
    assert_eq!(
        s.commits_by_mode.speculative + s.commits_by_mode.nscl + s.commits_by_mode.scl,
        0,
        "oversized ARs cannot commit inside an in-core window: {:?}",
        s.commits_by_mode
    );
    assert_eq!(s.commits_by_mode.fallback, 32);
}

#[test]
fn htm_speculation_commits_the_same_ar_speculatively() {
    let w = BigAr::new(200);
    let mut cfg = Preset::C.config(4, 3);
    cfg.seed = 5;
    let mut m = Machine::new(cfg, Box::new(w));
    let s = m.run();
    assert!(s.commits_by_mode.fallback < 32, "HTM is not ROB-bounded");
    m.workload().validate(m.memory()).unwrap();
}

#[test]
fn in_core_small_ars_still_speculate() {
    use clear_machine::SpeculationKind;
    let mut cfg = Preset::B.config(4, 4);
    cfg.seed = 2;
    cfg.speculation = SpeculationKind::InCore;
    let mut m = Machine::new(cfg, Box::new(PrivateCounters::new(30)));
    let s = m.run();
    assert_eq!(s.commits_by_mode.speculative, 120);
    assert_eq!(s.aborts.total(), 0);
    m.workload().validate(m.memory()).unwrap();
}

#[test]
fn trace_records_the_clear_protocol_sequence() {
    use clear_machine::TraceEvent;
    let mut cfg = Preset::C.config(4, 4);
    cfg.seed = 42;
    let mut m = Machine::new(cfg, Box::new(SharedCounter::new(40)));
    m.enable_tracing();
    let stats = m.run();
    assert!(stats.commits_by_mode.nscl > 0);

    assert!(!m.trace().is_empty());
    // Somewhere: a conflict leads to failed mode, then an NS-CL decision,
    // then locks, then an NS-CL commit.
    let has = |f: &dyn Fn(&TraceEvent) -> bool| m.trace().records().any(|r| f(&r.event));
    assert!(has(&|e| matches!(e, TraceEvent::ConflictReceived { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::EnterFailedMode)));
    assert!(has(&|e| matches!(
        e,
        TraceEvent::Decision {
            mode: clear_core::RetryMode::NsCl,
            immutable: true,
            ..
        }
    )));
    assert!(has(&|e| matches!(e, TraceEvent::LockAcquired { .. })));
    assert!(has(&|e| matches!(
        e,
        TraceEvent::Commit {
            mode: clear_core::RetryMode::NsCl,
            retries: 1
        }
    )));

    // Per-core ordering: a Decision for NS-CL is followed (eventually) by
    // an NS-CL AttemptStart on the same core.
    for core in 0..4 {
        let evs: Vec<_> = m.trace().core_events(core).collect();
        for (i, e) in evs.iter().enumerate() {
            if let TraceEvent::Decision {
                mode: clear_core::RetryMode::NsCl,
                ..
            } = e
            {
                assert!(
                    evs[i..].iter().any(|e2| matches!(
                        e2,
                        TraceEvent::AttemptStart {
                            mode: clear_core::RetryMode::NsCl
                        }
                    )),
                    "NS-CL decision without NS-CL attempt on core {core}"
                );
            }
        }
    }
}

#[test]
fn tracing_disabled_by_default_and_does_not_change_results() {
    let mut cfg = Preset::C.config(4, 4);
    cfg.seed = 42;
    let mut a = Machine::new(cfg.clone(), Box::new(SharedCounter::new(40)));
    let sa = a.run();
    assert!(a.trace().is_empty());

    let mut b = Machine::new(cfg, Box::new(SharedCounter::new(40)));
    b.enable_tracing();
    let sb = b.run();
    assert_eq!(
        sa.total_cycles, sb.total_cycles,
        "tracing must not perturb timing"
    );
    assert_eq!(sa.aborts.total(), sb.aborts.total());
}
