//! Static-plan fast-path tests: discovery elision for proved-immutable
//! plans, the partial-discovery upgrade for likely-immutable plans, the
//! NS-CL soundness guard against a hostile analysis, lock-set containment,
//! and determinism of plan-driven runs.

use clear_core::{PlanAddr, PlanClass, StaticPlan, StaticPlanSet};
use clear_htm::AbortKind;
use clear_isa::{
    ArId, ArInvocation, ArSpec, Mutability, Program, ProgramBuilder, Reg, Workload, WorkloadMeta,
};
use clear_machine::{Machine, MachineConfig, Preset, RunStats, TraceEvent};
use clear_mem::{Addr, Memory};
use std::sync::Arc;

/// `mem[r0] += 1; mem[r1] += 1` — two statically-known lines.
fn two_counter_program() -> Arc<Program> {
    let mut p = ProgramBuilder::new();
    p.ld(Reg(2), Reg(0), 0)
        .addi(Reg(2), Reg(2), 1)
        .st(Reg(0), 0, Reg(2))
        .ld(Reg(3), Reg(1), 0)
        .addi(Reg(3), Reg(3), 1)
        .st(Reg(1), 0, Reg(3))
        .xend();
    Arc::new(p.build())
}

/// `mem[mem[r0]] += 1` — a pointer chase: the root slot at `r0` holds the
/// target address, so the footprint is only likely-immutable statically
/// and the dynamic assessment sees an indirection (S-CL territory).
fn pointer_chase_program() -> Arc<Program> {
    let mut p = ProgramBuilder::new();
    p.ld(Reg(1), Reg(0), 0)
        .ld(Reg(2), Reg(1), 0)
        .addi(Reg(2), Reg(2), 1)
        .st(Reg(1), 0, Reg(2))
        .xend();
    Arc::new(p.build())
}

/// N threads hammer the same two shared counters. The allocated addresses
/// are published through `placed` so tests can resolve plans themselves.
struct TwoCounters {
    addrs: [Addr; 2],
    placed: Arc<std::sync::OnceLock<[Addr; 2]>>,
    remaining: Vec<u32>,
    ops: u32,
    program: Arc<Program>,
}

impl TwoCounters {
    fn new(ops: u32) -> Self {
        TwoCounters {
            addrs: [Addr::NULL; 2],
            placed: Arc::new(std::sync::OnceLock::new()),
            remaining: vec![],
            ops,
            program: two_counter_program(),
        }
    }

    fn placement(&self) -> Arc<std::sync::OnceLock<[Addr; 2]>> {
        Arc::clone(&self.placed)
    }
}

impl Workload for TwoCounters {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "two-counters".into(),
            ars: vec![ArSpec {
                id: ArId(0),
                name: "inc2".into(),
                mutability: Mutability::Immutable,
            }],
        }
    }
    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.addrs = [mem.alloc_words(1), mem.alloc_words(1)];
        let _ = self.placed.set(self.addrs);
        self.remaining = vec![self.ops; threads];
    }
    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        Some(ArInvocation {
            ar: ArId(0),
            program: Arc::clone(&self.program),
            args: vec![(Reg(0), self.addrs[0].0), (Reg(1), self.addrs[1].0)],
            think_cycles: 15,
            static_footprint: None,
        })
    }
    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let want = self.ops as u64 * self.remaining.len() as u64;
        for &a in &self.addrs {
            let v = mem.load_word(a);
            if v != want {
                return Err(format!("counter at {a} is {v}, expected {want}"));
            }
        }
        Ok(())
    }
}

/// N threads chase the same pointer slot to the same target counter.
struct PointerChase {
    slot: Addr,
    target: Addr,
    remaining: Vec<u32>,
    ops: u32,
    program: Arc<Program>,
}

impl PointerChase {
    fn new(ops: u32) -> Self {
        PointerChase {
            slot: Addr::NULL,
            target: Addr::NULL,
            remaining: vec![],
            ops,
            program: pointer_chase_program(),
        }
    }
}

impl Workload for PointerChase {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "pointer-chase".into(),
            ars: vec![ArSpec {
                id: ArId(0),
                name: "chase".into(),
                mutability: Mutability::LikelyImmutable,
            }],
        }
    }
    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.slot = mem.alloc_words(1);
        self.target = mem.alloc_words(1);
        mem.store_word(self.slot, self.target.0);
        self.remaining = vec![self.ops; threads];
    }
    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        Some(ArInvocation {
            ar: ArId(0),
            program: Arc::clone(&self.program),
            args: vec![(Reg(0), self.slot.0)],
            think_cycles: 15,
            static_footprint: None,
        })
    }
    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let want = self.ops as u64 * self.remaining.len() as u64;
        let v = mem.load_word(self.target);
        if v != want {
            return Err(format!("target is {v}, expected {want}"));
        }
        if mem.load_word(self.slot) != self.target.0 {
            return Err("pointer slot was clobbered".into());
        }
        Ok(())
    }
}

/// The plan `clear_analysis::static_plan` would emit for the two-counter
/// program: both lines proved, both written.
fn two_counter_plan() -> StaticPlan {
    StaticPlan {
        class: PlanClass::Immutable,
        lock_set: vec![
            PlanAddr::Sym { reg: 0, delta: 0 },
            PlanAddr::Sym { reg: 1, delta: 0 },
        ],
        written: vec![
            PlanAddr::Sym { reg: 0, delta: 0 },
            PlanAddr::Sym { reg: 1, delta: 0 },
        ],
        root_slots: vec![],
        complete: true,
        bound_lines: 2,
        bound_written: 2,
    }
}

/// A deliberately wrong analysis: claims the two-counter region is proved
/// immutable with a one-line footprint, hiding the second counter.
fn hostile_plan() -> StaticPlan {
    StaticPlan {
        class: PlanClass::Immutable,
        lock_set: vec![PlanAddr::Sym { reg: 0, delta: 0 }],
        written: vec![PlanAddr::Sym { reg: 0, delta: 0 }],
        root_slots: vec![],
        complete: true,
        bound_lines: 1,
        bound_written: 1,
    }
}

/// The likely-immutable plan for the pointer chase: only the root slot is
/// statically resolvable.
fn chase_plan() -> StaticPlan {
    StaticPlan {
        class: PlanClass::LikelyImmutable,
        lock_set: vec![PlanAddr::Sym { reg: 0, delta: 0 }],
        written: vec![],
        root_slots: vec![PlanAddr::Sym { reg: 0, delta: 0 }],
        complete: false,
        bound_lines: 2,
        bound_written: 1,
    }
}

fn plan_set(plan: StaticPlan) -> Arc<StaticPlanSet> {
    let mut s = StaticPlanSet::new();
    s.insert(0, plan);
    Arc::new(s)
}

fn cfg_with(plans: Option<Arc<StaticPlanSet>>, seed: u64) -> MachineConfig {
    let mut cfg = Preset::C.config(4, 4);
    cfg.seed = seed;
    cfg.static_plans = plans;
    cfg
}

fn run_machine(cfg: MachineConfig, w: Box<dyn Workload>) -> (Machine, RunStats) {
    let mut m = Machine::new(cfg, w);
    let stats = m.run();
    (m, stats)
}

#[test]
fn proved_immutable_plan_elides_discovery_and_matches_baseline() {
    let (mb, base) = run_machine(cfg_with(None, 42), Box::new(TwoCounters::new(40)));
    let (mp, plan) = run_machine(
        cfg_with(Some(plan_set(two_counter_plan())), 42),
        Box::new(TwoCounters::new(40)),
    );
    for (m, s) in [(&mb, &base), (&mp, &plan)] {
        assert!(!s.timed_out);
        assert_eq!(s.commits(), 160);
        m.workload().validate(m.memory()).unwrap();
    }
    assert_eq!(base.discovery_runs_elided, 0);
    assert!(
        plan.discovery_runs_elided > 0,
        "contended proved-immutable AR should skip discovery"
    );
    assert_eq!(plan.static_plan_violations, 0, "the plan is correct");
    assert!(plan.commits_by_mode.nscl > 0);
    assert_eq!(
        mb.memory().words(),
        mp.memory().words(),
        "fast path must not change the final memory image"
    );
}

#[test]
fn plan_applies_both_reactively_and_eagerly() {
    let mut m = Machine::new(
        cfg_with(Some(plan_set(two_counter_plan())), 42),
        Box::new(TwoCounters::new(40)),
    );
    m.enable_tracing();
    let s = m.run();
    assert!(s.discovery_runs_elided > 0);
    let has_elide = |eager_want: bool| {
        m.trace().records().any(
            |r| matches!(r.event, TraceEvent::DiscoveryElided { eager, .. } if eager == eager_want),
        )
    };
    assert!(
        has_elide(false),
        "the first conflict should elide reactively in place of failed mode"
    );
    assert!(
        has_elide(true),
        "later fetches of a contended AR should apply the plan at fetch"
    );
}

#[test]
fn hostile_immutable_plan_cannot_commit_a_mutation() {
    let (m, s) = run_machine(
        cfg_with(Some(plan_set(hostile_plan())), 42),
        Box::new(TwoCounters::new(40)),
    );
    assert!(!s.timed_out);
    assert_eq!(s.commits(), 160);
    // Atomicity survived the lie: both counters have every increment.
    m.workload().validate(m.memory()).unwrap();
    assert!(
        s.static_plan_violations > 0,
        "the guard must catch the unlocked access"
    );
    assert!(s.aborts.get(AbortKind::PlanViolation) > 0);
    // Poisoning stops the fast path: violations cannot exceed the number
    // of cores that could be mid-plan when the first one fired.
    assert!(s.static_plan_violations <= 4);
}

#[test]
fn plan_lock_set_contains_observed_footprint() {
    let w = TwoCounters::new(40);
    let placed = w.placement();
    let mut m = Machine::new(
        cfg_with(Some(plan_set(two_counter_plan())), 42),
        Box::new(w),
    );
    m.enable_tracing();
    let s = m.run();
    assert!(s.discovery_runs_elided > 0);
    // Zero guard trips means every access of every plan-driven NS-CL
    // attempt hit a line the plan had locked: lock set ⊇ observed
    // footprint.
    assert_eq!(s.static_plan_violations, 0);
    // And the lines this workload ever locks — plan-driven or learned by
    // discovery — stay inside the plan's resolved lock set.
    let addrs = placed.get().expect("setup ran");
    let resolved = StaticPlan::resolve_lines(&two_counter_plan().lock_set, &|r: u8| {
        Some(addrs[r as usize].0)
    })
    .expect("plan resolves against the real placement");
    for r in m.trace().records() {
        if let TraceEvent::LockAcquired { line, .. } = r.event {
            assert!(
                resolved.contains(&line),
                "locked line {line} outside the plan lock set {resolved:?}"
            );
        }
    }
}

#[test]
fn likely_immutable_plan_shortens_discovery_to_root_confirmation() {
    let (mb, base) = run_machine(cfg_with(None, 42), Box::new(PointerChase::new(40)));
    let (mp, plan) = run_machine(
        cfg_with(Some(plan_set(chase_plan())), 42),
        Box::new(PointerChase::new(40)),
    );
    for (m, s) in [(&mb, &base), (&mp, &plan)] {
        assert!(!s.timed_out);
        assert_eq!(s.commits(), 160);
        m.workload().validate(m.memory()).unwrap();
    }
    assert_eq!(base.partial_discovery_runs, 0);
    assert!(
        plan.partial_discovery_runs > 0,
        "stable root slots should upgrade the S-CL retry"
    );
    assert_eq!(
        plan.discovery_runs_elided, 0,
        "no proved-immutable plan here"
    );
    assert_eq!(
        mb.memory().words(),
        mp.memory().words(),
        "partial discovery must not change the final memory image"
    );
}

#[test]
fn fast_path_is_deterministic_across_runs_and_sim_threads() {
    let run_with = |sim_threads: usize| {
        let mut cfg = cfg_with(Some(plan_set(two_counter_plan())), 7);
        cfg.sim_threads = sim_threads;
        run_machine(cfg, Box::new(TwoCounters::new(30)))
    };
    let (m1, a) = run_with(1);
    let (m2, b) = run_with(1);
    let (m3, c) = run_with(4);
    for s in [&a, &b, &c] {
        assert!(s.discovery_runs_elided > 0);
    }
    for (x, y) in [(&a, &b), (&a, &c)] {
        assert_eq!(x.total_cycles, y.total_cycles);
        assert_eq!(x.aborts.total(), y.aborts.total());
        assert_eq!(x.commits_by_mode, y.commits_by_mode);
        assert_eq!(x.discovery_runs_elided, y.discovery_runs_elided);
    }
    assert_eq!(m1.memory().words(), m2.memory().words());
    assert_eq!(m1.memory().words(), m3.memory().words());
}
