//! Determinism of intra-run parallel stepping: any `sim_threads` setting
//! must produce byte-identical simulation results; only the `par_batch_*`
//! counters may reveal whether batching was on, and even those must not
//! depend on the worker count.

use clear_machine::{Machine, MachineConfig, Preset, RunStats};
use clear_workloads::{by_name, Size};

fn run_with(cfg: MachineConfig, bench: &str) -> (RunStats, bool) {
    let w = by_name(bench, Size::Tiny, 7).expect("known benchmark");
    let mut m = Machine::new(cfg, w);
    let stats = m.run();
    let valid = m.workload().validate(m.memory()).is_ok();
    (stats, valid)
}

fn config(preset: Preset, cores: usize, threads: usize) -> MachineConfig {
    let mut cfg = preset.config(cores, 5);
    cfg.sim_threads = threads;
    cfg
}

/// Debug-render the stats with host-dependent wall time and the
/// mode-revealing batch counters zeroed.
fn normalized(mut s: RunStats) -> String {
    s.perf.run_wall_ns = 0;
    s.perf.par_batches = 0;
    s.perf.par_batch_steps = 0;
    s.perf.par_batch_max = 0;
    format!("{s:?}")
}

#[test]
fn parallel_stepping_matches_sequential_across_benches_and_widths() {
    for bench in ["arrayswap", "hashmap", "genome"] {
        for cores in [8usize, 80] {
            for preset in [Preset::B, Preset::C] {
                let (seq, seq_ok) = run_with(config(preset, cores, 1), bench);
                let (par, par_ok) = run_with(config(preset, cores, 2), bench);
                assert!(seq_ok && par_ok, "{bench}/{cores}/{preset}: invalid result");
                assert_eq!(
                    normalized(seq),
                    normalized(par),
                    "{bench} at {cores} cores ({preset}): threads=2 diverged"
                );
            }
        }
    }
}

#[test]
fn worker_count_does_not_change_anything_including_batch_counters() {
    let (mut a, _) = run_with(config(Preset::C, 80, 2), "arrayswap");
    let (mut b, _) = run_with(config(Preset::C, 80, 8), "arrayswap");
    a.perf.run_wall_ns = 0;
    b.perf.run_wall_ns = 0;
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn batches_form_on_wide_low_contention_runs() {
    let (par, ok) = run_with(config(Preset::C, 80, 2), "arrayswap");
    assert!(ok);
    assert!(
        par.perf.par_batches > 0,
        "an 80-core run should form at least one parallel batch"
    );
    assert!(par.perf.par_batch_steps >= 2 * par.perf.par_batches);
    assert!(par.perf.par_batch_max >= 2);
    let (seq, _) = run_with(config(Preset::C, 80, 1), "arrayswap");
    assert_eq!(seq.perf.par_batches, 0, "threads=1 must not batch");
    assert_eq!(seq.perf.steps, par.perf.steps, "step counts must mirror");
}

#[test]
fn shard_counters_surface_directory_occupancy() {
    let (s, _) = run_with(config(Preset::C, 8, 1), "hashmap");
    assert!(s.perf.shards > 0);
    assert!(s.perf.shard_lines >= s.perf.shards, "entries fill shards");
    assert!(s.perf.shard_lines_max <= s.perf.shard_lines);
    assert!(s.perf.shard_lines_max * s.perf.shards >= s.perf.shard_lines);
}
