//! Deterministic intra-run parallel stepping.
//!
//! # The batch rule
//!
//! The sequential scheduler pops cores in ascending `(clock, core_id)`
//! order. When several cores are tied at the minimum clock, their steps
//! execute back-to-back; if each of those steps is **local** — it touches
//! only the core's own state plus at most one directory shard, claims a
//! shard no other batch member claims, strictly advances the core's
//! clock, and performs no abort/commit/trace/RNG/global-memory effect —
//! then the steps commute and can run on worker threads simultaneously
//! with a byte-identical outcome.
//!
//! A batch is the maximal *prefix*, in pop order, of minimum-clock cores
//! whose next step classifies as local, cut at the first global step or
//! duplicate shard claim. Classification runs against the pre-batch state,
//! which is sound precisely because every admitted step is local: no
//! member can change state another member's classification or execution
//! reads.
//!
//! Local step kinds (mirroring the sequential paths they replace exactly):
//!
//! * **Think** with `until > clock` — a pure phase transition
//!   ([`Phase::Think`] handling in `step_core`);
//! * **Compute / taken-branch retirement** — VM plus own clock
//!   (`run_step`);
//! * **Store-queue forward** — a load served by the core's own
//!   speculative store buffer (`do_load`);
//! * **L1-hit load/store** in speculative non-failed mode: the probe shows
//!   `ServedBy::L1`, no lock holder and no remote impacts, so the apply
//!   touches only the own cache way and the line's directory entry —
//!   executed through [`LocalView::apply_hit`] against the claimed shard.
//!
//! Everything else — commits, aborts, lock acquisition, misses, conflict
//! resolution, fallback interaction, failed-mode discovery — stays on the
//! sequential path, which is also the only place the RNG, the trace, and
//! cross-core effects live.
//!
//! Worker threads are `std::thread::scope` bound (no external deps);
//! batches smaller than [`PAR_CUTOFF`] execute inline on the scheduler
//! thread, which produces the same bytes, so all counters are independent
//! of the worker count.

use super::*;
use clear_coherence::{LocalView, ServedBy};
use clear_mem::disjoint_muts;

/// Minimum batch size worth shipping to worker threads; below this the
/// batch executes inline (identical results, no spawn overhead).
const PAR_CUTOFF: usize = 8;

/// A classified local step, recorded at batch-formation time.
#[derive(Clone, Copy, Debug)]
enum LocalStep {
    /// `Phase::Think` expiring strictly in the future.
    Think { until: u64 },
    /// One VM step whose effect stays core-local; `shard` is the claimed
    /// directory shard for an L1-hit access (`None` for compute, branch
    /// and store-queue-forward steps).
    Exec { shard: Option<usize> },
}

/// One batch member's working set, handed to a worker thread.
struct LocalTask<'a> {
    core: &'a mut Core,
    clock: &'a mut u64,
    view: LocalView<'a>,
}

impl Machine {
    /// `true` when parallel batches may form at all: a worker budget of at
    /// least two, and an L1 latency of at least one cycle so every local
    /// step strictly advances its core's clock (a zero-latency hit would
    /// let the sequential scheduler re-pop the same core before later
    /// batch members, breaking the commutation argument). The
    /// limited-R/W-set backend disables batching wholesale: its tracker
    /// can turn any speculative access into a capacity abort — a global
    /// effect the local-step classifier cannot see.
    pub(super) fn batching_viable(&self) -> bool {
        self.sim_threads >= 2
            && self.config.coherence.lat_l1 >= 1
            && self.backend.rw_limits().is_none()
    }

    /// Attempts to form and execute one parallel batch starting at the
    /// scheduler minimum. Returns `true` if a batch of ≥ 2 steps ran (the
    /// heap is already re-keyed); `false` leaves the heap untouched for
    /// the sequential path.
    pub(super) fn try_parallel_batch(&mut self, sched: &mut CoreHeap) -> bool {
        let first = sched.peek().expect("caller checked");
        let clock = self.clocks[first];
        let Some(step) = self.classify_local(first, clock) else {
            return false;
        };
        let mut members: Vec<(usize, LocalStep)> = vec![(first, step)];
        let mut claims: Vec<usize> = Vec::new();
        if let LocalStep::Exec { shard: Some(s) } = step {
            claims.push(s);
        }
        sched.remove(first);
        while let Some(c) = sched.peek() {
            if self.clocks[c] != clock {
                break;
            }
            let Some(step) = self.classify_local(c, clock) else {
                break;
            };
            if let LocalStep::Exec { shard: Some(s) } = step {
                if claims.contains(&s) {
                    break;
                }
                claims.push(s);
            }
            sched.remove(c);
            members.push((c, step));
        }
        if members.len() < 2 {
            sched.push(first, clock);
            return false;
        }
        self.execute_batch(&members);
        for &(c, _) in &members {
            debug_assert!(self.clocks[c] > clock, "local steps must advance");
            sched.push(c, self.clocks[c]);
        }
        let n = members.len() as u64;
        // Mirror the sequential loop's per-step accounting (one step and
        // one successful heap re-key per member).
        self.perf.steps += n;
        self.perf.sched_updates += n;
        self.perf.par_batches += 1;
        self.perf.par_batch_steps += n;
        self.perf.par_batch_max = self.perf.par_batch_max.max(n);
        true
    }

    /// Classifies core `c`'s next step against current (pre-batch) state:
    /// `Some` iff it is provably local.
    fn classify_local(&self, c: usize, clock: u64) -> Option<LocalStep> {
        match self.phases[c] {
            // A think step with `until == clock` leaves the clock in place,
            // so the sequential scheduler would re-pop this core (now in
            // StartAttempt — global) before later batch members.
            Phase::Think { until } if until > clock => Some(LocalStep::Think { until }),
            Phase::Running => self.classify_running(c),
            _ => None,
        }
    }

    fn classify_running(&self, c: usize) -> Option<LocalStep> {
        let core = &self.cores[c];
        // Stalled operations retry through the sequential path; only plain
        // speculative execution outside failed-mode discovery is local
        // (NS-CL/S-CL/fallback and failed mode have global side channels).
        if core.pending.is_some() || core.mode != ExecMode::Speculative {
            return None;
        }
        if core.discovery.as_ref().is_some_and(|d| d.in_failed_mode()) {
            return None;
        }
        let vm = core.vm.as_ref()?;
        // Steps the sequential pre-checks would divert (caps, in-core
        // window overflow) stay sequential.
        if vm.retired() > self.config.attempt_instr_cap {
            return None;
        }
        if self.backend.speculation() == SpeculationKind::InCore
            && (vm.retired() > self.config.rob_size || vm.stores_retired() > self.config.sq_size)
        {
            return None;
        }
        match vm.peek_effect() {
            Effect::Compute { .. } | Effect::Branch { .. } => Some(LocalStep::Exec { shard: None }),
            Effect::Commit | Effect::Abort { .. } => None,
            Effect::Load { addr, .. } => {
                if self.fault(addr) {
                    return None;
                }
                let line = addr.line();
                if core
                    .discovery
                    .as_ref()
                    .is_some_and(|d| d.would_overflow(line))
                {
                    return None;
                }
                if !core.sq.is_empty() && core.sq.contains_key(&addr.0) {
                    // Store-to-load forward: no coherence traffic at all.
                    return Some(LocalStep::Exec { shard: None });
                }
                self.classify_probe(c, line, Access::Read)
            }
            Effect::Store { addr, .. } => {
                if self.fault(addr) {
                    return None;
                }
                let line = addr.line();
                if core
                    .discovery
                    .as_ref()
                    .is_some_and(|d| d.would_overflow(line))
                {
                    return None;
                }
                self.classify_probe(c, line, Access::Write)
            }
        }
    }

    fn classify_probe(&self, c: usize, line: LineAddr, access: Access) -> Option<LocalStep> {
        let p = self.coherence.probe(CoreId(c), line, access);
        if p.locked_by_other.is_some()
            || p.served_by != ServedBy::L1
            || !p.remote_impacts.is_empty()
        {
            return None;
        }
        Some(LocalStep::Exec {
            shard: Some(CoherenceSystem::shard_of(line)),
        })
    }

    /// Executes a formed batch: think transitions inline, VM steps through
    /// split per-core/per-shard views — on scoped worker threads when the
    /// batch is large enough — then merges the buffered L1-hit counts at
    /// the barrier.
    fn execute_batch(&mut self, members: &[(usize, LocalStep)]) {
        for &(c, step) in members {
            if let LocalStep::Think { until } = step {
                self.clocks[c] = until;
                self.phases[c] = Phase::StartAttempt;
            }
        }
        let exec: Vec<(usize, Option<usize>)> = members
            .iter()
            .filter_map(|&(c, step)| match step {
                LocalStep::Exec { shard } => Some((c, shard)),
                LocalStep::Think { .. } => None,
            })
            .collect();
        if exec.is_empty() {
            return;
        }
        let ids: Vec<usize> = exec.iter().map(|&(c, _)| c).collect();
        let views = self.coherence.split_local_views(&exec);
        let cores = disjoint_muts(&mut self.cores, &ids);
        let clocks = disjoint_muts(&mut self.clocks, &ids);
        let memory = &self.memory;
        let mut tasks: Vec<LocalTask<'_>> = views
            .into_iter()
            .zip(cores)
            .zip(clocks)
            .map(|((view, core), clock)| LocalTask { core, clock, view })
            .collect();
        if tasks.len() >= PAR_CUTOFF {
            let chunk = tasks.len().div_ceil(self.sim_threads);
            std::thread::scope(|s| {
                for chunk_tasks in tasks.chunks_mut(chunk) {
                    s.spawn(move || {
                        for t in chunk_tasks {
                            step_local(t, memory);
                        }
                    });
                }
            });
        } else {
            for t in &mut tasks {
                step_local(t, memory);
            }
        }
        let hits: u64 = tasks.iter().map(|t| t.view.l1_hits()).sum();
        drop(tasks);
        self.coherence.merge_local_hits(hits);
    }
}

/// Executes one classified-local VM step, mirroring the corresponding
/// sequential `run_step`/`do_load`/`do_store` paths instruction for
/// instruction.
fn step_local(task: &mut LocalTask<'_>, memory: &Memory) {
    let core = &mut *task.core;
    let effect = core.vm.as_mut().expect("vm armed").step();
    match effect {
        Effect::Compute { cycles } => {
            *task.clock += cycles.max(1) as u64;
        }
        Effect::Branch { cond_indirect, .. } => {
            *task.clock += 1;
            if let Some(d) = core.discovery.as_mut() {
                d.on_branch(cond_indirect);
            }
        }
        Effect::Load {
            addr,
            addr_indirect,
            ..
        } => {
            let line = addr.line();
            core.fp_cur.insert(line);
            if let Some(d) = core.discovery.as_mut() {
                d.on_access(line, false, addr_indirect);
                debug_assert!(!d.overflowed(), "classifier predicted no overflow");
            }
            if !core.sq.is_empty() {
                if let Some(&v) = core.sq.get(&addr.0) {
                    *task.clock += 1;
                    core.vm.as_mut().unwrap().finish_load(v);
                    return;
                }
            }
            let lat = task.view.apply_hit(line, Access::Read, TxTrack::Read);
            *task.clock += lat;
            let v = memory.load_word(addr);
            core.vm.as_mut().unwrap().finish_load(v);
        }
        Effect::Store {
            addr,
            value,
            addr_indirect,
        } => {
            let line = addr.line();
            core.fp_cur.insert(line);
            if let Some(d) = core.discovery.as_mut() {
                d.on_access(line, true, addr_indirect);
                debug_assert!(!d.overflowed(), "classifier predicted no overflow");
            }
            let lat = task.view.apply_hit(line, Access::Write, TxTrack::Write);
            *task.clock += lat;
            core.sq.insert(addr.0, value);
        }
        Effect::Commit | Effect::Abort { .. } => {
            unreachable!("classifier admitted a global step into a batch")
        }
    }
}
