//! Attempt lifecycle: starting attempts in each mode, aborting with the
//! Fig. 2 decision, committing, and the Fig. 1 footprint instrumentation.
use super::*;

impl Machine {
    pub(super) fn start_attempt(&mut self, c: usize) {
        let spin = self.config.timing.spin_interval;
        match self.cores[c].planned {
            RetryMode::Fallback => {
                if self.fallback.try_write(CoreId(c)) {
                    // Acquiring the lock writes its line, aborting every
                    // subscribed speculative AR through conflict detection.
                    let line = self.fallback.line();
                    let impacts = self.force_apply(c, line, Access::Write, TxTrack::None);
                    self.abort_victims(c, line, &impacts, AbortKind::OtherFallback);
                    self.arm_vm(c);
                    self.cores[c].mode = ExecMode::Fallback;
                    self.cores[c].attempt_started_at = self.clocks[c];
                    self.cores[c].first_attempt_at.get_or_insert(self.clocks[c]);
                    self.trace.record(
                        self.clocks[c],
                        c,
                        TraceEvent::AttemptStart {
                            mode: RetryMode::Fallback,
                        },
                    );
                    self.phases[c] = Phase::Running;
                    self.clocks[c] += self.config.timing.xbegin_cost;
                } else {
                    self.clocks[c] += spin;
                    self.stats.fallback_wait_cycles += spin;
                }
            }
            RetryMode::NsCl | RetryMode::SCl => {
                if self.fallback.writer().is_some() || !self.fallback.try_read(CoreId(c)) {
                    self.clocks[c] += spin;
                    self.stats.fallback_wait_cycles += spin;
                    return;
                }
                let mode = if self.cores[c].planned == RetryMode::NsCl {
                    ExecMode::NsCl
                } else {
                    ExecMode::SCl
                };
                // Refresh the S-CL lock list with lines the CRT has learned
                // about since the ALT was built (§5.1). The list reuses the
                // core's previous lock-list buffer.
                let mut lock_list = std::mem::take(&mut self.cores[c].lock_list);
                if lock_list.capacity() > 0 {
                    self.perf.allocs_avoided += 1;
                }
                {
                    let core = &mut self.cores[c];
                    let alt = core.alt.as_mut().expect("CL mode requires ALT");
                    alt.reset_lock_state();
                    if mode == ExecMode::SCl {
                        let lines: Vec<LineAddr> = alt.footprint();
                        for l in lines {
                            if core.crt.take(l) {
                                alt.mark_needs_locking(l);
                            }
                        }
                    }
                    alt.lock_list_into(&mut lock_list);
                }
                self.arm_vm(c);
                self.cores[c].attempt_started_at = self.clocks[c];
                self.cores[c].first_attempt_at.get_or_insert(self.clocks[c]);
                self.trace.record(
                    self.clocks[c],
                    c,
                    TraceEvent::AttemptStart {
                        mode: if mode == ExecMode::NsCl {
                            RetryMode::NsCl
                        } else {
                            RetryMode::SCl
                        },
                    },
                );
                let core = &mut self.cores[c];
                core.mode = mode;
                core.lock_list = lock_list;
                core.lock_wait_acc = 0;
                self.phases[c] = Phase::LockAcquire { idx: 0 };
                // S-CL checkpoints like a transaction; NS-CL does not.
                self.clocks[c] += if mode == ExecMode::SCl {
                    self.config.timing.xbegin_cost
                } else {
                    1
                };
            }
            RetryMode::SpeculativeRetry => {
                if self.fallback.writer().is_some() {
                    if !self.cores[c].explicit_fb_recorded {
                        self.stats.aborts.record(AbortKind::ExplicitFallback);
                        self.cores[c].explicit_fb_recorded = true;
                    }
                    self.clocks[c] += spin;
                    self.stats.fallback_wait_cycles += spin;
                    return;
                }
                self.cores[c].explicit_fb_recorded = false;
                self.arm_vm(c);
                self.cores[c].mode = ExecMode::Speculative;
                self.cores[c].attempt_started_at = self.clocks[c];
                self.cores[c].first_attempt_at.get_or_insert(self.clocks[c]);
                self.trace.record(
                    self.clocks[c],
                    c,
                    TraceEvent::AttemptStart {
                        mode: RetryMode::SpeculativeRetry,
                    },
                );
                // Subscribe to the fallback lock line (read set).
                let line = self.fallback.line();
                let impacts = self.force_apply(c, line, Access::Read, TxTrack::Read);
                debug_assert!(impacts.iter().all(|i| !i.is_tx_conflict(false)));
                // Arm discovery unless the ERT forbids it.
                if self.clear_enabled() {
                    let ar = self.cores[c].inv.as_ref().unwrap().ar.0;
                    let enabled = self.cores[c].ert.entry(ar).discovery_enabled();
                    if enabled {
                        let cc = *self.backend.clear().expect("clear_enabled implies config");
                        let mut d = Discovery::new(&cc, self.coherence.dir_geometry());
                        d.rearm();
                        self.cores[c].discovery = Some(d);
                    } else {
                        self.cores[c].discovery = None;
                    }
                } else {
                    self.cores[c].discovery = None;
                }
                self.phases[c] = Phase::Running;
                self.clocks[c] += self.config.timing.xbegin_cost;
            }
        }
    }

    /// Aborts core `c`'s current attempt: records statistics, rolls back
    /// all speculative and lock state, and applies the S-CL
    /// non-discoverability rule (§4.4.2).
    pub(super) fn perform_abort(&mut self, c: usize, kind: AbortKind) {
        // The abort penalty below advances `c`'s clock, possibly while `c`
        // is a *victim* of the core being stepped: tell the scheduler so
        // the heap re-keys this core after the current step.
        self.sched_touched.push(c);
        let span = self.clocks[c].saturating_sub(self.cores[c].attempt_started_at);
        self.trace
            .record(self.clocks[c], c, TraceEvent::Abort { kind, span });
        self.stats.aborts.record(kind);
        self.metrics_on_abort(kind);
        if let Some(inv) = self.cores[c].inv.as_ref() {
            self.stats.ar_stats.entry(inv.ar.0).or_default().aborts += 1;
        }
        let was_scl = self.cores[c].mode == ExecMode::SCl;
        if let Some(vm) = self.cores[c].vm.as_ref() {
            self.stats.instructions_wasted += vm.retired();
        }
        self.note_attempt_end(c, true);

        // Roll back all speculative and lock state.
        self.cores[c].sq.clear();
        self.cores[c].pending = None;
        self.cores[c].held_abort = None;
        self.cores[c].discovery = None;
        self.coherence.clear_tx(CoreId(c));
        self.coherence.unlock_all(CoreId(c));
        self.fallback.release_read(CoreId(c));
        // An explicit abort on the fallback path (a program-level retry
        // loop) must release the write lock too, or every other thread
        // deadlocks behind it.
        if self.fallback.writer() == Some(CoreId(c)) {
            self.fallback.release_write(CoreId(c));
        }

        // S-CL aborts for non-conflict reasons mark the AR non-discoverable
        // (§4.4.2).
        if was_scl
            && matches!(
                kind,
                AbortKind::Capacity | AbortKind::Explicit | AbortKind::Other
            )
        {
            if let Some(inv) = self.cores[c].inv.as_ref() {
                let ar = inv.ar.0;
                self.cores[c].ert.entry(ar).is_convertible = false;
            }
            self.cores[c].planned = RetryMode::SpeculativeRetry;
            self.cores[c].alt = None;
        }

        if kind.counts_toward_retry_limit() {
            self.cores[c].retries_counted += 1;
        }
        self.cores[c].retries_total += 1;

        // PowerTM: a transaction that failed once may enter power mode.
        if self.backend.acquires_power_token()
            && !self.cores[c].power
            && self.power_token.try_acquire(CoreId(c))
        {
            self.cores[c].power = true;
        }

        if self
            .backend
            .must_fall_back(&self.config.retry, self.cores[c].retries_counted)
        {
            self.cores[c].planned = RetryMode::Fallback;
        }

        let penalty = self.config.timing.abort_penalty + self.jitter();
        self.clocks[c] += penalty;
        self.phases[c] = Phase::StartAttempt;
    }

    /// Fig. 1 instrumentation: called at the end of every attempt.
    pub(super) fn note_attempt_end(&mut self, c: usize, aborting: bool) {
        let core = &mut self.cores[c];
        if core.retries_total == 0 {
            if aborting {
                core.fp_first = Some(core.fp_cur.clone());
            }
        } else if core.retries_total == 1 {
            if let Some(first) = core.fp_first.take() {
                self.stats.retried_ars += 1;
                // The aborted first attempt may have been truncated at the
                // conflict, so "same footprint" is observed as: everything
                // it did access is accessed again by the retry, and the
                // retry's footprint is small (Fig. 1's ≤ 32 lines).
                if core.fp_cur.len() <= 32 && first.is_subset(&core.fp_cur) {
                    self.stats.immutable_small_retries += 1;
                }
            }
        }
    }

    /// Failed-mode discovery reached the end of the AR: assess, decide the
    /// retry mode (Fig. 2), then complete the held abort.
    pub(super) fn decision_abort(&mut self, c: usize) {
        let kind = self.cores[c]
            .held_abort
            .take()
            .unwrap_or(AbortKind::MemoryConflict);
        let discovery = self.cores[c].discovery.take();
        if let Some(d) = discovery {
            let assessment = d.assess(|fp| self.coherence.fits_locked(fp));
            let ar = self.cores[c].inv.as_ref().unwrap().ar.0;
            {
                let e = self.cores[c].ert.entry(ar);
                e.is_convertible = assessment.lockable;
                e.is_immutable = assessment.immutable;
            }
            let mode = decide(&assessment);
            self.trace.record(
                self.clocks[c],
                c,
                TraceEvent::Decision {
                    ar: clear_isa::ArId(ar),
                    mode,
                    footprint: assessment.footprint.len(),
                    immutable: assessment.immutable,
                },
            );
            match mode {
                RetryMode::NsCl => {
                    let mut alt = d.into_alt();
                    alt.mark_all_needs_locking();
                    self.cores[c].alt = Some(alt);
                    self.cores[c].planned = RetryMode::NsCl;
                    self.cores[c].plan_nscl = false;
                }
                RetryMode::SCl => {
                    let mut alt = d.into_alt();
                    // The paper's choice locks the write set plus CRT reads
                    // (added at attempt start); the rejected "lock all"
                    // alternative is kept as an ablation (§4.4.2).
                    if self.backend.clear().map(|cc| cc.scl_lock_policy)
                        == Some(clear_core::SclLockPolicy::AllAccessed)
                    {
                        alt.mark_all_needs_locking();
                    } else if !self.cores[c].plan_roots.is_empty() && !self.cores[c].plan_root_dirty
                    {
                        // Partial-discovery confirmation succeeded: the
                        // likely-immutable plan's root slots stayed stable,
                        // so lock the whole learned footprint. Still S-CL
                        // (not NS-CL): a concurrent writer may invalidate a
                        // root between this decision and the retry, and
                        // S-CL keeps the abort escape hatch.
                        alt.mark_all_needs_locking();
                        self.stats.partial_discovery_runs += 1;
                    }
                    self.cores[c].alt = Some(alt);
                    self.cores[c].planned = RetryMode::SCl;
                }
                _ => {
                    self.cores[c].planned = RetryMode::SpeculativeRetry;
                    self.cores[c].alt = None;
                }
            }
        }
        self.perform_abort(c, kind);
    }

    pub(super) fn commit(&mut self, c: usize) {
        self.note_attempt_end(c, false);
        let mode = self.cores[c].mode;
        self.trace.record(
            self.clocks[c],
            c,
            TraceEvent::Commit {
                mode: mode.commit_bucket(),
                retries: self.cores[c].retries_total,
            },
        );
        // Publish buffered stores straight out of the store queue (each
        // word address is distinct, so drain order is unobservable).
        if !self.cores[c].sq.is_empty() {
            self.perf.allocs_avoided += 1;
        }
        for (word_addr, value) in self.cores[c].sq.drain() {
            self.memory.store_word(Addr(word_addr), value);
        }
        self.coherence.clear_tx(CoreId(c));
        match mode {
            ExecMode::SCl | ExecMode::NsCl => {
                self.coherence.unlock_all(CoreId(c));
                self.fallback.release_read(CoreId(c));
            }
            ExecMode::Fallback => self.fallback.release_write(CoreId(c)),
            ExecMode::Speculative => {}
        }
        if self.cores[c].power {
            self.power_token.release(CoreId(c));
            self.cores[c].power = false;
        }
        if self.clear_enabled() {
            let ar = self.cores[c].inv.as_ref().unwrap().ar.0;
            self.cores[c].ert.entry(ar).decay_sq_full();
        }
        self.stats.commits_by_mode.record(mode.commit_bucket());
        if let Some(inv) = self.cores[c].inv.as_ref() {
            let e = self.stats.ar_stats.entry(inv.ar.0).or_default();
            e.commits += 1;
            e.by_mode.record(mode.commit_bucket());
        }
        if mode != ExecMode::Fallback {
            *self
                .stats
                .commits_by_retries
                .entry(self.cores[c].retries_total)
                .or_insert(0) += 1;
        }
        if let Some(vm) = self.cores[c].vm.as_ref() {
            self.stats.instructions_retired += vm.retired();
        }
        self.metrics_on_commit(c, mode.commit_bucket());
        let core = &mut self.cores[c];
        core.discovery = None;
        core.alt = None;
        core.inv = None;
        core.vm = None;
        core.plan_nscl = false;
        self.phases[c] = Phase::Idle;
        self.clocks[c] += self.config.timing.commit_cost;
    }

    /// The learned footprint exceeded the ALT (assessment 1, §4.1): mark
    /// the AR non-convertible; abort immediately if already failed,
    /// otherwise just disarm discovery and let the attempt continue.
    pub(super) fn on_discovery_overflow(&mut self, c: usize) {
        let ar = self.cores[c].inv.as_ref().unwrap().ar.0;
        self.cores[c].ert.entry(ar).is_convertible = false;
        let failed = self.in_failed_mode(c);
        if failed {
            let kind = self.cores[c]
                .held_abort
                .take()
                .unwrap_or(AbortKind::Capacity);
            self.perform_abort(c, kind);
        } else {
            self.cores[c].discovery = None;
        }
    }
}
