//! Machine-side metrics collection: lightweight hooks on the attempt /
//! commit / abort / lock paths feeding a [`clear_metrics`] registry.
//!
//! Collection is strictly opt-in ([`Machine::enable_metrics`]) and records
//! only simulated-deterministic values (cycles, counts — never wall-clock
//! time), so an enabled registry snapshot is byte-reproducible across
//! hosts, worker counts and `sim_threads` modes, and a disabled machine
//! pays nothing but a branch per hook. Every hook sits on a sequential
//! path of the run loop — commits, aborts and lock acquisitions are never
//! executed inside parallel step batches — so no synchronization is
//! needed.

use super::*;
use clear_isa::Mutability;
use clear_metrics::{families, MetricsRegistry};

/// The static mutability class of an AR as a metric label (Table 1
/// taxonomy; the serve loop's "per AR class" percentiles key on this).
fn class_label(m: Mutability) -> &'static str {
    match m {
        Mutability::Immutable => "immutable",
        Mutability::LikelyImmutable => "likely-immutable",
        Mutability::Mutable => "mutable",
    }
}

/// A [`RetryMode`] as a metric label.
fn mode_label(mode: RetryMode) -> &'static str {
    match mode {
        RetryMode::SpeculativeRetry => "speculative",
        RetryMode::NsCl => "nscl",
        RetryMode::SCl => "scl",
        RetryMode::Fallback => "fallback",
    }
}

/// Metrics state carried by an enabled machine.
pub(super) struct MachineMetrics {
    registry: MetricsRegistry,
    /// AR id → static mutability class, from the workload's metadata.
    ar_class: FxHashMap<u32, &'static str>,
    /// The speculation backend's stable name, stamped on every
    /// time-to-commit sample.
    backend: &'static str,
}

impl MachineMetrics {
    fn new(backend: &'static str, ar_class: FxHashMap<u32, &'static str>) -> Self {
        MachineMetrics {
            registry: MetricsRegistry::new(),
            ar_class,
            backend,
        }
    }

    fn on_commit(&mut self, mode: RetryMode, ttc: u64, ar: Option<u32>) {
        let mode = mode_label(mode);
        self.registry.observe(
            families::TTC_CYCLES,
            &[("mode", mode), ("backend", self.backend)],
            ttc,
        );
        if let Some(class) = ar.and_then(|id| self.ar_class.get(&id)) {
            self.registry
                .observe(families::TTC_CLASS_CYCLES, &[("class", class)], ttc);
        }
        self.registry.inc(families::COMMITS, &[("mode", mode)], 1);
    }

    fn on_abort(&mut self, kind: AbortKind) {
        let cause = kind.to_string();
        self.registry.inc(families::ABORTS, &[("cause", &cause)], 1);
    }

    fn on_locks_acquired(&mut self, wait_cycles: u64) {
        self.registry
            .observe(families::LOCK_WAIT_CYCLES, &[], wait_cycles);
    }
}

impl Machine {
    /// Enables metrics collection (see [`clear_metrics`]). Call before
    /// [`Machine::run`]; the registry fills during the run and finalizes
    /// with shard-occupancy gauges and the simulator perf counters. The
    /// registry stores only simulated-deterministic values, so snapshots
    /// are byte-identical across hosts and thread counts (two multi-
    /// threaded runs agree on the `par_batch_*` gauges too, exactly as
    /// [`PerfCounters`] documents).
    pub fn enable_metrics(&mut self) {
        let mut ar_class = FxHashMap::default();
        for ar in self.workload.meta().ars {
            ar_class.insert(ar.id.0, class_label(ar.mutability));
        }
        self.metrics = Some(Box::new(MachineMetrics::new(self.backend.name(), ar_class)));
    }

    /// The collected metrics (`None` unless [`Machine::enable_metrics`]
    /// was called).
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref().map(|m| &m.registry)
    }

    /// Takes the collected metrics out of the machine, for merging across
    /// runs/batches (`None` unless enabled).
    pub fn take_metrics(&mut self) -> Option<MetricsRegistry> {
        self.metrics.take().map(|m| m.registry)
    }

    /// Commit hook: time-to-commit histograms (per mode × backend and per
    /// AR class) plus the per-mode commit counter. `ttc` spans from the
    /// first attempt of the invocation (retries and back-off included) to
    /// the committing step.
    pub(super) fn metrics_on_commit(&mut self, c: usize, mode: RetryMode) {
        if self.metrics.is_none() {
            return;
        }
        let started = self.cores[c].first_attempt_at.unwrap_or(self.clocks[c]);
        let ttc = self.clocks[c].saturating_sub(started);
        let ar = self.cores[c].inv.as_ref().map(|inv| inv.ar.0);
        self.metrics
            .as_mut()
            .expect("checked above")
            .on_commit(mode, ttc, ar);
    }

    /// Abort hook: the abort-cause taxonomy counter.
    pub(super) fn metrics_on_abort(&mut self, kind: AbortKind) {
        if let Some(mx) = self.metrics.as_mut() {
            mx.on_abort(kind);
        }
    }

    /// Lock-acquisition hook: one lock-wait sample per acquired conflict
    /// group (the spin cycles accumulated while the group was contended).
    pub(super) fn metrics_on_locks_acquired(&mut self, wait_cycles: u64) {
        if let Some(mx) = self.metrics.as_mut() {
            mx.on_locks_acquired(wait_cycles);
        }
    }

    /// Run-end hook: simulator perf counters as gauges (wall-clock time
    /// excluded by design) and the coherence layer's per-shard occupancy /
    /// lock-traffic profile.
    pub(super) fn metrics_on_finalize(&mut self) {
        if self.metrics.is_none() {
            return;
        }
        let perf = self.perf;
        let lrws_reads = self.stats.lrws_read_capacity_aborts;
        let lrws_writes = self.stats.lrws_write_capacity_aborts;
        // Only exported when static plans are configured, so runs without
        // them keep their metrics snapshots byte-identical.
        let plan_counters = self.config.static_plans.is_some().then_some([
            ("discovery_runs_elided", self.stats.discovery_runs_elided),
            ("partial_discovery_runs", self.stats.partial_discovery_runs),
            ("static_plan_violations", self.stats.static_plan_violations),
        ]);
        let profiles: Vec<clear_coherence::ShardProfile> =
            self.coherence.shard_profiles().collect();
        let reg = &mut self.metrics.as_mut().expect("checked above").registry;
        for (counter, value) in [
            ("steps", perf.steps),
            ("sched_updates", perf.sched_updates),
            ("coherence_requests", perf.coherence_requests),
            ("allocs_avoided", perf.allocs_avoided),
            ("trace_events_recorded", perf.trace_events_recorded),
            ("trace_events_dropped", perf.trace_events_dropped),
            ("shards", perf.shards),
            ("shard_lines", perf.shard_lines),
            ("shard_lines_max", perf.shard_lines_max),
            ("par_batches", perf.par_batches),
            ("par_batch_steps", perf.par_batch_steps),
            ("par_batch_max", perf.par_batch_max),
            ("lrws_read_capacity_aborts", lrws_reads),
            ("lrws_write_capacity_aborts", lrws_writes),
        ] {
            reg.set_gauge(families::SIM_PERF, &[("counter", counter)], value);
        }
        for (counter, value) in plan_counters.into_iter().flatten() {
            reg.set_gauge(families::SIM_PERF, &[("counter", counter)], value);
        }
        for p in profiles {
            let shard = p.shard.to_string();
            let labels: [(&str, &str); 1] = [("shard", &shard)];
            reg.set_gauge(families::SHARD_LINES, &labels, p.lines);
            if p.locks > 0 {
                reg.inc(families::SHARD_LOCKS, &labels, p.locks);
            }
            if p.lock_nacks > 0 {
                reg.inc(families::SHARD_LOCK_NACKS, &labels, p.lock_nacks);
            }
        }
    }
}
