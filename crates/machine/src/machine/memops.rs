//! Per-instruction execution: the run loop body, loads and stores routed
//! through the store queue, discovery, coherence and conflict policy, and
//! simulated-fault handling.
use super::*;

impl Machine {
    pub(super) fn in_failed_mode(&self, c: usize) -> bool {
        self.cores[c]
            .discovery
            .as_ref()
            .map(|d| d.in_failed_mode())
            .unwrap_or(false)
    }

    pub(super) fn run_step(&mut self, c: usize) {
        let before = self.clocks[c];
        // Retry a stalled memory operation first.
        if let Some(p) = self.cores[c].pending.take() {
            match p {
                PendingOp::Load { addr, indirect } => self.do_load(c, addr, indirect),
                PendingOp::Store {
                    addr,
                    value,
                    indirect,
                } => self.do_store(c, addr, value, indirect),
            }
        } else {
            // Safety caps.
            let retired = self.cores[c].vm.as_ref().map(|v| v.retired()).unwrap_or(0);
            if self.in_failed_mode(c) && retired > self.config.failed_instr_cap {
                let kind = self.cores[c].held_abort.take().unwrap_or(AbortKind::Other);
                self.perform_abort(c, kind);
                return;
            }
            assert!(
                retired <= self.config.attempt_instr_cap,
                "attempt instruction cap exceeded: non-terminating AR (workload bug?)"
            );
            // In-core (SLE) speculation: the ROB delimits the speculative
            // window, so speculative attempts and S-CL alike abort when the
            // AR outgrows it (§4.1 assessment 1); the AR is then
            // non-convertible.
            if self.backend.speculation() == SpeculationKind::InCore
                && matches!(self.cores[c].mode, ExecMode::Speculative | ExecMode::SCl)
            {
                let vm = self.cores[c].vm.as_ref().expect("vm armed");
                if vm.retired() > self.config.rob_size || vm.stores_retired() > self.config.sq_size
                {
                    let ar = self.cores[c].inv.as_ref().unwrap().ar.0;
                    self.cores[c].ert.entry(ar).is_convertible = false;
                    self.cores[c].discovery = None;
                    self.cores[c].planned = RetryMode::SpeculativeRetry;
                    self.cores[c].alt = None;
                    let kind = self.cores[c]
                        .held_abort
                        .take()
                        .unwrap_or(AbortKind::Capacity);
                    self.perform_abort(c, kind);
                    return;
                }
            }
            let effect = self.cores[c].vm.as_mut().expect("vm armed").step();
            match effect {
                Effect::Compute { cycles } => {
                    self.clocks[c] += cycles.max(1) as u64;
                }
                Effect::Branch { cond_indirect, .. } => {
                    self.clocks[c] += 1;
                    if let Some(d) = self.cores[c].discovery.as_mut() {
                        d.on_branch(cond_indirect);
                    }
                }
                Effect::Load {
                    addr,
                    addr_indirect,
                    ..
                } => self.do_load(c, addr, addr_indirect),
                Effect::Store {
                    addr,
                    value,
                    addr_indirect,
                } => self.do_store(c, addr, value, addr_indirect),
                Effect::Commit => {
                    self.clocks[c] += 1;
                    if self.cores[c].held_abort.is_some() {
                        self.decision_abort(c);
                    } else {
                        self.commit(c);
                    }
                    return;
                }
                Effect::Abort { .. } => {
                    self.clocks[c] += 1;
                    let kind = self.cores[c]
                        .held_abort
                        .take()
                        .unwrap_or(AbortKind::Explicit);
                    self.perform_abort(c, kind);
                    return;
                }
            }
        }
        // Account failed-mode execution time (Fig. 8 overlay).
        if self.in_failed_mode(c) {
            let spent = self.clocks[c] - before;
            self.stats.discovery_failed_cycles += spent;
        }
    }

    /// Admits `line` into the bounded read/write-set buffers when the
    /// backend limits them ([`SpeculationBackend::rw_limits`]); a no-op
    /// `true` otherwise. Returns `false` when the access overflowed a
    /// buffer: the attempt has been capacity-aborted and the caller must
    /// stop executing it.
    fn lrws_track(&mut self, c: usize, line: LineAddr, is_write: bool) -> bool {
        let Some(t) = self.cores[c].lrws.as_mut() else {
            return true;
        };
        match t.track(line, is_write) {
            Ok(()) => true,
            Err(over) => {
                match over {
                    RwSetOverflow::Reads => self.stats.lrws_read_capacity_aborts += 1,
                    RwSetOverflow::Writes => self.stats.lrws_write_capacity_aborts += 1,
                }
                self.perform_abort(c, AbortKind::Capacity);
                false
            }
        }
    }

    pub(super) fn fault(&self, addr: Addr) -> bool {
        addr == Addr::NULL || !addr.is_word_aligned()
    }

    pub(super) fn handle_fault(&mut self, c: usize, addr: Addr) {
        match self.cores[c].mode {
            ExecMode::Fallback | ExecMode::NsCl => panic!(
                "fault at {addr} in non-speculative mode: workload bug (mode {:?})",
                self.cores[c].mode
            ),
            _ => {
                let kind = self.cores[c].held_abort.take().unwrap_or(AbortKind::Other);
                self.perform_abort(c, kind);
            }
        }
    }

    pub(super) fn do_load(&mut self, c: usize, addr: Addr, indirect: bool) {
        if self.fault(addr) {
            self.handle_fault(c, addr);
            return;
        }
        let line = addr.line();
        self.cores[c].fp_cur.insert(line);
        if let Some(d) = self.cores[c].discovery.as_mut() {
            d.on_access(line, false, indirect);
            if d.overflowed() {
                self.on_discovery_overflow(c);
                if self.phases[c] != Phase::Running {
                    return;
                }
            }
        }

        // Store-to-load forwarding from the speculative store buffer (the
        // emptiness check skips the hash for the common no-prior-store case).
        if !self.cores[c].sq.is_empty() {
            if let Some(&v) = self.cores[c].sq.get(&addr.0) {
                self.clocks[c] += 1;
                self.cores[c].vm.as_mut().unwrap().finish_load(v);
                return;
            }
        }

        match self.cores[c].mode {
            ExecMode::NsCl => {
                // Plan-driven NS-CL trusts an analyzer, not a discovery run:
                // verify the lock before touching memory and bail to the
                // dynamic path on a miss. Discovery-built ALTs are exact, so
                // the debug assertion below stays for them.
                if self.cores[c].plan_nscl && self.coherence.locked_by(line) != Some(CoreId(c)) {
                    self.plan_violation(c);
                    return;
                }
                debug_assert_eq!(
                    self.coherence.locked_by(line),
                    Some(CoreId(c)),
                    "NS-CL accessed an unlocked line: immutability violated"
                );
                let v = self.memory.load_word(addr);
                self.clocks[c] += 1;
                self.cores[c].vm.as_mut().unwrap().finish_load(v);
            }
            ExecMode::SCl if self.coherence.locked_by(line) == Some(CoreId(c)) => {
                let v = self.memory.load_word(addr);
                self.clocks[c] += 1;
                self.cores[c].vm.as_mut().unwrap().finish_load(v);
            }
            ExecMode::Speculative if self.in_failed_mode(c) => {
                // Non-aborting read: no coherence state change (§5.1).
                let lat = self.coherence.read_untracked(CoreId(c), line);
                let v = self.memory.load_word(addr);
                self.clocks[c] += lat;
                self.cores[c].vm.as_mut().unwrap().finish_load(v);
            }
            mode => {
                // Limited-R/W-set backend: admit the line into the bounded
                // read buffer before issuing the access; overflow is a
                // capacity abort (the fallback path is never tracked, so it
                // always makes progress).
                if mode == ExecMode::Speculative && !self.lrws_track(c, line, false) {
                    return;
                }
                let probe = self.coherence.probe(CoreId(c), line, Access::Read);
                if let Some(_holder) = probe.locked_by_other {
                    if mode == ExecMode::SCl {
                        // Non-locking S-CL load reaching a locked line is
                        // NACKed and aborts (§4.4.2, Fig. 5).
                        self.perform_abort(c, AbortKind::Nacked);
                    } else {
                        // Retried request (Fig. 6): requester re-sends.
                        self.cores[c].pending = Some(PendingOp::Load { addr, indirect });
                        self.clocks[c] += self.config.timing.spin_interval;
                        self.stats.pending_stall_cycles += self.config.timing.spin_interval;
                    }
                    return;
                }
                // Collect conflicting victims into the reused scratch list.
                let mut victims = std::mem::take(&mut self.scratch_victims);
                victims.clear();
                for i in probe
                    .remote_impacts
                    .iter()
                    .filter(|i| i.is_tx_conflict(false))
                {
                    victims.push(self.tx_info(i.core.0));
                }
                let nacked = !victims.is_empty() && {
                    self.perf.allocs_avoided += 1;
                    let me = self.tx_info(c);
                    self.backend.resolve(me, &victims) == Resolution::NackRequester
                };
                self.scratch_victims = victims;
                if nacked {
                    if mode == ExecMode::Fallback {
                        // Fallback cannot abort; force through.
                    } else {
                        self.perform_abort(c, AbortKind::Nacked);
                        return;
                    }
                }
                let tx = if mode == ExecMode::Fallback {
                    TxTrack::None
                } else {
                    TxTrack::Read
                };
                // Coherence state is unchanged since the probe, so the
                // apply can consume it instead of re-probing.
                match self
                    .coherence
                    .apply_probed(CoreId(c), line, Access::Read, tx, probe)
                {
                    Ok(ok) => {
                        self.clocks[c] += ok.latency;
                        // Read conflicts: remote write-set holders abort.
                        // Filtered in place — the apply result is consumed,
                        // not copied.
                        let mut conflicts = ok.remote_impacts;
                        if !conflicts.is_empty() {
                            self.perf.allocs_avoided += 1;
                            conflicts.retain(|i| i.is_tx_conflict(false));
                        }
                        self.abort_victims(c, line, &conflicts, AbortKind::MemoryConflict);
                        let v = self.memory.load_word(addr);
                        self.cores[c].vm.as_mut().unwrap().finish_load(v);
                    }
                    Err(LockFail::Capacity) => {
                        if mode == ExecMode::Fallback {
                            // Uncached access; cannot abort.
                            self.clocks[c] += self.config.coherence.lat_mem;
                            let v = self.memory.load_word(addr);
                            self.cores[c].vm.as_mut().unwrap().finish_load(v);
                        } else {
                            self.perform_abort(c, AbortKind::Capacity);
                        }
                    }
                    Err(LockFail::LockedBy(_)) => unreachable!(),
                }
            }
        }
    }

    pub(super) fn do_store(&mut self, c: usize, addr: Addr, value: u64, indirect: bool) {
        if self.fault(addr) {
            self.handle_fault(c, addr);
            return;
        }
        let line = addr.line();
        self.cores[c].fp_cur.insert(line);
        // Partial-discovery confirmation for a likely-immutable plan: a
        // store into a root slot means the footprint roots are not stable
        // after all, so the S-CL lock-all upgrade is off.
        if !self.cores[c].plan_roots.is_empty() && self.cores[c].plan_roots.contains(&line) {
            self.cores[c].plan_root_dirty = true;
        }
        if let Some(d) = self.cores[c].discovery.as_mut() {
            d.on_access(line, true, indirect);
            let sq_over = d.in_failed_mode() && d.stores_in_failed() > self.config.sq_size;
            if sq_over {
                d.on_sq_overflow();
                let ar = self.cores[c].inv.as_ref().unwrap().ar.0;
                self.cores[c].ert.entry(ar).bump_sq_full();
                let kind = self.cores[c]
                    .held_abort
                    .take()
                    .unwrap_or(AbortKind::Capacity);
                self.perform_abort(c, kind);
                return;
            }
            if d.overflowed() {
                self.on_discovery_overflow(c);
                if self.phases[c] != Phase::Running {
                    return;
                }
            }
        }

        match self.cores[c].mode {
            ExecMode::Fallback => {
                let probe = self.coherence.probe(CoreId(c), line, Access::Write);
                if probe.locked_by_other.is_some() {
                    self.cores[c].pending = Some(PendingOp::Store {
                        addr,
                        value,
                        indirect,
                    });
                    self.clocks[c] += self.config.timing.spin_interval;
                    self.stats.pending_stall_cycles += self.config.timing.spin_interval;
                    return;
                }
                let mut conflicts = self.force_apply(c, line, Access::Write, TxTrack::None);
                if !conflicts.is_empty() {
                    self.perf.allocs_avoided += 1;
                    conflicts.retain(|i| i.is_tx_conflict(true));
                }
                self.abort_victims(c, line, &conflicts, AbortKind::MemoryConflict);
                self.memory.store_word(addr, value);
            }
            ExecMode::NsCl if self.cores[c].plan_nscl => {
                // Plan-driven NS-CL trusts an analyzer, not a discovery
                // run, so the attempt must stay abortable until the guard
                // has seen every access: verify the lock before anything
                // else and buffer the store in the SQ (store-to-load
                // forwarding above keeps it visible to this core). A guard
                // trip then rolls the whole attempt back; commit drains the
                // buffer exactly like S-CL.
                if self.coherence.locked_by(line) != Some(CoreId(c)) {
                    self.plan_violation(c);
                    return;
                }
                self.cores[c].sq.insert(addr.0, value);
                self.clocks[c] += 1;
            }
            ExecMode::NsCl => {
                debug_assert_eq!(
                    self.coherence.locked_by(line),
                    Some(CoreId(c)),
                    "NS-CL stored to an unlocked line: immutability violated"
                );
                self.memory.store_word(addr, value);
                self.clocks[c] += 1;
            }
            ExecMode::SCl if self.coherence.locked_by(line) == Some(CoreId(c)) => {
                // Locked line: conflict-free, but S-CL stays speculative, so
                // the data waits in the store buffer.
                self.cores[c].sq.insert(addr.0, value);
                self.clocks[c] += 1;
            }
            ExecMode::Speculative if self.in_failed_mode(c) => {
                // Failed mode: stores stay in the SQ, no coherence traffic.
                self.cores[c].sq.insert(addr.0, value);
                self.clocks[c] += 1;
            }
            mode => {
                // Limited-R/W-set backend: the write buffer bounds the
                // speculative write set.
                if mode == ExecMode::Speculative && !self.lrws_track(c, line, true) {
                    return;
                }
                let probe = self.coherence.probe(CoreId(c), line, Access::Write);
                if let Some(_holder) = probe.locked_by_other {
                    if mode == ExecMode::SCl {
                        self.perform_abort(c, AbortKind::Nacked);
                    } else {
                        self.cores[c].pending = Some(PendingOp::Store {
                            addr,
                            value,
                            indirect,
                        });
                        self.clocks[c] += self.config.timing.spin_interval;
                        self.stats.pending_stall_cycles += self.config.timing.spin_interval;
                    }
                    return;
                }
                // Collect conflicting victims into the reused scratch list.
                let mut victims = std::mem::take(&mut self.scratch_victims);
                victims.clear();
                for i in probe
                    .remote_impacts
                    .iter()
                    .filter(|i| i.is_tx_conflict(true))
                {
                    victims.push(self.tx_info(i.core.0));
                }
                let nacked = !victims.is_empty() && {
                    self.perf.allocs_avoided += 1;
                    let me = self.tx_info(c);
                    self.backend.resolve(me, &victims) == Resolution::NackRequester
                };
                self.scratch_victims = victims;
                if nacked {
                    self.perform_abort(c, AbortKind::Nacked);
                    return;
                }
                // Coherence state is unchanged since the probe, so the
                // apply can consume it instead of re-probing.
                match self.coherence.apply_probed(
                    CoreId(c),
                    line,
                    Access::Write,
                    TxTrack::Write,
                    probe,
                ) {
                    Ok(ok) => {
                        self.clocks[c] += ok.latency;
                        let mut conflicts = ok.remote_impacts;
                        if !conflicts.is_empty() {
                            self.perf.allocs_avoided += 1;
                            conflicts.retain(|i| i.is_tx_conflict(true));
                        }
                        self.abort_victims(c, line, &conflicts, AbortKind::MemoryConflict);
                        self.cores[c].sq.insert(addr.0, value);
                    }
                    Err(LockFail::Capacity) => {
                        self.perform_abort(c, AbortKind::Capacity);
                    }
                    Err(LockFail::LockedBy(_)) => unreachable!(),
                }
            }
        }
    }
}
