//! The multicore machine: drives AR programs through HTM, CLEAR, the
//! coherence protocol, timing and statistics.
//!
//! # Execution model
//!
//! Each simulated core owns a clock; the machine repeatedly advances the
//! core with the smallest clock (ties broken by core id — fully
//! deterministic) by one *step*: one retired instruction, one lock
//! acquisition, one spin poll, or one phase transition. Memory operations
//! are routed through the store queue, the CLEAR discovery logic, and the
//! two-phase coherence API; conflicting remote transactions are resolved by
//! the HTM policy (requester-wins / PowerTM / §5.2 NACK rules).
//!
//! # Simplifications vs. the paper (documented per DESIGN.md)
//!
//! * NS-CL/S-CL acquire all their locks *before* executing the body rather
//!   than overlapping locking with execution; this only shifts a small
//!   constant of latency.
//! * Speculative store data is buffered in the store queue until commit
//!   (lazy data, eager conflict detection), which is observationally
//!   equivalent for other cores.

use crate::perf::PerfCounters;
use crate::{
    backend_from_config, compute_energy, MachineConfig, RunStats, SpeculationBackend,
    SpeculationKind, Trace, TraceEvent,
};
use clear_coherence::{Access, CoherenceSystem, CoreId, LockFail, RemoteImpact, TxTrack};
use clear_core::{decide, Alt, Crt, Discovery, Ert, RetryMode};
use clear_htm::{
    AbortKind, FallbackLock, PowerToken, Resolution, RwSetOverflow, RwSetTracker, TxInfo,
};
use clear_isa::{ArInvocation, Effect, Vm, Workload};
use clear_mem::rng::Xoshiro256PlusPlus;
use clear_mem::{Addr, FxHashMap, FxHashSet, LineAddr, LineSet, Memory};
use sched::CoreHeap;
use std::sync::Arc;

/// The execution mode of the current attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ExecMode {
    Speculative,
    NsCl,
    SCl,
    Fallback,
}

impl ExecMode {
    fn commit_bucket(self) -> RetryMode {
        match self {
            ExecMode::Speculative => RetryMode::SpeculativeRetry,
            ExecMode::NsCl => RetryMode::NsCl,
            ExecMode::SCl => RetryMode::SCl,
            ExecMode::Fallback => RetryMode::Fallback,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Fetch the next AR from the workload.
    Idle,
    /// Non-AR think time until the given cycle.
    Think { until: u64 },
    /// Begin the next attempt in the planned mode.
    StartAttempt,
    /// CL modes: acquiring the lock list in lexicographical order.
    LockAcquire { idx: usize },
    /// Executing the AR body.
    Running,
    /// The thread has no more ARs.
    Finished,
}

#[derive(Clone, Copy, Debug)]
enum PendingOp {
    Load {
        addr: Addr,
        indirect: bool,
    },
    Store {
        addr: Addr,
        value: u64,
        indirect: bool,
    },
}

/// Bulk per-core state. The two hottest fields — the clock (the scheduler
/// key, read every step for every re-key and the debug cross-check scan)
/// and the phase (scanned for liveness) — live in dedicated
/// struct-of-arrays vectors on [`Machine`] (`clocks` / `phases`) so the
/// scheduler walks dense arrays instead of striding over this struct.
struct Core {
    vm: Option<Vm>,
    inv: Option<ArInvocation>,
    mode: ExecMode,
    pending: Option<PendingOp>,
    /// Speculative store buffer: word address -> value.
    sq: FxHashMap<u64, u64>,
    /// Abort held while failed-mode discovery continues (§4.1).
    held_abort: Option<AbortKind>,
    discovery: Option<Discovery>,
    /// Mode chosen for the next attempt.
    planned: RetryMode,
    /// Learned footprint for CL-mode retries.
    alt: Option<Alt>,
    lock_list: Vec<LineAddr>,
    retries_counted: u32,
    retries_total: u32,
    power: bool,
    explicit_fb_recorded: bool,
    ert: Ert,
    crt: Crt,
    /// Footprint of the current attempt (Fig. 1 instrumentation).
    fp_cur: LineSet,
    /// Footprint of the first (aborted) attempt of this invocation.
    fp_first: Option<LineSet>,
    /// Cycle at which the current attempt started (trace attribution:
    /// the `Abort` event reports the attempt's cycle span).
    attempt_started_at: u64,
    /// Cycle at which the *first* attempt of the current invocation
    /// started (metrics: time-to-commit spans every retry and back-off).
    first_attempt_at: Option<u64>,
    /// Cycles spent spinning in the current lock-acquisition phase,
    /// reported by the next `LockAcquired` trace event.
    lock_wait_acc: u64,
    /// Bounded read/write-set buffers of the limited-R/W-set backend;
    /// `None` for every backend without [`SpeculationBackend::rw_limits`].
    lrws: Option<RwSetTracker>,
    /// The current attempt (or planned retry) is NS-CL driven by a static
    /// plan: the access path re-checks line locks and aborts with
    /// [`AbortKind::PlanViolation`] on a miss instead of trusting the
    /// discovery-built exactness invariant.
    plan_nscl: bool,
    /// Resolved root-slot lines of this invocation's likely-immutable
    /// plan; empty when no such plan applies.
    plan_roots: Vec<LineAddr>,
    /// A store of this invocation landed in a root-slot line: the
    /// partial-discovery confirmation failed, no S-CL upgrade.
    plan_root_dirty: bool,
}

impl Core {
    fn new(backend: &dyn SpeculationBackend) -> Self {
        let cc = backend.clear().copied().unwrap_or_default();
        Core {
            vm: None,
            inv: None,
            mode: ExecMode::Speculative,
            pending: None,
            sq: FxHashMap::default(),
            held_abort: None,
            discovery: None,
            planned: RetryMode::SpeculativeRetry,
            alt: None,
            lock_list: Vec::new(),
            retries_counted: 0,
            retries_total: 0,
            power: false,
            explicit_fb_recorded: false,
            ert: Ert::new(cc.ert_entries),
            crt: Crt::new(cc.crt_sets, cc.crt_ways),
            fp_cur: LineSet::new(),
            fp_first: None,
            attempt_started_at: 0,
            first_attempt_at: None,
            lock_wait_acc: 0,
            lrws: backend.rw_limits().map(RwSetTracker::new),
            plan_nscl: false,
            plan_roots: Vec::new(),
            plan_root_dirty: false,
        }
    }
}

/// The simulated multicore machine.
///
/// # Examples
///
/// See the crate-level docs and the repository `examples/` directory; the
/// unit tests below exercise single-workload runs end to end.
pub struct Machine {
    config: MachineConfig,
    /// The speculation policy surface (see [`SpeculationBackend`]).
    backend: Box<dyn SpeculationBackend>,
    cores: Vec<Core>,
    /// Per-core clocks, indexed by core id (SoA twin of `cores`; see
    /// [`Core`]).
    clocks: Vec<u64>,
    /// Per-core phases, indexed by core id (SoA twin of `cores`).
    phases: Vec<Phase>,
    /// Resolved intra-run worker budget (from
    /// [`MachineConfig::sim_threads`]; `1` disables parallel stepping).
    sim_threads: usize,
    coherence: CoherenceSystem,
    fallback: FallbackLock,
    power_token: PowerToken,
    memory: Memory,
    workload: Box<dyn Workload>,
    stats: RunStats,
    rng: Xoshiro256PlusPlus,
    trace: Trace,
    /// Cores whose clocks were pushed forward by a remote abort since the
    /// last scheduler step; the run loop re-keys their heap entries.
    sched_touched: Vec<usize>,
    /// Simulator-kernel counters for the current run (see [`crate::perf`]).
    perf: PerfCounters,
    /// Opt-in metrics registry and hooks (see the `metrics` module).
    metrics: Option<Box<metrics::MachineMetrics>>,
    /// ARs whose static plan tripped the NS-CL guard: the fast path is
    /// disabled for them for the rest of the run.
    poisoned_plans: FxHashSet<u32>,
    /// Reused buffers for per-access/per-lock victim collection and lock
    /// groups; taken, filled, and put back on the hot path.
    scratch_victims: Vec<TxInfo>,
    scratch_group: Vec<LineAddr>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.config.cores)
            .field("workload", &self.workload.meta().name)
            .finish()
    }
}

impl Machine {
    /// Builds a machine, lays out the workload in simulated memory and
    /// allocates the fallback lock line. The speculation backend is derived
    /// from the configuration axes (see [`backend_from_config`]).
    pub fn new(config: MachineConfig, workload: Box<dyn Workload>) -> Self {
        let backend = backend_from_config(&config);
        Machine::with_backend(config, workload, backend)
    }

    /// Builds a machine running an explicit [`SpeculationBackend`], which
    /// overrides whatever the configuration axes would have selected. The
    /// configuration's `clear`/`flavor`/`speculation`/`lrws` fields are
    /// ignored in favour of the backend's answers; everything else (cores,
    /// coherence, retry policy, timing, …) applies unchanged.
    pub fn with_backend(
        config: MachineConfig,
        mut workload: Box<dyn Workload>,
        backend: Box<dyn SpeculationBackend>,
    ) -> Self {
        let mut memory = Memory::new();
        let fallback_line = memory.alloc_line().line();
        workload.setup(&mut memory, config.cores);
        let cores = (0..config.cores)
            .map(|_| Core::new(backend.as_ref()))
            .collect();
        let rng = Xoshiro256PlusPlus::seed_from_u64(config.seed);
        let sim_threads = match config.sim_threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        Machine {
            backend,
            coherence: CoherenceSystem::new(config.coherence),
            fallback: FallbackLock::new(fallback_line),
            power_token: PowerToken::new(),
            memory,
            workload,
            cores,
            clocks: vec![0; config.cores],
            phases: vec![Phase::Idle; config.cores],
            sim_threads,
            stats: RunStats::default(),
            rng,
            trace: Trace::new(),
            sched_touched: Vec::new(),
            perf: PerfCounters::default(),
            metrics: None,
            poisoned_plans: FxHashSet::default(),
            scratch_victims: Vec::new(),
            scratch_group: Vec::new(),
            config,
        }
    }

    /// Enables event tracing (see [`Trace`]). Call before [`Machine::run`].
    pub fn enable_tracing(&mut self) {
        self.trace.enable();
    }

    /// Enables event tracing with an explicit ring-buffer capacity; once
    /// full, each new record evicts the oldest and counts as dropped.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn enable_tracing_with_capacity(&mut self, capacity: usize) {
        self.trace = Trace::with_capacity(capacity);
        self.trace.enable();
    }

    /// The recorded trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The final committed memory state.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The workload under simulation.
    pub fn workload(&self) -> &dyn Workload {
        self.workload.as_ref()
    }

    /// The speculation backend driving this machine.
    pub fn backend(&self) -> &dyn SpeculationBackend {
        self.backend.as_ref()
    }

    /// Runs the workload to completion (or to the `max_cycles` safety stop)
    /// and returns the collected statistics.
    ///
    /// Core selection uses an indexed min-heap keyed on `(clock, core_id)`
    /// — a total order, so every step advances the exact same core a
    /// linear `min_by_key` scan would pick, in O(log cores).
    ///
    /// With [`MachineConfig::sim_threads`] ≥ 2 (or `0` = auto), cores tied
    /// at the minimum clock whose next step is provably local — an L1 hit
    /// in a distinct directory shard, a compute/branch step, or think time
    /// — are stepped as one parallel batch (see the `batch` module). The
    /// batch path is byte-identical to sequential stepping: only the
    /// `par_batch_*` perf counters reveal it ran.
    pub fn run(&mut self) -> RunStats {
        let started = std::time::Instant::now();
        let batching = self.batching_viable();
        let mut sched = CoreHeap::new(self.cores.len());
        for (i, &phase) in self.phases.iter().enumerate() {
            if phase != Phase::Finished {
                sched.push(i, self.clocks[i]);
            }
        }
        self.sched_touched.clear();
        while let Some(c) = sched.peek() {
            #[cfg(debug_assertions)]
            self.debug_assert_heap_min(c);
            if self.clocks[c] > self.config.max_cycles {
                self.stats.timed_out = true;
                break;
            }
            if batching && self.try_parallel_batch(&mut sched) {
                // Batch members were re-keyed inside; local steps never
                // touch `sched_touched` or finish a core.
                continue;
            }
            self.step_core(c);
            self.perf.steps += 1;
            if self.phases[c] == Phase::Finished {
                sched.remove(c);
            } else if sched.update(c, self.clocks[c]) {
                self.perf.sched_updates += 1;
            }
            // Remote aborts pushed victim clocks forward; re-key them.
            if !self.sched_touched.is_empty() {
                for i in 0..self.sched_touched.len() {
                    let v = self.sched_touched[i];
                    if v != c && sched.update(v, self.clocks[v]) {
                        self.perf.sched_updates += 1;
                    }
                }
                self.sched_touched.clear();
            }
        }
        self.perf.run_wall_ns += started.elapsed().as_nanos() as u64;
        self.finalize_stats();
        self.stats.clone()
    }

    /// Debug-build cross-check: the heap's minimum must be exactly what
    /// the replaced linear scan would have picked.
    #[cfg(debug_assertions)]
    fn debug_assert_heap_min(&self, picked: usize) {
        let scan = self
            .phases
            .iter()
            .zip(&self.clocks)
            .enumerate()
            .filter(|(_, (&p, _))| p != Phase::Finished)
            .min_by_key(|(i, (_, &clock))| (clock, *i))
            .map(|(i, _)| i);
        debug_assert_eq!(scan, Some(picked), "heap disagrees with linear scan");
    }

    fn finalize_stats(&mut self) {
        self.stats.total_cycles = self.clocks.iter().copied().max().unwrap_or(0);
        self.stats.coherence = self.coherence.stats();
        self.perf.coherence_requests = self.stats.coherence.requests();
        self.perf.shards = self.coherence.shard_count() as u64;
        self.perf.shard_lines = self.coherence.shard_lines();
        self.perf.shard_lines_max = self.coherence.shard_lines_max();
        self.perf.trace_events_recorded = self.trace.recorded();
        self.perf.trace_events_dropped = self.trace.dropped();
        self.stats.perf = self.perf;
        self.stats.lock_ops = self.stats.coherence.locks + self.stats.coherence.unlocks;
        self.stats.energy = compute_energy(
            &self.config.energy,
            self.config.cores,
            self.stats.total_cycles,
            self.stats.instructions_retired + self.stats.instructions_wasted,
            self.stats.aborts.total(),
            self.stats.lock_ops,
            &self.stats.coherence,
        );
        self.metrics_on_finalize();
    }

    fn jitter(&mut self) -> u64 {
        if self.config.timing.backoff_jitter == 0 {
            0
        } else {
            self.rng.gen_range(0..self.config.timing.backoff_jitter)
        }
    }

    fn clear_enabled(&self) -> bool {
        self.backend.clear().is_some()
    }

    fn tx_info(&self, c: usize) -> TxInfo {
        TxInfo {
            core: CoreId(c),
            power: self.cores[c].power,
            scl: self.cores[c].mode == ExecMode::SCl
                && matches!(self.phases[c], Phase::Running | Phase::LockAcquire { .. }),
        }
    }

    fn step_core(&mut self, c: usize) {
        match self.phases[c] {
            Phase::Finished => {}
            Phase::Idle => self.fetch_next(c),
            Phase::Think { until } => {
                self.clocks[c] = until;
                self.phases[c] = Phase::StartAttempt;
            }
            Phase::StartAttempt => self.start_attempt(c),
            Phase::LockAcquire { idx } => self.lock_step(c, idx),
            Phase::Running => self.run_step(c),
        }
    }

    fn fetch_next(&mut self, c: usize) {
        match self.workload.next_ar(c, &self.memory) {
            None => self.phases[c] = Phase::Finished,
            Some(inv) => {
                self.trace
                    .record(self.clocks[c], c, TraceEvent::ArFetched { ar: inv.ar });
                let until = self.clocks[c] + inv.think_cycles;
                // A-priori locking (§2.2 comparator): eligible ARs start in
                // NS-CL with their statically-known footprint, bypassing
                // speculation entirely.
                let apriori_alt = if self.config.a_priori_locking {
                    inv.static_footprint.as_ref().and_then(|lines| {
                        if !self.coherence.fits_locked(lines) {
                            return None;
                        }
                        let cc = self.backend.clear().copied().unwrap_or_default();
                        let mut alt = Alt::new(cc.alt_entries, self.coherence.dir_geometry());
                        for &l in lines {
                            if alt.observe(l, true).is_err() {
                                return None;
                            }
                        }
                        Some(alt)
                    })
                } else {
                    None
                };
                // Static fast path: once this AR has shown contention, a
                // proved-immutable plan applies eagerly — the first attempt
                // is already NS-CL and no discovery run ever happens.
                let plan_alt = if apriori_alt.is_none()
                    && self
                        .stats
                        .ar_stats
                        .get(&inv.ar.0)
                        .is_some_and(|e| e.aborts > 0)
                {
                    self.plan_nscl_alt(&inv)
                } else {
                    None
                };
                let plan_roots = if apriori_alt.is_none() && plan_alt.is_none() {
                    self.plan_root_lines(&inv)
                } else {
                    Vec::new()
                };
                if let Some((_, footprint)) = &plan_alt {
                    self.trace.record(
                        self.clocks[c],
                        c,
                        TraceEvent::DiscoveryElided {
                            ar: inv.ar,
                            eager: true,
                        },
                    );
                    self.trace.record(
                        self.clocks[c],
                        c,
                        TraceEvent::Decision {
                            ar: inv.ar,
                            mode: RetryMode::NsCl,
                            footprint: *footprint,
                            immutable: true,
                        },
                    );
                    self.stats.discovery_runs_elided += 1;
                }
                let core = &mut self.cores[c];
                core.inv = Some(inv);
                if let Some(alt) = apriori_alt {
                    core.alt = Some(alt);
                    core.planned = RetryMode::NsCl;
                    core.plan_nscl = false;
                } else if let Some((alt, _)) = plan_alt {
                    core.alt = Some(alt);
                    core.planned = RetryMode::NsCl;
                    core.plan_nscl = true;
                } else {
                    core.planned = RetryMode::SpeculativeRetry;
                    core.alt = None;
                    core.plan_nscl = false;
                }
                core.plan_roots = plan_roots;
                core.plan_root_dirty = false;
                core.retries_counted = 0;
                core.retries_total = 0;
                core.fp_first = None;
                core.first_attempt_at = None;
                self.phases[c] = Phase::Think { until };
            }
        }
    }

    fn arm_vm(&mut self, c: usize) {
        let inv = self.cores[c].inv.as_ref().expect("invocation present");
        let mut vm = Vm::new(Arc::clone(&inv.program));
        for &(r, v) in &inv.args {
            vm.set_reg(r, v);
        }
        let core = &mut self.cores[c];
        core.vm = Some(vm);
        core.pending = None;
        core.sq.clear();
        core.held_abort = None;
        core.fp_cur.clear();
        if let Some(t) = core.lrws.as_mut() {
            t.clear();
        }
    }
}

mod attempt;
mod batch;
mod conflicts;
mod locking;
mod memops;
mod metrics;
mod plans;
mod sched;
