//! The NS-CL/S-CL lock-acquisition phase: lexicographical order, group
//! locking with the ALT Hit-bit fast path, and lock-conflict policy.
use super::*;

impl Machine {
    pub(super) fn lock_step(&mut self, c: usize, idx: usize) {
        if idx >= self.cores[c].lock_list.len() {
            self.phases[c] = Phase::Running;
            return;
        }
        // Lexicographical conflict groups (same directory set) are locked
        // together (§5): entries are lex-sorted, so a group is a maximal
        // consecutive run with one set index.
        let dir = self.coherence.dir_geometry();
        // The group and victim lists reuse per-machine scratch buffers; both
        // are restored before every exit from this function.
        let mut group = std::mem::take(&mut self.scratch_group);
        group.clear();
        {
            let list = &self.cores[c].lock_list;
            let set = dir.set_index(list[idx]);
            group.extend(
                list[idx..]
                    .iter()
                    .take_while(|l| dir.set_index(**l) == set)
                    .copied(),
            );
        }
        self.perf.allocs_avoided += 1;

        // Policy check over the whole group before stealing anything.
        let mut victims = std::mem::take(&mut self.scratch_victims);
        victims.clear();
        let mut spin = false;
        for &line in &group {
            let probe = self.coherence.probe(CoreId(c), line, Access::Write);
            if probe.locked_by_other.is_some() {
                // Another core holds a group line locked: retried request
                // (Fig. 6).
                spin = true;
                break;
            }
            for i in probe
                .remote_impacts
                .iter()
                .filter(|i| i.is_tx_conflict(true))
            {
                victims.push(self.tx_info(i.core.0));
            }
        }
        let nacked = !spin && !victims.is_empty() && {
            self.perf.allocs_avoided += 1;
            let me = self.tx_info(c);
            self.backend.resolve(me, &victims) == Resolution::NackRequester
        };
        self.scratch_victims = victims;
        if spin {
            self.clocks[c] += self.config.timing.spin_interval;
            self.cores[c].lock_wait_acc += self.config.timing.spin_interval;
            self.stats.lock_spin_cycles += self.config.timing.spin_interval;
            self.scratch_group = group;
            return;
        }
        if nacked {
            self.perform_abort(c, AbortKind::Nacked);
            self.scratch_group = group;
            return;
        }
        // Record the ALT Hit bits (group-locking probe of §5).
        for &line in &group {
            let hit = self.coherence.has_exclusive(CoreId(c), line);
            if let Some(alt) = self.cores[c].alt.as_mut() {
                alt.mark_hit(line, hit);
            }
        }
        let result = if group.len() == 1 {
            self.coherence.lock_line(CoreId(c), group[0])
        } else {
            self.coherence.lock_group(CoreId(c), &group)
        };
        match result {
            Ok(ok) => {
                self.clocks[c] += ok.latency;
                let impacts = ok.remote_impacts;
                // The accumulated spin wait paid for the whole group; it is
                // attributed to the group's first lock to keep per-line
                // totals additive.
                let mut wait_cycles = std::mem::take(&mut self.cores[c].lock_wait_acc);
                self.metrics_on_locks_acquired(wait_cycles);
                for &line in &group {
                    if let Some(alt) = self.cores[c].alt.as_mut() {
                        alt.mark_locked(line);
                    }
                    self.trace.record(
                        self.clocks[c],
                        c,
                        TraceEvent::LockAcquired { line, wait_cycles },
                    );
                    wait_cycles = 0;
                }
                // The impacts list of a group lock spans lines; CRT
                // attribution uses the first group line, which is exact for
                // single-line groups and conservative otherwise.
                self.abort_victims_tagged(c, group[0], &impacts, AbortKind::MemoryConflict, true);
                self.phases[c] = Phase::LockAcquire {
                    idx: idx + group.len(),
                };
            }
            Err(LockFail::LockedBy(_)) => {
                self.clocks[c] += self.config.timing.spin_interval;
                self.cores[c].lock_wait_acc += self.config.timing.spin_interval;
                self.stats.lock_spin_cycles += self.config.timing.spin_interval;
            }
            Err(LockFail::Capacity) => {
                // Should not happen (discovery verified the fit); treat as a
                // capacity abort and fall back to a speculative retry.
                self.cores[c].planned = RetryMode::SpeculativeRetry;
                self.cores[c].alt = None;
                self.perform_abort(c, AbortKind::Capacity);
            }
        }
        self.scratch_group = group;
    }
}
