//! The core scheduler: an indexed binary min-heap over `(clock, core_id)`.
//!
//! [`Machine::run`](super::Machine::run) must always advance the core with
//! the smallest clock, ties broken by core id. A linear scan is O(cores)
//! per simulated step; this heap makes it O(log cores) while selecting the
//! *exact same* core every step, because `(clock, core_id)` is a total
//! order. Clocks only ever increase, so re-keying after a step or a remote
//! abort is a sift-down plus a defensive sift-up.

/// Indexed min-heap of core ids keyed by `(clock, core_id)`.
#[derive(Debug)]
pub(super) struct CoreHeap {
    /// Heap array of core ids.
    heap: Vec<usize>,
    /// `pos[core]` = index of `core` in `heap`, or [`CoreHeap::ABSENT`].
    pos: Vec<usize>,
    /// `clock[core]` = the key the heap currently believes.
    clock: Vec<u64>,
}

impl CoreHeap {
    const ABSENT: usize = usize::MAX;

    /// An empty heap able to hold cores `0..n`.
    pub(super) fn new(n: usize) -> Self {
        CoreHeap {
            heap: Vec::with_capacity(n),
            pos: vec![Self::ABSENT; n],
            clock: vec![0; n],
        }
    }

    fn key(&self, core: usize) -> (u64, usize) {
        (self.clock[core], core)
    }

    /// Inserts `core` with the given clock. Must not already be present.
    pub(super) fn push(&mut self, core: usize, clock: u64) {
        debug_assert_eq!(self.pos[core], Self::ABSENT, "core {core} already queued");
        self.clock[core] = clock;
        self.pos[core] = self.heap.len();
        self.heap.push(core);
        self.sift_up(self.heap.len() - 1);
    }

    /// The core with the smallest `(clock, core_id)`, if any.
    pub(super) fn peek(&self) -> Option<usize> {
        self.heap.first().copied()
    }

    /// Updates `core`'s clock and restores heap order. Returns `false`
    /// (and does nothing) if the core is not in the heap.
    pub(super) fn update(&mut self, core: usize, clock: u64) -> bool {
        let i = self.pos[core];
        if i == Self::ABSENT {
            return false;
        }
        if clock == self.clock[core] {
            return true; // key unchanged, heap order intact
        }
        let grew = clock > self.clock[core];
        self.clock[core] = clock;
        if grew {
            // Clocks are monotonic in the machine, so sifting down suffices.
            self.sift_down(i);
        } else {
            let i = self.sift_down(i);
            self.sift_up(i);
        }
        true
    }

    /// Removes `core` from the heap. No-op if absent.
    pub(super) fn remove(&mut self, core: usize) {
        let i = self.pos[core];
        if i == Self::ABSENT {
            return;
        }
        self.pos[core] = Self::ABSENT;
        let last = self.heap.pop().expect("non-empty heap");
        if last != core {
            self.heap[i] = last;
            self.pos[last] = i;
            let i = self.sift_down(i);
            self.sift_up(i);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.key(self.heap[i]) >= self.key(self.heap[parent]) {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) -> usize {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.key(self.heap[l]) < self.key(self.heap[smallest]) {
                smallest = l;
            }
            if r < self.heap.len() && self.key(self.heap[r]) < self.key(self.heap[smallest]) {
                smallest = r;
            }
            if smallest == i {
                return i;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a]] = a;
        self.pos[self.heap[b]] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(h: &mut CoreHeap) -> Vec<usize> {
        let mut out = Vec::new();
        while let Some(c) = h.peek() {
            out.push(c);
            h.remove(c);
        }
        out
    }

    #[test]
    fn pops_in_clock_then_id_order() {
        let mut h = CoreHeap::new(4);
        h.push(0, 30);
        h.push(1, 10);
        h.push(2, 10);
        h.push(3, 20);
        assert_eq!(drain(&mut h), vec![1, 2, 3, 0]);
    }

    #[test]
    fn update_rekeys() {
        let mut h = CoreHeap::new(3);
        for c in 0..3 {
            h.push(c, 0);
        }
        assert_eq!(h.peek(), Some(0));
        assert!(h.update(0, 100));
        assert_eq!(h.peek(), Some(1));
        assert!(h.update(1, 50));
        assert_eq!(h.peek(), Some(2));
        h.remove(2);
        assert_eq!(drain(&mut h), vec![1, 0]);
    }

    #[test]
    fn update_or_remove_of_absent_core_is_a_noop() {
        let mut h = CoreHeap::new(2);
        h.push(0, 5);
        assert!(!h.update(1, 9));
        h.remove(1);
        assert_eq!(drain(&mut h), vec![0]);
    }

    #[test]
    fn matches_linear_scan_on_random_schedule() {
        use clear_mem::rng::SplitMix64;
        let n = 9;
        let mut rng = SplitMix64::new(0xC0FE);
        let mut clocks: Vec<Option<u64>> = (0..n).map(|_| Some(0)).collect();
        let mut h = CoreHeap::new(n);
        for c in 0..n {
            h.push(c, 0);
        }
        for _ in 0..2000 {
            let expect = clocks
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.map(|v| (v, i)))
                .min()
                .map(|(_, i)| i);
            assert_eq!(h.peek(), expect);
            let Some(c) = expect else { break };
            if rng.below(20) == 0 {
                clocks[c] = None;
                h.remove(c);
            } else {
                let bump = rng.below(50);
                let v = clocks[c].unwrap() + bump;
                clocks[c] = Some(v);
                h.update(c, v);
                // Occasionally a "remote abort" bumps another core too.
                if rng.flip() {
                    let other = rng.index(n);
                    if let Some(o) = clocks[other] {
                        clocks[other] = Some(o + 7);
                        h.update(other, o + 7);
                    }
                }
            }
        }
    }
}
