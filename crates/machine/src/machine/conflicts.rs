//! Conflict delivery: applying accesses that steal remote transactional
//! copies, CRT learning, and victim notification (failed-mode entry vs
//! immediate abort).
use super::*;

impl Machine {
    pub(super) fn force_apply(
        &mut self,
        c: usize,
        line: LineAddr,
        access: Access,
        tx: TxTrack,
    ) -> Vec<RemoteImpact> {
        match self.coherence.apply(CoreId(c), line, access, tx) {
            Ok(ok) => {
                self.clocks[c] += ok.latency;
                ok.remote_impacts
            }
            Err(LockFail::Capacity) => {
                // The line could not be installed together with existing
                // pinned lines. For non-transactional accesses we model the
                // access as bypassing the L1 (uncached), which cannot
                // conflict because the impacted copies were already handled
                // by probe-time policy. Charge memory latency.
                self.clocks[c] += self.config.coherence.lat_mem;
                Vec::new()
            }
            Err(LockFail::LockedBy(_)) => unreachable!("caller routed locked lines"),
        }
    }

    /// Aborts every victim whose transactional copy was stolen.
    pub(super) fn abort_victims_tagged(
        &mut self,
        requester: usize,
        line: LineAddr,
        impacts: &[RemoteImpact],
        kind: AbortKind,
        from_lock: bool,
    ) {
        let requester_writes = true; // callers pass only conflicting impacts
        let _ = requester_writes;
        for imp in impacts {
            let v = imp.core.0;
            if v == requester || !(imp.tx_read || imp.tx_write) {
                continue;
            }
            // CRT learning: a read-only line that caused a conflict abort.
            // Lock-acquisition invalidations are excluded: recording them
            // would make every victim lock the same line on its own S-CL
            // retry, a positive-feedback serialization loop (the lock
            // already prevents the conflict from recurring).
            if imp.tx_read && !imp.tx_write && !from_lock {
                self.cores[v].crt.record(line);
            }
            if from_lock {
                self.stats.conflicts_from_locks += 1;
            } else {
                self.stats.conflicts_from_access += 1;
            }
            // Trace attribution uses the impact's own line (exact even for
            // group locks, where `line` is the conservative group head).
            self.signal_conflict(v, kind, imp.line, requester);
        }
    }

    pub(super) fn abort_victims(
        &mut self,
        requester: usize,
        line: LineAddr,
        impacts: &[RemoteImpact],
        kind: AbortKind,
    ) {
        self.abort_victims_tagged(requester, line, impacts, kind, false);
    }

    /// Delivers a conflict to a victim core: enter failed-mode discovery
    /// (CLEAR) or abort immediately (baseline). `line` and `aggressor`
    /// attribute the conflict for the trace: which cacheline was stolen,
    /// and by which core.
    pub(super) fn signal_conflict(
        &mut self,
        v: usize,
        kind: AbortKind,
        line: LineAddr,
        aggressor: usize,
    ) {
        let core = &mut self.cores[v];
        match core.mode {
            ExecMode::Speculative if self.phases[v] == Phase::Running => {
                let clock = self.clocks[v];
                self.trace
                    .record(clock, v, TraceEvent::ConflictReceived { line, aggressor });
                // Reactive elide: where the baseline would enter failed-mode
                // discovery, a proved-immutable plan already knows the
                // footprint — decide NS-CL on the spot and abort straight
                // into the locked retry. Overflowed discovery contradicts a
                // fitting plan, so it stays on the dynamic path.
                let elide = {
                    let core = &self.cores[v];
                    match (core.discovery.as_ref(), core.inv.as_ref()) {
                        (Some(d), Some(inv)) if !d.in_failed_mode() && !d.overflowed() => {
                            self.plan_nscl_alt(inv)
                        }
                        _ => None,
                    }
                };
                if let Some((alt, footprint)) = elide {
                    let ar = self.cores[v].inv.as_ref().expect("invocation present").ar;
                    self.trace
                        .record(clock, v, TraceEvent::DiscoveryElided { ar, eager: false });
                    self.trace.record(
                        clock,
                        v,
                        TraceEvent::Decision {
                            ar,
                            mode: RetryMode::NsCl,
                            footprint,
                            immutable: true,
                        },
                    );
                    self.stats.discovery_runs_elided += 1;
                    let core = &mut self.cores[v];
                    {
                        let e = core.ert.entry(ar.0);
                        e.is_convertible = true;
                        e.is_immutable = true;
                    }
                    core.discovery = None;
                    core.alt = Some(alt);
                    core.planned = RetryMode::NsCl;
                    core.plan_nscl = true;
                    self.perform_abort(v, kind);
                    return;
                }
                let core = &mut self.cores[v];
                if let Some(d) = core.discovery.as_mut() {
                    if !d.in_failed_mode() && !d.overflowed() {
                        d.on_conflict();
                        core.held_abort = Some(kind);
                        self.trace.record(clock, v, TraceEvent::EnterFailedMode);
                        return;
                    }
                    if d.in_failed_mode() {
                        // Already failed: the abort is already held.
                        return;
                    }
                }
                self.perform_abort(v, kind);
            }
            ExecMode::SCl if self.phases[v] == Phase::Running => {
                self.trace.record(
                    self.clocks[v],
                    v,
                    TraceEvent::ConflictReceived { line, aggressor },
                );
                self.perform_abort(v, kind);
            }
            // NS-CL and fallback hold no transactional lines; lock-phase
            // CL cores have not yet installed any either.
            _ => {}
        }
    }
}
