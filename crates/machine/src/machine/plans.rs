//! Static-plan execution: applying analyzer-emitted [`StaticPlan`]s so
//! proved-immutable ARs skip the discovery run (NS-CL straight from the
//! plan's lock set) and likely-immutable ARs upgrade their S-CL retry
//! after a shortened, root-slot-stability-only discovery.
//!
//! Plans are hints with a guard: every resolution and budget check is
//! re-done per invocation here, and the NS-CL access path re-checks at
//! run time that each touched line is locked
//! ([`Machine::plan_violation`]). A wrong plan costs one extra retry and
//! poisons itself; it can never commit a mutation.
use super::*;
use clear_core::{PlanClass, StaticPlan};

impl Machine {
    /// Resolves a proved-immutable plan for `inv` into a ready NS-CL ALT,
    /// when the plan applies to this invocation: the plan must exist, be
    /// complete, not be poisoned, resolve every address against the entry
    /// arguments, and fit the ALT, the directory and the backend's
    /// read/write-set budgets. Returns the ALT plus the resolved line
    /// count (the `Decision` trace footprint).
    pub(super) fn plan_nscl_alt(&self, inv: &ArInvocation) -> Option<(Alt, usize)> {
        if !self.clear_enabled() {
            return None;
        }
        let plans = self.config.static_plans.as_ref()?;
        let ar = inv.ar.0;
        if self.poisoned_plans.contains(&ar) {
            return None;
        }
        let plan = plans.get(ar)?;
        if plan.class != PlanClass::Immutable || !plan.complete {
            return None;
        }
        let lookup = plan_lookup(inv);
        let lines = StaticPlan::resolve_lines(&plan.lock_set, &lookup)?;
        let written = StaticPlan::resolve_lines(&plan.written, &lookup)?;
        if let Some(limits) = self.backend.rw_limits() {
            if !plan.fits_rw(Some(limits.read_lines), Some(limits.write_lines)) {
                return None;
            }
        }
        if !self.coherence.fits_locked(&lines) {
            return None;
        }
        let cc = self.backend.clear().copied().unwrap_or_default();
        let mut alt = Alt::new(cc.alt_entries, self.coherence.dir_geometry());
        for &l in &lines {
            if alt.observe(l, written.binary_search(&l).is_ok()).is_err() {
                return None;
            }
        }
        // NS-CL locks its whole footprint, reads included.
        alt.mark_all_needs_locking();
        Some((alt, lines.len()))
    }

    /// The resolved root-slot lines of a likely-immutable plan for `inv`,
    /// or empty when no such plan applies. A nonempty result arms the
    /// partial-discovery confirmation: the next discovery run tracks
    /// whether the region itself stores into any of these lines, and a
    /// clean run upgrades the S-CL retry to lock the whole learned
    /// footprint ([`Machine::decision_abort`]).
    pub(super) fn plan_root_lines(&self, inv: &ArInvocation) -> Vec<LineAddr> {
        if !self.clear_enabled() {
            return Vec::new();
        }
        let Some(plans) = self.config.static_plans.as_ref() else {
            return Vec::new();
        };
        let ar = inv.ar.0;
        if self.poisoned_plans.contains(&ar) {
            return Vec::new();
        }
        let Some(plan) = plans.get(ar) else {
            return Vec::new();
        };
        if plan.class != PlanClass::LikelyImmutable || plan.root_slots.is_empty() {
            return Vec::new();
        }
        StaticPlan::resolve_lines(&plan.root_slots, &plan_lookup(inv)).unwrap_or_default()
    }

    /// The NS-CL soundness guard fired: a plan-driven attempt touched a
    /// line its lock set had not locked. Poison the plan (this AR never
    /// takes the fast path again), count the violation, and abort back to
    /// the ordinary speculative path — crucially *before* the unlocked
    /// access performed any memory operation.
    pub(super) fn plan_violation(&mut self, c: usize) {
        let ar = self.cores[c].inv.as_ref().expect("invocation present").ar.0;
        self.poisoned_plans.insert(ar);
        self.stats.static_plan_violations += 1;
        let core = &mut self.cores[c];
        core.plan_nscl = false;
        core.planned = RetryMode::SpeculativeRetry;
        core.alt = None;
        self.perform_abort(c, AbortKind::PlanViolation);
    }
}

/// Entry-register lookup for resolving a plan against one invocation.
fn plan_lookup(inv: &ArInvocation) -> impl Fn(u8) -> Option<u64> + '_ {
    move |r: u8| {
        inv.args
            .iter()
            .find(|&&(reg, _)| reg.index() as u8 == r)
            .map(|&(_, v)| v)
    }
}
