//! Run statistics: everything the paper's figures are built from.

use crate::{EnergyBreakdown, PerfCounters};
use clear_coherence::CoherenceStats;
use clear_core::RetryMode;
use clear_htm::AbortKind;
use std::collections::BTreeMap;

/// Commit counters broken down by execution mode (Fig. 12).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModeCommits {
    /// Committed in plain speculative execution.
    pub speculative: u64,
    /// Committed in S-CL mode.
    pub scl: u64,
    /// Committed in NS-CL mode.
    pub nscl: u64,
    /// Committed on the fallback path.
    pub fallback: u64,
}

impl ModeCommits {
    /// Total commits.
    pub fn total(&self) -> u64 {
        self.speculative + self.scl + self.nscl + self.fallback
    }

    /// Increments the counter for `mode`.
    pub fn record(&mut self, mode: RetryMode) {
        match mode {
            RetryMode::SpeculativeRetry => self.speculative += 1,
            RetryMode::SCl => self.scl += 1,
            RetryMode::NsCl => self.nscl += 1,
            RetryMode::Fallback => self.fallback += 1,
        }
    }
}

/// Abort counters by kind (Fig. 11).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AbortCounts {
    counts: BTreeMap<String, u64>,
}

impl AbortCounts {
    /// Increments the counter for `kind`.
    pub fn record(&mut self, kind: AbortKind) {
        *self.counts.entry(kind.to_string()).or_insert(0) += 1;
    }

    /// Count for `kind`.
    pub fn get(&self, kind: AbortKind) -> u64 {
        self.counts.get(&kind.to_string()).copied().unwrap_or(0)
    }

    /// Total aborts.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

/// Per-static-AR counters: connects Table 1's static classification to the
/// dynamic outcome of each atomic region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArStatsEntry {
    /// Commits of this AR.
    pub commits: u64,
    /// Aborts suffered by this AR.
    pub aborts: u64,
    /// Commits by execution mode.
    pub by_mode: ModeCommits,
}

/// Everything measured during one run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Simulated execution time of the region of interest: the maximum core
    /// clock when the last thread finishes.
    pub total_cycles: u64,
    /// Committed ARs by execution mode (Fig. 12).
    pub commits_by_mode: ModeCommits,
    /// Aborts by kind (Fig. 11).
    pub aborts: AbortCounts,
    /// Commit counts indexed by the number of retries the AR took
    /// (0 = first try). Fallback commits are *not* included here (Fig. 13
    /// reports them separately via [`ModeCommits::fallback`]).
    pub commits_by_retries: BTreeMap<u32, u64>,
    /// Instructions retired on committed work.
    pub instructions_retired: u64,
    /// Instructions retired on attempts that later aborted (wasted work).
    pub instructions_wasted: u64,
    /// Cycles spent executing in failed-mode discovery (the Fig. 8
    /// "Time Running Aborted in Discovery" overlay), summed over cores.
    pub discovery_failed_cycles: u64,
    /// Cycles spent stalled re-sending requests to locked cachelines.
    pub pending_stall_cycles: u64,
    /// Cycles spent spinning while acquiring cacheline locks.
    pub lock_spin_cycles: u64,
    /// Cycles spent waiting on the fallback mutex (any mode).
    pub fallback_wait_cycles: u64,
    /// Victim aborts triggered by CL-mode lock acquisitions.
    pub conflicts_from_locks: u64,
    /// Victim aborts triggered by ordinary data accesses.
    pub conflicts_from_access: u64,
    /// Cacheline lock + unlock operations performed.
    pub lock_ops: u64,
    /// Fig. 1 instrumentation: AR executions that aborted their first
    /// attempt.
    pub retried_ars: u64,
    /// Fig. 1 instrumentation: of those, executions whose first-retry
    /// footprint was identical to the first attempt's and ≤ 32 lines.
    pub immutable_small_retries: u64,
    /// Limited-R/W-set backend: capacity aborts raised by read-set buffer
    /// overflow. Zero for every other backend.
    pub lrws_read_capacity_aborts: u64,
    /// Limited-R/W-set backend: capacity aborts raised by write-set buffer
    /// overflow. Zero for every other backend.
    pub lrws_write_capacity_aborts: u64,
    /// Discovery runs skipped outright because a proved-immutable
    /// [`StaticPlan`](clear_core::StaticPlan) supplied the lock set.
    pub discovery_runs_elided: u64,
    /// Discovery runs shortened to a root-slot stability confirmation by a
    /// likely-immutable static plan.
    pub partial_discovery_runs: u64,
    /// Static-plan guard trips: NS-CL attempts that touched a line outside
    /// the plan's lock set and aborted to the dynamic path.
    pub static_plan_violations: u64,
    /// Per-AR counters keyed by the AR's static id.
    pub ar_stats: BTreeMap<u32, ArStatsEntry>,
    /// Coherence event counters.
    pub coherence: CoherenceStats,
    /// Energy totals.
    pub energy: EnergyBreakdown,
    /// Simulator-kernel performance counters (see [`crate::perf`]).
    pub perf: PerfCounters,
    /// The run hit the `max_cycles` safety stop before the workload
    /// finished.
    pub timed_out: bool,
}

impl RunStats {
    /// Total committed ARs.
    pub fn commits(&self) -> u64 {
        self.commits_by_mode.total()
    }

    /// Aborts per committed transaction (Fig. 9).
    pub fn aborts_per_commit(&self) -> f64 {
        if self.commits() == 0 {
            0.0
        } else {
            self.aborts.total() as f64 / self.commits() as f64
        }
    }

    /// Of the ARs that needed at least one retry (including those that
    /// ended in fallback), the fraction committing on exactly the first
    /// retry (Fig. 13's headline number).
    pub fn first_retry_share(&self) -> f64 {
        let retried: u64 = self
            .commits_by_retries
            .iter()
            .filter(|(&r, _)| r >= 1)
            .map(|(_, &c)| c)
            .sum::<u64>()
            + self.commits_by_mode.fallback;
        if retried == 0 {
            return 0.0;
        }
        self.commits_by_retries.get(&1).copied().unwrap_or(0) as f64 / retried as f64
    }

    /// Of the ARs that needed at least one retry, the fraction that ended
    /// on the fallback path (Fig. 13).
    pub fn fallback_share(&self) -> f64 {
        let retried: u64 = self
            .commits_by_retries
            .iter()
            .filter(|(&r, _)| r >= 1)
            .map(|(_, &c)| c)
            .sum::<u64>()
            + self.commits_by_mode.fallback;
        if retried == 0 {
            return 0.0;
        }
        self.commits_by_mode.fallback as f64 / retried as f64
    }

    /// Total capacity aborts raised by the limited-R/W-set buffers; a
    /// subset of the Capacity bucket in [`RunStats::aborts`].
    pub fn lrws_capacity_aborts(&self) -> u64 {
        self.lrws_read_capacity_aborts + self.lrws_write_capacity_aborts
    }

    /// Fig. 1 ratio: retrying ARs whose footprint stayed immutable and
    /// small on the first retry.
    pub fn immutable_retry_ratio(&self) -> f64 {
        if self.retried_ars == 0 {
            0.0
        } else {
            self.immutable_small_retries as f64 / self.retried_ars as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_commits_total() {
        let mut m = ModeCommits::default();
        m.record(RetryMode::SpeculativeRetry);
        m.record(RetryMode::NsCl);
        m.record(RetryMode::NsCl);
        m.record(RetryMode::Fallback);
        assert_eq!(m.total(), 4);
        assert_eq!(m.nscl, 2);
    }

    #[test]
    fn abort_counts_by_kind() {
        let mut a = AbortCounts::default();
        a.record(AbortKind::MemoryConflict);
        a.record(AbortKind::MemoryConflict);
        a.record(AbortKind::Capacity);
        assert_eq!(a.get(AbortKind::MemoryConflict), 2);
        assert_eq!(a.get(AbortKind::Capacity), 1);
        assert_eq!(a.get(AbortKind::Explicit), 0);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn aborts_per_commit_handles_zero() {
        let s = RunStats::default();
        assert_eq!(s.aborts_per_commit(), 0.0);
    }

    #[test]
    fn retry_shares() {
        let mut s = RunStats::default();
        s.commits_by_retries.insert(0, 100); // excluded
        s.commits_by_retries.insert(1, 6);
        s.commits_by_retries.insert(2, 2);
        s.commits_by_mode.fallback = 2;
        assert!((s.first_retry_share() - 0.6).abs() < 1e-9);
        assert!((s.fallback_share() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn immutable_retry_ratio() {
        let s = RunStats {
            retried_ars: 10,
            immutable_small_retries: 6,
            ..RunStats::default()
        };
        assert!((s.immutable_retry_ratio() - 0.6).abs() < 1e-9);
    }
}
