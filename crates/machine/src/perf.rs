//! Zero-dependency performance counters for the simulation kernel itself.
//!
//! These measure the *simulator*, not the simulated machine: how many
//! scheduler steps a run took, how much coherence traffic it generated,
//! how many heap allocations the scratch-buffer reuse avoided, and how
//! long the run took in wall-clock time. They surface through
//! [`RunStats::perf`](crate::RunStats::perf), the harness JSON, and the
//! `sim_throughput` gated experiment, so kernel speedups (and regressions)
//! are tracked like any other golden metric.
//!
//! Every counter except [`PerfCounters::run_wall_ns`] is a pure function
//! of the simulated run and therefore byte-reproducible across hosts;
//! wall-clock time is explicitly excluded from golden comparisons.

/// Counters describing one [`Machine::run`](crate::Machine::run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Scheduler steps executed (instructions, lock acquisitions, spins,
    /// phase transitions — one per core advance).
    pub steps: u64,
    /// Scheduler heap re-keys (one per step plus one per remote abort).
    pub sched_updates: u64,
    /// Coherence requests served at any level (L1/L2/L3/memory).
    pub coherence_requests: u64,
    /// Heap allocations avoided by reusing scratch buffers (victim lists,
    /// lock lists, conflict filters, store-queue drains).
    pub allocs_avoided: u64,
    /// Trace records emitted (retained or dropped); zero unless tracing
    /// was enabled. A pure function of the run, so golden-gated.
    pub trace_events_recorded: u64,
    /// Trace records evicted by ring-buffer overflow; also deterministic
    /// and golden-gated.
    pub trace_events_dropped: u64,
    /// Directory shards instantiated by the run (each shard covers a
    /// 64-line address range).
    pub shards: u64,
    /// Directory entries instantiated across all shards (occupancy).
    pub shard_lines: u64,
    /// Directory entries in the fullest shard (imbalance indicator; equal
    /// to `shard_lines / shards` only for a perfectly uniform footprint).
    pub shard_lines_max: u64,
    /// Parallel step batches formed (≥ 2 same-clock cores with provably
    /// local, shard-disjoint next steps). Zero when `sim_threads` is 1.
    /// Batch counters are a function of the thread *mode* (off vs on), not
    /// the worker count, so any two multi-threaded runs agree on them.
    pub par_batches: u64,
    /// Scheduler steps executed inside parallel batches.
    pub par_batch_steps: u64,
    /// Largest batch formed.
    pub par_batch_max: u64,
    /// Wall-clock nanoseconds spent inside `Machine::run`. Host-dependent:
    /// never compared against goldens.
    pub run_wall_ns: u64,
}

impl PerfCounters {
    /// Simulator throughput in steps per wall-clock second; `0.0` when no
    /// time was measured.
    pub fn steps_per_sec(&self) -> f64 {
        if self.run_wall_ns == 0 {
            0.0
        } else {
            self.steps as f64 * 1e9 / self.run_wall_ns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_per_sec_guards_zero_time() {
        let mut p = PerfCounters::default();
        assert_eq!(p.steps_per_sec(), 0.0);
        p.steps = 1000;
        p.run_wall_ns = 500_000_000; // 0.5 s
        assert!((p.steps_per_sec() - 2000.0).abs() < 1e-9);
    }
}
