//! The deterministic multicore machine of the CLEAR reproduction.
//!
//! Substitutes for the paper's gem5 full-system environment: drives the 19
//! workloads' atomic regions through the mini-ISA VM, the MESI/locking
//! coherence substrate, the HTM policy layer and CLEAR itself, producing
//! the statistics every figure of the paper is computed from.
//!
//! See [`Machine`] for the execution model and [`Preset`] for the four
//! evaluated configurations (B/P/C/W).
//!
//! # Examples
//!
//! Run one of the paper's benchmarks under CLEAR and inspect the headline
//! statistics:
//!
//! ```
//! use clear_machine::{Machine, Preset};
//! use clear_workloads::{by_name, Size};
//!
//! let workload = by_name("mwobject", Size::Tiny, 7).expect("known benchmark");
//! let mut machine = Machine::new(Preset::C.config(4, 5), workload);
//! let stats = machine.run();
//! machine.workload().validate(machine.memory()).expect("atomicity holds");
//! assert!(stats.commits() > 0);
//! assert!(stats.first_retry_share() <= 1.0);
//! ```
//!
//! A complete tour lives in the repository `examples/` directory; the
//! integration tests under `tests/` exercise atomicity invariants across
//! all presets.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod config;
mod energy;
mod machine;
pub mod perf;
mod stats;
mod trace;

pub use backend::{
    backend_from_config, BackendId, ClearBackend, LrwsBackend, PowerTmBackend, SleBackend,
    SpeculationBackend, TsxBackend,
};
pub use config::{MachineConfig, Preset, SpeculationKind, TimingConfig};
pub use energy::{compute_energy, EnergyBreakdown, EnergyConfig};
pub use machine::Machine;
pub use perf::PerfCounters;
pub use stats::{AbortCounts, ArStatsEntry, ModeCommits, RunStats};
pub use trace::{Trace, TraceEvent, TraceRecord};
