//! Machine configuration and the four evaluated presets.

use clear_coherence::CoherenceConfig;
use clear_core::{ClearConfig, StaticPlanSet};
use clear_htm::{HtmFlavor, LrwsConfig, RetryPolicy};
use std::sync::Arc;

use crate::EnergyConfig;

/// How far speculation can extend (§4.1 vs §4.2 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpeculationKind {
    /// Out-of-core speculation backed by HTM facilities: speculative state
    /// is tracked at the private cache, instructions retire inside the AR,
    /// and only the store queue bounds failed-mode discovery (§4.2).
    Htm,
    /// In-core speculation only (SLE-style, §4.1): the speculative window
    /// is delimited by the reorder buffer, so both ordinary speculative
    /// attempts and failed-mode discovery abort when the AR exceeds the
    /// ROB (or the SQ for stores). NS-CL is unaffected — it retires
    /// non-speculatively.
    InCore,
}

/// Fixed micro-architectural costs charged by the timing model (cycles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingConfig {
    /// Starting a speculative attempt (`XBegin`: checkpoint + RAS save).
    pub xbegin_cost: u64,
    /// Committing (`XEnd`: write-set publication).
    pub commit_cost: u64,
    /// Abort penalty (pipeline flush + checkpoint restore).
    pub abort_penalty: u64,
    /// Re-poll interval while spinning on the fallback lock or on a locked
    /// cacheline (the Fig. 6 retried-request interval).
    pub spin_interval: u64,
    /// Maximum random jitter added to the abort penalty (desynchronises
    /// convoys; deterministic via the run seed).
    pub backoff_jitter: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            xbegin_cost: 5,
            commit_cost: 10,
            abort_penalty: 100,
            spin_interval: 15,
            backoff_jitter: 16,
        }
    }
}

/// Full configuration of a simulated machine run.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of cores/threads (the paper evaluates 32).
    pub cores: usize,
    /// Coherence substrate configuration.
    pub coherence: CoherenceConfig,
    /// CLEAR configuration; `None` runs the baseline HTM only.
    pub clear: Option<ClearConfig>,
    /// Baseline HTM flavour (requester-wins or PowerTM).
    pub flavor: HtmFlavor,
    /// Bounded-retry policy before the fallback path.
    pub retry: RetryPolicy,
    /// Speculation substrate: HTM-backed (default) or in-core only (SLE).
    pub speculation: SpeculationKind,
    /// Limited read/write-set bounds (the FORTH scheme); `Some` selects the
    /// `lrws` backend, which tracks speculative footprints in two small
    /// dedicated buffers and raises capacity aborts on overflow. Mutually
    /// exclusive with `clear`.
    pub lrws: Option<LrwsConfig>,
    /// A-priori cacheline locking (the MCAS \[33\] / MAD-atomics \[16\]
    /// comparator of §2.2): ARs whose invocation carries a
    /// `static_footprint` lock it up front and execute non-speculatively
    /// from the *first* attempt — no discovery, but also no speculation in
    /// low-contention phases, and exclusivity is requested even for
    /// read-only lines. ARs without a static footprint run the baseline.
    pub a_priori_locking: bool,
    /// Analyzer-emitted static plans (`clear_analysis::workload_plans`):
    /// proved-immutable ARs skip the discovery run on their first abort
    /// (or eagerly once contention was observed) and enter NS-CL with the
    /// plan's lock set; likely-immutable ARs take a shortened discovery
    /// that only confirms root-slot stability. `None` (the default, and
    /// every preset) runs pure dynamic discovery. Requires `clear`;
    /// ignored otherwise.
    pub static_plans: Option<Arc<StaticPlanSet>>,
    /// Reorder-buffer size in instructions (Table 2: 352). Bounds every
    /// speculative attempt under [`SpeculationKind::InCore`].
    pub rob_size: u64,
    /// Store-queue entries (Table 2: 72). Bounds failed-mode discovery.
    pub sq_size: u64,
    /// Safety cap on instructions per failed-mode discovery continuation
    /// (failed executions may observe torn data and loop; real hardware is
    /// bounded by physical queues).
    pub failed_instr_cap: u64,
    /// Safety cap on instructions per attempt (workload-bug guard).
    pub attempt_instr_cap: u64,
    /// Timing constants.
    pub timing: TimingConfig,
    /// Energy model coefficients.
    pub energy: EnergyConfig,
    /// Run seed (backoff jitter; workloads carry their own seeds).
    pub seed: u64,
    /// Hard stop after this many cycles on any core (deadlock guard).
    pub max_cycles: u64,
    /// Host worker threads for deterministic intra-run parallel stepping:
    /// `1` (the default) steps strictly sequentially, `0` uses all host
    /// cores, `n ≥ 2` uses at most `n`. Results are byte-identical for
    /// every value — only the `par_batch_*` perf counters differ between
    /// `1` and `≥ 2`.
    pub sim_threads: usize,
}

impl MachineConfig {
    /// Table 2 baseline with the given core count.
    pub fn table2(cores: usize) -> Self {
        MachineConfig {
            cores,
            coherence: CoherenceConfig::table2(cores),
            clear: None,
            flavor: HtmFlavor::RequesterWins,
            retry: RetryPolicy::default(),
            speculation: SpeculationKind::Htm,
            lrws: None,
            a_priori_locking: false,
            static_plans: None,
            rob_size: 352,
            sq_size: 72,
            failed_instr_cap: 50_000,
            attempt_instr_cap: 2_000_000,
            timing: TimingConfig::default(),
            energy: EnergyConfig::default(),
            seed: 1,
            max_cycles: 2_000_000_000,
            sim_threads: 1,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::table2(32)
    }
}

/// The four configurations of the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Preset {
    /// **B** — requester-wins baseline.
    B,
    /// **P** — PowerTM.
    P,
    /// **C** — CLEAR over requester-wins.
    C,
    /// **W** — CLEAR over PowerTM.
    W,
}

impl Preset {
    /// All presets in figure order.
    pub const ALL: [Preset; 4] = [Preset::B, Preset::P, Preset::C, Preset::W];

    /// Single-letter label used in the figures.
    pub fn letter(self) -> char {
        match self {
            Preset::B => 'B',
            Preset::P => 'P',
            Preset::C => 'C',
            Preset::W => 'W',
        }
    }

    /// `true` if CLEAR is enabled.
    pub fn clear_enabled(self) -> bool {
        matches!(self, Preset::C | Preset::W)
    }

    /// Builds a machine configuration for this preset.
    pub fn config(self, cores: usize, max_retries: u32) -> MachineConfig {
        let mut c = MachineConfig::table2(cores);
        c.retry = RetryPolicy::new(max_retries);
        c.flavor = match self {
            Preset::B | Preset::C => HtmFlavor::RequesterWins,
            Preset::P | Preset::W => HtmFlavor::PowerTm,
        };
        c.clear = self.clear_enabled().then(ClearConfig::default);
        c
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_map_to_flavor_and_clear() {
        let b = Preset::B.config(4, 5);
        assert_eq!(b.flavor, HtmFlavor::RequesterWins);
        assert!(b.clear.is_none());

        let p = Preset::P.config(4, 5);
        assert_eq!(p.flavor, HtmFlavor::PowerTm);
        assert!(p.clear.is_none());

        let c = Preset::C.config(4, 5);
        assert_eq!(c.flavor, HtmFlavor::RequesterWins);
        assert!(c.clear.is_some());

        let w = Preset::W.config(4, 5);
        assert_eq!(w.flavor, HtmFlavor::PowerTm);
        assert!(w.clear.is_some());
    }

    #[test]
    fn preset_letters() {
        let s: String = Preset::ALL.iter().map(|p| p.letter()).collect();
        assert_eq!(s, "BPCW");
    }

    #[test]
    fn table2_defaults() {
        let m = MachineConfig::default();
        assert_eq!(m.cores, 32);
        assert_eq!(m.sq_size, 72);
        assert_eq!(m.rob_size, 352);
        assert_eq!(m.speculation, SpeculationKind::Htm);
        assert_eq!(m.retry.max_retries, 5);
    }
}
