//! Analytic energy model (McPAT substitute).
//!
//! The paper models energy with McPAT at 22 nm. We replace it with a linear
//! event-cost model: static power integrated over the run plus per-event
//! dynamic costs. Fig. 10's effect — less wasted (aborted) work and shorter
//! runtime ⇒ less energy — is preserved because both terms appear
//! explicitly.

use clear_coherence::CoherenceStats;

/// Energy coefficients, in arbitrary consistent units ("nJ").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyConfig {
    /// Static energy per core per cycle.
    pub static_per_core_cycle: f64,
    /// Dynamic energy per retired non-memory instruction.
    pub per_instruction: f64,
    /// Per access served by L1.
    pub per_l1: f64,
    /// Per access served by the L2 shadow.
    pub per_l2: f64,
    /// Per access served by L3 / remote cache.
    pub per_l3: f64,
    /// Per access served by memory.
    pub per_mem: f64,
    /// Per remote invalidation/downgrade message.
    pub per_invalidation: f64,
    /// Per cacheline lock/unlock operation.
    pub per_lock_op: f64,
    /// Per abort (pipeline flush, checkpoint restore).
    pub per_abort: f64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            static_per_core_cycle: 0.05,
            per_instruction: 0.01,
            per_l1: 0.02,
            per_l2: 0.06,
            per_l3: 0.25,
            per_mem: 0.60,
            per_invalidation: 0.08,
            per_lock_op: 0.05,
            per_abort: 0.80,
        }
    }
}

/// Energy totals of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Static component (leakage + clock over runtime).
    pub static_energy: f64,
    /// Dynamic component (instructions, cache/coherence events, aborts).
    pub dynamic_energy: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.static_energy + self.dynamic_energy
    }
}

/// Computes the energy of a run from the event counters.
pub fn compute_energy(
    cfg: &EnergyConfig,
    cores: usize,
    total_cycles: u64,
    instructions_retired: u64,
    aborts: u64,
    lock_ops: u64,
    coherence: &CoherenceStats,
) -> EnergyBreakdown {
    let static_energy = cfg.static_per_core_cycle * cores as f64 * total_cycles as f64;
    let dynamic_energy = cfg.per_instruction * instructions_retired as f64
        + cfg.per_l1 * coherence.l1_hits as f64
        + cfg.per_l2 * coherence.l2_hits as f64
        + cfg.per_l3 * coherence.l3_serves as f64
        + cfg.per_mem * coherence.mem_serves as f64
        + cfg.per_invalidation * coherence.invalidations as f64
        + cfg.per_lock_op * lock_ops as f64
        + cfg.per_abort * aborts as f64;
    EnergyBreakdown {
        static_energy,
        dynamic_energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_with_time_and_events() {
        let cfg = EnergyConfig::default();
        let stats = CoherenceStats::default();
        let short = compute_energy(&cfg, 4, 100, 50, 0, 0, &stats);
        let long = compute_energy(&cfg, 4, 200, 50, 0, 0, &stats);
        assert!(long.total() > short.total());
        assert_eq!(long.static_energy, 2.0 * short.static_energy);
    }

    #[test]
    fn aborts_cost_energy() {
        let cfg = EnergyConfig::default();
        let stats = CoherenceStats::default();
        let clean = compute_energy(&cfg, 1, 100, 100, 0, 0, &stats);
        let aborty = compute_energy(&cfg, 1, 100, 100, 10, 0, &stats);
        assert!(aborty.dynamic_energy > clean.dynamic_energy);
    }

    #[test]
    fn breakdown_total_is_sum() {
        let e = EnergyBreakdown {
            static_energy: 1.5,
            dynamic_energy: 2.5,
        };
        assert_eq!(e.total(), 4.0);
    }
}
