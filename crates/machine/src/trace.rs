//! Optional execution tracing: a timeline of AR lifecycle events.
//!
//! Disabled by default (zero overhead beyond a branch); enable with
//! [`Machine::enable_tracing`](crate::Machine::enable_tracing) to record
//! every attempt start, conflict, discovery transition, decision, lock
//! acquisition, commit and abort. Tests use it to assert protocol
//! sequences; the `discovery_trace` example shows the decision logic
//! standalone.

use clear_core::RetryMode;
use clear_htm::AbortKind;
use clear_isa::ArId;
use clear_mem::LineAddr;
use std::fmt;

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A new AR invocation was fetched from the workload.
    ArFetched {
        /// Static AR identity.
        ar: ArId,
    },
    /// An attempt began in the given mode.
    AttemptStart {
        /// The planned mode of this attempt.
        mode: RetryMode,
    },
    /// A conflict reached this core while it was speculating.
    ConflictReceived,
    /// The core entered failed-mode discovery instead of aborting (§4.1).
    EnterFailedMode,
    /// Discovery finished and the Fig. 2 decision tree chose a retry mode.
    Decision {
        /// The AR the decision is for.
        ar: ArId,
        /// The chosen mode.
        mode: RetryMode,
        /// Lines in the learned footprint.
        footprint: usize,
        /// Whether the footprint was assessed immutable.
        immutable: bool,
    },
    /// A cacheline lock was acquired (NS-CL / S-CL lock pass).
    LockAcquired {
        /// The locked line.
        line: LineAddr,
    },
    /// The attempt aborted.
    Abort {
        /// Why.
        kind: AbortKind,
    },
    /// The AR committed.
    Commit {
        /// The mode it committed in.
        mode: RetryMode,
        /// Total retries the invocation took.
        retries: u32,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::ArFetched { ar } => write!(f, "fetch {ar}"),
            TraceEvent::AttemptStart { mode } => write!(f, "start {mode}"),
            TraceEvent::ConflictReceived => write!(f, "conflict"),
            TraceEvent::EnterFailedMode => write!(f, "enter-failed-mode"),
            TraceEvent::Decision {
                ar,
                mode,
                footprint,
                immutable,
            } => {
                write!(
                    f,
                    "decide {ar} -> {mode} (fp={footprint}, immutable={immutable})"
                )
            }
            TraceEvent::LockAcquired { line } => write!(f, "lock {line}"),
            TraceEvent::Abort { kind } => write!(f, "abort {kind}"),
            TraceEvent::Commit { mode, retries } => {
                write!(f, "commit {mode} after {retries} retries")
            }
        }
    }
}

/// A recorded trace: `(cycle, core, event)` triples in emission order.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<(u64, usize, TraceEvent)>,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// `true` when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op while disabled).
    pub fn record(&mut self, cycle: u64, core: usize, event: TraceEvent) {
        if self.enabled {
            self.events.push((cycle, core, event));
        }
    }

    /// All recorded events.
    pub fn events(&self) -> &[(u64, usize, TraceEvent)] {
        &self.events
    }

    /// Events of one core, in order.
    pub fn core_events(&self, core: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(move |(_, c, _)| *c == core)
            .map(|(_, _, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(1, 0, TraceEvent::ConflictReceived);
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new();
        t.enable();
        t.record(5, 1, TraceEvent::ConflictReceived);
        t.record(9, 0, TraceEvent::EnterFailedMode);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].0, 5);
        assert_eq!(t.core_events(1).count(), 1);
        assert_eq!(t.core_events(0).count(), 1);
    }

    #[test]
    fn events_display() {
        let e = TraceEvent::Decision {
            ar: ArId(2),
            mode: RetryMode::NsCl,
            footprint: 3,
            immutable: true,
        };
        assert_eq!(e.to_string(), "decide AR2 -> NS-CL (fp=3, immutable=true)");
        assert_eq!(
            TraceEvent::LockAcquired { line: LineAddr(2) }.to_string(),
            "lock L0x2"
        );
    }
}
