//! Execution tracing: a per-core, cycle-timestamped stream of AR
//! lifecycle events with conflict attribution.
//!
//! Disabled by default (zero overhead beyond a branch); enable with
//! [`Machine::enable_tracing`](crate::Machine::enable_tracing) to record
//! every attempt start, conflict (with the conflicting line and aggressor
//! core), discovery transition, decision, lock acquisition (with wait
//! cycles), commit and abort (with the attempt's cycle span) as
//! [`TraceRecord`]s.
//!
//! Records flow through a bounded ring buffer: once `capacity` records
//! are retained, each new record evicts the oldest and bumps an
//! overflow-drop counter, so a runaway run degrades into a flight
//! recorder of the most recent events instead of exhausting memory. The
//! recorded/dropped totals surface through
//! [`PerfCounters`](crate::PerfCounters).
//!
//! The stream is a pure function of the simulated run, so
//! [`Trace::digest`] — an FxHash over every deterministic field — is a
//! byte-stable fingerprint of the whole protocol state machine: the
//! harness's `trace-digest` experiment gates it against a golden, and the
//! `trace` subcommand exports the stream as a Chrome-trace JSON timeline.

use clear_core::RetryMode;
use clear_htm::AbortKind;
use clear_isa::ArId;
use clear_mem::{FxHasher, LineAddr};
use std::fmt;
use std::hash::{Hash, Hasher};

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// A new AR invocation was fetched from the workload.
    ArFetched {
        /// Static AR identity.
        ar: ArId,
    },
    /// An attempt began in the given mode.
    AttemptStart {
        /// The planned mode of this attempt.
        mode: RetryMode,
    },
    /// A conflict reached this core while it was speculating.
    ConflictReceived {
        /// The line whose transactional copy was stolen.
        line: LineAddr,
        /// The core whose access (or lock acquisition) caused the steal.
        aggressor: usize,
    },
    /// The core entered failed-mode discovery instead of aborting (§4.1).
    EnterFailedMode,
    /// Discovery finished and the Fig. 2 decision tree chose a retry mode.
    Decision {
        /// The AR the decision is for.
        ar: ArId,
        /// The chosen mode.
        mode: RetryMode,
        /// Lines in the learned footprint.
        footprint: usize,
        /// Whether the footprint was assessed immutable.
        immutable: bool,
    },
    /// A cacheline lock was acquired (NS-CL / S-CL lock pass).
    LockAcquired {
        /// The locked line.
        line: LineAddr,
        /// Cycles spent spinning before this acquisition succeeded.
        /// Attributed to the first line of a lexicographical lock group;
        /// the rest of the group reports zero.
        wait_cycles: u64,
    },
    /// The attempt aborted.
    Abort {
        /// Why.
        kind: AbortKind,
        /// Cycles from the attempt's start to the abort.
        span: u64,
    },
    /// The AR committed.
    Commit {
        /// The mode it committed in.
        mode: RetryMode,
        /// Total retries the invocation took.
        retries: u32,
    },
    /// A static plan supplied the lock set and the discovery run was
    /// skipped: the AR goes straight to NS-CL.
    ///
    /// Declared last on purpose: [`Trace::digest`] hashes the derived
    /// discriminant, so appending (rather than inserting) new variants
    /// keeps plan-free runs' digests byte-identical to prior goldens.
    DiscoveryElided {
        /// The planned AR.
        ar: ArId,
        /// `true` when the plan was applied at fetch (observed contention)
        /// rather than in reaction to a conflict.
        eager: bool,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::ArFetched { ar } => write!(f, "fetch {ar}"),
            TraceEvent::AttemptStart { mode } => write!(f, "start {mode}"),
            TraceEvent::ConflictReceived { line, aggressor } => {
                write!(f, "conflict {line} from core{aggressor}")
            }
            TraceEvent::EnterFailedMode => write!(f, "enter-failed-mode"),
            TraceEvent::Decision {
                ar,
                mode,
                footprint,
                immutable,
            } => {
                write!(
                    f,
                    "decide {ar} -> {mode} (fp={footprint}, immutable={immutable})"
                )
            }
            TraceEvent::DiscoveryElided { ar, eager } => {
                write!(f, "elide-discovery {ar} (eager={eager})")
            }
            TraceEvent::LockAcquired { line, wait_cycles } => {
                write!(f, "lock {line} (waited {wait_cycles})")
            }
            TraceEvent::Abort { kind, span } => write!(f, "abort {kind} after {span} cycles"),
            TraceEvent::Commit { mode, retries } => {
                write!(f, "commit {mode} after {retries} retries")
            }
        }
    }
}

impl TraceEvent {
    /// Short category label, stable across formatting changes — the name
    /// Chrome-trace exporters and histograms group by.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::ArFetched { .. } => "fetch",
            TraceEvent::AttemptStart { .. } => "attempt",
            TraceEvent::ConflictReceived { .. } => "conflict",
            TraceEvent::EnterFailedMode => "enter-failed-mode",
            TraceEvent::Decision { .. } => "decision",
            TraceEvent::DiscoveryElided { .. } => "elide-discovery",
            TraceEvent::LockAcquired { .. } => "lock",
            TraceEvent::Abort { .. } => "abort",
            TraceEvent::Commit { .. } => "commit",
        }
    }
}

/// One recorded event with its cycle timestamp and core.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Core-local cycle at which the event was emitted.
    pub cycle: u64,
    /// The emitting core.
    pub core: usize,
    /// What happened.
    pub event: TraceEvent,
}

/// A recorded trace: a bounded ring buffer of [`TraceRecord`]s.
#[derive(Clone, Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    buf: Vec<TraceRecord>,
    /// Index of the oldest retained record once the buffer has wrapped.
    head: usize,
    recorded: u64,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl Trace {
    /// Default ring capacity: large enough that the bundled workloads at
    /// every harness size retain their full streams.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a disabled trace with the default ring capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a disabled trace retaining at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be nonzero");
        Trace {
            enabled: false,
            capacity,
            buf: Vec::new(),
            head: 0,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// `true` when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an event (no-op while disabled). Once the ring is full the
    /// oldest record is evicted and counted as dropped.
    pub fn record(&mut self, cycle: u64, core: usize, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.recorded += 1;
        let rec = TraceRecord { cycle, core, event };
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Total records emitted while enabled (retained or dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records evicted by ring-buffer overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Retained records in emission order, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Events of one core, in order.
    pub fn core_events(&self, core: usize) -> impl Iterator<Item = &TraceEvent> {
        self.records()
            .filter(move |r| r.core == core)
            .map(|r| &r.event)
    }

    /// Commit events in serialization order.
    ///
    /// [`crate::Machine`] records a [`TraceEvent::Commit`] at the instant
    /// an attempt's stores become globally visible (speculative modes
    /// drain the store queue immediately after; locked and fallback modes
    /// wrote to memory earlier, but under locks that are only released
    /// here), so the order of commit events across cores *is* a valid
    /// serialization of the run's atomic regions. Differential oracles
    /// replay invocations sequentially in this order. Yields
    /// `(core, mode, retries)` per commit.
    pub fn commits(&self) -> impl Iterator<Item = (usize, RetryMode, u32)> + '_ {
        self.records().filter_map(|r| match r.event {
            TraceEvent::Commit { mode, retries } => Some((r.core, mode, retries)),
            _ => None,
        })
    }

    /// FxHash fingerprint of the stream: every deterministic field of
    /// every retained record plus the recorded/dropped totals. Two runs
    /// with the same options produce the same digest; any reordering of
    /// the protocol state machine changes it even when aggregate
    /// statistics coincide.
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        self.recorded.hash(&mut h);
        self.dropped.hash(&mut h);
        for r in self.records() {
            r.hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(
            1,
            0,
            TraceEvent::ConflictReceived {
                line: LineAddr(1),
                aggressor: 2,
            },
        );
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new();
        t.enable();
        t.record(
            5,
            1,
            TraceEvent::ConflictReceived {
                line: LineAddr(4),
                aggressor: 0,
            },
        );
        t.record(9, 0, TraceEvent::EnterFailedMode);
        assert_eq!(t.len(), 2);
        assert_eq!(t.records().next().unwrap().cycle, 5);
        assert_eq!(t.core_events(1).count(), 1);
        assert_eq!(t.core_events(0).count(), 1);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let mut t = Trace::with_capacity(2);
        t.enable();
        for cycle in 0..5 {
            t.record(cycle, 0, TraceEvent::EnterFailedMode);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 3);
        let cycles: Vec<u64> = t.records().map(|r| r.cycle).collect();
        assert_eq!(cycles, [3, 4], "oldest evicted, order preserved");
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mk = |cycles: &[u64]| {
            let mut t = Trace::new();
            t.enable();
            for &c in cycles {
                t.record(c, 1, TraceEvent::EnterFailedMode);
            }
            t.digest()
        };
        assert_eq!(mk(&[1, 2, 3]), mk(&[1, 2, 3]));
        assert_ne!(mk(&[1, 2, 3]), mk(&[1, 3, 2]), "reordering must show");
        assert_ne!(mk(&[1, 2]), mk(&[1, 2, 3]));
    }

    #[test]
    fn events_display() {
        let e = TraceEvent::Decision {
            ar: ArId(2),
            mode: RetryMode::NsCl,
            footprint: 3,
            immutable: true,
        };
        assert_eq!(e.to_string(), "decide AR2 -> NS-CL (fp=3, immutable=true)");
        assert_eq!(
            TraceEvent::LockAcquired {
                line: LineAddr(2),
                wait_cycles: 7
            }
            .to_string(),
            "lock L0x2 (waited 7)"
        );
        assert_eq!(
            TraceEvent::ConflictReceived {
                line: LineAddr(3),
                aggressor: 5
            }
            .to_string(),
            "conflict L0x3 from core5"
        );
        assert_eq!(
            TraceEvent::Abort {
                kind: AbortKind::Nacked,
                span: 42
            }
            .to_string(),
            "abort nacked after 42 cycles"
        );
    }
}
