//! Pluggable speculation backends: the attempt/conflict/fallback policy
//! surface of the machine as a trait.
//!
//! The machine's mechanism — coherence, scheduling, batching, workloads,
//! statistics — is shared by every HTM design point; what differs between
//! CLEAR, requester-wins TSX, PowerTM, SLE and the FORTH limited
//! read/write-set scheme is *policy*: how conflicts are arbitrated, when
//! an AR gives up and takes the fallback path, whether cacheline-locked
//! re-execution (CLEAR) is available, how far speculation may extend, and
//! which structural bounds raise capacity aborts. [`SpeculationBackend`]
//! captures exactly that surface, so a new backend is one `impl` instead
//! of a fork of the attempt/conflict/locking paths.
//!
//! [`Machine::new`](crate::Machine::new) derives the backend from the
//! configuration axes ([`backend_from_config`]), which keeps every
//! existing preset byte-identical;
//! [`Machine::with_backend`](crate::Machine::with_backend) accepts any
//! custom implementation. [`BackendId`] enumerates the five built-in
//! backends for harnesses that sweep the design space.

use crate::{MachineConfig, SpeculationKind};
use clear_core::{ClearConfig, RetryMode};
use clear_htm::{resolve_conflict, HtmFlavor, LrwsConfig, Resolution, RetryPolicy, TxInfo};

/// The policy surface of one speculation design point.
///
/// Implementations must be deterministic pure functions of their inputs:
/// the machine calls these on the hot path and replays must be
/// byte-identical. The default methods encode the common best-effort-HTM
/// behaviour; backends override only where they differ.
pub trait SpeculationBackend: std::fmt::Debug + Send + Sync {
    /// Short stable name (report keys, trace phases, CLI selection).
    fn name(&self) -> &'static str;

    /// CLEAR configuration when cacheline-locked re-execution (NS-CL/S-CL
    /// discovery, ERT/ALT/CRT) is part of this backend; `None` disables
    /// the whole CLEAR path.
    fn clear(&self) -> Option<&ClearConfig> {
        None
    }

    /// How far speculation extends: HTM-backed (cache-tracked) or in-core
    /// only (ROB/SQ-delimited, SLE-style).
    fn speculation(&self) -> SpeculationKind {
        SpeculationKind::Htm
    }

    /// Arbitrates a transactional conflict between `requester` and the
    /// conflicting `victims`.
    fn resolve(&self, requester: TxInfo, victims: &[TxInfo]) -> Resolution;

    /// `true` when a once-aborted transaction competes for the global
    /// PowerTM power token on its retry.
    fn acquires_power_token(&self) -> bool {
        false
    }

    /// `true` when an AR with `counted_retries` failed attempts must take
    /// the fallback path instead of retrying speculatively.
    fn must_fall_back(&self, policy: &RetryPolicy, counted_retries: u32) -> bool {
        policy.must_fall_back(counted_retries)
    }

    /// `true` for re-execution modes whose attempts cannot abort once
    /// started — the paper's single-retry bound. Only CLEAR's NS-CL mode
    /// makes that promise (every footprint line is held locked and the
    /// body retires non-speculatively); best-effort backends guarantee
    /// nothing, so conformance oracles scanning for a violated bound get
    /// an honest `false` instead of a CLEAR-specific enum check that
    /// silently passes.
    fn guarantees_commit(&self, mode: RetryMode) -> bool {
        self.clear().is_some() && mode == RetryMode::NsCl
    }

    /// Read/write-set capacity bounds when this backend tracks
    /// speculative footprints in limited dedicated buffers (the FORTH
    /// scheme); `None` leaves footprint tracking to the cache hierarchy.
    fn rw_limits(&self) -> Option<LrwsConfig> {
        None
    }
}

/// Intel-TSX-like requester-wins best-effort HTM (preset **B**).
#[derive(Clone, Copy, Debug, Default)]
pub struct TsxBackend;

impl SpeculationBackend for TsxBackend {
    fn name(&self) -> &'static str {
        "tsx"
    }

    fn resolve(&self, requester: TxInfo, victims: &[TxInfo]) -> Resolution {
        resolve_conflict(HtmFlavor::RequesterWins, requester, victims)
    }
}

/// PowerTM: requester-wins plus a single global power token whose holder
/// wins every conflict (preset **P**).
#[derive(Clone, Copy, Debug, Default)]
pub struct PowerTmBackend;

impl SpeculationBackend for PowerTmBackend {
    fn name(&self) -> &'static str {
        "powertm"
    }

    fn resolve(&self, requester: TxInfo, victims: &[TxInfo]) -> Resolution {
        resolve_conflict(HtmFlavor::PowerTm, requester, victims)
    }

    fn acquires_power_token(&self) -> bool {
        true
    }
}

/// SLE-style in-core speculation: the reorder buffer delimits every
/// speculative window (§4.1), conflicts resolve requester-wins.
#[derive(Clone, Copy, Debug)]
pub struct SleBackend {
    /// Conflict arbitration underneath the in-core window (requester-wins
    /// unless a PowerTM substrate is being modelled).
    pub flavor: HtmFlavor,
}

impl Default for SleBackend {
    fn default() -> Self {
        SleBackend {
            flavor: HtmFlavor::RequesterWins,
        }
    }
}

impl SpeculationBackend for SleBackend {
    fn name(&self) -> &'static str {
        "sle"
    }

    fn speculation(&self) -> SpeculationKind {
        SpeculationKind::InCore
    }

    fn resolve(&self, requester: TxInfo, victims: &[TxInfo]) -> Resolution {
        resolve_conflict(self.flavor, requester, victims)
    }

    fn acquires_power_token(&self) -> bool {
        self.flavor == HtmFlavor::PowerTm
    }
}

/// CLEAR over a best-effort substrate: single-retry bounding via
/// discovery and cacheline-locked re-execution (presets **C**/**W**, and
/// the CLEAR-SLE extension when `speculation` is in-core).
#[derive(Clone, Copy, Debug)]
pub struct ClearBackend {
    /// CLEAR structure sizes and policies.
    pub clear: ClearConfig,
    /// The substrate HTM flavour (requester-wins for C, PowerTM for W).
    pub flavor: HtmFlavor,
    /// The substrate speculation kind (HTM-backed or in-core).
    pub speculation: SpeculationKind,
}

impl Default for ClearBackend {
    fn default() -> Self {
        ClearBackend {
            clear: ClearConfig::default(),
            flavor: HtmFlavor::RequesterWins,
            speculation: SpeculationKind::Htm,
        }
    }
}

impl SpeculationBackend for ClearBackend {
    fn name(&self) -> &'static str {
        "clear"
    }

    fn clear(&self) -> Option<&ClearConfig> {
        Some(&self.clear)
    }

    fn speculation(&self) -> SpeculationKind {
        self.speculation
    }

    fn resolve(&self, requester: TxInfo, victims: &[TxInfo]) -> Resolution {
        resolve_conflict(self.flavor, requester, victims)
    }

    fn acquires_power_token(&self) -> bool {
        self.flavor == HtmFlavor::PowerTm
    }
}

/// The FORTH limited read/write-set HTM: speculative footprints live in
/// two small dedicated per-core buffers; overflowing either raises a
/// capacity abort. No ISA or coherence-protocol changes — conflicts still
/// resolve requester-wins over the unmodified protocol, and the bounded
/// retry policy plus the non-speculative fallback guarantee progress.
#[derive(Clone, Copy, Debug, Default)]
pub struct LrwsBackend {
    /// The buffer bounds, in cachelines.
    pub limits: LrwsConfig,
}

impl SpeculationBackend for LrwsBackend {
    fn name(&self) -> &'static str {
        "lrws"
    }

    fn resolve(&self, requester: TxInfo, victims: &[TxInfo]) -> Resolution {
        resolve_conflict(HtmFlavor::RequesterWins, requester, victims)
    }

    fn rw_limits(&self) -> Option<LrwsConfig> {
        Some(self.limits)
    }
}

/// Derives the backend a configuration describes. Precedence mirrors the
/// config axes' specificity: `lrws` bounds select the limited
/// read/write-set backend, a `clear` config selects CLEAR (over its
/// flavour/speculation substrate), in-core speculation selects SLE, and
/// the flavour picks between plain TSX and PowerTM.
///
/// # Panics
///
/// Panics when both `lrws` and `clear` are set: the limited-R/W-set
/// scheme replaces cache-based footprint tracking, so CLEAR's discovery
/// path (which relies on it) cannot be layered on top.
pub fn backend_from_config(cfg: &MachineConfig) -> Box<dyn SpeculationBackend> {
    if let Some(limits) = cfg.lrws {
        assert!(
            cfg.clear.is_none(),
            "lrws and clear are mutually exclusive backends"
        );
        return Box::new(LrwsBackend { limits });
    }
    if let Some(clear) = cfg.clear {
        return Box::new(ClearBackend {
            clear,
            flavor: cfg.flavor,
            speculation: cfg.speculation,
        });
    }
    match (cfg.speculation, cfg.flavor) {
        (SpeculationKind::InCore, flavor) => Box::new(SleBackend { flavor }),
        (SpeculationKind::Htm, HtmFlavor::PowerTm) => Box::new(PowerTmBackend),
        (SpeculationKind::Htm, HtmFlavor::RequesterWins) => Box::new(TsxBackend),
    }
}

/// The five built-in backends, for harnesses sweeping the design space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendId {
    /// Requester-wins TSX baseline.
    Tsx,
    /// PowerTM.
    PowerTm,
    /// In-core (SLE) speculation.
    Sle,
    /// CLEAR over requester-wins.
    Clear,
    /// Limited read/write-set HTM.
    Lrws,
}

impl BackendId {
    /// All built-in backends in shootout column order.
    pub const ALL: [BackendId; 5] = [
        BackendId::Tsx,
        BackendId::PowerTm,
        BackendId::Sle,
        BackendId::Clear,
        BackendId::Lrws,
    ];

    /// The backend's stable name.
    pub fn name(self) -> &'static str {
        match self {
            BackendId::Tsx => "tsx",
            BackendId::PowerTm => "powertm",
            BackendId::Sle => "sle",
            BackendId::Clear => "clear",
            BackendId::Lrws => "lrws",
        }
    }

    /// Resolves a name back to a backend.
    pub fn from_name(name: &str) -> Option<Self> {
        BackendId::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Builds the Table 2 machine configuration running this backend.
    pub fn config(self, cores: usize, max_retries: u32) -> MachineConfig {
        use crate::Preset;
        match self {
            BackendId::Tsx => Preset::B.config(cores, max_retries),
            BackendId::PowerTm => Preset::P.config(cores, max_retries),
            BackendId::Clear => Preset::C.config(cores, max_retries),
            BackendId::Sle => {
                let mut c = Preset::B.config(cores, max_retries);
                c.speculation = SpeculationKind::InCore;
                c
            }
            BackendId::Lrws => {
                let mut c = Preset::B.config(cores, max_retries);
                c.lrws = Some(LrwsConfig::default());
                c
            }
        }
    }
}

impl std::fmt::Display for BackendId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Preset;

    #[test]
    fn presets_map_to_the_expected_backends() {
        let b = backend_from_config(&Preset::B.config(4, 5));
        assert_eq!(b.name(), "tsx");
        assert!(!b.acquires_power_token());
        let p = backend_from_config(&Preset::P.config(4, 5));
        assert_eq!(p.name(), "powertm");
        assert!(p.acquires_power_token());
        let c = backend_from_config(&Preset::C.config(4, 5));
        assert_eq!(c.name(), "clear");
        assert!(c.clear().is_some());
        let w = backend_from_config(&Preset::W.config(4, 5));
        assert_eq!(w.name(), "clear");
        assert!(w.acquires_power_token());
    }

    #[test]
    fn sle_and_lrws_axes_select_their_backends() {
        let mut cfg = Preset::B.config(4, 5);
        cfg.speculation = SpeculationKind::InCore;
        let sle = backend_from_config(&cfg);
        assert_eq!(sle.name(), "sle");
        assert_eq!(sle.speculation(), SpeculationKind::InCore);

        let cfg = BackendId::Lrws.config(4, 5);
        let lrws = backend_from_config(&cfg);
        assert_eq!(lrws.name(), "lrws");
        assert_eq!(lrws.rw_limits(), Some(LrwsConfig::default()));
        assert!(lrws.clear().is_none());
    }

    #[test]
    fn clear_sle_combination_keeps_both_axes() {
        let mut cfg = Preset::C.config(4, 5);
        cfg.speculation = SpeculationKind::InCore;
        let b = backend_from_config(&cfg);
        assert_eq!(b.name(), "clear");
        assert_eq!(b.speculation(), SpeculationKind::InCore);
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn lrws_plus_clear_is_rejected() {
        let mut cfg = Preset::C.config(4, 5);
        cfg.lrws = Some(LrwsConfig::default());
        backend_from_config(&cfg);
    }

    #[test]
    fn only_clear_guarantees_nscl_commits() {
        let clear = ClearBackend::default();
        assert!(clear.guarantees_commit(RetryMode::NsCl));
        assert!(!clear.guarantees_commit(RetryMode::SCl));
        assert!(!clear.guarantees_commit(RetryMode::Fallback));
        for b in [
            Box::new(TsxBackend) as Box<dyn SpeculationBackend>,
            Box::new(PowerTmBackend),
            Box::new(SleBackend::default()),
            Box::new(LrwsBackend::default()),
        ] {
            assert!(
                !b.guarantees_commit(RetryMode::NsCl),
                "{} claims a bound it cannot enforce",
                b.name()
            );
        }
    }

    #[test]
    fn backend_resolution_matches_the_flavor_policy() {
        use clear_coherence::CoreId;
        let plain = |core| TxInfo {
            core: CoreId(core),
            power: false,
            scl: false,
        };
        let mut power_victim = plain(1);
        power_victim.power = true;
        // Requester-wins backends ignore the power bit.
        for b in [
            Box::new(TsxBackend) as Box<dyn SpeculationBackend>,
            Box::new(SleBackend::default()),
            Box::new(LrwsBackend::default()),
            Box::new(ClearBackend::default()),
        ] {
            assert_eq!(
                b.resolve(plain(0), &[power_victim]),
                Resolution::AbortVictims,
                "{}",
                b.name()
            );
        }
        assert_eq!(
            PowerTmBackend.resolve(plain(0), &[power_victim]),
            Resolution::NackRequester
        );
    }

    #[test]
    fn backend_ids_round_trip_names_and_configs() {
        for id in BackendId::ALL {
            assert_eq!(BackendId::from_name(id.name()), Some(id));
            let cfg = id.config(8, 3);
            assert_eq!(cfg.cores, 8);
            assert_eq!(cfg.retry.max_retries, 3);
            assert_eq!(backend_from_config(&cfg).name(), id.name());
        }
        assert_eq!(BackendId::from_name("no-such"), None);
    }
}
