//! Protocol-level property tests: for any sequence of reads, writes,
//! locks, unlocks and transactional clears, the MESI single-writer /
//! multiple-reader invariant and lock exclusivity must hold.

use clear_coherence::{Access, CoherenceConfig, CoherenceSystem, CoreId, LockFail, TxTrack};
use clear_mem::LineAddr;
use proptest::prelude::*;

const CORES: usize = 4;
const LINES: u64 = 16;

#[derive(Clone, Debug)]
enum Op {
    Read { core: usize, line: u64, tx: bool },
    Write { core: usize, line: u64, tx: bool },
    Lock { core: usize, line: u64 },
    UnlockAll { core: usize },
    ClearTx { core: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..CORES, 0..LINES, any::<bool>()).prop_map(|(core, line, tx)| Op::Read { core, line, tx }),
        (0..CORES, 0..LINES, any::<bool>()).prop_map(|(core, line, tx)| Op::Write { core, line, tx }),
        (0..CORES, 0..LINES).prop_map(|(core, line)| Op::Lock { core, line }),
        (0..CORES).prop_map(|core| Op::UnlockAll { core }),
        (0..CORES).prop_map(|core| Op::ClearTx { core }),
    ]
}

/// Single-writer / multiple-reader: if any core holds a line exclusively,
/// no other core caches it; a locked line is held exclusively by its
/// locker.
fn check_invariants(sys: &CoherenceSystem) {
    for line in 0..LINES {
        let l = LineAddr(line);
        let exclusive: Vec<usize> =
            (0..CORES).filter(|&c| sys.has_exclusive(CoreId(c), l)).collect();
        assert!(exclusive.len() <= 1, "line {line}: two exclusive holders {exclusive:?}");
        if let Some(&owner) = exclusive.first() {
            for c in 0..CORES {
                if c != owner {
                    assert!(
                        !sys.is_cached(CoreId(c), l),
                        "line {line}: core {c} caches a line core {owner} holds exclusively"
                    );
                }
            }
        }
        if let Some(holder) = sys.locked_by(l) {
            assert!(
                sys.has_exclusive(holder, l),
                "line {line}: locked by {holder} without exclusive permission"
            );
        }
    }
}

fn apply_op(sys: &mut CoherenceSystem, op: &Op) {
    match *op {
        Op::Read { core, line, tx } => {
            let l = LineAddr(line);
            if sys.locked_by(l).map(|h| h != CoreId(core)).unwrap_or(false) {
                return; // policy layer would retry/NACK; never apply
            }
            let track = if tx { TxTrack::Read } else { TxTrack::None };
            match sys.apply(CoreId(core), l, Access::Read, track) {
                Ok(_) | Err(LockFail::Capacity) => {}
                Err(e) => panic!("unexpected {e}"),
            }
        }
        Op::Write { core, line, tx } => {
            let l = LineAddr(line);
            if sys.locked_by(l).map(|h| h != CoreId(core)).unwrap_or(false) {
                return;
            }
            let track = if tx { TxTrack::Write } else { TxTrack::None };
            match sys.apply(CoreId(core), l, Access::Write, track) {
                Ok(_) | Err(LockFail::Capacity) => {}
                Err(e) => panic!("unexpected {e}"),
            }
        }
        Op::Lock { core, line } => {
            let _ = sys.lock_line(CoreId(core), LineAddr(line));
        }
        Op::UnlockAll { core } => sys.unlock_all(CoreId(core)),
        Op::ClearTx { core } => sys.clear_tx(CoreId(core)),
    }
}

proptest! {
    #[test]
    fn swmr_and_lock_exclusivity_hold(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut sys = CoherenceSystem::new(CoherenceConfig::small(CORES));
        for op in &ops {
            apply_op(&mut sys, op);
            check_invariants(&sys);
        }
    }

    /// Locks are never silently dropped: after a successful lock and before
    /// any unlock by that core, the line reports the right holder.
    #[test]
    fn lock_holder_is_stable(
        pre in prop::collection::vec(op_strategy(), 0..50),
        line in 0..LINES,
        post in prop::collection::vec(op_strategy(), 0..50),
    ) {
        let mut sys = CoherenceSystem::new(CoherenceConfig::small(CORES));
        for op in &pre {
            apply_op(&mut sys, op);
        }
        if sys.lock_line(CoreId(0), LineAddr(line)).is_ok() {
            for op in &post {
                // Skip core 0's own unlocks to test stability.
                if matches!(op, Op::UnlockAll { core: 0 }) {
                    continue;
                }
                apply_op(&mut sys, op);
                prop_assert_eq!(sys.locked_by(LineAddr(line)), Some(CoreId(0)));
            }
        }
    }

    /// clear_tx leaves no transactional lines behind.
    #[test]
    fn clear_tx_is_complete(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let mut sys = CoherenceSystem::new(CoherenceConfig::small(CORES));
        for op in &ops {
            apply_op(&mut sys, op);
        }
        for c in 0..CORES {
            sys.clear_tx(CoreId(c));
            prop_assert!(sys.tx_lines(CoreId(c)).is_empty());
        }
    }

    /// Probe never mutates: two identical probes agree, and an apply-free
    /// sequence of probes leaves all inspection results unchanged.
    #[test]
    fn probe_is_pure(
        ops in prop::collection::vec(op_strategy(), 1..60),
        core in 0..CORES,
        line in 0..LINES,
    ) {
        let mut sys = CoherenceSystem::new(CoherenceConfig::small(CORES));
        for op in &ops {
            apply_op(&mut sys, op);
        }
        let l = LineAddr(line);
        let p1 = sys.probe(CoreId(core), l, Access::Write);
        let p2 = sys.probe(CoreId(core), l, Access::Write);
        prop_assert_eq!(p1.latency, p2.latency);
        prop_assert_eq!(p1.locked_by_other, p2.locked_by_other);
        prop_assert_eq!(p1.remote_impacts.len(), p2.remote_impacts.len());
    }
}
