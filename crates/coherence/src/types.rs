//! Shared coherence-layer types.

use std::fmt;

/// Identifier of a simulated core.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Kind of memory access at the coherence layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// Read permission (Shared is enough).
    Read,
    /// Write permission (exclusive ownership required).
    Write,
}

/// MESI stable states of a line in a private cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Exclusive ownership, dirty with respect to memory.
    Modified,
    /// Exclusive ownership, clean.
    Exclusive,
    /// Shared, read-only.
    Shared,
}

impl MesiState {
    /// `true` for states granting write permission.
    pub fn is_exclusive(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }
}

/// How an access should be recorded in the requester's transactional sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxTrack {
    /// Non-transactional access (outside any AR, or fallback execution).
    None,
    /// Add the line to the transactional read set.
    Read,
    /// Add the line to the transactional write set.
    Write,
}

/// Which level of the hierarchy served an access (Table 2 latencies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// Requester's L1 (1 cycle).
    L1,
    /// Requester's L2 shadow (10 cycles).
    L2,
    /// Shared L3 / remote cache via the directory (45 cycles).
    L3,
    /// Main memory (80 cycles).
    Memory,
}

/// Why a lock acquisition could not complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockFail {
    /// The line is currently locked by another core; the requester should
    /// retry (the directory is released in between — Fig. 6 behaviour).
    LockedBy(CoreId),
    /// The requester's cache cannot hold the line together with its other
    /// pinned (locked/transactional) lines.
    Capacity,
}

impl fmt::Display for LockFail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockFail::LockedBy(c) => write!(f, "line locked by {c}"),
            LockFail::Capacity => write!(f, "cache capacity exhausted"),
        }
    }
}

impl std::error::Error for LockFail {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesi_exclusivity() {
        assert!(MesiState::Modified.is_exclusive());
        assert!(MesiState::Exclusive.is_exclusive());
        assert!(!MesiState::Shared.is_exclusive());
    }

    #[test]
    fn core_id_display() {
        assert_eq!(CoreId(3).to_string(), "core3");
    }

    #[test]
    fn lock_fail_display() {
        assert_eq!(
            LockFail::LockedBy(CoreId(1)).to_string(),
            "line locked by core1"
        );
        assert_eq!(LockFail::Capacity.to_string(), "cache capacity exhausted");
    }
}
