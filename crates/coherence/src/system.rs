//! The central coherence system: private caches + a sharded directory.
//!
//! # Sharding (many-core scaling)
//!
//! Directory state — per-line sharer sets, owners, lock holders and LLC
//! presence — is partitioned into [`DirShard`]s by line-address range:
//! shard `s` covers lines `[s·64, (s+1)·64)`, so each shard's LLC presence
//! is exactly one `u64` word and a line's shard/slot is a shift/mask.
//! Per-core state (the private cache, L2 shadow and the tx/lock tracking
//! lists) is grouped into [`PerCore`], so one core's state and one shard
//! can be borrowed mutably and independently — the basis of the machine's
//! deterministic intra-run parallelism (see
//! [`CoherenceSystem::split_local_views`]).
//!
//! Sharer sets are [`CoreBitSet`]s: allocation-free at ≤64 cores, growable
//! beyond, iterating in the same ascending-core-id order the previous
//! fixed-width `u64` masks produced.

use crate::{Access, CoherenceConfig, CoreId, LockFail, MesiState, ServedBy, TxTrack};
use clear_mem::{disjoint_muts, CacheGeometry, CoreBitSet, LineAddr, LineBitSet, SetAssocCache};

/// Lines per directory shard (one `u64` of LLC presence per shard).
const SHARD_LINES_LOG2: u64 = 6;

/// Per-line metadata in a private cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct LineMeta {
    mesi: MesiState,
    /// Cacheline lock held by this core (NS-CL/S-CL execution, §4.4).
    locked: bool,
    /// Line is in the core's transactional read set.
    tx_read: bool,
    /// Line is in the core's transactional write set.
    tx_write: bool,
}

impl LineMeta {
    fn pinned(&self) -> bool {
        self.locked || self.tx_read || self.tx_write
    }
}

/// Directory entry for one line.
#[derive(Clone, Debug, Default)]
struct DirEntry {
    /// Core holding the line in M/E, if any.
    owner: Option<CoreId>,
    /// Cores holding the line (including the owner).
    sharers: CoreBitSet,
    /// Core holding the line *locked*, if any.
    locked_by: Option<CoreId>,
}

/// One directory shard: the entries and LLC presence bits for a 64-line
/// address range.
#[derive(Debug, Default)]
struct DirShard {
    /// Entries indexed by `line & 63`, grown on demand.
    entries: Vec<DirEntry>,
    /// LLC presence, one bit per line in the shard's range.
    llc: u64,
    /// Cacheline locks acquired on this shard's lines (metrics hook; see
    /// [`CoherenceSystem::shard_profiles`]).
    locks: u64,
    /// Lock requests refused because another core held a line of this
    /// shard locked.
    lock_nacks: u64,
}

/// All coherence state owned by a single core, grouped so a batch of cores
/// can be borrowed mutably and disjointly for parallel stepping.
#[derive(Debug)]
struct PerCore {
    cache: SetAssocCache<LineMeta>,
    /// L2 shadow: lines evicted from L1 still "near" the core.
    l2_shadow: LineBitSet,
    /// Lines whose transactional bits were set since the last
    /// [`CoherenceSystem::clear_tx`]: lets commit/abort clear exactly those
    /// lines instead of sweeping every cache way. May hold stale entries
    /// for lines since invalidated — clearing skips them.
    tx_touched: Vec<LineAddr>,
    /// Lines locked since the last [`CoherenceSystem::unlock_all`] (same
    /// idea; unlocking a stale or already-released entry is a no-op).
    locks_held: Vec<LineAddr>,
}

/// Effect an access would have on one remote core's copy of the line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteImpact {
    /// The line whose remote copy is impacted. Single-line accesses only
    /// ever produce impacts for the accessed line; group lock acquisitions
    /// return impacts spanning the group, and this field attributes each
    /// one to its exact line (conflict attribution in the trace).
    pub line: LineAddr,
    /// The remote core.
    pub core: CoreId,
    /// Line is in the remote core's transactional read set.
    pub tx_read: bool,
    /// Line is in the remote core's transactional write set.
    pub tx_write: bool,
    /// The remote copy would be invalidated (write) rather than merely
    /// downgraded to Shared (read hitting an exclusive owner).
    pub would_invalidate: bool,
}

impl RemoteImpact {
    /// `true` if the impacted copy belongs to a transactional set, i.e. the
    /// access is a *transactional conflict* under eager conflict detection.
    pub fn is_tx_conflict(&self, requester_writes: bool) -> bool {
        if requester_writes {
            self.tx_read || self.tx_write
        } else {
            self.tx_write
        }
    }
}

/// Result of [`CoherenceSystem::probe`]: what an access would do.
#[derive(Clone, Debug)]
pub struct ProbeResult {
    /// Level that would serve the access.
    pub served_by: ServedBy,
    /// Latency in cycles if the access proceeds.
    pub latency: u64,
    /// Core currently holding the line locked, when it is not the
    /// requester. Such accesses must not be applied — the policy layer
    /// retries or NACKs them.
    pub locked_by_other: Option<CoreId>,
    /// Remote copies this access would invalidate or downgrade.
    pub remote_impacts: Vec<RemoteImpact>,
    /// Way index of the requester's own copy, so a fused probe/apply pair
    /// skips the second set scan. Only valid while the requester's cache
    /// is unmutated, which the probe/apply contract already guarantees.
    pub(crate) own_way: Option<usize>,
}

/// Result of a successfully applied access.
#[derive(Clone, Debug)]
pub struct ApplyOk {
    /// Level that served the access.
    pub served_by: ServedBy,
    /// Latency in cycles.
    pub latency: u64,
    /// Remote copies that were invalidated or downgraded, with their
    /// transactional bits as they were *before* the access. The policy
    /// layer aborts the corresponding transactions.
    pub remote_impacts: Vec<RemoteImpact>,
}

/// Event counters for the energy model and traffic statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Accesses served by the requester's L1.
    pub l1_hits: u64,
    /// Accesses served by the L2 shadow.
    pub l2_hits: u64,
    /// Accesses served by L3 / a remote cache.
    pub l3_serves: u64,
    /// Accesses served by main memory.
    pub mem_serves: u64,
    /// Remote copies invalidated or downgraded.
    pub invalidations: u64,
    /// Cacheline lock acquisitions.
    pub locks: u64,
    /// Cacheline lock releases.
    pub unlocks: u64,
    /// Lock attempts refused because another core held the line locked.
    pub lock_conflicts: u64,
}

impl CoherenceStats {
    /// Total coherence requests served, at any level (the simulator's
    /// perf-counter notion of "coherence traffic volume").
    pub fn requests(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.l3_serves + self.mem_serves
    }
}

/// Occupancy and lock traffic of one directory shard (see
/// [`CoherenceSystem::shard_profiles`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardProfile {
    /// Shard index (`line >> 6`).
    pub shard: usize,
    /// Directory entries instantiated in the shard.
    pub lines: u64,
    /// Cacheline locks acquired on the shard's lines.
    pub locks: u64,
    /// Lock requests refused because a line of the shard was held locked
    /// by another core.
    pub lock_nacks: u64,
}

/// The coherence substrate: one private cache per core plus a sharded
/// directory.
///
/// See the [crate docs](crate) for the probe/apply protocol and the module
/// docs for the shard layout.
#[derive(Debug)]
pub struct CoherenceSystem {
    config: CoherenceConfig,
    /// Per-core state, indexed by core id.
    per_core: Vec<PerCore>,
    /// Directory shards indexed by `line >> 6`. [`clear_mem::Memory`]
    /// bump-allocates, so live lines are a dense prefix and a flat vector
    /// of shards (grown on demand) beats any hash map on the hot path.
    shards: Vec<DirShard>,
    stats: CoherenceStats,
}

#[inline]
fn slot(line: LineAddr) -> (usize, usize) {
    (
        (line.0 >> SHARD_LINES_LOG2) as usize,
        (line.0 & ((1 << SHARD_LINES_LOG2) - 1)) as usize,
    )
}

impl CoherenceSystem {
    /// Creates the system for `config.cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero cores.
    pub fn new(config: CoherenceConfig) -> Self {
        assert!(config.cores > 0, "at least one core required");
        CoherenceSystem {
            config,
            per_core: (0..config.cores)
                .map(|_| PerCore {
                    cache: SetAssocCache::new(config.l1),
                    l2_shadow: LineBitSet::new(),
                    tx_touched: Vec::new(),
                    locks_held: Vec::new(),
                })
                .collect(),
            shards: Vec::new(),
            stats: CoherenceStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoherenceConfig {
        &self.config
    }

    /// Directory geometry (defines the lexicographical lock order).
    pub fn dir_geometry(&self) -> CacheGeometry {
        self.config.directory
    }

    /// Accumulated event counters.
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    /// The directory shard covering `line` (lines partition into shards by
    /// 64-line address ranges).
    pub fn shard_of(line: LineAddr) -> usize {
        slot(line).0
    }

    /// Number of directory shards instantiated so far.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total directory entries instantiated across all shards (shard
    /// occupancy numerator).
    pub fn shard_lines(&self) -> u64 {
        self.shards.iter().map(|s| s.entries.len() as u64).sum()
    }

    /// Directory entries in the fullest shard (imbalance indicator).
    pub fn shard_lines_max(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.entries.len() as u64)
            .max()
            .unwrap_or(0)
    }

    /// Per-shard occupancy and lock-traffic profile, in shard order. Feeds
    /// the machine's metrics registry (shard occupancy gauges plus lock /
    /// NACK counters); shards with no instantiated entries are skipped so
    /// a sparse footprint does not emit empty series.
    pub fn shard_profiles(&self) -> impl Iterator<Item = ShardProfile> + '_ {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, sh)| !sh.entries.is_empty())
            .map(|(i, sh)| ShardProfile {
                shard: i,
                lines: sh.entries.len() as u64,
                locks: sh.locks,
                lock_nacks: sh.lock_nacks,
            })
    }

    /// Attributes one acquired lock to `line`'s shard. The shard exists by
    /// the time a lock succeeds (the apply instantiated the entry).
    fn note_lock(&mut self, line: LineAddr) {
        if let Some(sh) = self.shards.get_mut(slot(line).0) {
            sh.locks += 1;
        }
    }

    /// Attributes one refused (NACKed) lock request to `line`'s shard. A
    /// refusal implies a directory entry records the holder, so the shard
    /// exists.
    fn note_lock_nack(&mut self, line: LineAddr) {
        if let Some(sh) = self.shards.get_mut(slot(line).0) {
            sh.lock_nacks += 1;
        }
    }

    fn dir_ref(&self, line: LineAddr) -> Option<&DirEntry> {
        let (s, i) = slot(line);
        self.shards.get(s).and_then(|sh| sh.entries.get(i))
    }

    fn dir_get_mut(&mut self, line: LineAddr) -> Option<&mut DirEntry> {
        let (s, i) = slot(line);
        self.shards.get_mut(s).and_then(|sh| sh.entries.get_mut(i))
    }

    fn ensure_shard(&mut self, s: usize) {
        if s >= self.shards.len() {
            self.shards.resize_with(s + 1, DirShard::default);
        }
    }

    fn dir_mut(&mut self, line: LineAddr) -> &mut DirEntry {
        let (s, i) = slot(line);
        self.ensure_shard(s);
        let shard = &mut self.shards[s];
        if i >= shard.entries.len() {
            shard.entries.resize(i + 1, DirEntry::default());
        }
        &mut shard.entries[i]
    }

    fn llc_insert(&mut self, line: LineAddr) {
        let (s, i) = slot(line);
        self.ensure_shard(s);
        self.shards[s].llc |= 1 << i;
    }

    fn llc_contains(&self, line: LineAddr) -> bool {
        let (s, i) = slot(line);
        self.shards.get(s).is_some_and(|sh| sh.llc & (1 << i) != 0)
    }

    /// Which core holds `line` locked, if any.
    pub fn locked_by(&self, line: LineAddr) -> Option<CoreId> {
        self.dir_ref(line).and_then(|e| e.locked_by)
    }

    /// `true` if `core` has `line` cached with write permission — the ALT
    /// *Hit*-bit probe used by group locking (§5).
    pub fn has_exclusive(&self, core: CoreId, line: LineAddr) -> bool {
        self.per_core[core.0]
            .cache
            .get(line)
            .map(|m| m.mesi.is_exclusive())
            .unwrap_or(false)
    }

    /// `true` if `core` currently caches `line` (any state).
    pub fn is_cached(&self, core: CoreId, line: LineAddr) -> bool {
        self.per_core[core.0].cache.contains(line)
    }

    /// Number of lines `core` holds locked.
    pub fn locked_count(&self, core: CoreId) -> usize {
        self.per_core[core.0]
            .cache
            .iter()
            .filter(|(_, m)| m.locked)
            .count()
    }

    fn classify_miss(&self, core: CoreId, line: LineAddr) -> ServedBy {
        if self.per_core[core.0].l2_shadow.contains(line) {
            ServedBy::L2
        } else if self.dir_ref(line).is_some_and(|e| !e.sharers.is_empty())
            || self.llc_contains(line)
        {
            ServedBy::L3
        } else {
            ServedBy::Memory
        }
    }

    fn latency_of(&self, served_by: ServedBy, impacts: usize) -> u64 {
        let base = match served_by {
            ServedBy::L1 => self.config.lat_l1,
            ServedBy::L2 => self.config.lat_l2,
            ServedBy::L3 => self.config.lat_l3,
            ServedBy::Memory => self.config.lat_mem,
        };
        base + impacts as u64 * self.config.lat_inval
    }

    fn collect_impacts(&self, core: CoreId, line: LineAddr, access: Access) -> Vec<RemoteImpact> {
        let Some(dir) = self.dir_ref(line) else {
            return Vec::new();
        };
        let mut impacts = Vec::new();
        // Walk only the set sharer bits (ascending core id, same order as
        // the equivalent 0..cores scan) instead of every core.
        for c in dir.sharers.iter_without(core.0) {
            let Some(meta) = self.per_core[c].cache.get(line) else {
                continue;
            };
            match access {
                Access::Write => impacts.push(RemoteImpact {
                    line,
                    core: CoreId(c),
                    tx_read: meta.tx_read,
                    tx_write: meta.tx_write,
                    would_invalidate: true,
                }),
                Access::Read => {
                    if meta.mesi.is_exclusive() {
                        impacts.push(RemoteImpact {
                            line,
                            core: CoreId(c),
                            tx_read: meta.tx_read,
                            tx_write: meta.tx_write,
                            would_invalidate: false,
                        });
                    }
                }
            }
        }
        impacts
    }

    /// Reports what an access by `core` would do, without changing state.
    pub fn probe(&self, core: CoreId, line: LineAddr, access: Access) -> ProbeResult {
        let locked_by_other = self
            .dir_ref(line)
            .and_then(|e| e.locked_by)
            .filter(|&c| c != core);
        let own_way = self.per_core[core.0].cache.find_way(line);
        let own = own_way.map(|w| self.per_core[core.0].cache.payload_at(w));
        let hit = match (own, access) {
            (Some(_), Access::Read) => true,
            (Some(m), Access::Write) => m.mesi.is_exclusive(),
            (None, _) => false,
        };
        let remote_impacts = if hit {
            Vec::new()
        } else {
            self.collect_impacts(core, line, access)
        };
        let served_by = if hit {
            ServedBy::L1
        } else if own.is_some() {
            // Upgrade S->M: data is local but the directory round-trip and
            // invalidations cost an L3-class transaction.
            ServedBy::L3
        } else {
            self.classify_miss(core, line)
        };
        let latency = self.latency_of(served_by, remote_impacts.len());
        ProbeResult {
            served_by,
            latency,
            locked_by_other,
            remote_impacts,
            own_way,
        }
    }

    fn record_serve(&mut self, served_by: ServedBy) {
        match served_by {
            ServedBy::L1 => self.stats.l1_hits += 1,
            ServedBy::L2 => self.stats.l2_hits += 1,
            ServedBy::L3 => self.stats.l3_serves += 1,
            ServedBy::Memory => self.stats.mem_serves += 1,
        }
    }

    fn invalidate_remote(&mut self, victim: CoreId, line: LineAddr) {
        self.per_core[victim.0].cache.remove(line);
        self.per_core[victim.0].l2_shadow.remove(line);
        let e = self.dir_mut(line);
        e.sharers.remove(victim.0);
        if e.owner == Some(victim) {
            e.owner = None;
        }
    }

    fn downgrade_remote(&mut self, victim: CoreId, line: LineAddr) {
        if let Some(m) = self.per_core[victim.0].cache.get_mut(line) {
            m.mesi = MesiState::Shared;
        }
        let e = self.dir_mut(line);
        if e.owner == Some(victim) {
            e.owner = None;
        }
    }

    /// Applies an access, updating caches and the directory.
    ///
    /// The caller must have routed away accesses to lines locked by another
    /// core (see [`CoherenceSystem::probe`]); applying one is a logic error.
    /// Remote transactional copies *are* invalidated/downgraded here — the
    /// policy layer is responsible for aborting the affected transactions
    /// (it decided to proceed).
    ///
    /// # Errors
    ///
    /// Returns `Err(LockFail::Capacity)` when the requester's cache cannot
    /// hold the line without evicting a pinned (locked or transactional)
    /// line; for a transactional access this is a capacity abort.
    ///
    /// # Panics
    ///
    /// Panics if the line is locked by another core.
    pub fn apply(
        &mut self,
        core: CoreId,
        line: LineAddr,
        access: Access,
        tx: TxTrack,
    ) -> Result<ApplyOk, LockFail> {
        self.apply_inner(core, line, access, tx, false)
    }

    /// Like [`CoherenceSystem::apply`], but consumes a [`ProbeResult`]
    /// already obtained from [`CoherenceSystem::probe`] for the same
    /// `(core, line, access)` instead of re-probing — the hot-path fusion
    /// used by the simulation kernel. The caller must not have mutated
    /// coherence state between the probe and this call, or the cached
    /// verdict (lock status, impacts, latency) is stale.
    ///
    /// # Errors
    ///
    /// Returns `Err(LockFail::Capacity)` exactly as [`CoherenceSystem::apply`]
    /// does.
    ///
    /// # Panics
    ///
    /// Panics if the probe saw the line locked by another core.
    pub fn apply_probed(
        &mut self,
        core: CoreId,
        line: LineAddr,
        access: Access,
        tx: TxTrack,
        probe: ProbeResult,
    ) -> Result<ApplyOk, LockFail> {
        self.finish_apply(core, line, access, tx, false, probe)
    }

    fn apply_inner(
        &mut self,
        core: CoreId,
        line: LineAddr,
        access: Access,
        tx: TxTrack,
        lock: bool,
    ) -> Result<ApplyOk, LockFail> {
        let probe = self.probe(core, line, access);
        self.finish_apply(core, line, access, tx, lock, probe)
    }

    fn finish_apply(
        &mut self,
        core: CoreId,
        line: LineAddr,
        access: Access,
        tx: TxTrack,
        lock: bool,
        probe: ProbeResult,
    ) -> Result<ApplyOk, LockFail> {
        assert!(
            probe.locked_by_other.is_none(),
            "apply() on a line locked by another core"
        );
        let ProbeResult {
            served_by,
            latency,
            remote_impacts: impacts,
            own_way,
            ..
        } = probe;

        // Update remote copies.
        for imp in &impacts {
            if imp.would_invalidate {
                self.invalidate_remote(imp.core, line);
            } else {
                self.downgrade_remote(imp.core, line);
            }
            self.stats.invalidations += 1;
        }

        // Update (or install) the requester's copy.
        let others_share = self
            .dir_ref(line)
            .is_some_and(|e| e.sharers.contains_other_than(core.0));
        let new_mesi = match access {
            Access::Write => MesiState::Modified,
            Access::Read => {
                if others_share {
                    MesiState::Shared
                } else {
                    MesiState::Exclusive
                }
            }
        };
        if let Some(w) = own_way {
            let pc = &mut self.per_core[core.0];
            let meta = pc.cache.touch_at(w);
            meta.mesi = match access {
                Access::Write => MesiState::Modified,
                Access::Read => meta.mesi, // keep stronger state on read hit
            };
            if lock && !meta.locked {
                meta.locked = true;
                pc.locks_held.push(line);
            }
            if tx != TxTrack::None && !meta.tx_read && !meta.tx_write {
                pc.tx_touched.push(line);
            }
            match tx {
                TxTrack::None => {}
                TxTrack::Read => meta.tx_read = true,
                TxTrack::Write => meta.tx_write = true,
            }
        } else {
            let meta = LineMeta {
                mesi: new_mesi,
                locked: lock,
                tx_read: tx == TxTrack::Read,
                tx_write: tx == TxTrack::Write,
            };
            match self.per_core[core.0]
                .cache
                .insert_respecting(line, meta, LineMeta::pinned)
            {
                Ok(outcome) => {
                    if let clear_mem::EvictionOutcome::Evicted(victim) = outcome {
                        // Victim drops to the L2 shadow; directory forgets it.
                        let e = self.dir_mut(victim);
                        e.sharers.remove(core.0);
                        if e.owner == Some(core) {
                            e.owner = None;
                        }
                        self.per_core[core.0].l2_shadow.insert(victim);
                    }
                    let pc = &mut self.per_core[core.0];
                    if lock {
                        pc.locks_held.push(line);
                    }
                    if tx != TxTrack::None {
                        pc.tx_touched.push(line);
                    }
                }
                Err(clear_mem::PinnedSetFull) => return Err(LockFail::Capacity),
            }
        }

        // Update the directory for the accessed line.
        let e = self.dir_mut(line);
        e.sharers.insert(core.0);
        match access {
            Access::Write => {
                e.owner = Some(core);
                e.sharers.set_only(core.0);
            }
            Access::Read => {
                if !others_share {
                    e.owner = Some(core);
                }
            }
        }
        if lock {
            e.locked_by = Some(core);
        }

        self.llc_insert(line);
        self.per_core[core.0].l2_shadow.remove(line);
        self.record_serve(served_by);
        Ok(ApplyOk {
            served_by,
            latency,
            remote_impacts: impacts,
        })
    }

    /// A failed-mode discovery read (§5.1): a *non-aborting* request. It
    /// never invalidates, downgrades or conflicts with remote copies, but —
    /// like the paper's failed-mode loads, which are ordinary cache fills
    /// flagged non-aborting — it installs a Shared copy in the requester's
    /// cache when no remote core holds the line exclusively. This warming
    /// is what makes the subsequent S-CL lock pass hit the ALT Hit-bit
    /// fast path.
    pub fn read_untracked(&mut self, core: CoreId, line: LineAddr) -> u64 {
        if self.per_core[core.0].cache.contains(line) {
            self.record_serve(ServedBy::L1);
            return self.latency_of(ServedBy::L1, 0);
        }
        let served_by = self.classify_miss(core, line);
        // Any remote M/E holder is, by the directory invariant, exactly the
        // recorded owner — an O(1) check replacing the previous O(cores)
        // scan of every private cache.
        let (owner, locked) = self
            .dir_ref(line)
            .map(|e| (e.owner, e.locked_by.is_some()))
            .unwrap_or((None, false));
        let remote_exclusive = owner.is_some_and(|o| {
            o != core
                && self.per_core[o.0]
                    .cache
                    .get(line)
                    .map(|m| m.mesi.is_exclusive())
                    .unwrap_or(false)
        });
        if !remote_exclusive && !locked {
            let meta = LineMeta {
                mesi: MesiState::Shared,
                locked: false,
                tx_read: false,
                tx_write: false,
            };
            if let Ok(outcome) =
                self.per_core[core.0]
                    .cache
                    .insert_respecting(line, meta, LineMeta::pinned)
            {
                if let clear_mem::EvictionOutcome::Evicted(victim) = outcome {
                    let e = self.dir_mut(victim);
                    e.sharers.remove(core.0);
                    if e.owner == Some(core) {
                        e.owner = None;
                    }
                    self.per_core[core.0].l2_shadow.insert(victim);
                }
                let e = self.dir_mut(line);
                e.sharers.insert(core.0);
                self.llc_insert(line);
                self.per_core[core.0].l2_shadow.remove(line);
            }
        }
        self.record_serve(served_by);
        self.latency_of(served_by, 0)
    }

    /// Acquires the cacheline lock on `line` for `core` (NS-CL/S-CL, §4.4):
    /// exclusive ownership plus the lock bit, invalidating remote copies.
    ///
    /// # Errors
    ///
    /// * [`LockFail::LockedBy`] — another core holds the line locked; the
    ///   requester must retry later (the directory entry is *not* left in a
    ///   transient state, per the Fig. 6 fix).
    /// * [`LockFail::Capacity`] — the requester's cache cannot pin the line.
    pub fn lock_line(&mut self, core: CoreId, line: LineAddr) -> Result<ApplyOk, LockFail> {
        if let Some(holder) = self.locked_by(line) {
            if holder != core {
                self.stats.lock_conflicts += 1;
                self.note_lock_nack(line);
                return Err(LockFail::LockedBy(holder));
            }
        }
        let r = self.apply_inner(core, line, Access::Write, TxTrack::None, true)?;
        self.stats.locks += 1;
        self.note_lock(line);
        Ok(r)
    }

    /// Acquires the locks of a whole lexicographical conflict group — ALT
    /// entries sharing one directory set — as a single transaction (§5).
    ///
    /// If every line already has the *Hit* bit (exclusive in the private
    /// cache), the group locks silently at one cycle per line; otherwise a
    /// single directory-set lock transaction is modelled: one L3-class
    /// round trip charged once, plus invalidation costs for every remote
    /// copy stolen across the group.
    ///
    /// # Errors
    ///
    /// * [`LockFail::LockedBy`] if any group line is locked by another
    ///   core (nothing is acquired — the requester retries);
    /// * [`LockFail::Capacity`] if a line cannot be pinned.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is empty or the lines span different directory
    /// sets.
    pub fn lock_group(&mut self, core: CoreId, lines: &[LineAddr]) -> Result<ApplyOk, LockFail> {
        assert!(!lines.is_empty(), "empty lock group");
        let set = self.config.directory.set_index(lines[0]);
        assert!(
            lines
                .iter()
                .all(|&l| self.config.directory.set_index(l) == set),
            "lock group spans directory sets"
        );
        // All-or-nothing admission check.
        for &l in lines {
            if let Some(holder) = self.locked_by(l) {
                if holder != core {
                    self.stats.lock_conflicts += 1;
                    self.note_lock_nack(l);
                    return Err(LockFail::LockedBy(holder));
                }
            }
        }
        let all_hit = lines.iter().all(|&l| self.has_exclusive(core, l));
        let mut impacts = Vec::new();
        let mut invalidations = 0usize;
        for &l in lines {
            let r = self.apply_inner(core, l, Access::Write, TxTrack::None, true)?;
            invalidations += r.remote_impacts.len();
            impacts.extend(r.remote_impacts);
            self.stats.locks += 1;
            self.note_lock(l);
        }
        let latency = if all_hit {
            lines.len() as u64 * self.config.lat_l1
        } else {
            // One set-lock round trip amortised over the group.
            self.config.lat_l3 + invalidations as u64 * self.config.lat_inval
        };
        Ok(ApplyOk {
            served_by: if all_hit { ServedBy::L1 } else { ServedBy::L3 },
            latency,
            remote_impacts: impacts,
        })
    }

    /// Releases the lock `core` holds on `line`. No-op if not held.
    pub fn unlock_line(&mut self, core: CoreId, line: LineAddr) {
        if let Some(m) = self.per_core[core.0].cache.get_mut(line) {
            if m.locked {
                m.locked = false;
                self.stats.unlocks += 1;
            }
        }
        if let Some(e) = self.dir_get_mut(line) {
            if e.locked_by == Some(core) {
                e.locked_by = None;
            }
        }
    }

    /// Bulk-releases every lock `core` holds (the XEnd bulk unlock of §5.1).
    pub fn unlock_all(&mut self, core: CoreId) {
        // Drain the tracked lock list instead of sweeping every cache way;
        // stale entries (released individually since) unlock as no-ops.
        let mut held = std::mem::take(&mut self.per_core[core.0].locks_held);
        for l in held.drain(..) {
            self.unlock_line(core, l);
        }
        self.per_core[core.0].locks_held = held;
    }

    /// Clears `core`'s transactional read/write bits (commit or abort).
    /// Lines stay cached; lock bits are untouched.
    pub fn clear_tx(&mut self, core: CoreId) {
        // Only the lines tracked since the last clear can hold tx bits;
        // entries invalidated in the meantime are simply absent.
        let mut touched = std::mem::take(&mut self.per_core[core.0].tx_touched);
        for l in touched.drain(..) {
            if let Some(m) = self.per_core[core.0].cache.get_mut(l) {
                m.tx_read = false;
                m.tx_write = false;
            }
        }
        self.per_core[core.0].tx_touched = touched;
    }

    /// Lines currently in `core`'s transactional read or write set.
    pub fn tx_lines(&self, core: CoreId) -> Vec<LineAddr> {
        self.per_core[core.0]
            .cache
            .iter()
            .filter(|(_, m)| m.tx_read || m.tx_write)
            .map(|(l, _)| l)
            .collect()
    }

    /// Checks whether `lines` can be simultaneously resident (and therefore
    /// simultaneously locked) in one private cache — discovery assessment 2
    /// of §4.1.
    pub fn fits_locked(&self, lines: &[LineAddr]) -> bool {
        SetAssocCache::<LineMeta>::fits_simultaneously(self.config.l1, lines.iter().copied())
    }

    /// Splits out exclusive views for a batch of cores stepping in
    /// parallel: each member gets its own per-core state plus (when it will
    /// perform an L1-hit access) its claimed directory shard.
    ///
    /// `members` pairs each core id with its claimed shard, in strictly
    /// ascending core-id order; claimed shard ids must be pairwise
    /// distinct. The returned views are `Send`, so the machine can hand
    /// them to scoped worker threads; L1 hits performed through a view are
    /// buffered locally and merged back with
    /// [`CoherenceSystem::merge_local_hits`] at the batch barrier.
    ///
    /// # Panics
    ///
    /// Panics if core ids are not strictly ascending, a core id is out of
    /// range, or two members claim the same shard.
    pub fn split_local_views(&mut self, members: &[(usize, Option<usize>)]) -> Vec<LocalView<'_>> {
        let mut claims: Vec<usize> = members.iter().filter_map(|&(_, s)| s).collect();
        claims.sort_unstable();
        for &s in &claims {
            self.ensure_shard(s);
        }
        let lat_l1 = self.config.lat_l1;
        let core_ids: Vec<usize> = members.iter().map(|&(c, _)| c).collect();
        let pcs = disjoint_muts(&mut self.per_core, &core_ids);
        // `disjoint_muts` rejects duplicates, enforcing distinct claims.
        let shard_refs = disjoint_muts(&mut self.shards, &claims);
        let mut shard_slots: Vec<Option<&mut DirShard>> =
            shard_refs.into_iter().map(Some).collect();
        members
            .iter()
            .zip(pcs)
            .map(|(&(core, claim), pc)| {
                let shard = claim.map(|s| {
                    let pos = claims.binary_search(&s).expect("claim present");
                    shard_slots[pos].take().expect("claims are distinct")
                });
                LocalView {
                    core: CoreId(core),
                    pc,
                    shard,
                    lat_l1,
                    l1_hits: 0,
                }
            })
            .collect()
    }

    /// Merges L1 hits performed through [`LocalView`]s back into the
    /// global counters (the deterministic batch barrier).
    pub fn merge_local_hits(&mut self, hits: u64) {
        self.stats.l1_hits += hits;
    }
}

/// Exclusive view of one core's coherence state (plus its claimed
/// directory shard) during a parallel step batch.
///
/// Created by [`CoherenceSystem::split_local_views`]; only supports the
/// *local* operations the batch classifier admits — an L1-hit load or
/// store touching the claimed shard.
#[derive(Debug)]
pub struct LocalView<'a> {
    core: CoreId,
    pc: &'a mut PerCore,
    shard: Option<&'a mut DirShard>,
    lat_l1: u64,
    l1_hits: u64,
}

impl LocalView<'_> {
    /// The core this view belongs to.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// L1 hits performed through this view so far (merged into the global
    /// stats with [`CoherenceSystem::merge_local_hits`] at the barrier).
    pub fn l1_hits(&self) -> u64 {
        self.l1_hits
    }

    /// Applies an L1-hit access for this core, mirroring the sequential
    /// [`CoherenceSystem::apply_probed`] own-copy path for a
    /// [`ServedBy::L1`] hit (which by the MESI invariant has no remote
    /// impacts and no lock involvement). Returns the latency.
    ///
    /// # Panics
    ///
    /// Panics if the line is not cached with sufficient permission or the
    /// view holds no shard claim — both are classifier bugs.
    pub fn apply_hit(&mut self, line: LineAddr, access: Access, tx: TxTrack) -> u64 {
        let w = self
            .pc
            .cache
            .find_way(line)
            .expect("local hit step: line must be cached");
        let shard = self.shard.as_mut().expect("local hit step claims a shard");
        let (_, sub) = slot(line);
        let others_share = shard.entries[sub].sharers.contains_other_than(self.core.0);
        let meta = self.pc.cache.touch_at(w);
        debug_assert!(
            access == Access::Read || meta.mesi.is_exclusive(),
            "write hit requires M/E"
        );
        if access == Access::Write {
            meta.mesi = MesiState::Modified;
        }
        if tx != TxTrack::None && !meta.tx_read && !meta.tx_write {
            self.pc.tx_touched.push(line);
        }
        match tx {
            TxTrack::None => {}
            TxTrack::Read => meta.tx_read = true,
            TxTrack::Write => meta.tx_write = true,
        }
        let e = &mut shard.entries[sub];
        e.sharers.insert(self.core.0);
        match access {
            Access::Write => {
                e.owner = Some(self.core);
                e.sharers.set_only(self.core.0);
            }
            Access::Read => {
                if !others_share {
                    e.owner = Some(self.core);
                }
            }
        }
        shard.llc |= 1 << sub;
        self.pc.l2_shadow.remove(line);
        self.l1_hits += 1;
        self.lat_l1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> CoherenceSystem {
        CoherenceSystem::new(CoherenceConfig::small(cores))
    }

    #[test]
    fn first_access_served_by_memory_then_l1() {
        let mut s = sys(2);
        let l = LineAddr(10);
        let r = s.apply(CoreId(0), l, Access::Read, TxTrack::None).unwrap();
        assert_eq!(r.served_by, ServedBy::Memory);
        let p = s.probe(CoreId(0), l, Access::Read);
        assert_eq!(p.served_by, ServedBy::L1);
        assert_eq!(p.latency, 1);
    }

    #[test]
    fn second_core_read_served_by_l3() {
        let mut s = sys(2);
        let l = LineAddr(10);
        s.apply(CoreId(0), l, Access::Read, TxTrack::None).unwrap();
        let r = s.apply(CoreId(1), l, Access::Read, TxTrack::None).unwrap();
        assert_eq!(r.served_by, ServedBy::L3);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut s = sys(3);
        let l = LineAddr(4);
        s.apply(CoreId(0), l, Access::Read, TxTrack::None).unwrap();
        s.apply(CoreId(1), l, Access::Read, TxTrack::None).unwrap();
        let r = s.apply(CoreId(2), l, Access::Write, TxTrack::None).unwrap();
        assert_eq!(r.remote_impacts.len(), 2);
        assert!(r.remote_impacts.iter().all(|i| i.would_invalidate));
        assert!(!s.is_cached(CoreId(0), l));
        assert!(!s.is_cached(CoreId(1), l));
        assert!(s.has_exclusive(CoreId(2), l));
    }

    #[test]
    fn read_downgrades_exclusive_owner() {
        let mut s = sys(2);
        let l = LineAddr(4);
        s.apply(CoreId(0), l, Access::Write, TxTrack::None).unwrap();
        let r = s.apply(CoreId(1), l, Access::Read, TxTrack::None).unwrap();
        assert_eq!(r.remote_impacts.len(), 1);
        assert!(!r.remote_impacts[0].would_invalidate);
        assert!(s.is_cached(CoreId(0), l));
        assert!(!s.has_exclusive(CoreId(0), l));
    }

    #[test]
    fn tx_bits_reported_in_impacts() {
        let mut s = sys(2);
        let l = LineAddr(4);
        s.apply(CoreId(0), l, Access::Read, TxTrack::Read).unwrap();
        let p = s.probe(CoreId(1), l, Access::Write);
        assert_eq!(p.remote_impacts.len(), 1);
        assert!(p.remote_impacts[0].tx_read);
        assert!(p.remote_impacts[0].is_tx_conflict(true));
        assert!(!p.remote_impacts[0].is_tx_conflict(false));
    }

    #[test]
    fn reader_conflicts_only_with_remote_write_set() {
        let mut s = sys(2);
        let l = LineAddr(4);
        s.apply(CoreId(0), l, Access::Write, TxTrack::Write)
            .unwrap();
        let p = s.probe(CoreId(1), l, Access::Read);
        assert!(p.remote_impacts[0].is_tx_conflict(false));
    }

    #[test]
    fn capacity_error_when_set_full_of_pinned_lines() {
        let mut s = sys(1);
        // Geometry 4 sets x 2 ways; lines 0,4,8 share set 0.
        s.apply(CoreId(0), LineAddr(0), Access::Read, TxTrack::Read)
            .unwrap();
        s.apply(CoreId(0), LineAddr(4), Access::Read, TxTrack::Read)
            .unwrap();
        let e = s.apply(CoreId(0), LineAddr(8), Access::Read, TxTrack::Read);
        assert_eq!(e.unwrap_err(), LockFail::Capacity);
    }

    #[test]
    fn unpinned_lines_evict_quietly() {
        let mut s = sys(1);
        s.apply(CoreId(0), LineAddr(0), Access::Read, TxTrack::None)
            .unwrap();
        s.apply(CoreId(0), LineAddr(4), Access::Read, TxTrack::None)
            .unwrap();
        let r = s.apply(CoreId(0), LineAddr(8), Access::Read, TxTrack::None);
        assert!(r.is_ok());
        // Victim went to the L2 shadow: a re-access is served by L2.
        let revisit = [LineAddr(0), LineAddr(4)]
            .into_iter()
            .find(|&l| !s.is_cached(CoreId(0), l))
            .unwrap();
        let p = s.probe(CoreId(0), revisit, Access::Read);
        assert_eq!(p.served_by, ServedBy::L2);
    }

    #[test]
    fn lock_line_excludes_other_lockers() {
        let mut s = sys(2);
        let l = LineAddr(6);
        s.lock_line(CoreId(0), l).unwrap();
        assert_eq!(s.locked_by(l), Some(CoreId(0)));
        assert_eq!(
            s.lock_line(CoreId(1), l).unwrap_err(),
            LockFail::LockedBy(CoreId(0))
        );
        assert_eq!(s.stats().lock_conflicts, 1);
    }

    #[test]
    fn relock_by_holder_is_idempotent() {
        let mut s = sys(2);
        let l = LineAddr(6);
        s.lock_line(CoreId(0), l).unwrap();
        assert!(s.lock_line(CoreId(0), l).is_ok());
        assert_eq!(s.locked_by(l), Some(CoreId(0)));
    }

    #[test]
    fn probe_reports_locked_by_other() {
        let mut s = sys(2);
        let l = LineAddr(6);
        s.lock_line(CoreId(0), l).unwrap();
        let p = s.probe(CoreId(1), l, Access::Read);
        assert_eq!(p.locked_by_other, Some(CoreId(0)));
        let own = s.probe(CoreId(0), l, Access::Read);
        assert_eq!(own.locked_by_other, None);
    }

    #[test]
    fn unlock_all_releases_every_lock() {
        let mut s = sys(2);
        s.lock_line(CoreId(0), LineAddr(1)).unwrap();
        s.lock_line(CoreId(0), LineAddr(2)).unwrap();
        assert_eq!(s.locked_count(CoreId(0)), 2);
        s.unlock_all(CoreId(0));
        assert_eq!(s.locked_count(CoreId(0)), 0);
        assert_eq!(s.locked_by(LineAddr(1)), None);
        assert!(s.lock_line(CoreId(1), LineAddr(1)).is_ok());
    }

    #[test]
    fn locking_steals_remote_copies() {
        let mut s = sys(2);
        let l = LineAddr(3);
        s.apply(CoreId(1), l, Access::Read, TxTrack::Read).unwrap();
        let r = s.lock_line(CoreId(0), l).unwrap();
        assert_eq!(r.remote_impacts.len(), 1);
        assert!(r.remote_impacts[0].tx_read);
        assert!(!s.is_cached(CoreId(1), l));
    }

    #[test]
    fn clear_tx_unpins() {
        let mut s = sys(1);
        s.apply(CoreId(0), LineAddr(0), Access::Read, TxTrack::Read)
            .unwrap();
        s.apply(CoreId(0), LineAddr(4), Access::Write, TxTrack::Write)
            .unwrap();
        assert_eq!(s.tx_lines(CoreId(0)).len(), 2);
        s.clear_tx(CoreId(0));
        assert!(s.tx_lines(CoreId(0)).is_empty());
        // Set 0 no longer pinned: a third line can come in.
        assert!(s
            .apply(CoreId(0), LineAddr(8), Access::Read, TxTrack::Read)
            .is_ok());
    }

    #[test]
    fn read_untracked_changes_nothing() {
        let mut s = sys(2);
        let l = LineAddr(9);
        s.apply(CoreId(0), l, Access::Write, TxTrack::Write)
            .unwrap();
        let lat = s.read_untracked(CoreId(1), l);
        assert!(lat >= 45);
        assert!(!s.is_cached(CoreId(1), l));
        assert!(s.has_exclusive(CoreId(0), l));
        // Untracked read of own cached line is an L1 hit.
        assert_eq!(s.read_untracked(CoreId(0), l), 1);
    }

    #[test]
    fn fits_locked_uses_l1_geometry() {
        let s = sys(1);
        // 4 sets x 2 ways: three same-set lines do not fit.
        assert!(!s.fits_locked(&[LineAddr(0), LineAddr(4), LineAddr(8)]));
        assert!(s.fits_locked(&[LineAddr(0), LineAddr(1), LineAddr(2), LineAddr(3)]));
    }

    #[test]
    fn write_upgrade_from_shared_counts_as_l3() {
        let mut s = sys(2);
        let l = LineAddr(2);
        s.apply(CoreId(0), l, Access::Read, TxTrack::None).unwrap();
        s.apply(CoreId(1), l, Access::Read, TxTrack::None).unwrap();
        let p = s.probe(CoreId(0), l, Access::Write);
        assert_eq!(p.served_by, ServedBy::L3);
        assert_eq!(p.remote_impacts.len(), 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = sys(2);
        s.apply(CoreId(0), LineAddr(1), Access::Read, TxTrack::None)
            .unwrap();
        s.apply(CoreId(0), LineAddr(1), Access::Read, TxTrack::None)
            .unwrap();
        s.lock_line(CoreId(0), LineAddr(2)).unwrap();
        s.unlock_all(CoreId(0));
        let st = s.stats();
        assert_eq!(st.mem_serves, 2); // line 1 first touch + lock of line 2
        assert_eq!(st.l1_hits, 1);
        assert_eq!(st.locks, 1);
        assert_eq!(st.unlocks, 1);
    }

    #[test]
    fn lock_group_all_or_nothing() {
        let mut s = sys(2);
        // Directory has 8 sets; lines 1 and 9 share set 1.
        let (a, b) = (LineAddr(1), LineAddr(9));
        s.lock_line(CoreId(1), b).unwrap();
        assert_eq!(
            s.lock_group(CoreId(0), &[a, b]).unwrap_err(),
            LockFail::LockedBy(CoreId(1))
        );
        assert_eq!(s.locked_by(a), None, "nothing acquired on failure");
        s.unlock_all(CoreId(1));
        assert!(s.lock_group(CoreId(0), &[a, b]).is_ok());
        assert_eq!(s.locked_by(a), Some(CoreId(0)));
        assert_eq!(s.locked_by(b), Some(CoreId(0)));
    }

    #[test]
    fn lock_group_hit_fast_path_is_cheap() {
        let mut s = sys(2);
        let (a, b) = (LineAddr(1), LineAddr(9));
        // Warm both lines exclusive.
        s.apply(CoreId(0), a, Access::Write, TxTrack::None).unwrap();
        s.apply(CoreId(0), b, Access::Write, TxTrack::None).unwrap();
        let r = s.lock_group(CoreId(0), &[a, b]).unwrap();
        assert_eq!(r.latency, 2, "all-Hit group locks at 1 cycle per line");
        s.unlock_all(CoreId(0));
        // Cold path costs a set-lock round trip.
        let mut s2 = sys(2);
        let r2 = s2.lock_group(CoreId(0), &[a, b]).unwrap();
        assert!(r2.latency >= 45);
    }

    #[test]
    fn lock_group_steals_remote_tx_copies() {
        let mut s = sys(2);
        let (a, b) = (LineAddr(1), LineAddr(9));
        s.apply(CoreId(1), a, Access::Read, TxTrack::Read).unwrap();
        let r = s.lock_group(CoreId(0), &[a, b]).unwrap();
        assert_eq!(r.remote_impacts.len(), 1);
        assert!(r.remote_impacts[0].tx_read);
    }

    #[test]
    #[should_panic(expected = "spans directory sets")]
    fn lock_group_rejects_mixed_sets() {
        let mut s = sys(2);
        let _ = s.lock_group(CoreId(0), &[LineAddr(1), LineAddr(2)]);
    }

    #[test]
    #[should_panic(expected = "locked by another core")]
    fn apply_on_foreign_locked_line_panics() {
        let mut s = sys(2);
        let l = LineAddr(6);
        s.lock_line(CoreId(0), l).unwrap();
        let _ = s.apply(CoreId(1), l, Access::Read, TxTrack::None);
    }

    #[test]
    fn wide_machines_support_more_than_64_cores() {
        let mut s = sys(100);
        let l = LineAddr(4);
        // Sharers across both bitset words, including beyond core 63.
        for c in [0usize, 63, 64, 99] {
            s.apply(CoreId(c), l, Access::Read, TxTrack::Read).unwrap();
        }
        let p = s.probe(CoreId(70), l, Access::Write);
        assert_eq!(p.remote_impacts.len(), 4);
        let victims: Vec<usize> = p.remote_impacts.iter().map(|i| i.core.0).collect();
        assert_eq!(victims, vec![0, 63, 64, 99], "ascending core-id order");
        s.apply(CoreId(70), l, Access::Write, TxTrack::Write)
            .unwrap();
        for c in [0usize, 63, 64, 99] {
            assert!(!s.is_cached(CoreId(c), l));
        }
        assert!(s.has_exclusive(CoreId(70), l));
    }

    #[test]
    fn read_untracked_owner_check_sees_wide_owners() {
        let mut s = sys(80);
        let l = LineAddr(9);
        s.apply(CoreId(77), l, Access::Write, TxTrack::Write)
            .unwrap();
        let lat = s.read_untracked(CoreId(2), l);
        assert!(lat >= 45);
        assert!(
            !s.is_cached(CoreId(2), l),
            "remote M/E (held beyond core 64) must suppress the install"
        );
        assert!(s.has_exclusive(CoreId(77), l));
    }

    #[test]
    fn shards_partition_by_line_range() {
        let mut s = sys(2);
        assert_eq!(CoherenceSystem::shard_of(LineAddr(0)), 0);
        assert_eq!(CoherenceSystem::shard_of(LineAddr(63)), 0);
        assert_eq!(CoherenceSystem::shard_of(LineAddr(64)), 1);
        assert_eq!(CoherenceSystem::shard_of(LineAddr(200)), 3);
        for l in [LineAddr(0), LineAddr(63), LineAddr(64), LineAddr(200)] {
            s.apply(CoreId(0), l, Access::Read, TxTrack::None).unwrap();
        }
        assert_eq!(s.shard_count(), 4);
        assert!(s.shard_lines() >= 4);
        assert!(s.shard_lines_max() <= s.shard_lines());
        // A line in an untouched shard range is still classified correctly.
        assert_eq!(
            s.probe(CoreId(1), LineAddr(500), Access::Read).served_by,
            ServedBy::Memory
        );
    }

    #[test]
    fn local_view_hit_matches_sequential_apply() {
        // Two identically warmed systems: one applies a read hit and a
        // write hit sequentially, the other through split LocalViews.
        let build = || {
            let mut s = sys(4);
            s.apply(CoreId(0), LineAddr(3), Access::Read, TxTrack::Read)
                .unwrap();
            s.apply(CoreId(1), LineAddr(70), Access::Write, TxTrack::Write)
                .unwrap();
            s
        };
        let mut seq = build();
        let a = seq
            .apply(CoreId(0), LineAddr(3), Access::Read, TxTrack::Read)
            .unwrap();
        let b = seq
            .apply(CoreId(1), LineAddr(70), Access::Write, TxTrack::Write)
            .unwrap();
        assert_eq!(a.served_by, ServedBy::L1);
        assert_eq!(b.served_by, ServedBy::L1);

        let mut par = build();
        let members = [
            (0usize, Some(CoherenceSystem::shard_of(LineAddr(3)))),
            (1usize, Some(CoherenceSystem::shard_of(LineAddr(70)))),
        ];
        let mut views = par.split_local_views(&members);
        let lat0 = views[0].apply_hit(LineAddr(3), Access::Read, TxTrack::Read);
        let lat1 = views[1].apply_hit(LineAddr(70), Access::Write, TxTrack::Write);
        assert_eq!(lat0, a.latency);
        assert_eq!(lat1, b.latency);
        let hits: u64 = views.iter().map(|v| v.l1_hits()).sum();
        drop(views);
        par.merge_local_hits(hits);

        assert_eq!(seq.stats(), par.stats());
        for l in [LineAddr(3), LineAddr(70)] {
            for c in 0..4 {
                assert_eq!(
                    seq.per_core[c].cache.get(l),
                    par.per_core[c].cache.get(l),
                    "core {c} line {l:?}"
                );
            }
            let (se, pe) = (seq.dir_ref(l).unwrap(), par.dir_ref(l).unwrap());
            assert_eq!(se.owner, pe.owner);
            assert_eq!(se.sharers, pe.sharers);
            assert_eq!(se.locked_by, pe.locked_by);
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn split_rejects_duplicate_shard_claims() {
        let mut s = sys(2);
        s.apply(CoreId(0), LineAddr(1), Access::Read, TxTrack::None)
            .unwrap();
        let _ = s.split_local_views(&[(0, Some(0)), (1, Some(0))]);
    }
}
