//! Coherence system configuration (Table 2 defaults).

use clear_mem::CacheGeometry;

/// Configuration of the coherence substrate.
///
/// Defaults follow Table 2 of the paper (Icelake-like, 32 cores).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoherenceConfig {
    /// Number of cores.
    pub cores: usize,
    /// Private L1 data cache geometry (48 KiB, 12-way).
    pub l1: CacheGeometry,
    /// Directory geometry; its set index defines the lexicographical lock
    /// order (§5). The paper's directory has 800% coverage of the private
    /// caches.
    pub directory: CacheGeometry,
    /// L1 hit latency in cycles.
    pub lat_l1: u64,
    /// L2 hit latency in cycles.
    pub lat_l2: u64,
    /// L3 / remote-cache transfer latency in cycles.
    pub lat_l3: u64,
    /// Main memory latency in cycles.
    pub lat_mem: u64,
    /// Extra cycles per remote sharer invalidated/downgraded.
    pub lat_inval: u64,
}

impl CoherenceConfig {
    /// Table 2 configuration with the given core count.
    pub fn table2(cores: usize) -> Self {
        CoherenceConfig {
            cores,
            l1: CacheGeometry::from_capacity(48 * 1024, 12),
            // 800% coverage of 32×768 lines ≈ 196k entries; 16-way.
            directory: CacheGeometry::new(8192, 16),
            lat_l1: 1,
            lat_l2: 10,
            lat_l3: 45,
            lat_mem: 80,
            lat_inval: 6,
        }
    }

    /// A tiny configuration for unit tests: small caches magnify capacity
    /// and set-conflict effects.
    pub fn small(cores: usize) -> Self {
        CoherenceConfig {
            cores,
            l1: CacheGeometry::new(4, 2),
            directory: CacheGeometry::new(8, 4),
            lat_l1: 1,
            lat_l2: 10,
            lat_l3: 45,
            lat_mem: 80,
            lat_inval: 6,
        }
    }
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        CoherenceConfig::table2(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_32_core_table2() {
        let c = CoherenceConfig::default();
        assert_eq!(c.cores, 32);
        assert_eq!(c.l1.sets, 64);
        assert_eq!(c.l1.ways, 12);
        assert_eq!((c.lat_l1, c.lat_l2, c.lat_l3, c.lat_mem), (1, 10, 45, 80));
    }

    #[test]
    fn small_config_is_tiny() {
        let c = CoherenceConfig::small(2);
        assert_eq!(c.cores, 2);
        assert_eq!(c.l1.lines(), 8);
    }
}
