//! Directory-based MESI coherence with cacheline locking for the CLEAR
//! reproduction.
//!
//! This crate models the coherence substrate the paper's hardware runs on
//! (gem5 Ruby, three-level MESI, Table 2), at the granularity CLEAR
//! interacts with:
//!
//! * per-core private caches tracked as set-associative tag stores with
//!   MESI state, **cacheline-lock** bit and HTM read/write-set bits;
//! * a directory recording owner/sharers and which core holds each line
//!   locked;
//! * a **two-phase access API**: [`CoherenceSystem::probe`] reports what an
//!   access *would* do (which remote transactional copies it would
//!   invalidate, whether it hits a locked line), so the HTM/CLEAR policy
//!   layer can decide between proceeding ([`CoherenceSystem::apply`]),
//!   NACKing the requester, or retrying — the Fig. 5/6 deadlock-avoidance
//!   behaviours;
//! * latency classification per Table 2 (L1 1, L2 10, L3 45, memory 80
//!   cycles) with an L2-shadow / LLC presence model.
//!
//! Data never lives in the modelled caches — all values reside in the flat
//! [`clear_mem::Memory`]; the caches track *permission and ownership* only.
//! This is safe because speculative store data is buffered in the store
//! queue (machine layer) until commit, so no other core can ever observe
//! uncommitted data through this crate.
//!
//! # Examples
//!
//! ```
//! use clear_coherence::{Access, CoherenceConfig, CoherenceSystem, CoreId, TxTrack};
//! use clear_mem::LineAddr;
//!
//! let mut sys = CoherenceSystem::new(CoherenceConfig::small(2));
//! let l = LineAddr(5);
//! // Core 0 writes the line transactionally.
//! sys.apply(CoreId(0), l, Access::Write, TxTrack::Write).unwrap();
//! // Core 1 probing a write sees it would hit core 0's write set.
//! let p = sys.probe(CoreId(1), l, Access::Write);
//! assert!(p.remote_impacts.iter().any(|i| i.core == CoreId(0) && i.tx_write));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod system;
mod types;

pub use config::CoherenceConfig;
pub use system::{
    ApplyOk, CoherenceStats, CoherenceSystem, LocalView, ProbeResult, RemoteImpact, ShardProfile,
};
pub use types::{Access, CoreId, LockFail, MesiState, ServedBy, TxTrack};
