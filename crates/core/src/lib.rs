//! **CLEAR** — CacheLine-locked Executed Atomic Regions.
//!
//! This crate implements the paper's primary contribution: the hardware
//! structures and decision logic that bound speculative retries of an
//! atomic region (AR) to a single one by re-executing the AR under ordered
//! cacheline locking with the footprint learned during *discovery*.
//!
//! The architecture of Fig. 7 maps to:
//!
//! * [`Ert`] — the *Explored Region Table* ②: per-static-AR state — Is
//!   Convertible, Is Immutable, 2-bit SQ-Full saturating counter, 16
//!   entries, fully associative, LRU;
//! * [`Alt`] — the *Addresses to Lock Table* ③: up to 32 cacheline
//!   addresses learned in discovery, kept sorted in the deadlock-free
//!   lexicographical order (directory set index), with Needs-Locking /
//!   Locked / Hit / Conflict bits and group handling;
//! * [`Crt`] — the *Conflicting Reads Table* ④: 64-entry, 8-way table of
//!   read lines that caused a conflict abort, which S-CL must also lock;
//! * [`Discovery`] — the per-execution discovery assessment (§4.1/§4.2):
//!   footprint collection, indirection observation, failed-mode tracking
//!   and SQ pressure;
//! * [`decide`] — the Fig. 2 decision tree choosing the retry
//!   [`RetryMode`]: NS-CL, S-CL, speculative retry or fallback.
//!
//! The per-register indirection bits ① live in `clear-isa` (they are part
//! of the register file); the cache-controller side of cacheline locking
//! lives in `clear-coherence`; the machine crate wires everything into the
//! execution loop.
//!
//! # Examples
//!
//! ```
//! use clear_core::{decide, ClearConfig, Discovery, RetryMode};
//! use clear_mem::{CacheGeometry, LineAddr};
//!
//! let cfg = ClearConfig::default();
//! let dir = CacheGeometry::new(64, 16);
//! let mut d = Discovery::new(&cfg, dir);
//! d.on_access(LineAddr(3), true, false);
//! d.on_access(LineAddr(9), false, false);
//! // No indirections, footprint of two lines: eligible for NS-CL.
//! let a = d.assess(|lines| lines.len() <= 2);
//! assert_eq!(decide(&a), RetryMode::NsCl);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alt;
mod config;
mod crt;
mod decision;
mod discovery;
mod ert;
mod plan;

pub use alt::{Alt, AltEntry, AltOverflow};
pub use config::{ClearConfig, SclLockPolicy};
pub use crt::Crt;
pub use decision::{decide, RetryMode};
pub use discovery::{Discovery, DiscoveryAssessment, ObservedClass};
pub use ert::{Ert, ErtEntry};
pub use plan::{PlanAddr, PlanClass, StaticPlan, StaticPlanSet};
