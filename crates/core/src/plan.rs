//! Static execution plans: analyzer verdicts packaged for the machine.
//!
//! A [`StaticPlan`] is the execution-time payload of an ahead-of-time
//! verdict from `clear-analysis`: the proved mutability class plus the
//! symbolic cacheline lock set the analyzer bounded. The machine resolves
//! the symbolic addresses against each invocation's entry arguments and —
//! when the resolved footprint fits the speculation backend's budgets —
//! skips the discovery run entirely for proved-immutable ARs (building
//! the ALT straight from the plan) or shortens it to a root-slot
//! stability confirmation for likely-immutable ones.
//!
//! Plans are *hints with a guard*, never trusted blindly: the NS-CL
//! access path re-checks at run time that every touched line is locked,
//! and a violation aborts the attempt and poisons the plan (see
//! `clear-machine`). A wrong plan therefore costs one extra retry; it can
//! never commit a mutation or break atomicity.
//!
//! This crate models the hardware structures and deliberately knows
//! nothing about the ISA, so symbolic addresses name entry registers by
//! their raw index.

use clear_mem::{FxHashMap, LineAddr, LINE_BYTES};

/// The analyzer class a plan was emitted for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanClass {
    /// Proved footprint-immutable: the lock set is complete and the AR may
    /// enter NS-CL without a discovery run.
    Immutable,
    /// Immutable unless a concurrent writer invalidates a root pointer
    /// slot: discovery still runs, but only to confirm root-slot
    /// stability, after which the whole learned footprint is locked.
    LikelyImmutable,
}

/// A symbolic byte address the analyzer resolved a site to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanAddr {
    /// Concrete byte address (constant-addressed site).
    Abs(u64),
    /// `entry_value(reg) + delta` bytes, resolved per invocation against
    /// the AR's entry arguments. `reg` is the raw register index.
    Sym {
        /// Raw index of the entry register holding the base value.
        reg: u8,
        /// Wrapping byte delta added to the entry value.
        delta: u64,
    },
}

impl PlanAddr {
    /// Resolves to a byte address; `lookup` maps an entry-register index
    /// to its invocation value (`None` when the register is not an entry
    /// argument, which makes the whole plan inapplicable).
    pub fn resolve(self, lookup: &impl Fn(u8) -> Option<u64>) -> Option<u64> {
        match self {
            PlanAddr::Abs(a) => Some(a),
            PlanAddr::Sym { reg, delta } => lookup(reg).map(|v| v.wrapping_add(delta)),
        }
    }
}

/// One AR's static execution plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticPlan {
    /// The proved class.
    pub class: PlanClass,
    /// Symbolic byte addresses of every *resolved* access site. Complete
    /// (covers all reachable accesses) exactly when
    /// [`StaticPlan::complete`]; always a subset of the true footprint
    /// otherwise.
    pub lock_set: Vec<PlanAddr>,
    /// The written subset of [`StaticPlan::lock_set`].
    pub written: Vec<PlanAddr>,
    /// Root pointer slots a likely-immutable verdict hinges on: the
    /// single-hop load slots the region itself never overwrites. Empty
    /// for [`PlanClass::Immutable`].
    pub root_slots: Vec<PlanAddr>,
    /// `true` when [`StaticPlan::lock_set`] covers every reachable access
    /// site — the precondition for skipping discovery.
    pub complete: bool,
    /// The analyzer's upper bound on distinct accessed lines.
    pub bound_lines: usize,
    /// The analyzer's upper bound on distinct written lines.
    pub bound_written: usize,
}

impl StaticPlan {
    /// Checks the static line bounds against a backend's read/write-set
    /// capacity (`SpeculationBackend::rw_limits` shape: `None` = untracked
    /// / unlimited). Written lines occupy the write set; the remaining
    /// lines must fit the read set.
    pub fn fits_rw(&self, read_lines: Option<usize>, write_lines: Option<usize>) -> bool {
        if let Some(w) = write_lines {
            if self.bound_written > w {
                return false;
            }
        }
        if let Some(r) = read_lines {
            if self.bound_lines.saturating_sub(self.bound_written) > r {
                return false;
            }
        }
        true
    }

    /// Resolves a symbolic address set to deduplicated cachelines in
    /// ascending order; `None` when any address fails to resolve.
    pub fn resolve_lines(
        addrs: &[PlanAddr],
        lookup: &impl Fn(u8) -> Option<u64>,
    ) -> Option<Vec<LineAddr>> {
        let mut lines: Vec<LineAddr> = addrs
            .iter()
            .map(|a| a.resolve(lookup).map(|b| LineAddr(b / LINE_BYTES)))
            .collect::<Option<_>>()?;
        lines.sort_unstable();
        lines.dedup();
        Some(lines)
    }
}

/// The plans of one workload, keyed by static AR id (`ArId.0`).
#[derive(Clone, Debug, Default)]
pub struct StaticPlanSet {
    plans: FxHashMap<u32, StaticPlan>,
}

impl StaticPlanSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the plan for AR `ar`.
    pub fn insert(&mut self, ar: u32, plan: StaticPlan) {
        self.plans.insert(ar, plan);
    }

    /// The plan for AR `ar`, if any.
    pub fn get(&self, ar: u32) -> Option<&StaticPlan> {
        self.plans.get(&ar)
    }

    /// Number of planned ARs.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// `true` when no AR has a plan.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Iterates `(ar, plan)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &StaticPlan)> {
        self.plans.iter().map(|(&k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(class: PlanClass, lock_set: Vec<PlanAddr>, lines: usize, written: usize) -> StaticPlan {
        StaticPlan {
            class,
            lock_set,
            written: Vec::new(),
            root_slots: Vec::new(),
            complete: true,
            bound_lines: lines,
            bound_written: written,
        }
    }

    #[test]
    fn sym_addresses_resolve_against_entry_args() {
        let lookup = |r: u8| (r == 3).then_some(256u64);
        assert_eq!(PlanAddr::Abs(64).resolve(&lookup), Some(64));
        assert_eq!(
            PlanAddr::Sym { reg: 3, delta: 72 }.resolve(&lookup),
            Some(328)
        );
        assert_eq!(PlanAddr::Sym { reg: 9, delta: 0 }.resolve(&lookup), None);
    }

    #[test]
    fn resolve_lines_dedups_and_sorts() {
        let lookup = |r: u8| (r == 0).then_some(128u64);
        let addrs = [
            PlanAddr::Sym { reg: 0, delta: 8 },
            PlanAddr::Abs(0),
            PlanAddr::Sym { reg: 0, delta: 16 },
        ];
        // 136 and 144 share line 2; 0 is line 0.
        assert_eq!(
            StaticPlan::resolve_lines(&addrs, &lookup),
            Some(vec![LineAddr(0), LineAddr(2)])
        );
        let missing = [PlanAddr::Sym { reg: 7, delta: 0 }];
        assert_eq!(StaticPlan::resolve_lines(&missing, &lookup), None);
    }

    #[test]
    fn rw_budget_accounts_written_lines_separately() {
        let p = plan(PlanClass::Immutable, vec![], 10, 4);
        assert!(p.fits_rw(None, None), "untracked backend always fits");
        assert!(p.fits_rw(Some(6), Some(4)));
        assert!(!p.fits_rw(Some(6), Some(3)), "write set too small");
        assert!(!p.fits_rw(Some(5), Some(4)), "read set too small");
    }

    #[test]
    fn plan_set_round_trips() {
        let mut set = StaticPlanSet::new();
        assert!(set.is_empty());
        set.insert(
            4,
            plan(PlanClass::LikelyImmutable, vec![PlanAddr::Abs(0)], 1, 0),
        );
        assert_eq!(set.len(), 1);
        assert_eq!(
            set.get(4).map(|p| p.class),
            Some(PlanClass::LikelyImmutable)
        );
        assert!(set.get(5).is_none());
        assert_eq!(set.iter().count(), 1);
    }
}
