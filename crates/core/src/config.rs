//! CLEAR hardware configuration.

/// Which read lines S-CL locks in addition to the write set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SclLockPolicy {
    /// Lock the write set plus reads recorded in the CRT (the paper's
    /// choice, §4.4.2: avoids requesting exclusivity for shared reads).
    WriteSetPlusCrt,
    /// Lock every accessed line (the "lock all" alternative discussed and
    /// rejected in §4.4.2; kept as an ablation).
    AllAccessed,
}

/// Sizes of the CLEAR structures (§5, Fig. 7 defaults; < 1 KiB per core).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClearConfig {
    /// ERT entries (paper: 16, fully associative).
    pub ert_entries: usize,
    /// ALT entries (paper: 32). Footprints above this are non-convertible.
    pub alt_entries: usize,
    /// CRT sets (paper: 8 sets × 8 ways = 64 entries).
    pub crt_sets: usize,
    /// CRT ways.
    pub crt_ways: usize,
    /// S-CL read-locking policy.
    pub scl_lock_policy: SclLockPolicy,
}

impl Default for ClearConfig {
    fn default() -> Self {
        ClearConfig {
            ert_entries: 16,
            alt_entries: 32,
            crt_sets: 8,
            crt_ways: 8,
            scl_lock_policy: SclLockPolicy::WriteSetPlusCrt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ClearConfig::default();
        assert_eq!(c.ert_entries, 16);
        assert_eq!(c.alt_entries, 32);
        assert_eq!(c.crt_sets * c.crt_ways, 64);
        assert_eq!(c.scl_lock_policy, SclLockPolicy::WriteSetPlusCrt);
    }
}
