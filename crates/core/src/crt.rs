//! The Conflicting Reads Table (CRT, Fig. 7 ④).

use clear_mem::{CacheGeometry, LineAddr, SetAssocCache};

/// The Conflicting Reads Table: read lines that were **not written** by the
/// AR during discovery but received a conflict-causing invalidation in a
/// previous execution. Before an S-CL retry, lines present here get their
/// ALT Needs-Locking bit set so the same conflict cannot recur (§4.4.2).
///
/// Paper sizing: 64 entries, 8-way set-associative, LRU.
///
/// # Examples
///
/// ```
/// use clear_core::Crt;
/// use clear_mem::LineAddr;
///
/// let mut crt = Crt::new(8, 8);
/// crt.record(LineAddr(42));
/// assert!(crt.contains(LineAddr(42)));
/// assert!(!crt.contains(LineAddr(43)));
/// ```
#[derive(Clone, Debug)]
pub struct Crt {
    table: SetAssocCache<()>,
}

impl Crt {
    /// Creates a CRT with `sets × ways` entries (paper: 8 × 8).
    pub fn new(sets: usize, ways: usize) -> Self {
        Crt {
            table: SetAssocCache::new(CacheGeometry::new(sets, ways)),
        }
    }

    /// Records a conflicting read of `line` (LRU-replacing within its set).
    pub fn record(&mut self, line: LineAddr) {
        self.table.insert(line, ());
    }

    /// `true` if `line` suffered a conflict in a previous execution.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.table.contains(line)
    }

    /// Consumes the entry for `line`, returning whether it was present.
    ///
    /// S-CL retries *take* CRT entries when they add the line to their lock
    /// set: the lock prevents the recorded conflict from recurring on this
    /// retry, and if the line is genuinely write-hot the next conflict
    /// re-records it. Leaving entries in place would instead make every
    /// future S-CL of any AR whose footprint contains a once-conflicted
    /// line (e.g. a data structure's root) lock it forever — a
    /// serialization feedback loop.
    pub fn take(&mut self, line: LineAddr) -> bool {
        self.table.remove(line).is_some()
    }

    /// Number of recorded lines.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = Crt::new(2, 2);
        c.record(LineAddr(1));
        assert!(c.contains(LineAddr(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn record_is_idempotent() {
        let mut c = Crt::new(2, 2);
        c.record(LineAddr(1));
        c.record(LineAddr(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn set_overflow_evicts_lru() {
        let mut c = Crt::new(2, 2);
        // Lines 0, 2, 4 map to set 0 of a 2-set table.
        c.record(LineAddr(0));
        c.record(LineAddr(2));
        c.record(LineAddr(4));
        assert!(!c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(2)));
        assert!(c.contains(LineAddr(4)));
    }
}
