//! The Addresses to Lock Table (ALT, Fig. 7 ③).

use clear_mem::{CacheGeometry, LexKey, LineAddr};
use std::fmt;

/// One ALT entry: a cacheline learned during discovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AltEntry {
    /// The cacheline address.
    pub line: LineAddr,
    /// Must be locked before re-execution: set for written lines, and for
    /// read lines found in the CRT (S-CL), or every line (NS-CL).
    pub needs_locking: bool,
    /// The lock has been acquired.
    pub locked: bool,
    /// Group-locking probe found the line already exclusive in the private
    /// cache (§5: if all entries of a group hit, the group locks without
    /// any communication).
    pub hit: bool,
    /// This entry shares its directory set with the *next* entry —
    /// i.e. every member of a lexicographical conflict group is marked
    /// except the last, which delimits the group (§5).
    pub conflict: bool,
}

/// Error returned when the discovered footprint exceeds the ALT capacity;
/// the AR is then non-convertible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AltOverflow;

impl fmt::Display for AltOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ALT capacity exceeded: footprint too large to convert")
    }
}

impl std::error::Error for AltOverflow {}

/// The Addresses to Lock Table: the cacheline footprint of an AR, kept
/// sorted in the deadlock-free lexicographical lock order (directory set
/// index, §5), organised as a CAM with priority search in hardware.
///
/// # Examples
///
/// ```
/// use clear_core::Alt;
/// use clear_mem::{CacheGeometry, LineAddr};
///
/// let mut alt = Alt::new(32, CacheGeometry::new(64, 16));
/// alt.observe(LineAddr(9), false).unwrap();
/// alt.observe(LineAddr(3), true).unwrap();
/// let order: Vec<_> = alt.iter().map(|e| e.line).collect();
/// assert_eq!(order, vec![LineAddr(3), LineAddr(9)]);
/// assert!(alt.iter().find(|e| e.line == LineAddr(3)).unwrap().needs_locking);
/// ```
#[derive(Clone, Debug)]
pub struct Alt {
    capacity: usize,
    dir: CacheGeometry,
    entries: Vec<AltEntry>,
}

impl Alt {
    /// Creates an empty ALT with `capacity` entries (paper: 32) using the
    /// directory geometry `dir` for the lexicographical order.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, dir: CacheGeometry) -> Self {
        assert!(capacity > 0, "ALT capacity must be non-zero");
        Alt {
            capacity,
            dir,
            entries: Vec::new(),
        }
    }

    fn key(&self, line: LineAddr) -> LexKey {
        LexKey::new(self.dir, line)
    }

    /// Records an access to `line` observed during discovery. `written`
    /// lines get their Needs-Locking bit set; a line written on any access
    /// keeps the bit. Entries stay sorted in lock order and group Conflict
    /// bits are maintained.
    ///
    /// # Errors
    ///
    /// Returns [`AltOverflow`] if a new line would exceed capacity; the
    /// table keeps its previous contents.
    pub fn observe(&mut self, line: LineAddr, written: bool) -> Result<(), AltOverflow> {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.needs_locking |= written;
            return Ok(());
        }
        if self.entries.len() == self.capacity {
            return Err(AltOverflow);
        }
        let key = self.key(line);
        let pos = self.entries.partition_point(|e| self.key_of(e) < key);
        self.entries.insert(
            pos,
            AltEntry {
                line,
                needs_locking: written,
                locked: false,
                hit: false,
                conflict: false,
            },
        );
        self.refresh_conflict_bits();
        Ok(())
    }

    /// `true` if `line` already has an entry.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// `true` if [`Alt::observe`]`(line, _)` would return [`AltOverflow`]:
    /// the non-mutating mirror of its only failure condition (a new line
    /// while the table is full), used by the parallel-step classifier.
    pub fn would_overflow(&self, line: LineAddr) -> bool {
        self.entries.len() == self.capacity && !self.contains(line)
    }

    fn key_of(&self, e: &AltEntry) -> LexKey {
        LexKey::new(self.dir, e.line)
    }

    fn refresh_conflict_bits(&mut self) {
        // Allocation-free: each entry only compares its set with its
        // successor's, so a pairwise walk suffices.
        let n = self.entries.len();
        for i in 0..n {
            self.entries[i].conflict = i + 1 < n
                && self.key_of(&self.entries[i]).dir_set
                    == self.key_of(&self.entries[i + 1]).dir_set;
        }
    }

    /// Marks `line` as Needs-Locking (CRT hit before an S-CL retry, §5).
    /// No-op if the line is not in the table.
    pub fn mark_needs_locking(&mut self, line: LineAddr) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.needs_locking = true;
        }
    }

    /// Sets every entry's Needs-Locking bit (NS-CL locks the whole
    /// footprint).
    pub fn mark_all_needs_locking(&mut self) {
        for e in &mut self.entries {
            e.needs_locking = true;
        }
    }

    /// Marks `line` as locked.
    pub fn mark_locked(&mut self, line: LineAddr) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.locked = true;
        }
    }

    /// Sets the Hit bit of `line` (group-locking cache probe, §5).
    pub fn mark_hit(&mut self, line: LineAddr, hit: bool) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.hit = hit;
        }
    }

    /// Iterates entries in lock (lexicographical) order.
    pub fn iter(&self) -> impl Iterator<Item = &AltEntry> {
        self.entries.iter()
    }

    /// The lines that must be locked, in lock order.
    pub fn lock_list(&self) -> Vec<LineAddr> {
        let mut out = Vec::new();
        self.lock_list_into(&mut out);
        out
    }

    /// Writes the lock list into `out` (cleared first), reusing its
    /// allocation — the per-attempt variant of [`Alt::lock_list`].
    pub fn lock_list_into(&self, out: &mut Vec<LineAddr>) {
        out.clear();
        out.extend(
            self.entries
                .iter()
                .filter(|e| e.needs_locking)
                .map(|e| e.line),
        );
    }

    /// The lines of the lexicographical conflict group containing `line`
    /// (all entries sharing its directory set), in lock order.
    pub fn group_of(&self, line: LineAddr) -> Vec<LineAddr> {
        let set = self.key(line).dir_set;
        self.entries
            .iter()
            .filter(|e| self.key_of(e).dir_set == set)
            .map(|e| e.line)
            .collect()
    }

    /// All recorded lines in lock order (the learned footprint).
    pub fn footprint(&self) -> Vec<LineAddr> {
        self.entries.iter().map(|e| e.line).collect()
    }

    /// Number of recorded lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no lines are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears lock progress (Locked/Hit bits) keeping the footprint — used
    /// between a failed lock pass and a retry.
    pub fn reset_lock_state(&mut self) {
        for e in &mut self.entries {
            e.locked = false;
            e.hit = false;
        }
    }

    /// Empties the table for a new discovery.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alt(cap: usize) -> Alt {
        // 4-set directory: lines 0,4,8 share set 0; 1,5 share set 1.
        Alt::new(cap, CacheGeometry::new(4, 4))
    }

    #[test]
    fn entries_kept_in_lock_order() {
        let mut a = alt(8);
        for l in [6u64, 1, 4, 0] {
            a.observe(LineAddr(l), false).unwrap();
        }
        let lines: Vec<u64> = a.iter().map(|e| e.line.0).collect();
        // Order by (dir_set, line): set0: 0,4; set1: 1; set2: 6.
        assert_eq!(lines, vec![0, 4, 1, 6]);
    }

    #[test]
    fn conflict_bits_mark_groups() {
        let mut a = alt(8);
        for l in [0u64, 4, 8, 1, 6] {
            a.observe(LineAddr(l), false).unwrap();
        }
        let flags: Vec<(u64, bool)> = a.iter().map(|e| (e.line.0, e.conflict)).collect();
        // Group {0,4,8}: first two marked, last clear; singletons clear.
        assert_eq!(
            flags,
            vec![(0, true), (4, true), (8, false), (1, false), (6, false)]
        );
    }

    #[test]
    fn written_sets_needs_locking_sticky() {
        let mut a = alt(4);
        a.observe(LineAddr(2), false).unwrap();
        a.observe(LineAddr(2), true).unwrap();
        a.observe(LineAddr(2), false).unwrap();
        assert!(a.iter().next().unwrap().needs_locking);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn overflow_is_reported() {
        let mut a = alt(2);
        a.observe(LineAddr(0), false).unwrap();
        a.observe(LineAddr(1), false).unwrap();
        assert_eq!(a.observe(LineAddr(2), false), Err(AltOverflow));
        assert_eq!(a.len(), 2);
        // Re-observing an existing line still works.
        assert!(a.observe(LineAddr(0), true).is_ok());
    }

    #[test]
    fn lock_list_filters_needs_locking() {
        let mut a = alt(8);
        a.observe(LineAddr(0), true).unwrap();
        a.observe(LineAddr(1), false).unwrap();
        a.observe(LineAddr(2), true).unwrap();
        assert_eq!(a.lock_list(), vec![LineAddr(0), LineAddr(2)]);
        a.mark_all_needs_locking();
        assert_eq!(a.lock_list().len(), 3);
    }

    #[test]
    fn group_of_returns_same_set_lines() {
        let mut a = alt(8);
        for l in [0u64, 4, 8, 1] {
            a.observe(LineAddr(l), false).unwrap();
        }
        assert_eq!(
            a.group_of(LineAddr(4)),
            vec![LineAddr(0), LineAddr(4), LineAddr(8)]
        );
        assert_eq!(a.group_of(LineAddr(1)), vec![LineAddr(1)]);
    }

    #[test]
    fn mark_and_reset_lock_state() {
        let mut a = alt(4);
        a.observe(LineAddr(3), true).unwrap();
        a.mark_locked(LineAddr(3));
        a.mark_hit(LineAddr(3), true);
        let e = *a.iter().next().unwrap();
        assert!(e.locked && e.hit);
        a.reset_lock_state();
        let e = *a.iter().next().unwrap();
        assert!(!e.locked && !e.hit);
        assert!(e.needs_locking); // footprint info retained
    }

    #[test]
    fn crt_marking_upgrades_reads() {
        let mut a = alt(4);
        a.observe(LineAddr(5), false).unwrap();
        assert!(a.lock_list().is_empty());
        a.mark_needs_locking(LineAddr(5));
        assert_eq!(a.lock_list(), vec![LineAddr(5)]);
    }

    #[test]
    fn clear_empties() {
        let mut a = alt(4);
        a.observe(LineAddr(5), true).unwrap();
        a.clear();
        assert!(a.is_empty());
    }
}
