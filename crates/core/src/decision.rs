//! The Fig. 2 decision tree: choosing the re-execution mode after an abort.

use crate::DiscoveryAssessment;
use std::fmt;

/// How an aborted AR re-executes (§4.3, in the paper's reverse-hierarchy
/// numbering).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RetryMode {
    /// 3 — Non-Speculative Cacheline-Locked execution: the footprint is
    /// immutable and simultaneously lockable; completion is guaranteed.
    NsCl,
    /// 2 — Speculative Cacheline-Locked execution: lockable but not
    /// guaranteed immutable; conflict detection stays armed.
    SCl,
    /// 1 — Plain speculative retry (baseline SLE/HTM behaviour).
    SpeculativeRetry,
    /// 0 — The fallback path (coarse-grain mutual exclusion). Chosen by the
    /// retry policy, not by discovery; included for reporting completeness.
    Fallback,
}

// Whether a mode's attempts are guaranteed to commit once started (the
// paper's single-retry bound) is a property of the *backend*, not of the
// mode name: NS-CL only carries the guarantee when CLEAR's discovery built
// it. Conformance oracles therefore ask
// `SpeculationBackend::guarantees_commit(mode)` in `clear-machine` instead
// of an enum check here.

impl fmt::Display for RetryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RetryMode::NsCl => "NS-CL",
            RetryMode::SCl => "S-CL",
            RetryMode::SpeculativeRetry => "speculative",
            RetryMode::Fallback => "fallback",
        };
        f.write_str(s)
    }
}

/// Applies the decision tree of Fig. 2 to a discovery assessment:
///
/// 1. core structures overflowed → the AR is non-convertible → plain
///    speculative retry (the caller also clears the ERT Is-Convertible
///    bit);
/// 2. the address set cannot be simultaneously locked → speculative retry;
/// 3. indirections present → S-CL; otherwise → NS-CL.
///
/// This tree only runs when an attempt reaches a discovery decision. A
/// [`StaticPlan`](crate::StaticPlan) can override the path *before* that
/// point: a proved-immutable plan lets the machine choose NS-CL on the
/// first abort (or eagerly under contention) without any discovery run,
/// and a likely-immutable plan upgrades the S-CL outcome below to lock
/// the whole learned footprint once root-slot stability is confirmed.
/// The precedence is documented in DESIGN.md §8: static override first
/// (guarded at run time), then this dynamic tree as the general path.
///
/// # Examples
///
/// ```
/// use clear_core::{decide, DiscoveryAssessment, RetryMode};
///
/// // No static plan for this AR: the dynamic tree decides. Lockable but
/// // mutable (an indirection was observed) → S-CL.
/// let a = DiscoveryAssessment {
///     overflowed: false,
///     lockable: true,
///     immutable: false,
///     footprint: vec![],
///     written: vec![],
/// };
/// assert_eq!(decide(&a), RetryMode::SCl);
/// ```
pub fn decide(a: &DiscoveryAssessment) -> RetryMode {
    if a.overflowed || !a.lockable {
        RetryMode::SpeculativeRetry
    } else if a.immutable {
        RetryMode::NsCl
    } else {
        RetryMode::SCl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assessment(overflowed: bool, lockable: bool, immutable: bool) -> DiscoveryAssessment {
        DiscoveryAssessment {
            overflowed,
            lockable,
            immutable,
            footprint: vec![],
            written: vec![],
        }
    }

    #[test]
    fn immutable_lockable_is_nscl() {
        assert_eq!(decide(&assessment(false, true, true)), RetryMode::NsCl);
    }

    #[test]
    fn mutable_lockable_is_scl() {
        assert_eq!(decide(&assessment(false, true, false)), RetryMode::SCl);
    }

    #[test]
    fn unlockable_is_speculative() {
        assert_eq!(
            decide(&assessment(false, false, true)),
            RetryMode::SpeculativeRetry
        );
        assert_eq!(
            decide(&assessment(false, false, false)),
            RetryMode::SpeculativeRetry
        );
    }

    #[test]
    fn overflow_is_speculative() {
        assert_eq!(
            decide(&assessment(true, false, true)),
            RetryMode::SpeculativeRetry
        );
    }

    #[test]
    fn display_names_match_figures() {
        assert_eq!(RetryMode::NsCl.to_string(), "NS-CL");
        assert_eq!(RetryMode::SCl.to_string(), "S-CL");
        assert_eq!(RetryMode::SpeculativeRetry.to_string(), "speculative");
        assert_eq!(RetryMode::Fallback.to_string(), "fallback");
    }
}
