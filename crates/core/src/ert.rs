//! The Explored Region Table (ERT, Fig. 7 ②).

/// Per-static-AR state stored in the ERT.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ErtEntry {
    /// Cacheline locking can be employed on a retry.
    pub is_convertible: bool,
    /// A retry can start in NS-CL mode (no indirections were observed).
    /// If convertible but not immutable, retries start in S-CL.
    pub is_immutable: bool,
    /// 2-bit saturating counter of failed discoveries that ran out of SQ.
    sq_full: u8,
}

impl ErtEntry {
    const SQ_FULL_MAX: u8 = 3;

    /// The reset state of a fresh entry: convertible, immutable, counter 0.
    pub fn fresh() -> Self {
        ErtEntry {
            is_convertible: true,
            is_immutable: true,
            sq_full: 0,
        }
    }

    /// Current SQ-full counter value (0..=3).
    pub fn sq_full(&self) -> u8 {
        self.sq_full
    }

    /// Saturating increment, on a failed discovery exhausting the SQ.
    pub fn bump_sq_full(&mut self) {
        self.sq_full = (self.sq_full + 1).min(Self::SQ_FULL_MAX);
    }

    /// Saturating decrement, on a commit of this AR.
    pub fn decay_sq_full(&mut self) {
        self.sq_full = self.sq_full.saturating_sub(1);
    }

    /// Discovery is disabled for this AR while the counter is saturated or
    /// the AR was marked non-convertible (§5.1).
    pub fn discovery_enabled(&self) -> bool {
        self.is_convertible && self.sq_full < Self::SQ_FULL_MAX
    }
}

impl Default for ErtEntry {
    fn default() -> Self {
        Self::fresh()
    }
}

/// The Explored Region Table: a small, fully-associative, LRU-replaced
/// table keyed by the AR's static identity (its entry PC in hardware;
/// `ArId` in the `clear-isa` crate — the key type here is a plain
/// `u32` to keep this crate independent of the ISA crate).
///
/// # Examples
///
/// ```
/// use clear_core::Ert;
///
/// let mut ert = Ert::new(2);
/// ert.entry(1).is_immutable = false;
/// assert!(!ert.lookup(1).unwrap().is_immutable);
/// assert!(ert.lookup(99).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct Ert {
    capacity: usize,
    entries: Vec<Slot>,
    tick: u64,
}

#[derive(Clone, Debug)]
struct Slot {
    key: u32,
    entry: ErtEntry,
    last_use: u64,
}

impl Ert {
    /// Creates an ERT with `capacity` entries (paper: 16).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ERT capacity must be non-zero");
        Ert {
            capacity,
            entries: Vec::new(),
            tick: 0,
        }
    }

    /// Looks up the entry for AR `key` without allocating or touching LRU.
    pub fn lookup(&self, key: u32) -> Option<&ErtEntry> {
        self.entries.iter().find(|s| s.key == key).map(|s| &s.entry)
    }

    /// Returns the entry for AR `key`, allocating a fresh one (possibly
    /// evicting the LRU entry) if absent, and refreshing its LRU position.
    pub fn entry(&mut self, key: u32) -> &mut ErtEntry {
        self.tick += 1;
        let tick = self.tick;
        if let Some(i) = self.entries.iter().position(|s| s.key == key) {
            self.entries[i].last_use = tick;
            return &mut self.entries[i].entry;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(Slot {
                key,
                entry: ErtEntry::fresh(),
                last_use: tick,
            });
            let i = self.entries.len() - 1;
            return &mut self.entries[i].entry;
        }
        let lru = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.last_use)
            .map(|(i, _)| i)
            .expect("capacity > 0");
        self.entries[lru] = Slot {
            key,
            entry: ErtEntry::fresh(),
            last_use: tick,
        };
        &mut self.entries[lru].entry
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_entry_defaults() {
        let e = ErtEntry::fresh();
        assert!(e.is_convertible);
        assert!(e.is_immutable);
        assert_eq!(e.sq_full(), 0);
        assert!(e.discovery_enabled());
    }

    #[test]
    fn sq_full_saturates_and_disables_discovery() {
        let mut e = ErtEntry::fresh();
        for _ in 0..5 {
            e.bump_sq_full();
        }
        assert_eq!(e.sq_full(), 3);
        assert!(!e.discovery_enabled());
        e.decay_sq_full();
        assert_eq!(e.sq_full(), 2);
        assert!(e.discovery_enabled());
    }

    #[test]
    fn decay_does_not_underflow() {
        let mut e = ErtEntry::fresh();
        e.decay_sq_full();
        assert_eq!(e.sq_full(), 0);
    }

    #[test]
    fn non_convertible_disables_discovery() {
        let mut e = ErtEntry::fresh();
        e.is_convertible = false;
        assert!(!e.discovery_enabled());
    }

    #[test]
    fn entry_allocates_and_persists() {
        let mut ert = Ert::new(4);
        ert.entry(7).is_convertible = false;
        assert!(!ert.lookup(7).unwrap().is_convertible);
        assert_eq!(ert.len(), 1);
    }

    #[test]
    fn lru_eviction_drops_oldest() {
        let mut ert = Ert::new(2);
        ert.entry(1).is_immutable = false;
        ert.entry(2);
        ert.entry(1); // refresh 1; 2 becomes LRU
        ert.entry(3); // evicts 2
        assert!(ert.lookup(1).is_some());
        assert!(ert.lookup(2).is_none());
        assert!(ert.lookup(3).is_some());
        // Evicted-and-reallocated entries come back fresh.
        assert!(ert.entry(2).is_immutable);
        assert!(ert.lookup(1).is_none()); // 1 was LRU after touching 3 and 2
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        Ert::new(0);
    }
}
