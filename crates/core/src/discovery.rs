//! The discovery phase (§4.1/§4.2): learning an AR's footprint and
//! mutability during its speculative execution.

use crate::{Alt, ClearConfig, RetryMode};
use clear_mem::{CacheGeometry, LineAddr};
use std::fmt;

/// The coarse dynamic class of one discovery decision, in the vocabulary
/// shared with the static analyzer (`clear-analysis`): what the machine
/// *observed* about an AR execution, comparable against what the analyzer
/// *predicted* from program text alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObservedClass {
    /// The footprint overflowed a core structure (ALT/L1/SQ) — the AR is
    /// non-convertible (assessment 1).
    Overflowed,
    /// The footprint fit but cannot be simultaneously locked
    /// (assessment 2).
    Unlockable,
    /// No indirections observed: the footprint is immutable on a retry
    /// (assessment 3) — the AR is NS-CL eligible.
    Immutable,
    /// Indirections (or dependent branches) observed: the footprint can
    /// mutate on a retry — at best S-CL.
    Mutable,
}

impl ObservedClass {
    /// The class implied by a Fig. 2 retry-mode decision. `Fallback` maps
    /// to `Overflowed`: the retry policy only takes that path once the AR
    /// cannot be converted.
    pub fn from_mode(mode: RetryMode, immutable: bool) -> ObservedClass {
        match mode {
            RetryMode::NsCl => ObservedClass::Immutable,
            RetryMode::SCl => ObservedClass::Mutable,
            RetryMode::SpeculativeRetry | RetryMode::Fallback => {
                if immutable {
                    ObservedClass::Overflowed
                } else {
                    ObservedClass::Mutable
                }
            }
        }
    }
}

impl fmt::Display for ObservedClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObservedClass::Overflowed => "overflowed",
            ObservedClass::Unlockable => "unlockable",
            ObservedClass::Immutable => "immutable",
            ObservedClass::Mutable => "mutable",
        };
        f.write_str(s)
    }
}

/// The verdict of a completed discovery, feeding the Fig. 2 decision tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiscoveryAssessment {
    /// Assessment 1 — the AR overflowed the speculation window (ALT
    /// capacity, L1 footprint or SQ during failed mode). Non-convertible.
    pub overflowed: bool,
    /// Assessment 2 — the learned footprint can be simultaneously locked
    /// (no cache/directory conflicts among the lines).
    pub lockable: bool,
    /// Assessment 3 — no indirections and no dependent branches were
    /// observed: the footprint is immutable on a retry.
    pub immutable: bool,
    /// The learned footprint in lock order (empty when overflowed).
    pub footprint: Vec<LineAddr>,
    /// The subset of the footprint that was written.
    pub written: Vec<LineAddr>,
}

impl DiscoveryAssessment {
    /// Collapses the three assessments into the [`ObservedClass`]
    /// vocabulary shared with the static analyzer, in the same priority
    /// order as the Fig. 2 decision tree.
    pub fn observed_class(&self) -> ObservedClass {
        if self.overflowed {
            ObservedClass::Overflowed
        } else if !self.lockable {
            ObservedClass::Unlockable
        } else if self.immutable {
            ObservedClass::Immutable
        } else {
            ObservedClass::Mutable
        }
    }
}

/// Per-execution discovery state.
///
/// One `Discovery` is (re-)armed at each AR invocation (`XBegin`) unless
/// the ERT says the AR is non-convertible. The machine feeds it every
/// retired memory access and branch; after the AR ends (commit, `XEnd` in
/// failed mode, explicit abort or resource exhaustion) it is
/// [assessed](Discovery::assess).
///
/// # Examples
///
/// ```
/// use clear_core::{ClearConfig, Discovery};
/// use clear_mem::{CacheGeometry, LineAddr};
///
/// let mut d = Discovery::new(&ClearConfig::default(), CacheGeometry::new(64, 16));
/// d.on_access(LineAddr(1), true, false);
/// d.on_access(LineAddr(2), false, true); // indirect read
/// let a = d.assess(|_| true);
/// assert!(!a.immutable);
/// assert!(a.lockable);
/// ```
#[derive(Clone, Debug)]
pub struct Discovery {
    alt: Alt,
    /// A conflict arrived: the execution continues in *failed mode*.
    failed: bool,
    /// An indirect address or dependent branch was retired.
    has_indirection: bool,
    /// Footprint exceeded the ALT or the SQ overflowed in failed mode.
    overflowed: bool,
    /// Stores retired while in failed mode (bounded by the SQ).
    stores_in_failed: u64,
}

impl Discovery {
    /// Arms a fresh discovery.
    pub fn new(config: &ClearConfig, dir: CacheGeometry) -> Self {
        Discovery {
            alt: Alt::new(config.alt_entries, dir),
            failed: false,
            has_indirection: false,
            overflowed: false,
            stores_in_failed: 0,
        }
    }

    /// Re-arms for a new AR invocation, keeping the allocated ALT storage.
    pub fn rearm(&mut self) {
        self.alt.clear();
        self.failed = false;
        self.has_indirection = false;
        self.overflowed = false;
        self.stores_in_failed = 0;
    }

    /// `true` once a conflict has been observed (failed mode, §4.1).
    pub fn in_failed_mode(&self) -> bool {
        self.failed
    }

    /// `true` if discovery gave up due to resource exhaustion.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Stores retired since failed mode began.
    pub fn stores_in_failed(&self) -> u64 {
        self.stores_in_failed
    }

    /// The ALT being populated.
    pub fn alt(&self) -> &Alt {
        &self.alt
    }

    /// Consumes discovery, yielding the populated ALT for the retry.
    pub fn into_alt(self) -> Alt {
        self.alt
    }

    /// `true` if [`Discovery::on_access`] for `line` would set the
    /// overflowed flag — the non-mutating lookahead the parallel-step
    /// classifier uses to keep overflow handling on the sequential path.
    pub fn would_overflow(&self, line: LineAddr) -> bool {
        self.alt.would_overflow(line)
    }

    /// Records a retired memory access: its cacheline, whether it was a
    /// store, and whether its address base register carried the indirection
    /// bit.
    pub fn on_access(&mut self, line: LineAddr, written: bool, addr_indirect: bool) {
        if addr_indirect {
            self.has_indirection = true;
        }
        if self.alt.observe(line, written).is_err() {
            self.overflowed = true;
        }
        if self.failed && written {
            self.stores_in_failed += 1;
        }
    }

    /// Records a retired conditional branch whose comparands carried the
    /// indirection bit — a control dependence on loaded data (§3).
    pub fn on_branch(&mut self, cond_indirect: bool) {
        if cond_indirect {
            self.has_indirection = true;
        }
    }

    /// A conflict arrived: hold the abort and continue in failed mode.
    pub fn on_conflict(&mut self) {
        self.failed = true;
    }

    /// Failed-mode stores exceeded the store queue: discovery is hopeless
    /// (assessment 1); the ERT SQ-Full counter should be bumped.
    pub fn on_sq_overflow(&mut self) {
        self.overflowed = true;
    }

    /// Produces the final assessment. `fits_locked` is the coherence-layer
    /// test that the footprint can be held locked simultaneously
    /// (cache/directory conflict check, assessment 2).
    pub fn assess<F>(&self, fits_locked: F) -> DiscoveryAssessment
    where
        F: FnOnce(&[LineAddr]) -> bool,
    {
        let footprint = self.alt.footprint();
        let lockable = !self.overflowed && fits_locked(&footprint);
        DiscoveryAssessment {
            overflowed: self.overflowed,
            lockable,
            immutable: !self.has_indirection,
            written: self
                .alt
                .iter()
                .filter(|e| e.needs_locking)
                .map(|e| e.line)
                .collect(),
            footprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disc() -> Discovery {
        Discovery::new(&ClearConfig::default(), CacheGeometry::new(16, 4))
    }

    #[test]
    fn clean_small_footprint_is_immutable_and_lockable() {
        let mut d = disc();
        d.on_access(LineAddr(1), true, false);
        d.on_access(LineAddr(2), false, false);
        d.on_branch(false);
        let a = d.assess(|_| true);
        assert!(!a.overflowed);
        assert!(a.lockable);
        assert!(a.immutable);
        assert_eq!(a.footprint.len(), 2);
        assert_eq!(a.written, vec![LineAddr(1)]);
    }

    #[test]
    fn indirect_address_clears_immutable() {
        let mut d = disc();
        d.on_access(LineAddr(1), false, true);
        let a = d.assess(|_| true);
        assert!(!a.immutable);
        assert!(a.lockable);
    }

    #[test]
    fn dependent_branch_clears_immutable() {
        let mut d = disc();
        d.on_access(LineAddr(1), false, false);
        d.on_branch(true);
        assert!(!d.assess(|_| true).immutable);
    }

    #[test]
    fn alt_overflow_marks_overflowed() {
        let cfg = ClearConfig {
            alt_entries: 2,
            ..ClearConfig::default()
        };
        let mut d = Discovery::new(&cfg, CacheGeometry::new(16, 4));
        for l in 0..3u64 {
            d.on_access(LineAddr(l), false, false);
        }
        let a = d.assess(|_| true);
        assert!(a.overflowed);
        assert!(!a.lockable);
    }

    #[test]
    fn unlockable_footprint_reported() {
        let mut d = disc();
        d.on_access(LineAddr(1), true, false);
        let a = d.assess(|_| false);
        assert!(!a.lockable);
        assert!(!a.overflowed);
    }

    #[test]
    fn failed_mode_counts_stores() {
        let mut d = disc();
        d.on_access(LineAddr(1), true, false);
        assert_eq!(d.stores_in_failed(), 0);
        d.on_conflict();
        assert!(d.in_failed_mode());
        d.on_access(LineAddr(2), true, false);
        d.on_access(LineAddr(3), false, false);
        assert_eq!(d.stores_in_failed(), 1);
    }

    #[test]
    fn sq_overflow_is_overflow() {
        let mut d = disc();
        d.on_conflict();
        d.on_sq_overflow();
        assert!(d.overflowed());
        assert!(d.assess(|_| true).overflowed);
    }

    #[test]
    fn observed_class_follows_decision_priority() {
        let mut d = disc();
        d.on_access(LineAddr(1), true, false);
        assert_eq!(
            d.assess(|_| true).observed_class(),
            ObservedClass::Immutable
        );
        assert_eq!(
            d.assess(|_| false).observed_class(),
            ObservedClass::Unlockable
        );
        d.on_access(LineAddr(2), false, true);
        assert_eq!(d.assess(|_| true).observed_class(), ObservedClass::Mutable);
        d.on_sq_overflow();
        assert_eq!(
            d.assess(|_| true).observed_class(),
            ObservedClass::Overflowed
        );
    }

    #[test]
    fn observed_class_from_mode_matches_decide() {
        use crate::decide;
        // Every (mode, immutable) pair recoverable from a Decision trace
        // event maps back to a class consistent with the assessment that
        // produced the mode.
        for overflowed in [false, true] {
            for lockable in [false, true] {
                for immutable in [false, true] {
                    let a = DiscoveryAssessment {
                        overflowed,
                        lockable,
                        immutable,
                        footprint: vec![],
                        written: vec![],
                    };
                    let from_mode = ObservedClass::from_mode(decide(&a), immutable);
                    let exact = a.observed_class();
                    // Unlockable is indistinguishable from Overflowed at
                    // the mode level (both retry speculatively).
                    let expect = match exact {
                        ObservedClass::Unlockable if immutable => ObservedClass::Overflowed,
                        ObservedClass::Unlockable => ObservedClass::Mutable,
                        ObservedClass::Overflowed if !immutable => ObservedClass::Mutable,
                        c => c,
                    };
                    assert_eq!(
                        from_mode, expect,
                        "ov={overflowed} lk={lockable} im={immutable}"
                    );
                }
            }
        }
    }

    #[test]
    fn observed_class_display() {
        assert_eq!(ObservedClass::Overflowed.to_string(), "overflowed");
        assert_eq!(ObservedClass::Unlockable.to_string(), "unlockable");
        assert_eq!(ObservedClass::Immutable.to_string(), "immutable");
        assert_eq!(ObservedClass::Mutable.to_string(), "mutable");
    }

    #[test]
    fn rearm_resets_everything() {
        let mut d = disc();
        d.on_access(LineAddr(1), true, true);
        d.on_conflict();
        d.on_sq_overflow();
        d.rearm();
        assert!(!d.in_failed_mode());
        assert!(!d.overflowed());
        let a = d.assess(|_| true);
        assert!(a.immutable);
        assert!(a.footprint.is_empty());
    }
}
