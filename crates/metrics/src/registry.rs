//! The metric registry: labelled counters, gauges and histograms in one
//! deterministically-ordered map, plus the plain-data snapshot view used
//! by serializers.

use crate::hist::Log2Hist;
use std::collections::BTreeMap;

/// Identity of one time series: a family name plus sorted label pairs.
///
/// Labels are sorted at construction so `{a="1", b="2"}` and
/// `{b="2", a="1"}` address the same series, and the registry's `BTreeMap`
/// ordering (family name first, then labels) is the canonical iteration
/// and serialization order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Family name (e.g. `clear_aborts_total`).
    pub name: String,
    /// Sorted `(label, value)` pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the label pairs.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// One series' value.
///
/// `Hist` dwarfs the scalar variants (a `Log2Hist` carries 64 buckets
/// inline), but boxing it would put a pointer chase on the per-sample
/// `observe` path; series live in the registry map by value either way,
/// and histogram series dominate real registries.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic event count; merges by addition.
    Counter(u64),
    /// A sampled level (occupancy, high-water mark); merges by addition,
    /// which is the right semantics for the per-shard/per-batch partial
    /// registries this crate merges (each part owns a disjoint share).
    Gauge(u64),
    /// A streaming histogram; merges bucket-wise.
    Hist(Log2Hist),
}

/// A registry of labelled metrics.
///
/// Everything in a registry is a pure function of the simulated events fed
/// into it — no wall-clock values belong here, so snapshots are
/// byte-reproducible across hosts and worker counts. Partial registries
/// (one per worker, batch or shard) merge back to the registry a
/// sequential run would have built, in any merge order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    series: BTreeMap<MetricKey, MetricValue>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a counter series, creating it at zero first.
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a non-counter kind.
    pub fn inc(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        match self
            .series
            .entry(MetricKey::new(name, labels))
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += delta,
            other => panic!("{name}: counter op on {other:?}"),
        }
    }

    /// Sets a gauge series to `value`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a non-gauge kind.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        match self
            .series
            .entry(MetricKey::new(name, labels))
            .or_insert(MetricValue::Gauge(0))
        {
            MetricValue::Gauge(g) => *g = value,
            other => panic!("{name}: gauge op on {other:?}"),
        }
    }

    /// Records one histogram sample, creating the series on first use.
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a non-histogram kind.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        match self
            .series
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| MetricValue::Hist(Log2Hist::new()))
        {
            MetricValue::Hist(h) => h.observe(value),
            other => panic!("{name}: histogram op on {other:?}"),
        }
    }

    /// Looks up a series.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.series.get(&MetricKey::new(name, labels))
    }

    /// The histogram of a series, if it exists and is one.
    pub fn hist(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Log2Hist> {
        match self.get(name, labels) {
            Some(MetricValue::Hist(h)) => Some(h),
            _ => None,
        }
    }

    /// Folds `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise. Merging is commutative and associative, so
    /// per-worker partial registries combine identically in any order.
    ///
    /// # Panics
    ///
    /// Panics if the two registries hold the same key with different kinds.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (key, value) in &other.series {
            match self.series.entry(key.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(value.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => match (e.get_mut(), value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (MetricValue::Hist(a), MetricValue::Hist(b)) => a.merge(b),
                    (a, b) => panic!("{}: kind mismatch on merge: {a:?} vs {b:?}", key.name),
                },
            }
        }
    }

    /// Iterates every series in canonical (name, labels) order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &MetricValue)> {
        self.series.iter()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` when no series exist.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// A plain-data snapshot in canonical order, for serializers.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            series: self
                .series
                .iter()
                .map(|(k, v)| SeriesSnapshot {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: v.clone(),
                })
                .collect(),
        }
    }
}

/// A frozen, ordered view of a registry: what serializers (harness JSON,
/// Prometheus text exposition) consume.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Every series in canonical (name, sorted labels) order.
    pub series: Vec<SeriesSnapshot>,
}

/// One series in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Family name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_order_is_irrelevant() {
        let mut r = MetricsRegistry::new();
        r.inc("hits", &[("a", "1"), ("b", "2")], 1);
        r.inc("hits", &[("b", "2"), ("a", "1")], 2);
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.get("hits", &[("a", "1"), ("b", "2")]),
            Some(&MetricValue::Counter(3))
        );
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = MetricsRegistry::new();
        a.inc("c", &[], 5);
        a.observe("h", &[("k", "v")], 10);
        a.set_gauge("g", &[("shard", "0")], 7);
        let mut b = MetricsRegistry::new();
        b.inc("c", &[], 2);
        b.observe("h", &[("k", "v")], 900);
        b.set_gauge("g", &[("shard", "1")], 3);

        let mut ab = MetricsRegistry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = MetricsRegistry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.get("c", &[]), Some(&MetricValue::Counter(7)));
        assert_eq!(ab.hist("h", &[("k", "v")]).unwrap().count(), 2);
    }

    #[test]
    fn snapshot_is_canonically_ordered() {
        let mut r = MetricsRegistry::new();
        r.inc("z", &[], 1);
        r.inc("a", &[("l", "2")], 1);
        r.inc("a", &[("l", "1")], 1);
        let names: Vec<(String, Vec<(String, String)>)> = r
            .snapshot()
            .series
            .into_iter()
            .map(|s| (s.name, s.labels))
            .collect();
        assert_eq!(names[0].0, "a");
        assert_eq!(names[0].1[0].1, "1");
        assert_eq!(names[1].1[0].1, "2");
        assert_eq!(names[2].0, "z");
    }

    #[test]
    #[should_panic(expected = "counter op")]
    fn kind_confusion_panics() {
        let mut r = MetricsRegistry::new();
        r.observe("x", &[], 1);
        r.inc("x", &[], 1);
    }
}
