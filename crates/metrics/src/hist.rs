//! A log2-bucketed streaming histogram over `u64` samples.
//!
//! The bucket layout matches the derived-metrics pass of the harness trace
//! exporter: bucket 0 covers `[0, 2)` and bucket `i ≥ 1` covers
//! `[2^i, 2^(i+1))`, with 64 buckets so every `u64` value has a home.
//! Observation and merge are pure integer arithmetic, so any partition of
//! a sample stream across workers, shards or batches merges back to the
//! exact histogram a sequential pass would have produced, in any merge
//! order.

/// Number of buckets: one per possible `u64` bit length (plus bucket 0
/// holding both 0 and 1).
pub const BUCKETS: usize = 64;

/// The log2 bucket index of a sample: 0 for values in `[0, 2)`, otherwise
/// the sample's bit length minus one.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).saturating_sub(1)
}

/// Inclusive lower bound of a bucket: 0 for bucket 0, `2^i` for bucket `i`.
#[inline]
pub fn bucket_lower(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << index
    }
}

/// A streaming histogram: per-bucket counts plus exact count, sum, min and
/// max. All fields are pure functions of the observed multiset, so two
/// histograms over the same samples are equal however the samples were
/// split and merged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Log2Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Hist::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Adds every sample of `other` into `self`. Addition commutes, so any
    /// merge order over any partition of a stream produces the same result.
    pub fn merge(&mut self, other: &Log2Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// A deterministic integer quantile: the lower bound of the bucket
    /// holding the `⌈q·count⌉`-th smallest sample, clamped into the exact
    /// observed `[min, max]` range. `q ≥ 1.0` returns the exact maximum
    /// (the histogram tracks it precisely); an empty histogram returns 0.
    ///
    /// Because the answer is an integer derived from bucket counts alone,
    /// percentiles are byte-stable across hosts and pinnable in golden
    /// files.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_lower(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_matches_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_lower(i)), i, "lower bound lives in {i}");
        }
    }

    #[test]
    fn observe_tracks_exact_extremes() {
        let mut h = Log2Hist::new();
        assert_eq!((h.min(), h.max(), h.count(), h.sum()), (0, 0, 0, 0));
        for v in [7, 3, 900, 3] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 913);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 900);
    }

    #[test]
    fn quantile_is_bucket_lower_clamped_to_extremes() {
        let mut h = Log2Hist::new();
        h.observe(7);
        // Bucket lower bound of 7 is 4; clamping recovers the exact value.
        assert_eq!(h.quantile(0.5), 7);
        h.observe(100);
        h.observe(100);
        h.observe(100);
        assert_eq!(h.quantile(0.0), 7);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.99), 64); // lower bound of 100's bucket
    }

    #[test]
    fn merge_equals_sequential_observation() {
        let samples: Vec<u64> = (0..1000).map(|i| (i * 2654435761u64) >> 16).collect();
        let mut whole = Log2Hist::new();
        for &s in &samples {
            whole.observe(s);
        }
        let mut parts = [Log2Hist::new(), Log2Hist::new(), Log2Hist::new()];
        for (i, &s) in samples.iter().enumerate() {
            parts[i % 3].observe(s);
        }
        let mut fwd = Log2Hist::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Log2Hist::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, whole);
        assert_eq!(rev, whole);
    }
}
