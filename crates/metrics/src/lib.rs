//! Deterministic, zero-dependency metrics for the CLEAR reproduction.
//!
//! CLEAR's value claim is latency-shaped — bounding an atomic region to a
//! single retry is a *tail-latency* guarantee — so the repo needs more
//! than end-of-run aggregates: streaming distributions whose percentiles
//! can be gated in golden files. This crate provides the three metric
//! kinds the simulator emits:
//!
//! - [`MetricsRegistry`] counters (abort causes, commits per mode,
//!   per-shard lock/NACK traffic),
//! - gauges (directory-shard occupancy, simulator perf counters), and
//! - [`Log2Hist`] streaming histograms (time-to-commit per retry mode /
//!   backend / AR class, lock-wait cycles).
//!
//! Everything is a pure function of simulated events: no wall-clock values
//! are ever stored, observation order within a series is irrelevant, and
//! [`MetricsRegistry::merge`] is commutative — so per-worker, per-batch or
//! per-shard partial registries always fold back to the exact registry a
//! sequential run would have produced. That is what lets the harness gate
//! p50/p99/p999 time-to-commit byte-exactly in `goldens/slo-latency.json`
//! while still collecting metrics across worker pools.
//!
//! Serialization lives upstream in `clear-harness` (the in-tree JSON layer
//! and the Prometheus text exposition); this crate only exposes the
//! ordered [`Snapshot`] view they render.
//!
//! # Examples
//!
//! ```
//! use clear_metrics::{families, MetricsRegistry};
//!
//! let mut worker_a = MetricsRegistry::new();
//! let mut worker_b = MetricsRegistry::new();
//! worker_a.observe(families::TTC_CYCLES, &[("mode", "speculative")], 120);
//! worker_b.observe(families::TTC_CYCLES, &[("mode", "speculative")], 4000);
//!
//! let mut merged = MetricsRegistry::new();
//! merged.merge(&worker_b); // any order
//! merged.merge(&worker_a);
//! let h = merged
//!     .hist(families::TTC_CYCLES, &[("mode", "speculative")])
//!     .unwrap();
//! assert_eq!(h.count(), 2);
//! assert!(h.quantile(0.99) >= h.quantile(0.5));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hist;
mod registry;

pub use hist::{bucket_lower, bucket_of, Log2Hist, BUCKETS};
pub use registry::{MetricKey, MetricValue, MetricsRegistry, SeriesSnapshot, Snapshot};

/// The typed metric families the machine and coherence layers emit.
///
/// Keeping the names here (rather than scattered as string literals) makes
/// the registry's schema greppable and keeps the JSON/Prometheus exports,
/// the serve loop's percentile rows and the golden gate all reading the
/// same series.
pub mod families {
    /// Histogram, labels `mode`, `backend`: simulated cycles from the
    /// first attempt of an AR invocation to its commit.
    pub const TTC_CYCLES: &str = "clear_ttc_cycles";
    /// Histogram, label `class`: the same time-to-commit keyed by the
    /// AR's static mutability class (Table 1 taxonomy).
    pub const TTC_CLASS_CYCLES: &str = "clear_ttc_class_cycles";
    /// Counter, label `mode`: committed ARs per execution mode.
    pub const COMMITS: &str = "clear_commits_total";
    /// Counter, label `cause`: aborts by the machine's abort taxonomy.
    pub const ABORTS: &str = "clear_aborts_total";
    /// Histogram, no labels: cycles spent spinning per CL-mode lock-list
    /// acquisition (one sample per acquired conflict group).
    pub const LOCK_WAIT_CYCLES: &str = "clear_lock_wait_cycles";
    /// Gauge, label `shard`: directory entries instantiated per shard.
    pub const SHARD_LINES: &str = "clear_shard_lines";
    /// Counter, label `shard`: cacheline locks acquired per shard.
    pub const SHARD_LOCKS: &str = "clear_shard_locks_total";
    /// Counter, label `shard`: lock requests NACKed (refused because
    /// another core held a group line locked) per shard.
    pub const SHARD_LOCK_NACKS: &str = "clear_shard_lock_nacks_total";
    /// Gauge, label `counter`: the simulator-kernel perf counters (the
    /// `clear_machine::PerfCounters` fields), excluding wall-clock time,
    /// which is never stored in a registry.
    pub const SIM_PERF: &str = "clear_sim_perf";
}
