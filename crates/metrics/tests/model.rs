//! Model-based property tests: the streaming histogram against a
//! `BTreeMap` bucket model and an exact sorted-sample oracle, over
//! deterministic pseudo-random streams (the workspace is zero-dep, so the
//! "property test" is an explicit seeded loop like the rest of the repo).

use clear_metrics::{bucket_lower, bucket_of, Log2Hist, MetricsRegistry};
use std::collections::BTreeMap;

/// SplitMix64: the same tiny deterministic generator the fuzzer seeds its
/// case streams with.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Draws a sample spanning many magnitudes: a raw 64-bit draw shifted
/// right by a random amount, so small and huge values both appear.
fn sample(rng: &mut SplitMix64) -> u64 {
    let v = rng.next();
    v >> (rng.next() % 64)
}

#[test]
fn histogram_matches_btreemap_bucket_model() {
    for seed in 1..=20u64 {
        let mut rng = SplitMix64(seed);
        let mut h = Log2Hist::new();
        let mut model: BTreeMap<usize, u64> = BTreeMap::new();
        let mut samples = Vec::new();
        for _ in 0..2000 {
            let v = sample(&mut rng);
            samples.push(v);
            h.observe(v);
            *model.entry(bucket_of(v)).or_insert(0) += 1;
        }
        // Bucket counts agree with the model exactly.
        for (i, &n) in h.buckets().iter().enumerate() {
            assert_eq!(n, model.get(&i).copied().unwrap_or(0), "bucket {i}");
        }
        // Count/sum/min/max agree with the exact aggregates.
        assert_eq!(h.count(), samples.len() as u64);
        let exact: u64 = samples.iter().fold(0u64, |a, &b| a.saturating_add(b));
        assert_eq!(h.sum(), exact);
        assert_eq!(h.min(), *samples.iter().min().unwrap());
        assert_eq!(h.max(), *samples.iter().max().unwrap());
    }
}

#[test]
fn every_sample_lands_in_its_bucket_range() {
    let mut rng = SplitMix64(0xC1EA);
    for _ in 0..5000 {
        let v = sample(&mut rng);
        let b = bucket_of(v);
        assert!(bucket_lower(b) <= v, "{v} below bucket {b}");
        if b < 63 {
            assert!(v < bucket_lower(b + 1), "{v} above bucket {b}");
        }
    }
}

#[test]
fn quantiles_bracket_the_sorted_sample_oracle() {
    for seed in 1..=10u64 {
        let mut rng = SplitMix64(seed ^ 0xABCD);
        let mut h = Log2Hist::new();
        let mut samples = Vec::new();
        for _ in 0..1500 {
            let v = sample(&mut rng) % 1_000_000;
            samples.push(v);
            h.observe(v);
        }
        samples.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let oracle = samples[rank - 1];
            let got = h.quantile(q);
            // The log2 estimate is the oracle's bucket lower bound, so it
            // never exceeds the oracle and is within one power of two
            // below it (and monotone in q).
            assert!(got <= oracle, "q={q}: {got} > oracle {oracle}");
            assert!(
                oracle < 2 * got.max(1) || oracle < 2,
                "q={q}: {got} more than one bucket below {oracle}"
            );
        }
        let qs: Vec<u64> = [0.5, 0.9, 0.99, 0.999]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "monotone quantiles");
    }
}

#[test]
fn registry_partitions_merge_to_the_sequential_registry() {
    for workers in [1usize, 2, 3, 8] {
        let mut rng = SplitMix64(7);
        let mut seq = MetricsRegistry::new();
        let mut parts: Vec<MetricsRegistry> =
            (0..workers).map(|_| MetricsRegistry::new()).collect();
        for i in 0..3000usize {
            let v = sample(&mut rng);
            let mode = if v.is_multiple_of(2) {
                "speculative"
            } else {
                "scl"
            };
            seq.observe("ttc", &[("mode", mode)], v);
            seq.inc("events", &[], 1);
            parts[i % workers].observe("ttc", &[("mode", mode)], v);
            parts[i % workers].inc("events", &[], 1);
        }
        let mut merged = MetricsRegistry::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, seq, "{workers} workers");
        assert_eq!(merged.snapshot(), seq.snapshot());
    }
}
