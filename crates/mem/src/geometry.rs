//! Cache geometry descriptions (size, associativity, set indexing).

use crate::LineAddr;

/// The geometry of a set-associative cache-like structure.
///
/// Used for the private data cache model, for the directory cache (whose set
/// index defines the lexicographical lock order of §5), and for CLEAR's
/// simultaneous-lockability check during discovery.
///
/// # Examples
///
/// ```
/// use clear_mem::CacheGeometry;
///
/// // 48 KiB, 12-way, 64-byte lines => 64 sets (Icelake L1D, Table 2).
/// let l1d = CacheGeometry::from_capacity(48 * 1024, 12);
/// assert_eq!(l1d.sets, 64);
/// assert_eq!(l1d.ways, 12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Number of sets. Must be a power of two.
    pub sets: usize,
    /// Number of ways per set.
    pub ways: usize,
}

impl CacheGeometry {
    /// Creates a geometry from an explicit set/way count.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or if `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        CacheGeometry { sets, ways }
    }

    /// Creates a geometry from a total capacity in bytes and associativity,
    /// assuming 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the derived set count is zero or not a power of two.
    pub fn from_capacity(capacity_bytes: usize, ways: usize) -> Self {
        let lines = capacity_bytes / crate::LINE_BYTES as usize;
        Self::new(lines / ways, ways)
    }

    /// Total number of lines the structure can hold.
    #[inline]
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Set index for a line address (low-order bits).
    #[inline]
    pub fn set_index(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.sets - 1)
    }
}

impl Default for CacheGeometry {
    /// The Icelake-like L1D of Table 2: 48 KiB, 12-way.
    fn default() -> Self {
        CacheGeometry::from_capacity(48 * 1024, 12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1d_geometry_matches_table2() {
        let g = CacheGeometry::default();
        assert_eq!(g.sets, 64);
        assert_eq!(g.ways, 12);
        assert_eq!(g.lines(), 768);
    }

    #[test]
    fn set_index_uses_low_bits() {
        let g = CacheGeometry::new(64, 8);
        assert_eq!(g.set_index(LineAddr(0)), 0);
        assert_eq!(g.set_index(LineAddr(63)), 63);
        assert_eq!(g.set_index(LineAddr(64)), 0);
        assert_eq!(g.set_index(LineAddr(65)), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        CacheGeometry::new(48, 4);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_ways_panics() {
        CacheGeometry::new(64, 0);
    }

    #[test]
    fn from_capacity_l2() {
        // 512 KiB, 8-way => 1024 sets.
        let g = CacheGeometry::from_capacity(512 * 1024, 8);
        assert_eq!(g.sets, 1024);
    }
}
