//! [`CoreBitSet`]: a growable set of core ids that stays allocation-free
//! for machines of up to 64 cores.
//!
//! The coherence directory keeps one sharer set per cacheline and the
//! fallback lock keeps one reader set; both were fixed-width `u64` masks,
//! which capped the simulator at 64 cores. `CoreBitSet` keeps the first
//! word inline (so the ≤64-core hot path allocates nothing and stays as
//! cheap as the raw mask) and spills additional words into a `Vec` only
//! when a core id of 64 or above is actually inserted.
//!
//! Iteration order is always ascending core id — the same order the old
//! `trailing_zeros` walks produced — which the simulator's determinism
//! depends on.

/// A set of core ids, allocation-free below 64 cores.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoreBitSet {
    /// Cores 0..64.
    head: u64,
    /// Cores 64.. in 64-core words; empty until a wide id is inserted.
    spill: Vec<u64>,
}

impl CoreBitSet {
    /// Creates an empty set.
    #[inline]
    pub const fn new() -> CoreBitSet {
        CoreBitSet {
            head: 0,
            spill: Vec::new(),
        }
    }

    /// Creates a set holding exactly `core`.
    #[inline]
    pub fn only(core: usize) -> CoreBitSet {
        let mut s = CoreBitSet::new();
        s.insert(core);
        s
    }

    #[inline]
    fn split(core: usize) -> (usize, u64) {
        (core >> 6, 1u64 << (core & 63))
    }

    /// Inserts `core`; returns `true` when it was newly added.
    #[inline]
    pub fn insert(&mut self, core: usize) -> bool {
        let (w, bit) = Self::split(core);
        let word = if w == 0 {
            &mut self.head
        } else {
            if self.spill.len() < w {
                self.spill.resize(w, 0);
            }
            &mut self.spill[w - 1]
        };
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Removes `core`; returns `true` when it was present.
    #[inline]
    pub fn remove(&mut self, core: usize) -> bool {
        let (w, bit) = Self::split(core);
        let word = if w == 0 {
            &mut self.head
        } else {
            match self.spill.get_mut(w - 1) {
                Some(word) => word,
                None => return false,
            }
        };
        let had = *word & bit != 0;
        *word &= !bit;
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, core: usize) -> bool {
        let (w, bit) = Self::split(core);
        let word = if w == 0 {
            self.head
        } else {
            self.spill.get(w - 1).copied().unwrap_or(0)
        };
        word & bit != 0
    }

    /// `true` when no core is in the set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == 0 && self.spill.iter().all(|&w| w == 0)
    }

    /// Number of cores in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.head.count_ones() as usize
            + self
                .spill
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// Empties the set, keeping any spill capacity for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.head = 0;
        for w in &mut self.spill {
            *w = 0;
        }
    }

    /// Collapses the set to exactly `core` (the directory's write-takeover
    /// update: the writer becomes the sole sharer).
    #[inline]
    pub fn set_only(&mut self, core: usize) {
        self.clear();
        self.insert(core);
    }

    /// `true` when any core other than `exclude` is in the set.
    #[inline]
    pub fn contains_other_than(&self, exclude: usize) -> bool {
        let (w, bit) = Self::split(exclude);
        if w == 0 {
            if self.head & !bit != 0 {
                return true;
            }
            self.spill.iter().any(|&word| word != 0)
        } else {
            if self.head != 0 {
                return true;
            }
            self.spill.iter().enumerate().any(|(i, &word)| {
                if i + 1 == w {
                    word & !bit != 0
                } else {
                    word != 0
                }
            })
        }
    }

    /// Iterates the members in ascending core-id order.
    #[inline]
    pub fn iter(&self) -> CoreBitIter<'_> {
        CoreBitIter {
            word: self.head,
            word_index: 0,
            spill: &self.spill,
        }
    }

    /// Iterates the members except `exclude`, in ascending core-id order
    /// (the directory's "every sharer but the requester" walk).
    #[inline]
    pub fn iter_without(&self, exclude: usize) -> impl Iterator<Item = usize> + '_ {
        self.iter().filter(move |&c| c != exclude)
    }
}

/// Ascending-id iterator over a [`CoreBitSet`].
#[derive(Clone, Debug)]
pub struct CoreBitIter<'a> {
    word: u64,
    word_index: usize,
    spill: &'a [u64],
}

impl Iterator for CoreBitIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.word != 0 {
                let bit = self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                return Some(self.word_index * 64 + bit);
            }
            if self.word_index >= self.spill.len() {
                return None;
            }
            self.word = self.spill[self.word_index];
            self.word_index += 1;
        }
    }
}

impl FromIterator<usize> for CoreBitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> CoreBitSet {
        let mut s = CoreBitSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops_inline_and_spilled() {
        let mut s = CoreBitSet::new();
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(!s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(511));
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(511));
        assert!(!s.contains(1) && !s.contains(65) && !s.contains(512));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert!(!s.remove(1000));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 511]);
    }

    #[test]
    fn stays_allocation_free_below_64() {
        let mut s = CoreBitSet::new();
        for c in 0..64 {
            s.insert(c);
        }
        assert!(s.spill.is_empty(), "≤64-core sets must not allocate");
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn iteration_is_ascending() {
        let s: CoreBitSet = [700usize, 3, 64, 0, 127, 65].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 64, 65, 127, 700]);
        assert_eq!(
            s.iter_without(64).collect::<Vec<_>>(),
            vec![0, 3, 65, 127, 700]
        );
    }

    #[test]
    fn contains_other_than_matches_iter_without() {
        let cases: &[&[usize]] = &[&[], &[5], &[5, 9], &[70], &[5, 70], &[64, 65], &[0, 1000]];
        for lines in cases {
            let s: CoreBitSet = lines.iter().copied().collect();
            for probe in [0usize, 5, 9, 63, 64, 65, 70, 999, 1000] {
                assert_eq!(
                    s.contains_other_than(probe),
                    s.iter_without(probe).next().is_some(),
                    "{lines:?} probe {probe}"
                );
            }
        }
    }

    #[test]
    fn set_only_collapses() {
        let mut s: CoreBitSet = [1usize, 2, 100].into_iter().collect();
        s.set_only(77);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![77]);
        s.set_only(3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn clear_retains_spill_capacity() {
        let mut s = CoreBitSet::only(900);
        let cap = s.spill.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.spill.capacity(), cap);
    }
}
