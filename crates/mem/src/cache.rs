//! A generic set-associative tag store with LRU replacement.

use crate::{CacheGeometry, LineAddr};
use std::fmt;

/// Error returned by [`SetAssocCache::insert_respecting`] when every way of
/// the target set holds a pinned (non-evictable) line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PinnedSetFull;

impl fmt::Display for PinnedSetFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("all ways of the set hold pinned lines")
    }
}

impl std::error::Error for PinnedSetFull {}

/// Outcome of inserting a line into a [`SetAssocCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionOutcome {
    /// The line was already present (its LRU position was refreshed).
    Hit,
    /// The line was inserted into a free way.
    Inserted,
    /// The line was inserted, evicting the returned victim.
    Evicted(LineAddr),
}

/// A set-associative tag store with true-LRU replacement, carrying a payload
/// of type `T` per line.
///
/// This models the *presence* side of a cache (tags + replacement); data
/// lives in the flat [`Memory`](crate::Memory). The payload `T` carries
/// per-line metadata such as MESI state or HTM read/write membership.
///
/// # Examples
///
/// ```
/// use clear_mem::{CacheGeometry, LineAddr, SetAssocCache, EvictionOutcome};
///
/// let mut c: SetAssocCache<()> = SetAssocCache::new(CacheGeometry::new(2, 2));
/// assert_eq!(c.insert(LineAddr(0), ()), EvictionOutcome::Inserted);
/// assert_eq!(c.insert(LineAddr(2), ()), EvictionOutcome::Inserted); // same set
/// assert_eq!(c.insert(LineAddr(4), ()), EvictionOutcome::Evicted(LineAddr(0)));
/// assert!(c.get(LineAddr(2)).is_some());
/// ```
#[derive(Clone)]
pub struct SetAssocCache<T> {
    geometry: CacheGeometry,
    /// `sets × ways` entries; `None` = free way.
    ways: Vec<Option<Entry<T>>>,
    /// Monotonic counter for LRU timestamps.
    tick: u64,
}

#[derive(Clone, Debug)]
struct Entry<T> {
    line: LineAddr,
    last_use: u64,
    payload: T,
}

impl<T> SetAssocCache<T> {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let mut ways = Vec::new();
        ways.resize_with(geometry.lines(), || None);
        SetAssocCache {
            geometry,
            ways,
            tick: 0,
        }
    }

    /// The geometry this cache was created with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = self.geometry.set_index(line);
        let start = set * self.geometry.ways;
        start..start + self.geometry.ways
    }

    /// Returns a reference to the payload of `line` if present, refreshing
    /// its LRU position.
    pub fn touch(&mut self, line: LineAddr) -> Option<&mut T> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        self.ways[range]
            .iter_mut()
            .flatten()
            .find(|e| e.line == line)
            .map(|e| {
                e.last_use = tick;
                &mut e.payload
            })
    }

    /// Index of `line`'s way in the backing store, if cached — lets a
    /// probe/apply pair share one lookup via [`SetAssocCache::payload_at`]
    /// and [`SetAssocCache::touch_at`] instead of re-scanning the set.
    /// The index stays valid until the cache is mutated.
    pub fn find_way(&self, line: LineAddr) -> Option<usize> {
        let range = self.set_range(line);
        let start = range.start;
        self.ways[range]
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.line == line))
            .map(|i| start + i)
    }

    /// Payload at a way index obtained from [`SetAssocCache::find_way`].
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range or the way is free.
    pub fn payload_at(&self, way: usize) -> &T {
        &self.ways[way].as_ref().expect("occupied way").payload
    }

    /// Refreshes the LRU position of the entry at `way` (same effect as
    /// [`SetAssocCache::touch`] on its line) and returns its payload.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range or the way is free.
    pub fn touch_at(&mut self, way: usize) -> &mut T {
        self.tick += 1;
        let e = self.ways[way].as_mut().expect("occupied way");
        e.last_use = self.tick;
        &mut e.payload
    }

    /// Returns a reference to the payload of `line` if present, without
    /// touching LRU state.
    pub fn get(&self, line: LineAddr) -> Option<&T> {
        let range = self.set_range(line);
        self.ways[range]
            .iter()
            .flatten()
            .find(|e| e.line == line)
            .map(|e| &e.payload)
    }

    /// Returns a mutable reference to the payload of `line` if present,
    /// without touching LRU state.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        let range = self.set_range(line);
        self.ways[range]
            .iter_mut()
            .flatten()
            .find(|e| e.line == line)
            .map(|e| &mut e.payload)
    }

    /// Returns `true` if `line` is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.get(line).is_some()
    }

    /// Inserts `line` with `payload`, evicting the LRU way of its set if the
    /// set is full. If the line is already present its payload is replaced
    /// and `Hit` is returned.
    pub fn insert(&mut self, line: LineAddr, payload: T) -> EvictionOutcome {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);

        // Already present?
        if let Some(e) = self.ways[range.clone()]
            .iter_mut()
            .flatten()
            .find(|e| e.line == line)
        {
            e.last_use = tick;
            e.payload = payload;
            return EvictionOutcome::Hit;
        }

        // Free way?
        if let Some(slot) = self.ways[range.clone()].iter_mut().find(|w| w.is_none()) {
            *slot = Some(Entry {
                line,
                last_use: tick,
                payload,
            });
            return EvictionOutcome::Inserted;
        }

        // Evict LRU.
        let victim_idx = range
            .clone()
            .min_by_key(|&i| self.ways[i].as_ref().map(|e| e.last_use).unwrap_or(0))
            .expect("non-empty set");
        let victim = self.ways[victim_idx]
            .replace(Entry {
                line,
                last_use: tick,
                payload,
            })
            .expect("victim way occupied");
        EvictionOutcome::Evicted(victim.line)
    }

    /// Inserts `line` only if it does not require evicting a *pinned* entry.
    ///
    /// `pinned` decides, from the payload, whether a resident line may be
    /// evicted.
    ///
    /// # Errors
    ///
    /// Returns [`PinnedSetFull`] (and leaves the cache unchanged) when all
    /// ways of the set are occupied by pinned lines. This models the fact
    /// that locked or transactionally-tracked lines cannot be silently
    /// dropped.
    pub fn insert_respecting<F>(
        &mut self,
        line: LineAddr,
        payload: T,
        pinned: F,
    ) -> Result<EvictionOutcome, PinnedSetFull>
    where
        F: Fn(&T) -> bool,
    {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);

        if let Some(e) = self.ways[range.clone()]
            .iter_mut()
            .flatten()
            .find(|e| e.line == line)
        {
            e.last_use = tick;
            e.payload = payload;
            return Ok(EvictionOutcome::Hit);
        }

        if let Some(slot) = self.ways[range.clone()].iter_mut().find(|w| w.is_none()) {
            *slot = Some(Entry {
                line,
                last_use: tick,
                payload,
            });
            return Ok(EvictionOutcome::Inserted);
        }

        let victim_idx = range
            .clone()
            .filter(|&i| {
                self.ways[i]
                    .as_ref()
                    .map(|e| !pinned(&e.payload))
                    .unwrap_or(true)
            })
            .min_by_key(|&i| self.ways[i].as_ref().map(|e| e.last_use).unwrap_or(0));

        match victim_idx {
            Some(i) => {
                let victim = self.ways[i]
                    .replace(Entry {
                        line,
                        last_use: tick,
                        payload,
                    })
                    .expect("victim way occupied");
                Ok(EvictionOutcome::Evicted(victim.line))
            }
            None => Err(PinnedSetFull),
        }
    }

    /// Removes `line`, returning its payload if it was present.
    pub fn remove(&mut self, line: LineAddr) -> Option<T> {
        let range = self.set_range(line);
        for i in range {
            if self.ways[i]
                .as_ref()
                .map(|e| e.line == line)
                .unwrap_or(false)
            {
                return self.ways[i].take().map(|e| e.payload);
            }
        }
        None
    }

    /// Iterates over all resident `(line, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> {
        self.ways.iter().flatten().map(|e| (e.line, &e.payload))
    }

    /// Iterates mutably over all resident `(line, payload)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineAddr, &mut T)> {
        self.ways
            .iter_mut()
            .flatten()
            .map(|e| (e.line, &mut e.payload))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.ways.iter().flatten().count()
    }

    /// Returns `true` if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident line.
    pub fn clear(&mut self) {
        self.ways.iter_mut().for_each(|w| *w = None);
    }

    /// Checks whether a *set of lines* can be resident simultaneously:
    /// i.e., no set receives more lines than it has ways. This is the
    /// discovery-phase lockability test of §4.1 (assessment 2).
    pub fn fits_simultaneously<I>(geometry: CacheGeometry, lines: I) -> bool
    where
        I: IntoIterator<Item = LineAddr>,
    {
        let mut counts = vec![0usize; geometry.sets];
        for l in lines {
            let s = geometry.set_index(l);
            counts[s] += 1;
            if counts[s] > geometry.ways {
                return false;
            }
        }
        true
    }
}

impl<T: fmt::Debug> fmt::Debug for SetAssocCache<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("geometry", &self.geometry)
            .field("resident", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<u32> {
        SetAssocCache::new(CacheGeometry::new(2, 2))
    }

    #[test]
    fn insert_then_get() {
        let mut c = small();
        assert_eq!(c.insert(LineAddr(1), 7), EvictionOutcome::Inserted);
        assert_eq!(c.get(LineAddr(1)), Some(&7));
        assert!(c.contains(LineAddr(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_is_hit_and_replaces_payload() {
        let mut c = small();
        c.insert(LineAddr(1), 7);
        assert_eq!(c.insert(LineAddr(1), 8), EvictionOutcome::Hit);
        assert_eq!(c.get(LineAddr(1)), Some(&8));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_picks_oldest() {
        let mut c = small();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        c.insert(LineAddr(0), 0);
        c.insert(LineAddr(2), 2);
        c.touch(LineAddr(0)); // 2 becomes LRU
        assert_eq!(
            c.insert(LineAddr(4), 4),
            EvictionOutcome::Evicted(LineAddr(2))
        );
        assert!(c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(4)));
    }

    #[test]
    fn remove_returns_payload() {
        let mut c = small();
        c.insert(LineAddr(3), 9);
        assert_eq!(c.remove(LineAddr(3)), Some(9));
        assert_eq!(c.remove(LineAddr(3)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn insert_respecting_refuses_when_all_pinned() {
        let mut c = small();
        c.insert(LineAddr(0), 1); // set 0
        c.insert(LineAddr(2), 1); // set 0
        let r = c.insert_respecting(LineAddr(4), 1, |&p| p == 1);
        assert_eq!(r, Err(PinnedSetFull));
        assert!(c.contains(LineAddr(0)) && c.contains(LineAddr(2)));
    }

    #[test]
    fn insert_respecting_evicts_unpinned() {
        let mut c = small();
        c.insert(LineAddr(0), 1); // pinned
        c.insert(LineAddr(2), 0); // not pinned
        let r = c.insert_respecting(LineAddr(4), 2, |&p| p == 1);
        assert_eq!(r, Ok(EvictionOutcome::Evicted(LineAddr(2))));
    }

    #[test]
    fn fits_simultaneously_respects_associativity() {
        let g = CacheGeometry::new(2, 2);
        // 0, 2, 4 map to set 0: three lines in a 2-way set do not fit.
        assert!(!SetAssocCache::<()>::fits_simultaneously(
            g,
            [LineAddr(0), LineAddr(2), LineAddr(4)]
        ));
        assert!(SetAssocCache::<()>::fits_simultaneously(
            g,
            [LineAddr(0), LineAddr(2), LineAddr(1), LineAddr(3)]
        ));
    }

    #[test]
    fn iter_visits_all() {
        let mut c = small();
        c.insert(LineAddr(0), 10);
        c.insert(LineAddr(1), 11);
        let mut v: Vec<_> = c.iter().map(|(l, &p)| (l.0, p)).collect();
        v.sort();
        assert_eq!(v, vec![(0, 10), (1, 11)]);
    }

    #[test]
    fn clear_empties() {
        let mut c = small();
        c.insert(LineAddr(0), 1);
        c.clear();
        assert!(c.is_empty());
    }
}
