//! Fast, deterministic hashing for simulation hot paths.
//!
//! The simulator's inner loop hits hash containers on every simulated
//! memory access (store queue, footprints, the coherence directory). The
//! standard library's default SipHash is DoS-resistant but costs tens of
//! cycles per lookup, which is pure overhead here: keys are simulated
//! addresses under our control, so there is no untrusted input to defend
//! against. [`FxHasher`] is the classic multiplicative "Fx" hash used by
//! rustc — one rotate, one xor, one multiply per word — and, unlike
//! `RandomState`, it is *deterministic across processes*, which the
//! golden-replay contract requires anyway.
//!
//! Determinism note: iteration order of [`FxHashMap`]/[`FxHashSet`] is
//! still arbitrary (it depends on insertion history and capacity), exactly
//! like the SipHash containers they replace. Hot-path call sites must not
//! iterate them in any observable order; the simulator only ever does
//! point lookups and drains whose order is provably unobservable.
//!
//! # Examples
//!
//! ```
//! use clear_mem::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, u64> = FxHashMap::default();
//! m.insert(3, 30);
//! assert_eq!(m.get(&3), Some(&30));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// The multiplicative constant of the Fx hash (the golden-ratio-derived
/// constant used by rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast non-cryptographic hasher: `state = (rotl5(state) ^ word) * SEED`
/// per 8-byte word. Deterministic (no per-process random state).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_u64(v: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_and_spreading() {
        assert_eq!(hash_u64(42), hash_u64(42));
        // One-word hash is a single round: rotl5(0) ^ v = v, times SEED.
        assert_eq!(hash_u64(1), SEED);
        // Nearby keys must land far apart (the whole point of the multiply).
        assert_ne!(hash_u64(1) >> 48, hash_u64(2) >> 48);
    }

    #[test]
    fn byte_stream_matches_word_writes() {
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn short_tails_are_padded() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Same padded word (zero-extension), so equal — documents that the
        // hasher is for fixed-width keys, not length-prefixed streams.
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn containers_work() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i * 64);
        }
        assert_eq!(s.len(), 100);
        assert!(s.contains(&640));
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(5, "five");
        assert_eq!(m.remove(&5), Some("five"));
    }
}
