//! Byte- and cacheline-granular address newtypes.

use std::fmt;

/// Size of a cacheline in bytes (matches the Icelake-like configuration of
/// Table 2 in the paper).
pub const LINE_BYTES: u64 = 64;

/// Size of a machine word in bytes. The mini-ISA is a 64-bit machine.
pub const WORD_BYTES: u64 = 8;

/// A byte address in the simulated physical address space.
///
/// The simulated address space starts at a non-zero base so that address `0`
/// can be used by workloads as a null pointer.
///
/// # Examples
///
/// ```
/// use clear_mem::{Addr, LINE_BYTES};
///
/// let a = Addr(0x1000);
/// assert_eq!(a.line().base().0, 0x1000);
/// assert_eq!(a.offset_in_line(), 0);
/// assert_eq!(Addr(0x1008).line(), a.line());
/// assert_eq!(Addr(0x1000 + LINE_BYTES).line(), a.line().next());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The null address. Loads/stores to it are a simulated fault.
    pub const NULL: Addr = Addr(0);

    /// Returns the cacheline this byte address falls into.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Returns the byte offset of this address within its cacheline.
    #[inline]
    pub fn offset_in_line(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// Returns the word index of this address in the flat word-addressed
    /// memory array.
    #[inline]
    pub fn word_index(self) -> usize {
        (self.0 / WORD_BYTES) as usize
    }

    /// Returns `true` if the address is word-aligned.
    #[inline]
    pub fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES)
    }

    /// Returns the address advanced by `words` 64-bit words.
    #[inline]
    pub fn add_words(self, words: u64) -> Addr {
        Addr(self.0 + words * WORD_BYTES)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A cacheline address: the byte address divided by [`LINE_BYTES`].
///
/// All conflict detection, locking and coherence operate at this granularity,
/// as in the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Returns the first byte address of the line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// Returns the next sequential line address.
    #[inline]
    pub fn next(self) -> LineAddr {
        LineAddr(self.0 + 1)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        LineAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_addr_groups_64_bytes() {
        assert_eq!(Addr(0).line(), LineAddr(0));
        assert_eq!(Addr(63).line(), LineAddr(0));
        assert_eq!(Addr(64).line(), LineAddr(1));
        assert_eq!(Addr(127).line(), LineAddr(1));
    }

    #[test]
    fn offset_in_line_wraps() {
        assert_eq!(Addr(0).offset_in_line(), 0);
        assert_eq!(Addr(65).offset_in_line(), 1);
        assert_eq!(Addr(130).offset_in_line(), 2);
    }

    #[test]
    fn word_index_divides_by_word_size() {
        assert_eq!(Addr(0).word_index(), 0);
        assert_eq!(Addr(8).word_index(), 1);
        assert_eq!(Addr(80).word_index(), 10);
    }

    #[test]
    fn add_words_advances_by_eight_bytes() {
        assert_eq!(Addr(0x100).add_words(3), Addr(0x118));
    }

    #[test]
    fn line_base_roundtrip() {
        let l = LineAddr(7);
        assert_eq!(l.base().line(), l);
        assert_eq!(l.base().0, 7 * LINE_BYTES);
    }

    #[test]
    fn alignment_check() {
        assert!(Addr(16).is_word_aligned());
        assert!(!Addr(17).is_word_aligned());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", Addr(255)), "0xff");
        assert_eq!(format!("{}", LineAddr(16)), "L0x10");
    }

    #[test]
    fn next_line_is_sequential() {
        assert_eq!(LineAddr(1).next(), LineAddr(2));
    }
}
