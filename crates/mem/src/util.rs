//! Small allocation-conscious utilities shared by the simulator crates.

/// Splits `slice` into simultaneous `&mut` borrows of the elements at
/// `sorted_ids`, which must be strictly ascending and in bounds.
///
/// This is the safe disjoint-borrow primitive behind deterministic
/// intra-run parallelism: the machine borrows each batch member's per-core
/// state (and each claimed directory shard) mutably at the same time, then
/// hands the references to scoped worker threads.
///
/// # Panics
///
/// Panics if `sorted_ids` is not strictly ascending or indexes out of
/// bounds.
///
/// # Examples
///
/// ```
/// let mut v = vec![0u32; 5];
/// let mut refs = clear_mem::disjoint_muts(&mut v, &[1, 4]);
/// *refs[0] = 10;
/// *refs[1] = 40;
/// assert_eq!(v, vec![0, 10, 0, 0, 40]);
/// ```
pub fn disjoint_muts<'a, T>(slice: &'a mut [T], sorted_ids: &[usize]) -> Vec<&'a mut T> {
    let mut out = Vec::with_capacity(sorted_ids.len());
    let mut rest = slice;
    let mut base = 0usize;
    for &i in sorted_ids {
        assert!(i >= base, "ids must be strictly ascending");
        let (head, tail) = rest.split_at_mut(i - base + 1);
        out.push(&mut head[i - base]);
        rest = tail;
        base = i + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borrows_are_disjoint_and_ordered() {
        let mut v: Vec<usize> = (0..8).collect();
        let refs = disjoint_muts(&mut v, &[0, 3, 7]);
        assert_eq!(refs.len(), 3);
        for r in refs {
            *r += 100;
        }
        assert_eq!(v, vec![100, 1, 2, 103, 4, 5, 6, 107]);
    }

    #[test]
    fn empty_ids_borrow_nothing() {
        let mut v = vec![1, 2];
        assert!(disjoint_muts(&mut v, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_ids_panic() {
        let mut v = vec![1, 2, 3];
        let _ = disjoint_muts(&mut v, &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn duplicate_ids_panic() {
        let mut v = vec![1, 2, 3];
        let _ = disjoint_muts(&mut v, &[1, 1]);
    }
}
