//! The flat simulated shared memory.

use crate::{Addr, LINE_BYTES, WORD_BYTES};
use std::fmt;

/// The simulated shared physical memory: a flat, word-addressed array with a
/// line-aligned bump allocator.
///
/// Address `0` is reserved as a null pointer; allocation starts at the first
/// full cacheline above it. Workloads lay out their data structures here and
/// mini-ISA programs access it through loads and stores.
///
/// # Examples
///
/// ```
/// use clear_mem::Memory;
///
/// let mut mem = Memory::new();
/// let arr = mem.alloc_words(4);
/// mem.store_word(arr.add_words(2), 99);
/// assert_eq!(mem.load_word(arr.add_words(2)), 99);
/// ```
#[derive(Clone)]
pub struct Memory {
    words: Vec<u64>,
    next_free: u64,
}

impl Memory {
    /// Creates an empty memory. Storage grows on demand.
    pub fn new() -> Self {
        Memory {
            words: Vec::new(),
            next_free: LINE_BYTES,
        }
    }

    /// Allocates `words` 64-bit words, line-aligned, zero-initialised.
    ///
    /// Line alignment guarantees allocations never straddle a cacheline
    /// unexpectedly, which keeps workload footprints predictable; it mirrors
    /// `posix_memalign(64)` usage in the original benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn alloc_words(&mut self, words: u64) -> Addr {
        assert!(words > 0, "cannot allocate zero words");
        let base = Addr(self.next_free);
        let bytes = words * WORD_BYTES;
        let padded = bytes.div_ceil(LINE_BYTES) * LINE_BYTES;
        self.next_free += padded;
        self.ensure(Addr(self.next_free));
        base
    }

    /// Allocates exactly one cacheline (8 words).
    pub fn alloc_line(&mut self) -> Addr {
        self.alloc_words(LINE_BYTES / WORD_BYTES)
    }

    fn ensure(&mut self, end: Addr) {
        let need = end.word_index() + 1;
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// Loads the 64-bit word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned or is the null address. These are
    /// workload bugs, not simulated-program faults.
    pub fn load_word(&self, addr: Addr) -> u64 {
        assert!(addr != Addr::NULL, "load from null address");
        assert!(addr.is_word_aligned(), "unaligned load at {addr}");
        self.words.get(addr.word_index()).copied().unwrap_or(0)
    }

    /// Stores a 64-bit word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned or is the null address.
    pub fn store_word(&mut self, addr: Addr, value: u64) {
        assert!(addr != Addr::NULL, "store to null address");
        assert!(addr.is_word_aligned(), "unaligned store at {addr}");
        self.ensure(addr);
        self.words[addr.word_index()] = value;
    }

    /// Bytes currently allocated by the bump allocator.
    pub fn allocated_bytes(&self) -> u64 {
        self.next_free
    }

    /// The backing word array, for whole-image comparison (differential
    /// oracles). Index `i` holds the word at byte address `i * 8`; the
    /// array may be shorter than [`Memory::allocated_bytes`] implies when
    /// trailing words were never written — treat missing words as zero,
    /// exactly as [`Memory::load_word`] does.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("allocated_bytes", &self.next_free)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LineAddr;

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let mut m = Memory::new();
        let a = m.alloc_words(1);
        let b = m.alloc_words(1);
        assert_eq!(a.offset_in_line(), 0);
        assert_eq!(b.offset_in_line(), 0);
        assert_ne!(a.line(), b.line());
    }

    #[test]
    fn null_line_is_never_allocated() {
        let mut m = Memory::new();
        let a = m.alloc_words(8);
        assert_ne!(a.line(), LineAddr(0));
    }

    #[test]
    fn load_store_roundtrip() {
        let mut m = Memory::new();
        let a = m.alloc_words(4);
        m.store_word(a.add_words(3), 0xdead_beef);
        assert_eq!(m.load_word(a.add_words(3)), 0xdead_beef);
    }

    #[test]
    fn fresh_memory_reads_zero() {
        let mut m = Memory::new();
        let a = m.alloc_words(2);
        assert_eq!(m.load_word(a), 0);
    }

    #[test]
    #[should_panic(expected = "null")]
    fn null_load_panics() {
        Memory::new().load_word(Addr::NULL);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_store_panics() {
        Memory::new().store_word(Addr(3), 1);
    }

    #[test]
    fn multi_word_alloc_pads_to_lines() {
        let mut m = Memory::new();
        let before = m.allocated_bytes();
        m.alloc_words(9); // 72 bytes -> 2 lines
        assert_eq!(m.allocated_bytes() - before, 2 * LINE_BYTES);
    }
}
