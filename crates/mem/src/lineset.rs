//! A small-inline set of cachelines.
//!
//! Per Fig. 1 of the paper, the overwhelming majority of atomic-region
//! footprints are at most 32 cachelines, so the per-attempt footprint sets
//! on the simulator's hot path almost never need a heap-allocated hash
//! table. [`LineSet`] keeps up to [`LineSet::INLINE`] lines in a fixed
//! array probed linearly (which at these sizes beats any hash scheme) and
//! spills to a boxed [`FxHashSet`](crate::hash::FxHashSet) only for the
//! rare overflowing region. The spill box is retained across
//! [`LineSet::clear`], so a core that overflowed once does not reallocate
//! every attempt.

use crate::hash::FxHashSet;
use crate::LineAddr;
use std::fmt;

/// A set of [`LineAddr`]s optimised for small footprints.
///
/// # Examples
///
/// ```
/// use clear_mem::{LineAddr, LineSet};
///
/// let mut s = LineSet::new();
/// assert!(s.insert(LineAddr(3)));
/// assert!(!s.insert(LineAddr(3)));
/// assert!(s.contains(LineAddr(3)));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Default)]
pub struct LineSet {
    /// Valid in `0..len` while not spilled.
    inline: [LineAddr; LineSet::INLINE],
    len: usize,
    /// `true` once the set graduated to `spill`; `inline`/`len` are then
    /// stale and `spill` is authoritative.
    spilled: bool,
    /// Heap fallback, kept allocated across `clear()` for reuse.
    spill: Option<Box<FxHashSet<LineAddr>>>,
}

impl LineSet {
    /// Number of lines stored without heap allocation (Fig. 1's bound on
    /// common AR footprints).
    pub const INLINE: usize = 32;

    /// Creates an empty set.
    pub fn new() -> Self {
        LineSet::default()
    }

    /// Number of lines in the set.
    pub fn len(&self) -> usize {
        if self.spilled {
            self.spill.as_ref().expect("spilled set present").len()
        } else {
            self.len
        }
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if `line` is in the set.
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        if self.spilled {
            self.spill
                .as_ref()
                .expect("spilled set present")
                .contains(&line)
        } else {
            self.inline[..self.len].contains(&line)
        }
    }

    /// Inserts `line`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, line: LineAddr) -> bool {
        if self.spilled {
            return self
                .spill
                .as_mut()
                .expect("spilled set present")
                .insert(line);
        }
        if self.inline[..self.len].contains(&line) {
            return false;
        }
        if self.len < Self::INLINE {
            self.inline[self.len] = line;
            self.len += 1;
            return true;
        }
        // Graduate to the heap set, reusing a previously allocated box.
        let set = self.spill.get_or_insert_with(Default::default);
        set.clear();
        set.extend(self.inline.iter().copied());
        set.insert(line);
        self.spilled = true;
        true
    }

    /// Empties the set, retaining any spill allocation for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spilled = false;
        if let Some(s) = self.spill.as_mut() {
            s.clear();
        }
    }

    /// Iterates the lines in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = LineAddr> + '_ {
        let (inline, spill) = if self.spilled {
            (
                [].iter(),
                Some(self.spill.as_ref().expect("spilled set present").iter()),
            )
        } else {
            (self.inline[..self.len].iter(), None)
        };
        inline.copied().chain(spill.into_iter().flatten().copied())
    }

    /// `true` if every line of `self` is in `other`.
    pub fn is_subset(&self, other: &LineSet) -> bool {
        self.iter().all(|l| other.contains(l))
    }
}

impl Clone for LineSet {
    fn clone(&self) -> Self {
        // An unused spill box is not carried into the clone: clones are
        // snapshots (e.g. the first-attempt footprint), not hot-path
        // accumulators.
        LineSet {
            inline: self.inline,
            len: self.len,
            spilled: self.spilled,
            spill: if self.spilled {
                self.spill.clone()
            } else {
                None
            },
        }
    }
}

impl fmt::Debug for LineSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut lines: Vec<u64> = self.iter().map(|l| l.0).collect();
        lines.sort_unstable();
        f.debug_struct("LineSet")
            .field("len", &self.len())
            .field("lines", &lines)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_dedup() {
        let mut s = LineSet::new();
        assert!(s.insert(LineAddr(1)));
        assert!(s.insert(LineAddr(2)));
        assert!(!s.insert(LineAddr(1)));
        assert!(s.contains(LineAddr(1)));
        assert!(!s.contains(LineAddr(3)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn spills_past_inline_capacity_and_stays_correct() {
        let mut s = LineSet::new();
        for i in 0..100u64 {
            assert!(s.insert(LineAddr(i)), "{i}");
        }
        assert_eq!(s.len(), 100);
        for i in 0..100u64 {
            assert!(s.contains(LineAddr(i)));
            assert!(!s.insert(LineAddr(i)));
        }
        assert!(!s.contains(LineAddr(100)));
        let mut seen: Vec<u64> = s.iter().map(|l| l.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clear_resets_and_reuses_spill() {
        let mut s = LineSet::new();
        for i in 0..50u64 {
            s.insert(LineAddr(i));
        }
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(LineAddr(3)));
        // Reusable after clear, both inline and spilled again.
        for i in 0..50u64 {
            assert!(s.insert(LineAddr(i + 1000)));
        }
        assert_eq!(s.len(), 50);
    }

    #[test]
    fn subset_matches_hashset_semantics() {
        let mut a = LineSet::new();
        let mut b = LineSet::new();
        for i in 0..10u64 {
            a.insert(LineAddr(i));
        }
        for i in 0..40u64 {
            b.insert(LineAddr(i));
        }
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        a.insert(LineAddr(999));
        assert!(!a.is_subset(&b));
        assert!(LineSet::new().is_subset(&a));
    }

    #[test]
    fn clone_snapshots_contents() {
        let mut s = LineSet::new();
        for i in 0..40u64 {
            s.insert(LineAddr(i));
        }
        let c = s.clone();
        s.clear();
        assert_eq!(c.len(), 40);
        assert!(c.contains(LineAddr(39)));
    }
}

/// A growable bitmap over *dense* line indices.
///
/// [`Memory`](crate::Memory) hands out storage by bump allocation, so live
/// line addresses form a dense prefix of the index space. Structures keyed
/// by line that cover the whole simulated footprint (the coherence
/// directory's LLC and L2-shadow presence sets) can therefore use one bit
/// per line instead of a hash set: membership tests and updates become a
/// shift and a mask with no hashing at all.
///
/// The bitmap grows on [`LineBitSet::insert`]; queries outside the current
/// capacity simply answer `false`.
///
/// # Examples
///
/// ```
/// use clear_mem::{LineAddr, LineBitSet};
///
/// let mut s = LineBitSet::new();
/// assert!(s.insert(LineAddr(70)));
/// assert!(!s.insert(LineAddr(70)));
/// assert!(s.contains(LineAddr(70)));
/// assert!(!s.contains(LineAddr(71)));
/// assert!(s.remove(LineAddr(70)));
/// assert!(!s.contains(LineAddr(70)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LineBitSet {
    words: Vec<u64>,
}

impl LineBitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn split(line: LineAddr) -> (usize, u64) {
        ((line.0 >> 6) as usize, 1u64 << (line.0 & 63))
    }

    /// Adds `line`; returns `true` if it was absent.
    #[inline]
    pub fn insert(&mut self, line: LineAddr) -> bool {
        let (w, bit) = Self::split(line);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let absent = self.words[w] & bit == 0;
        self.words[w] |= bit;
        absent
    }

    /// Removes `line`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, line: LineAddr) -> bool {
        let (w, bit) = Self::split(line);
        match self.words.get_mut(w) {
            Some(word) => {
                let present = *word & bit != 0;
                *word &= !bit;
                present
            }
            None => false,
        }
    }

    /// `true` if `line` is in the set.
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        let (w, bit) = Self::split(line);
        self.words.get(w).is_some_and(|word| word & bit != 0)
    }

    /// Removes every line, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod bitset_tests {
    use super::*;

    #[test]
    fn insert_remove_contains_across_word_boundaries() {
        let mut s = LineBitSet::new();
        for l in [0u64, 63, 64, 65, 1000] {
            assert!(s.insert(LineAddr(l)), "first insert of {l}");
            assert!(!s.insert(LineAddr(l)), "second insert of {l}");
        }
        assert!(s.contains(LineAddr(1000)));
        assert!(!s.contains(LineAddr(999)));
        assert!(
            !s.contains(LineAddr(1_000_000)),
            "beyond capacity is absent"
        );
        assert!(s.remove(LineAddr(64)));
        assert!(!s.remove(LineAddr(64)));
        assert!(
            !s.remove(LineAddr(1_000_000)),
            "beyond capacity removes nothing"
        );
        assert!(s.contains(LineAddr(63)) && s.contains(LineAddr(65)));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = LineBitSet::new();
        s.insert(LineAddr(500));
        let cap = s.words.len();
        s.clear();
        assert!(!s.contains(LineAddr(500)));
        assert_eq!(s.words.len(), cap);
    }
}
