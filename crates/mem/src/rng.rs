//! In-tree deterministic PRNG, replacing the former `rand` dependency so
//! the workspace builds with an empty cargo registry.
//!
//! [`Xoshiro256PlusPlus`] is a faithful reimplementation of the generator
//! behind `rand 0.8`'s `SmallRng` on 64-bit targets (xoshiro256++ with
//! SplitMix64 seed expansion), including the exact sampling algorithms for
//! bounded integers (widening-multiply rejection), floats (53-bit
//! multiply) and Bernoulli draws. Seeded identically, it yields the same
//! stream — so every cycle count and figure produced by the seed
//! repository is preserved bit-for-bit after the dependency was dropped.
//!
//! [`SplitMix64`] is exposed separately as the driver for deterministic
//! property-test loops: it is trivially seedable, has no bad states and
//! splits cleanly per test case.

use std::ops::Range;

/// SplitMix64 (Vigna): a tiny 64-bit generator used for seed expansion
/// and as the test-case driver of the deterministic property suites.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from any 64-bit seed (all seeds are valid).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)` via widening-multiply rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SplitMix64::below: zero bound");
        let zone = (bound << bound.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let wide = (v as u128) * (bound as u128);
            if (wide as u64) <= zone {
                return (wide >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniform `bool`.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & (1 << 63) != 0
    }
}

/// xoshiro256++ — bit-compatible with `rand 0.8`'s 64-bit `SmallRng`.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands a 64-bit seed through SplitMix64, exactly as
    /// `SmallRng::seed_from_u64` does.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        if s == [0; 4] {
            // The all-zero state is the xoshiro fixed point; SplitMix64
            // cannot produce it from any u64 seed, but keep the guard so
            // `from_state` cannot reach it either.
            return Xoshiro256PlusPlus::seed_from_u64(0);
        }
        Xoshiro256PlusPlus { s }
    }

    /// Builds a generator from raw state words (must not be all zero).
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "xoshiro256++ state must be non-zero");
        Xoshiro256PlusPlus { s }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32-bit output — the *upper* half of [`Self::next_u64`],
    /// as in `rand` (the low bits of xoshiro++ have linear artifacts).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `u64` over the full range.
    pub fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// A uniform `f64` in `[0, 1)` with 53 random bits (the `Standard`
    /// float distribution: multiply-based, high bits).
    pub fn gen_f64(&mut self) -> f64 {
        let scale = 1.0 / ((1u64 << 53) as f64);
        (self.next_u64() >> 11) as f64 * scale
    }

    /// A Bernoulli draw with probability `p` (exact `gen_bool` semantics:
    /// `p` is quantised to a 64-bit integer threshold).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        if !(0.0..1.0).contains(&p) {
            assert!(p == 1.0, "gen_bool: probability {p} outside [0, 1]");
            return true;
        }
        self.next_u64() < (p * SCALE) as u64
    }

    /// A Bernoulli draw with probability `numerator/denominator` (exact
    /// `gen_ratio` semantics).
    ///
    /// # Panics
    ///
    /// Panics if `numerator > denominator`.
    pub fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        assert!(
            numerator <= denominator,
            "gen_ratio: {numerator}/{denominator} exceeds 1"
        );
        if numerator == denominator {
            return true;
        }
        let p_int = ((f64::from(numerator) / f64::from(denominator)) * SCALE) as u64;
        self.next_u64() < p_int
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_single(range.start, range.end, self)
    }
}

/// Integer types drawable by [`Xoshiro256PlusPlus::gen_range`].
///
/// Implementations replicate `rand 0.8`'s `UniformInt::sample_single`
/// (widening-multiply with a bitmask acceptance zone), so draws consume
/// the stream identically: 64-bit types use one `next_u64` per attempt,
/// 32-bit types one `next_u32`.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_single(low: Self, high: Self, rng: &mut Xoshiro256PlusPlus) -> Self;
}

macro_rules! uniform_64 {
    ($ty:ty) => {
        impl SampleUniform for $ty {
            fn sample_single(low: Self, high: Self, rng: &mut Xoshiro256PlusPlus) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let range = (high - 1 - low) as u64 + 1;
                if range == 0 {
                    // Full 64-bit span.
                    return rng.next_u64() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let wide = (v as u128) * (range as u128);
                    if (wide as u64) <= zone {
                        return low + (wide >> 64) as $ty;
                    }
                }
            }
        }
    };
}

uniform_64!(u64);
uniform_64!(usize);

impl SampleUniform for u32 {
    fn sample_single(low: Self, high: Self, rng: &mut Xoshiro256PlusPlus) -> Self {
        assert!(low < high, "gen_range: low >= high");
        let range = high - low;
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u32();
            let wide = (v as u64) * (range as u64);
            if (wide as u32) <= zone {
                return low + (wide >> 32) as u32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Vigna's published SplitMix64 test vector for seed 0.
    #[test]
    fn splitmix64_known_vector() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(sm.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(sm.next_u64(), 0x06c4_5d18_8009_454f);
        assert_eq!(sm.next_u64(), 0xf88b_b8a8_724c_81ec);
    }

    /// xoshiro256++ reference vector: seeding the raw state with
    /// [1, 2, 3, 4] must produce the sequence from the reference C
    /// implementation.
    #[test]
    fn xoshiro_known_vector() {
        let mut x = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        for expected in [
            41943041u64,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ] {
            assert_eq!(x.next_u64(), expected);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut c = Xoshiro256PlusPlus::seed_from_u64(8);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all cells of 0..10 should appear");
        for _ in 0..1000 {
            let v = rng.gen_range(5..8u64);
            assert!((5..8).contains(&v));
            let w = rng.gen_range(1..5u32);
            assert!((1..5).contains(&w));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bernoulli_edges() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_ratio(4, 4));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "unbiased coin, got {heads}");
        let hits = (0..2000).filter(|_| rng.gen_ratio(3, 4)).count();
        assert!((1350..1650).contains(&hits), "3/4 ratio, got {hits}");
    }

    #[test]
    fn splitmix_below_bounds() {
        let mut sm = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(sm.below(7) < 7);
            assert!(sm.index(3) < 3);
        }
        let flips = (0..2000).filter(|_| sm.flip()).count();
        assert!((800..1200).contains(&flips));
    }
}
