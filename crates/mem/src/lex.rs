//! The deadlock-free lexicographical lock-ordering key.

use crate::{CacheGeometry, LineAddr};

/// Lock-ordering key for cacheline locking.
///
/// Following §5 of the paper (and MAD atomics \[16\]), the lexicographical
/// order used to lock cachelines deadlock-free is defined by the **set index
/// of the smallest shared structure** — the directory cache — with ties
/// (addresses in the same directory set, a *lexicographical conflict group*)
/// broken by the line address itself so the total order is strict.
///
/// # Examples
///
/// ```
/// use clear_mem::{CacheGeometry, LexKey, LineAddr};
///
/// let dir = CacheGeometry::new(4, 2);
/// let a = LexKey::new(dir, LineAddr(1));
/// let b = LexKey::new(dir, LineAddr(6)); // set 2
/// assert!(a < b);
/// // Same directory set => same group.
/// assert!(LexKey::new(dir, LineAddr(2)).same_group(LexKey::new(dir, LineAddr(6))));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LexKey {
    /// Directory set index (primary order).
    pub dir_set: usize,
    /// Line address (tie-break within a group).
    pub line: LineAddr,
}

impl LexKey {
    /// Builds the key of `line` under directory geometry `dir`.
    pub fn new(dir: CacheGeometry, line: LineAddr) -> Self {
        LexKey {
            dir_set: dir.set_index(line),
            line,
        }
    }

    /// `true` if both lines fall into the same directory set (a
    /// lexicographical conflict group, §5).
    pub fn same_group(self, other: LexKey) -> bool {
        self.dir_set == other.dir_set
    }
}

/// Sorts lines into lock order and returns them with a `last_of_group` marker
/// mirroring the ALT's Conflict-bit convention: every entry of a multi-line
/// group is marked conflicting except the last one, which delimits the group.
pub fn lock_order(dir: CacheGeometry, lines: &[LineAddr]) -> Vec<(LineAddr, bool)> {
    let mut keys: Vec<LexKey> = lines.iter().map(|&l| LexKey::new(dir, l)).collect();
    keys.sort();
    keys.dedup();
    let mut out = Vec::with_capacity(keys.len());
    for (i, k) in keys.iter().enumerate() {
        let last_of_group = i + 1 == keys.len() || keys[i + 1].dir_set != k.dir_set;
        out.push((k.line, last_of_group));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_by_dir_set_then_line() {
        let dir = CacheGeometry::new(4, 2);
        // line 5 -> set 1; line 2 -> set 2; line 9 -> set 1.
        let mut v = [LineAddr(2), LineAddr(5), LineAddr(9)].map(|l| LexKey::new(dir, l));
        v.sort();
        assert_eq!(v[0].line, LineAddr(5));
        assert_eq!(v[1].line, LineAddr(9));
        assert_eq!(v[2].line, LineAddr(2));
    }

    #[test]
    fn lock_order_marks_group_ends() {
        let dir = CacheGeometry::new(4, 2);
        // Lines 1, 5, 9 all map to set 1; line 2 maps to set 2.
        let o = lock_order(dir, &[LineAddr(9), LineAddr(2), LineAddr(1), LineAddr(5)]);
        assert_eq!(
            o,
            vec![
                (LineAddr(1), false),
                (LineAddr(5), false),
                (LineAddr(9), true),
                (LineAddr(2), true),
            ]
        );
    }

    #[test]
    fn lock_order_dedups() {
        let dir = CacheGeometry::new(4, 2);
        let o = lock_order(dir, &[LineAddr(3), LineAddr(3)]);
        assert_eq!(o.len(), 1);
        assert!(o[0].1);
    }

    #[test]
    fn same_group_is_reflexive() {
        let dir = CacheGeometry::new(8, 1);
        let k = LexKey::new(dir, LineAddr(12));
        assert!(k.same_group(k));
    }

    #[test]
    fn total_order_is_strict_for_distinct_lines() {
        let dir = CacheGeometry::new(2, 2);
        let a = LexKey::new(dir, LineAddr(0));
        let b = LexKey::new(dir, LineAddr(2)); // same set 0
        assert!(a < b || b < a);
        assert_ne!(a, b);
    }
}
