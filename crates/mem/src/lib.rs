//! Simulated memory substrate for the CLEAR reproduction.
//!
//! This crate provides the ground-level types every other crate builds on:
//!
//! * [`Addr`] / [`LineAddr`] — byte- and cacheline-granular addresses;
//! * [`CacheGeometry`] and [`SetAssocCache`] — a generic set-associative
//!   tag store with LRU replacement, used both for the private-cache model
//!   and for CLEAR's "can the footprint be held simultaneously?" check;
//! * [`Memory`] — the flat simulated shared memory (word addressed) with a
//!   simple line-aligned bump allocator;
//! * [`LexKey`] — the deadlock-free lexicographical lock ordering key used
//!   when locking cachelines (ordered by directory set index, then line
//!   address), following §5 of the paper and MAD atomics \[16\];
//! * [`hash`] — a deterministic Fx-style hasher ([`FxHashMap`] /
//!   [`FxHashSet`]) and [`LineSet`], a small-inline cacheline set, both
//!   built for the simulator's hot paths.
//!
//! # Examples
//!
//! ```
//! use clear_mem::{Addr, Memory};
//!
//! let mut mem = Memory::new();
//! let base = mem.alloc_words(8);
//! mem.store_word(base, 42);
//! assert_eq!(mem.load_word(base), 42);
//! assert_eq!(base.line(), Addr(base.0 + 8).line());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod cache;
mod corebitset;
mod geometry;
pub mod hash;
mod lex;
mod lineset;
mod memory;
pub mod rng;
mod util;

pub use addr::{Addr, LineAddr, LINE_BYTES, WORD_BYTES};
pub use cache::{EvictionOutcome, PinnedSetFull, SetAssocCache};
pub use corebitset::{CoreBitIter, CoreBitSet};
pub use geometry::CacheGeometry;
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use lex::{lock_order, LexKey};
pub use lineset::{LineBitSet, LineSet};
pub use memory::Memory;
pub use util::disjoint_muts;
