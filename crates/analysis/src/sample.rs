//! Ahead-of-time sampling of a workload's atomic-region programs.
//!
//! Workloads stream [`ArInvocation`]s rather than exposing their programs
//! directly, so the analyzer obtains one representative invocation per
//! static AR by setting the workload up in a scratch [`Memory`] and
//! pulling invocations round-robin across threads — *without executing
//! anything*. Entry arguments are computed outside the AR by construction
//! (they are indirection-free), so the first sampled invocation gives the
//! analyzer a concrete, legitimate entry context for each AR.

use crate::verdict::{analyze_program, static_plan, ArAnalysis, EntryCtx, StaticBudget};
use clear_core::StaticPlanSet;
use clear_isa::{ArInvocation, ArSpec, Program, Reg, Workload, WorkloadMeta};
use clear_mem::{LineAddr, Memory};
use std::sync::Arc;

/// Default cap on invocation pulls while hunting for every AR.
pub const DEFAULT_MAX_PULLS: usize = 10_000;

/// One sampled invocation of a static AR.
#[derive(Clone, Debug)]
pub struct SampledAr {
    /// The AR's static description.
    pub spec: ArSpec,
    /// The region program (shared with the workload).
    pub program: Arc<Program>,
    /// Entry register values of the sampled invocation.
    pub args: Vec<(Reg, u64)>,
    /// The invocation's a-priori footprint, when the workload declares
    /// one (immutable ARs only).
    pub declared_footprint: Option<Vec<LineAddr>>,
}

/// Everything sampled from one workload.
#[derive(Debug)]
pub struct WorkloadSample {
    /// The workload's static description.
    pub meta: WorkloadMeta,
    /// Bytes of simulated memory mapped after setup.
    pub mapped_bytes: u64,
    /// One sample per AR, in [`WorkloadMeta::ars`] order.
    pub ars: Vec<SampledAr>,
}

/// Round-robin pull loop shared by the strict and best-effort samplers:
/// one `Option<SampledAr>` slot per declared AR (in metadata order), plus
/// the pull count for error messages.
#[allow(clippy::type_complexity)]
fn sample_found(
    workload: &mut dyn Workload,
    threads: usize,
    max_pulls: usize,
) -> Result<(WorkloadMeta, u64, Vec<Option<SampledAr>>, usize), String> {
    let meta = workload.meta();
    let mut mem = Memory::new();
    workload.setup(&mut mem, threads);

    let mut found: Vec<Option<SampledAr>> = vec![None; meta.ars.len()];
    let mut missing = meta.ars.len();
    let mut done = vec![false; threads];
    let mut pulls = 0usize;

    'outer: while missing > 0 && pulls < max_pulls {
        let mut progressed = false;
        for (tid, thread_done) in done.iter_mut().enumerate() {
            if *thread_done {
                continue;
            }
            let Some(inv) = workload.next_ar(tid, &mem) else {
                *thread_done = true;
                continue;
            };
            progressed = true;
            pulls += 1;
            record(&meta, &mut found, &mut missing, &inv)?;
            if missing == 0 || pulls >= max_pulls {
                break 'outer;
            }
        }
        if !progressed {
            break;
        }
    }

    Ok((meta, mem.allocated_bytes(), found, pulls))
}

/// Samples one invocation of every AR the workload declares.
///
/// # Errors
///
/// Returns an error if some declared AR never appeared within
/// `max_pulls` invocations (or before every thread ran dry), or if an
/// invocation carries an AR id missing from the metadata.
pub fn sample_workload(
    workload: &mut dyn Workload,
    threads: usize,
    max_pulls: usize,
) -> Result<WorkloadSample, String> {
    let (meta, mapped_bytes, found, pulls) = sample_found(workload, threads, max_pulls)?;
    let ars: Vec<SampledAr> = meta
        .ars
        .iter()
        .zip(found)
        .map(|(spec, s)| {
            s.ok_or_else(|| {
                format!(
                    "workload {}: AR {} ({}) never produced an invocation in {pulls} pulls",
                    meta.name, spec.id, spec.name
                )
            })
        })
        .collect::<Result<_, String>>()?;

    Ok(WorkloadSample {
        meta,
        mapped_bytes,
        ars,
    })
}

fn record(
    meta: &WorkloadMeta,
    found: &mut [Option<SampledAr>],
    missing: &mut usize,
    inv: &ArInvocation,
) -> Result<(), String> {
    let idx = meta
        .ars
        .iter()
        .position(|a| a.id == inv.ar)
        .ok_or_else(|| {
            format!(
                "workload {}: invocation for undeclared AR {}",
                meta.name, inv.ar
            )
        })?;
    if found[idx].is_none() {
        found[idx] = Some(SampledAr {
            spec: meta.ars[idx].clone(),
            program: Arc::clone(&inv.program),
            args: inv.args.clone(),
            declared_footprint: inv.static_footprint.clone(),
        });
        *missing -= 1;
    }
    Ok(())
}

/// The static analysis of one sampled AR.
#[derive(Clone, Debug)]
pub struct ArReport {
    /// The AR's static description.
    pub spec: ArSpec,
    /// The analysis result.
    pub analysis: ArAnalysis,
    /// When the workload declares an a-priori footprint *and* the
    /// analyzer resolved the footprint concretely: whether the two line
    /// sets are identical. A `Some(false)` marks a workload defect (the
    /// declared footprint is wrong) or an analyzer imprecision.
    pub declared_footprint_matches: Option<bool>,
}

/// The static analysis of one whole workload.
#[derive(Debug)]
pub struct WorkloadReport {
    /// Benchmark name.
    pub name: String,
    /// Bytes of simulated memory mapped after setup.
    pub mapped_bytes: u64,
    /// Per-AR reports, in metadata order.
    pub ars: Vec<ArReport>,
}

/// Samples and analyzes every AR of a workload.
///
/// # Errors
///
/// Propagates sampling failures (an AR that never appears).
pub fn analyze_workload(
    workload: &mut dyn Workload,
    threads: usize,
    budget: &StaticBudget,
) -> Result<WorkloadReport, String> {
    let sample = sample_workload(workload, threads, DEFAULT_MAX_PULLS)?;
    let ars = sample
        .ars
        .iter()
        .map(|ar| {
            let mut entry = EntryCtx::from_args(&ar.args);
            entry.mapped_bytes = Some(sample.mapped_bytes);
            let analysis = analyze_program(&ar.program, &entry, budget);
            let declared_footprint_matches = match (&ar.declared_footprint, &analysis.footprint) {
                (Some(declared), fp) if fp.concrete => {
                    let mut d = declared.clone();
                    d.sort_unstable();
                    d.dedup();
                    Some(d == fp.concrete_footprint)
                }
                _ => None,
            };
            ArReport {
                spec: ar.spec.clone(),
                analysis,
                declared_footprint_matches,
            }
        })
        .collect();
    Ok(WorkloadReport {
        name: sample.meta.name.clone(),
        mapped_bytes: sample.mapped_bytes,
        ars,
    })
}

/// Emits the [`StaticPlanSet`] of a workload: one
/// [`StaticPlan`](clear_core::StaticPlan) per AR whose verdict supports a
/// static fast path ([`static_plan`]), keyed by static AR id. ARs without
/// a plan simply take the normal discovery path, so an empty set is a
/// valid (if useless) result. Unlike [`analyze_workload`], sampling is
/// best-effort: an AR that never produces an invocation within the pull
/// budget (e.g. a late-phase AR of a workload whose threads run dry at
/// small sizes) just carries no plan.
///
/// # Errors
///
/// Returns an error only on a malformed workload (an invocation carrying
/// an AR id missing from the metadata).
pub fn workload_plans(
    workload: &mut dyn Workload,
    threads: usize,
    budget: &StaticBudget,
) -> Result<StaticPlanSet, String> {
    let (_, _, found, _) = sample_found(workload, threads, DEFAULT_MAX_PULLS)?;
    let mut plans = StaticPlanSet::new();
    for ar in found.iter().flatten() {
        let entry = EntryCtx::from_args(&ar.args);
        if let Some(plan) = static_plan(&ar.program, &entry, budget) {
            plans.insert(ar.spec.id.0, plan);
        }
    }
    Ok(plans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_isa::{ArId, Mutability, ProgramBuilder};

    /// A two-AR toy workload: one AR per thread parity, thread 1 finite.
    struct Toy {
        programs: Vec<Arc<Program>>,
        base: u64,
        left: [usize; 2],
    }

    impl Toy {
        fn new() -> Toy {
            let mut a = ProgramBuilder::new();
            a.st(Reg(0), 0, Reg(1)).xend();
            let mut b = ProgramBuilder::new();
            b.ld(Reg(1), Reg(0), 0).xend();
            Toy {
                programs: vec![Arc::new(a.build()), Arc::new(b.build())],
                base: 0,
                left: [3, 2],
            }
        }
    }

    impl Workload for Toy {
        fn meta(&self) -> WorkloadMeta {
            WorkloadMeta {
                name: "toy".into(),
                ars: vec![
                    ArSpec {
                        id: ArId(0),
                        name: "store".into(),
                        mutability: Mutability::Immutable,
                    },
                    ArSpec {
                        id: ArId(1),
                        name: "load".into(),
                        mutability: Mutability::Immutable,
                    },
                ],
            }
        }

        fn setup(&mut self, mem: &mut Memory, _threads: usize) {
            self.base = mem.alloc_words(8).0;
        }

        fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
            let t = tid.min(1);
            if self.left[t] == 0 {
                return None;
            }
            self.left[t] -= 1;
            Some(ArInvocation {
                ar: ArId(t as u32),
                program: Arc::clone(&self.programs[t]),
                args: vec![(Reg(0), self.base), (Reg(1), 7)],
                think_cycles: 0,
                static_footprint: Some(vec![clear_mem::Addr(self.base).line()]),
            })
        }
    }

    #[test]
    fn sampling_finds_every_ar() {
        let mut w = Toy::new();
        let s = sample_workload(&mut w, 2, 100).unwrap();
        assert_eq!(s.ars.len(), 2);
        assert_eq!(s.ars[0].spec.id, ArId(0));
        assert_eq!(s.ars[1].spec.id, ArId(1));
        assert!(s.mapped_bytes > 0);
    }

    #[test]
    fn sampling_reports_missing_ars() {
        let mut w = Toy::new();
        // Only thread 0 runs: AR1 never appears.
        let err = sample_workload(&mut w, 1, 100).unwrap_err();
        assert!(err.contains("AR1"), "{err}");
    }

    #[test]
    fn workload_plans_cover_plannable_ars() {
        use clear_core::{PlanAddr, PlanClass};
        let mut w = Toy::new();
        let plans = workload_plans(&mut w, 2, &StaticBudget::default()).unwrap();
        // Both toy ARs are entry-addressed straight-line regions: planned.
        assert_eq!(plans.len(), 2);
        let p0 = plans.get(0).unwrap();
        assert_eq!(p0.class, PlanClass::Immutable);
        assert!(p0.complete);
        // Symbolic, not the sampled concrete base address.
        assert_eq!(p0.lock_set, vec![PlanAddr::Sym { reg: 0, delta: 0 }]);
        assert!(plans.get(1).is_some());
        assert!(plans.get(9).is_none());
    }

    #[test]
    fn workload_plans_tolerate_unsampled_ars() {
        let mut w = Toy::new();
        // Only thread 0 runs, so AR1 never appears: strict sampling
        // errors, but plan derivation just skips the unsampled AR.
        let plans = workload_plans(&mut w, 1, &StaticBudget::default()).unwrap();
        assert_eq!(plans.len(), 1);
        assert!(plans.get(0).is_some());
        assert!(plans.get(1).is_none());
    }

    #[test]
    fn analyze_workload_reports_every_ar() {
        let mut w = Toy::new();
        let r = analyze_workload(&mut w, 2, &StaticBudget::default()).unwrap();
        assert_eq!(r.name, "toy");
        assert_eq!(r.ars.len(), 2);
        for ar in &r.ars {
            assert_eq!(ar.analysis.verdict, crate::StaticVerdict::StaticImmutable);
            assert!(ar.analysis.lints.is_empty());
            assert_eq!(ar.declared_footprint_matches, Some(true));
        }
    }
}
