//! The reusable lint pass over atomic-region programs.
//!
//! Five checks, all purely static:
//!
//! 1. **Unbalanced region** — control can run off the end of the program
//!    without reaching `XEnd`/`XAbort` ([`Lint::RunsOffEnd`]), or no
//!    reachable path ever commits ([`Lint::NoReachableCommit`]). These are
//!    the mini-ISA analogue of unbalanced `XBegin`/`XEnd` pairs: the
//!    implicit `XBegin` at pc 0 is never closed.
//! 2. **Unreachable code** — blocks no path from the region entry reaches
//!    ([`Lint::UnreachableCode`]).
//! 3. **Use before def** — a register read on some path before any write,
//!    and not an entry argument ([`Lint::UseBeforeDef`]). The VM zeroes
//!    registers, but relying on residue makes an AR's behaviour depend on
//!    whatever ran before it.
//! 4. **Accesses outside mapped memory** — a resolvable address below the
//!    allocator base (the unmapped "null" line) or past the mapped extent
//!    ([`Lint::AccessOutsideMapped`]).
//! 5. **Misaligned accesses** — a resolvable address that is not
//!    word-aligned ([`Lint::MisalignedAccess`]); the word-addressed
//!    simulated memory would fault on these.
//!
//! The original paper also warns about taking OS/library locks inside an
//! AR; the mini-ISA has no lock instructions (locking is a *hardware*
//! concern in CLEAR), so that class of defect cannot be expressed and has
//! no lint here.

use crate::cfg::Cfg;
use crate::dataflow::{AbsVal, Dataflow};
use crate::verdict::EntryCtx;
use clear_isa::{Instr, Program, Reg};
use clear_mem::{LINE_BYTES, WORD_BYTES};
use std::fmt;

/// One static finding about an atomic-region program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lint {
    /// Control can fall (or jump) past the last instruction at `pc`
    /// without hitting `XEnd`/`XAbort`: the region is unbalanced and the
    /// VM would panic.
    RunsOffEnd {
        /// The pc whose successor lies past the end of the program.
        pc: usize,
    },
    /// No reachable path commits: the region can only abort (or escape).
    NoReachableCommit,
    /// The half-open pc range `[start, end)` is unreachable from entry.
    UnreachableCode {
        /// First dead pc.
        start: usize,
        /// One past the last dead pc.
        end: usize,
    },
    /// A register is read at `pc` while possibly never written (and is
    /// not an entry argument).
    UseBeforeDef {
        /// The reading pc.
        pc: usize,
        /// The possibly-undefined register.
        reg: Reg,
    },
    /// A resolvable access target lies outside mapped simulated memory.
    AccessOutsideMapped {
        /// The accessing pc.
        pc: usize,
        /// The resolved byte address.
        addr: u64,
        /// `true` for a store.
        is_store: bool,
    },
    /// A resolvable access target is not word-aligned.
    MisalignedAccess {
        /// The accessing pc.
        pc: usize,
        /// The resolved byte address.
        addr: u64,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Lint::RunsOffEnd { pc } => {
                write!(
                    f,
                    "pc {pc}: control runs off the end of the region (unbalanced XBegin/XEnd)"
                )
            }
            Lint::NoReachableCommit => {
                write!(f, "no reachable XEnd: the region can never commit")
            }
            Lint::UnreachableCode { start, end } => {
                write!(f, "pc {start}..{end}: unreachable code")
            }
            Lint::UseBeforeDef { pc, reg } => {
                write!(
                    f,
                    "pc {pc}: {reg} read before any write (not an entry argument)"
                )
            }
            Lint::AccessOutsideMapped { pc, addr, is_store } => {
                let what = if is_store { "store to" } else { "load from" };
                write!(f, "pc {pc}: {what} {addr:#x} outside mapped memory")
            }
            Lint::MisalignedAccess { pc, addr } => {
                write!(f, "pc {pc}: access to {addr:#x} is not word-aligned")
            }
        }
    }
}

/// Resolves an access base to a concrete byte address when possible.
fn concrete_addr(base: AbsVal, offset: i64, entry: &EntryCtx) -> Option<u64> {
    let off = offset as u64;
    match base {
        AbsVal::Const(c) => Some(c.wrapping_add(off)),
        AbsVal::Entry { reg, delta } => entry
            .value(reg)
            .map(|v| v.wrapping_add(delta).wrapping_add(off)),
        _ => None,
    }
}

/// Runs all lints over one program. Findings come out in a deterministic
/// order: region-shape lints first, then per-pc findings in pc order.
pub fn lint_program(program: &Program, cfg: &Cfg, flow: &Dataflow, entry: &EntryCtx) -> Vec<Lint> {
    let n = program.len();
    let mut lints = Vec::new();

    // 1a. Reachable control flow past the end of the program.
    for pc in 0..n {
        if !flow.is_reachable(pc) {
            continue;
        }
        if program.successors(pc).iter().any(|s| s >= n) {
            lints.push(Lint::RunsOffEnd { pc });
        }
    }

    // 1b. A region that can never commit.
    let commits =
        (0..n).any(|pc| flow.is_reachable(pc) && matches!(program.instrs()[pc], Instr::XEnd));
    if !commits {
        lints.push(Lint::NoReachableCommit);
    }

    // 2. Unreachable blocks.
    for block in &cfg.blocks {
        if !block.reachable {
            lints.push(Lint::UnreachableCode {
                start: block.start,
                end: block.end,
            });
        }
    }

    // 3. Use before def.
    for &(pc, reg) in &flow.undef_reads {
        lints.push(Lint::UseBeforeDef { pc, reg });
    }

    // 4 + 5. Concrete address checks (need real entry values).
    for site in &flow.accesses {
        let Some(addr) = concrete_addr(site.base, site.offset, entry) else {
            continue;
        };
        if let Some(mapped) = entry.mapped_bytes {
            if addr < LINE_BYTES || addr.saturating_add(WORD_BYTES) > mapped {
                lints.push(Lint::AccessOutsideMapped {
                    pc: site.pc,
                    addr,
                    is_store: site.is_store,
                });
            }
        }
        if addr % WORD_BYTES != 0 {
            lints.push(Lint::MisalignedAccess { pc: site.pc, addr });
        }
    }

    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_isa::{Cond, ProgramBuilder};

    fn run(p: &Program, entry: &EntryCtx) -> Vec<Lint> {
        let cfg = Cfg::build(p);
        let flow = Dataflow::run(p, &entry.regs(), &cfg);
        lint_program(p, &cfg, &flow, entry)
    }

    #[test]
    fn clean_program_has_no_lints() {
        let mut b = ProgramBuilder::new();
        b.ld(Reg(1), Reg(0), 0)
            .addi(Reg(1), Reg(1), 1)
            .st(Reg(0), 0, Reg(1))
            .xend();
        let mut entry = EntryCtx::from_args(&[(Reg(0), 128)]);
        entry.mapped_bytes = Some(1024);
        assert!(run(&b.build(), &entry).is_empty());
    }

    #[test]
    fn runs_off_end_is_reported() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(0), 1); // no xend
        let lints = run(&b.build(), &EntryCtx::default());
        assert!(lints.contains(&Lint::RunsOffEnd { pc: 0 }));
        assert!(lints.contains(&Lint::NoReachableCommit));
    }

    #[test]
    fn abort_only_region_never_commits() {
        let mut b = ProgramBuilder::new();
        b.xabort(3);
        let lints = run(&b.build(), &EntryCtx::default());
        assert_eq!(lints, vec![Lint::NoReachableCommit]);
    }

    #[test]
    fn conditional_commit_is_clean() {
        let mut b = ProgramBuilder::new();
        let abort = b.label();
        b.branch(Cond::Eq, Reg(0), Reg(1), abort)
            .xend()
            .bind(abort)
            .xabort(1);
        let entry = EntryCtx::symbolic(&[Reg(0), Reg(1)]);
        assert!(run(&b.build(), &entry).is_empty());
    }

    #[test]
    fn dead_code_is_reported() {
        let mut b = ProgramBuilder::new();
        b.xend().li(Reg(0), 1).xend();
        let lints = run(&b.build(), &EntryCtx::default());
        assert_eq!(lints, vec![Lint::UnreachableCode { start: 1, end: 3 }]);
    }

    #[test]
    fn use_before_def_is_reported() {
        let mut b = ProgramBuilder::new();
        b.mv(Reg(1), Reg(9)).xend();
        let lints = run(&b.build(), &EntryCtx::symbolic(&[Reg(0)]));
        assert_eq!(lints, vec![Lint::UseBeforeDef { pc: 0, reg: Reg(9) }]);
    }

    #[test]
    fn defined_on_one_path_only_still_lints() {
        let mut b = ProgramBuilder::new();
        let skip = b.label();
        b.branch(Cond::Eq, Reg(0), Reg(0), skip)
            .li(Reg(5), 1)
            .bind(skip)
            .st(Reg(0), 0, Reg(5))
            .xend();
        let lints = run(&b.build(), &EntryCtx::symbolic(&[Reg(0)]));
        assert_eq!(lints, vec![Lint::UseBeforeDef { pc: 2, reg: Reg(5) }]);
    }

    #[test]
    fn null_and_out_of_range_accesses_are_reported() {
        let mut b = ProgramBuilder::new();
        b.ld(Reg(1), Reg(0), 0) // r0 = 0: the unmapped null line
            .st(Reg(2), 0, Reg(1)) // r2 = way past mapped memory
            .xend();
        let mut entry = EntryCtx::from_args(&[(Reg(0), 0), (Reg(2), 1 << 20)]);
        entry.mapped_bytes = Some(4096);
        let lints = run(&b.build(), &entry);
        assert_eq!(
            lints,
            vec![
                Lint::AccessOutsideMapped {
                    pc: 0,
                    addr: 0,
                    is_store: false
                },
                Lint::AccessOutsideMapped {
                    pc: 1,
                    addr: 1 << 20,
                    is_store: true
                },
            ]
        );
    }

    #[test]
    fn misaligned_access_is_reported() {
        let mut b = ProgramBuilder::new();
        b.ld(Reg(1), Reg(0), 3).xend();
        let entry = EntryCtx::from_args(&[(Reg(0), 64)]);
        let lints = run(&b.build(), &entry);
        assert_eq!(lints, vec![Lint::MisalignedAccess { pc: 0, addr: 67 }]);
    }

    #[test]
    fn lints_render_readably() {
        let samples = [
            (Lint::RunsOffEnd { pc: 4 }, "pc 4"),
            (Lint::NoReachableCommit, "never commit"),
            (Lint::UnreachableCode { start: 2, end: 5 }, "pc 2..5"),
            (Lint::UseBeforeDef { pc: 1, reg: Reg(7) }, "r7"),
            (
                Lint::AccessOutsideMapped {
                    pc: 0,
                    addr: 0,
                    is_store: true,
                },
                "store to 0x0",
            ),
            (Lint::MisalignedAccess { pc: 2, addr: 67 }, "0x43"),
        ];
        for (lint, needle) in samples {
            let s = lint.to_string();
            assert!(s.contains(needle), "{s:?} should contain {needle:?}");
        }
    }
}
