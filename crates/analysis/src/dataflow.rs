//! Register-level provenance dataflow over an atomic-region program.
//!
//! This is the static mirror of the VM's per-register indirection bits
//! (§5 ① of the paper, `clear_isa::Vm`): where the hardware observes at
//! run time whether an address was derived from a value loaded *inside*
//! the AR, the analyzer proves it ahead of time. The abstract domain
//! refines the single dynamic bit into a small provenance lattice so the
//! analyzer can also bound footprints and recognise the paper's
//! *likely-immutable* pattern (Listing 2):
//!
//! * [`AbsVal::Undef`] — never written on any path (bottom);
//! * [`AbsVal::Const`] — a known constant (from `li` or constant folding);
//! * [`AbsVal::Entry`] — `entry_value(reg) + delta` for a known wrapping
//!   `delta`: the symbolic form of "address computed outside the AR";
//! * [`AbsVal::Direct`] — indirection-free but not symbolically tracked
//!   (e.g. the sum of two entry registers);
//! * [`AbsVal::Loaded`] — derived from a value loaded inside the AR, with
//!   the load-chain depth and, when unique, the originating load site.
//!
//! The analysis is a forward may-analysis: joins over-approximate, so any
//! value the VM would flag as an indirection is `Loaded` here (never
//! `Direct`/`Entry`). That direction of conservatism is what makes the
//! [`StaticVerdict::StaticImmutable`](crate::StaticVerdict) verdict sound
//! with respect to dynamic discovery.

use crate::cfg::Cfg;
use clear_isa::{AluOp, Instr, Program, Reg, NUM_REGS};

/// Saturation bound for load-chain depth.
pub const MAX_DEPTH: u8 = 15;

/// The unique load site a depth-1 value came from, when known.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Root {
    /// The value was produced (only) by the `Ld` at this pc.
    Site(u16),
    /// Multiple load sites (or a chain of loads) could have produced it.
    Many,
}

/// Abstract provenance of one register value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbsVal {
    /// Never written on any path reaching this point.
    Undef,
    /// Known constant.
    Const(u64),
    /// `entry_value(reg) + delta` (wrapping); `reg` names the value the
    /// register held when the AR was entered.
    Entry {
        /// The entry register the value symbolically refers to.
        reg: Reg,
        /// Wrapping byte delta added to the entry value.
        delta: u64,
    },
    /// Indirection-free, but not symbolically tracked.
    Direct,
    /// Derived from a value loaded inside the AR.
    Loaded {
        /// Longest possible load chain behind the value (>= 1).
        depth: u8,
        /// Originating load site, when unique.
        root: Root,
    },
}

impl AbsVal {
    /// Load-chain depth (0 for anything not `Loaded`).
    #[inline]
    pub fn depth(self) -> u8 {
        match self {
            AbsVal::Loaded { depth, .. } => depth,
            _ => 0,
        }
    }

    /// `true` if the VM would set the indirection bit for this value.
    #[inline]
    pub fn is_indirect(self) -> bool {
        matches!(self, AbsVal::Loaded { .. })
    }

    /// Normalises a value being *read*: an `Undef` register dynamically
    /// holds some indirection-free residue, so reads see `Direct` (the
    /// read itself is separately reported as a use-before-def lint).
    #[inline]
    fn read(self) -> AbsVal {
        match self {
            AbsVal::Undef => AbsVal::Direct,
            v => v,
        }
    }

    /// Least upper bound of two provenances.
    fn join(a: AbsVal, b: AbsVal) -> AbsVal {
        use AbsVal::*;
        match (a, b) {
            _ if a == b => a,
            (Undef, v) | (v, Undef) => v,
            (
                Loaded {
                    depth: d1,
                    root: r1,
                },
                Loaded {
                    depth: d2,
                    root: r2,
                },
            ) => Loaded {
                depth: d1.max(d2),
                root: if r1 == r2 { r1 } else { Root::Many },
            },
            (l @ Loaded { .. }, _) | (_, l @ Loaded { .. }) => l,
            _ => Direct,
        }
    }
}

/// Per-pc register state: provenances plus a may-be-undefined bitmask.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct RegState {
    vals: [AbsVal; NUM_REGS],
    /// Bit `r` set: register `r` may still be unwritten on some path.
    maybe_undef: u32,
}

impl RegState {
    fn entry(args: &[Reg]) -> RegState {
        let mut vals = [AbsVal::Undef; NUM_REGS];
        let mut maybe_undef = u32::MAX;
        for &r in args {
            vals[r.index()] = AbsVal::Entry { reg: r, delta: 0 };
            maybe_undef &= !(1u32 << r.index());
        }
        RegState { vals, maybe_undef }
    }

    /// Joins `other` into `self`; returns `true` if `self` changed.
    fn join_from(&mut self, other: &RegState) -> bool {
        let mut changed = false;
        for i in 0..NUM_REGS {
            let j = AbsVal::join(self.vals[i], other.vals[i]);
            if j != self.vals[i] {
                self.vals[i] = j;
                changed = true;
            }
        }
        let u = self.maybe_undef | other.maybe_undef;
        if u != self.maybe_undef {
            self.maybe_undef = u;
            changed = true;
        }
        changed
    }

    fn write(&mut self, rd: Reg, v: AbsVal) {
        self.vals[rd.index()] = v;
        self.maybe_undef &= !(1u32 << rd.index());
    }

    fn may_undef(&self, r: Reg) -> bool {
        self.maybe_undef & (1u32 << r.index()) != 0
    }
}

fn alu_imm(v: AbsVal, op: AluOp, imm: u64) -> AbsVal {
    match (v, op) {
        (AbsVal::Const(c), _) => AbsVal::Const(op.apply(c, imm)),
        (AbsVal::Entry { reg, delta }, AluOp::Add) => AbsVal::Entry {
            reg,
            delta: delta.wrapping_add(imm),
        },
        (AbsVal::Entry { reg, delta }, AluOp::Sub) => AbsVal::Entry {
            reg,
            delta: delta.wrapping_sub(imm),
        },
        (l @ AbsVal::Loaded { .. }, _) => l,
        _ => AbsVal::Direct,
    }
}

fn alu2(a: AbsVal, op: AluOp, b: AbsVal) -> AbsVal {
    use AbsVal::*;
    match (a, b) {
        (Const(x), Const(y)) => Const(op.apply(x, y)),
        // Indirection propagates through any ALU op (mirrors the VM's
        // OR of source indirection bits).
        (
            Loaded {
                depth: d1,
                root: r1,
            },
            Loaded {
                depth: d2,
                root: r2,
            },
        ) => Loaded {
            depth: d1.max(d2),
            root: if r1 == r2 { r1 } else { Root::Many },
        },
        (l @ Loaded { .. }, _) | (_, l @ Loaded { .. }) => l,
        // Pointer arithmetic against a constant keeps the symbol.
        (Entry { reg, delta }, Const(c)) if op == AluOp::Add => Entry {
            reg,
            delta: delta.wrapping_add(c),
        },
        (Const(c), Entry { reg, delta }) if op == AluOp::Add => Entry {
            reg,
            delta: delta.wrapping_add(c),
        },
        (Entry { reg, delta }, Const(c)) if op == AluOp::Sub => Entry {
            reg,
            delta: delta.wrapping_sub(c),
        },
        _ => Direct,
    }
}

fn transfer(state: &RegState, instr: &Instr, pc: usize) -> RegState {
    let mut out = *state;
    match *instr {
        Instr::Li { rd, imm } => out.write(rd, AbsVal::Const(imm)),
        Instr::Mv { rd, rs } => out.write(rd, state.vals[rs.index()].read()),
        Instr::AluImm { op, rd, rs, imm } => {
            out.write(rd, alu_imm(state.vals[rs.index()].read(), op, imm))
        }
        Instr::Alu { op, rd, rs1, rs2 } => out.write(
            rd,
            alu2(
                state.vals[rs1.index()].read(),
                op,
                state.vals[rs2.index()].read(),
            ),
        ),
        Instr::Ld { rd, base, .. } => {
            let b = state.vals[base.index()].read();
            let v = if b.is_indirect() {
                AbsVal::Loaded {
                    depth: b.depth().saturating_add(1).min(MAX_DEPTH),
                    root: Root::Many,
                }
            } else {
                AbsVal::Loaded {
                    depth: 1,
                    root: Root::Site(pc.min(u16::MAX as usize) as u16),
                }
            };
            out.write(rd, v);
        }
        Instr::St { .. }
        | Instr::Branch { .. }
        | Instr::Jmp { .. }
        | Instr::Nop { .. }
        | Instr::XEnd
        | Instr::XAbort { .. } => {}
    }
    out
}

/// One memory access site (a reachable `Ld` or `St`).
#[derive(Clone, Copy, Debug)]
pub struct AccessSite {
    /// Program counter of the instruction.
    pub pc: usize,
    /// `true` for a store.
    pub is_store: bool,
    /// Provenance of the base register at the site (read-normalised).
    pub base: AbsVal,
    /// Immediate byte offset of the access.
    pub offset: i64,
    /// `true` if the site sits inside a CFG cycle (may run many times).
    pub in_cycle: bool,
    /// `true` when the base provenance saturated the depth lattice
    /// ([`MAX_DEPTH`]): the chain length — and with it any per-site line
    /// count — is no longer trustworthy, so footprint bounding must treat
    /// the site as unbounded rather than as one line.
    pub widened: bool,
    /// Static trip-count bound of the enclosing canonical counted loop
    /// ([`Cfg::trip_bounds`]); `None` when the cycle is unbounded or the
    /// site is not in a cycle.
    pub trip_bound: Option<u32>,
}

/// One reachable conditional branch.
#[derive(Clone, Copy, Debug)]
pub struct BranchSite {
    /// Program counter of the branch.
    pub pc: usize,
    /// Provenances of the two comparands.
    pub lhs: AbsVal,
    /// Provenance of the right comparand.
    pub rhs: AbsVal,
}

impl BranchSite {
    /// `true` if the branch outcome depends on a value loaded in the AR
    /// (the VM would report `cond_indirect`).
    pub fn is_dependent(&self) -> bool {
        self.lhs.is_indirect() || self.rhs.is_indirect()
    }
}

/// Result of the provenance dataflow over one program.
#[derive(Clone, Debug)]
pub struct Dataflow {
    /// All reachable memory access sites, in pc order.
    pub accesses: Vec<AccessSite>,
    /// All reachable conditional branches, in pc order.
    pub branches: Vec<BranchSite>,
    /// Reachable reads of registers that may be unwritten (pc, register),
    /// deduplicated, in pc order.
    pub undef_reads: Vec<(usize, Reg)>,
    /// Largest load-chain depth behind any access base or branch comparand.
    pub max_depth: u8,
    /// Per-pc fixpoint in-states for reachable pcs (`None` = unreachable).
    states: Vec<Option<RegState>>,
}

impl Dataflow {
    /// Runs the dataflow to fixpoint and collects per-site facts.
    pub fn run(program: &Program, entry_regs: &[Reg], cfg: &Cfg) -> Dataflow {
        let n = program.len();
        let mut states: Vec<Option<RegState>> = vec![None; n];
        if n == 0 {
            return Dataflow {
                accesses: Vec::new(),
                branches: Vec::new(),
                undef_reads: Vec::new(),
                max_depth: 0,
                states,
            };
        }
        states[0] = Some(RegState::entry(entry_regs));
        let mut worklist = vec![0usize];
        while let Some(pc) = worklist.pop() {
            let st = states[pc].expect("worklist entries have a state");
            let out = transfer(&st, &program.instrs()[pc], pc);
            for succ in program.successors(pc).iter() {
                if succ >= n {
                    continue; // off-end fall-through: lint, not dataflow
                }
                match &mut states[succ] {
                    Some(existing) => {
                        if existing.join_from(&out) {
                            worklist.push(succ);
                        }
                    }
                    slot @ None => {
                        *slot = Some(out);
                        worklist.push(succ);
                    }
                }
            }
        }

        let in_cycle = cfg.in_cycle_pcs();
        let trip_bounds = cfg.trip_bounds(program);
        let mut accesses = Vec::new();
        let mut branches = Vec::new();
        let mut undef_reads = Vec::new();
        let mut max_depth = 0u8;
        for pc in 0..n {
            let Some(st) = &states[pc] else { continue };
            let mut note_read = |r: Reg| {
                if st.may_undef(r) && !undef_reads.contains(&(pc, r)) {
                    undef_reads.push((pc, r));
                }
            };
            match program.instrs()[pc] {
                Instr::Mv { rs, .. } => note_read(rs),
                Instr::AluImm { rs, .. } => note_read(rs),
                Instr::Alu { rs1, rs2, .. } => {
                    note_read(rs1);
                    note_read(rs2);
                }
                Instr::Ld { base, offset, .. } => {
                    note_read(base);
                    let b = st.vals[base.index()].read();
                    max_depth = max_depth.max(b.depth());
                    accesses.push(AccessSite {
                        pc,
                        is_store: false,
                        base: b,
                        offset,
                        in_cycle: in_cycle[pc],
                        widened: b.depth() >= MAX_DEPTH,
                        trip_bound: trip_bounds[pc],
                    });
                }
                Instr::St { base, offset, src } => {
                    note_read(base);
                    note_read(src);
                    let b = st.vals[base.index()].read();
                    max_depth = max_depth.max(b.depth());
                    accesses.push(AccessSite {
                        pc,
                        is_store: true,
                        base: b,
                        offset,
                        in_cycle: in_cycle[pc],
                        widened: b.depth() >= MAX_DEPTH,
                        trip_bound: trip_bounds[pc],
                    });
                }
                Instr::Branch { rs1, rs2, .. } => {
                    note_read(rs1);
                    note_read(rs2);
                    let lhs = st.vals[rs1.index()].read();
                    let rhs = st.vals[rs2.index()].read();
                    max_depth = max_depth.max(lhs.depth()).max(rhs.depth());
                    branches.push(BranchSite { pc, lhs, rhs });
                }
                Instr::Li { .. }
                | Instr::Jmp { .. }
                | Instr::Nop { .. }
                | Instr::XEnd
                | Instr::XAbort { .. } => {}
            }
        }

        Dataflow {
            accesses,
            branches,
            undef_reads,
            max_depth,
            states,
        }
    }

    /// `true` if `pc` is reachable from the region entry.
    pub fn is_reachable(&self, pc: usize) -> bool {
        self.states.get(pc).is_some_and(|s| s.is_some())
    }

    /// The access site at `pc`, if any.
    pub fn access_at(&self, pc: usize) -> Option<&AccessSite> {
        self.accesses.iter().find(|a| a.pc == pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_isa::{Cond, ProgramBuilder};

    fn flow(p: &Program, args: &[Reg]) -> Dataflow {
        let cfg = Cfg::build(p);
        Dataflow::run(p, args, &cfg)
    }

    #[test]
    fn entry_symbols_track_pointer_arithmetic() {
        // r1 = r0 + 8; r2 = r1 + 120; st [r2 - 16]
        let mut b = ProgramBuilder::new();
        b.addi(Reg(1), Reg(0), 8)
            .addi(Reg(2), Reg(1), 120)
            .st(Reg(2), -16, Reg(0))
            .xend();
        let f = flow(&b.build(), &[Reg(0)]);
        assert_eq!(f.accesses.len(), 1);
        assert_eq!(
            f.accesses[0].base,
            AbsVal::Entry {
                reg: Reg(0),
                delta: 128
            }
        );
        assert_eq!(f.accesses[0].offset, -16);
        assert_eq!(f.max_depth, 0);
    }

    #[test]
    fn load_sets_depth_and_root() {
        // r1 = ld [r0]; r2 = r1 + r0; ld [r2]
        let mut b = ProgramBuilder::new();
        b.ld(Reg(1), Reg(0), 0)
            .add(Reg(2), Reg(1), Reg(0))
            .ld(Reg(3), Reg(2), 0)
            .xend();
        let f = flow(&b.build(), &[Reg(0)]);
        assert_eq!(
            f.accesses[1].base,
            AbsVal::Loaded {
                depth: 1,
                root: Root::Site(0)
            }
        );
        // r3 is a second-level load.
        assert_eq!(f.max_depth, 1);
    }

    #[test]
    fn chase_deepens_and_loses_root() {
        let mut b = ProgramBuilder::new();
        b.ld(Reg(1), Reg(0), 0)
            .ld(Reg(1), Reg(1), 0)
            .ld(Reg(1), Reg(1), 0)
            .xend();
        let f = flow(&b.build(), &[Reg(0)]);
        assert_eq!(f.accesses[1].base.depth(), 1);
        assert_eq!(f.accesses[2].base.depth(), 2);
        assert!(matches!(
            f.accesses[2].base,
            AbsVal::Loaded {
                root: Root::Many,
                ..
            }
        ));
    }

    #[test]
    fn join_widens_conflicting_entries_to_direct() {
        // Two paths give r1 different deltas from r0: the join is Direct.
        let mut b = ProgramBuilder::new();
        let other = b.label();
        let join = b.label();
        b.branch(Cond::Eq, Reg(0), Reg(0), other)
            .addi(Reg(1), Reg(0), 64)
            .jmp(join)
            .bind(other)
            .addi(Reg(1), Reg(0), 128)
            .bind(join)
            .st(Reg(1), 0, Reg(0))
            .xend();
        let f = flow(&b.build(), &[Reg(0)]);
        let site = f.accesses.last().unwrap();
        assert_eq!(site.base, AbsVal::Direct);
        assert!(!site.base.is_indirect());
    }

    #[test]
    fn dependent_branch_is_flagged() {
        let mut b = ProgramBuilder::new();
        let out = b.label();
        b.ld(Reg(1), Reg(0), 0)
            .branch(Cond::Ne, Reg(1), Reg(2), out)
            .bind(out)
            .xend();
        let f = flow(&b.build(), &[Reg(0), Reg(2)]);
        assert_eq!(f.branches.len(), 1);
        assert!(f.branches[0].is_dependent());
    }

    #[test]
    fn constant_folding_through_alu() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 6)
            .li(Reg(2), 7)
            .alu(AluOp::Mul, Reg(3), Reg(1), Reg(2))
            .st(Reg(3), 0, Reg(1))
            .xend();
        let f = flow(&b.build(), &[]);
        let st = f.accesses[0];
        assert_eq!(st.base, AbsVal::Const(42));
    }

    #[test]
    fn undef_reads_are_reported_once() {
        let mut b = ProgramBuilder::new();
        b.mv(Reg(1), Reg(9)).st(Reg(0), 0, Reg(9)).xend();
        let f = flow(&b.build(), &[Reg(0)]);
        let regs: Vec<Reg> = f.undef_reads.iter().map(|&(_, r)| r).collect();
        assert_eq!(regs, vec![Reg(9), Reg(9)]);
        assert_eq!(f.undef_reads[0].0, 0);
        assert_eq!(f.undef_reads[1].0, 1);
    }

    #[test]
    fn unreachable_code_produces_no_sites() {
        let mut b = ProgramBuilder::new();
        b.xend().ld(Reg(1), Reg(0), 0).xend();
        let f = flow(&b.build(), &[Reg(0)]);
        assert!(f.accesses.is_empty());
        assert!(!f.is_reachable(1));
        assert!(f.is_reachable(0));
        assert!(f.access_at(1).is_none());
    }

    #[test]
    fn loop_invariant_entry_base_stays_symbolic() {
        // A loop that stores through r0 each iteration with a loop counter
        // in r1: the base stays Entry{r0}, the counter widens to Direct.
        let mut b = ProgramBuilder::new();
        let top = b.label();
        let out = b.label();
        b.li(Reg(1), 0)
            .bind(top)
            .branch(Cond::Ge, Reg(1), Reg(2), out)
            .st(Reg(0), 0, Reg(1))
            .addi(Reg(1), Reg(1), 1)
            .jmp(top)
            .bind(out)
            .xend();
        let f = flow(&b.build(), &[Reg(0), Reg(2)]);
        let site = f.accesses[0];
        assert_eq!(
            site.base,
            AbsVal::Entry {
                reg: Reg(0),
                delta: 0
            }
        );
        assert!(site.in_cycle);
    }
}
