//! Control-flow-graph recovery over a label-resolved [`Program`].
//!
//! A `Program` *is* one atomic region: execution enters at pc 0 (the
//! implicit `XBegin`) and leaves at the first `XEnd`/`XAbort` it reaches,
//! so CFG recovery is intra-program. Basic blocks are maximal runs of
//! instructions with a single entry (block leaders are pc 0, every branch
//! or jump target, and every instruction following a control transfer).

use clear_isa::{Instr, Program};

/// One basic block of an atomic-region program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// First pc of the block (inclusive).
    pub start: usize,
    /// One past the last pc of the block (exclusive).
    pub end: usize,
    /// Successor block indices, in (fall-through, target) order. A
    /// fall-through that runs off the end of the program has no block and
    /// is reported by the lint pass instead.
    pub successors: Vec<usize>,
    /// `true` if the block is reachable from the region entry.
    pub reachable: bool,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the block holds no instructions (never produced by
    /// [`Cfg::build`]; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The recovered control-flow graph of one atomic-region program.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Basic blocks in ascending pc order. Block 0 is the region entry.
    pub blocks: Vec<BasicBlock>,
    /// Per-pc block index (`block_of[pc]` is the block containing `pc`).
    pub block_of: Vec<usize>,
}

impl Cfg {
    /// Recovers the CFG of `program`.
    pub fn build(program: &Program) -> Cfg {
        let n = program.len();
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for pc in 0..n {
            let s = program.successors(pc);
            if let Some(t) = s.target {
                if t < n {
                    leader[t] = true;
                }
            }
            // The instruction after any control transfer starts a block.
            let transfers = matches!(
                program.instrs()[pc],
                Instr::Branch { .. } | Instr::Jmp { .. } | Instr::XEnd | Instr::XAbort { .. }
            );
            if transfers && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for pc in 0..n {
            block_of[pc] = blocks.len();
            let last = pc + 1 == n || leader[pc + 1];
            if last {
                blocks.push(BasicBlock {
                    start,
                    end: pc + 1,
                    successors: Vec::new(),
                    reachable: false,
                });
                start = pc + 1;
            }
        }

        for block in &mut blocks {
            let tail = block.end - 1;
            block.successors = program
                .successors(tail)
                .iter()
                .filter(|&pc| pc < n)
                .map(|pc| block_of[pc])
                .collect();
        }

        // Reachability from the region entry (pc 0).
        if !blocks.is_empty() {
            let mut stack = vec![0usize];
            while let Some(b) = stack.pop() {
                if blocks[b].reachable {
                    continue;
                }
                blocks[b].reachable = true;
                stack.extend(blocks[b].successors.iter().copied());
            }
        }

        Cfg { blocks, block_of }
    }

    /// Per-pc reachability from the region entry.
    pub fn reachable_pcs(&self) -> Vec<bool> {
        self.block_of
            .iter()
            .map(|&b| self.blocks[b].reachable)
            .collect()
    }

    /// Number of blocks reachable from the region entry.
    pub fn reachable_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.reachable).count()
    }

    /// Per-pc "is part of a CFG cycle" flags: `true` when the pc can reach
    /// itself again. Used to decide whether an access site may execute more
    /// than once per region execution.
    pub fn in_cycle_pcs(&self) -> Vec<bool> {
        let nb = self.blocks.len();
        // Block-level: can block b reach block b again through >= 1 edge?
        let mut cyc = vec![false; nb];
        for (b, flag) in cyc.iter_mut().enumerate() {
            let mut seen = vec![false; nb];
            let mut stack: Vec<usize> = self.blocks[b].successors.clone();
            while let Some(s) = stack.pop() {
                if s == b {
                    *flag = true;
                    break;
                }
                if !seen[s] {
                    seen[s] = true;
                    stack.extend(self.blocks[s].successors.iter().copied());
                }
            }
        }
        self.block_of.iter().map(|&b| cyc[b]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_isa::{Cond, ProgramBuilder, Reg};

    fn loop_program() -> Program {
        // 0: li r1,0
        // 1: branch ge r1,r2 -> 5
        // 2: ld r3,[r0]
        // 3: addi r1,r1,1
        // 4: jmp 1
        // 5: xend
        let mut b = ProgramBuilder::new();
        let top = b.label();
        let out = b.label();
        b.li(Reg(1), 0)
            .bind(top)
            .branch(Cond::Ge, Reg(1), Reg(2), out)
            .ld(Reg(3), Reg(0), 0)
            .addi(Reg(1), Reg(1), 1)
            .jmp(top)
            .bind(out)
            .xend();
        b.build()
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(0), 1).addi(Reg(0), Reg(0), 2).xend();
        let cfg = Cfg::build(&b.build());
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].len(), 3);
        assert!(cfg.blocks[0].reachable);
        assert!(cfg.blocks[0].successors.is_empty());
        assert!(!cfg.blocks[0].is_empty());
        assert!(cfg.in_cycle_pcs().iter().all(|&c| !c));
    }

    #[test]
    fn loop_blocks_and_cycles() {
        let cfg = Cfg::build(&loop_program());
        // Blocks: [0], [1], [2..4], [5].
        assert_eq!(cfg.blocks.len(), 4);
        assert_eq!(cfg.reachable_blocks(), 4);
        let cyc = cfg.in_cycle_pcs();
        assert!(!cyc[0], "entry is not in the loop");
        assert!(cyc[1] && cyc[2] && cyc[3] && cyc[4], "loop body cycles");
        assert!(!cyc[5], "exit is not in the loop");
    }

    #[test]
    fn unreachable_block_is_flagged() {
        let mut b = ProgramBuilder::new();
        b.xend().li(Reg(0), 1).xend();
        let cfg = Cfg::build(&b.build());
        assert_eq!(cfg.blocks.len(), 2);
        assert!(cfg.blocks[0].reachable);
        assert!(!cfg.blocks[1].reachable);
        assert_eq!(cfg.reachable_pcs(), vec![true, false, false]);
    }

    #[test]
    fn off_end_fall_through_has_no_successor_block() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(0), 1); // runs off the end
        let cfg = Cfg::build(&b.build());
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].successors.is_empty());
    }
}
