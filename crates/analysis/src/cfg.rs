//! Control-flow-graph recovery over a label-resolved [`Program`].
//!
//! A `Program` *is* one atomic region: execution enters at pc 0 (the
//! implicit `XBegin`) and leaves at the first `XEnd`/`XAbort` it reaches,
//! so CFG recovery is intra-program. Basic blocks are maximal runs of
//! instructions with a single entry (block leaders are pc 0, every branch
//! or jump target, and every instruction following a control transfer).

use clear_isa::{AluOp, Cond, Instr, Program, Reg};

/// One basic block of an atomic-region program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// First pc of the block (inclusive).
    pub start: usize,
    /// One past the last pc of the block (exclusive).
    pub end: usize,
    /// Successor block indices, in (fall-through, target) order. A
    /// fall-through that runs off the end of the program has no block and
    /// is reported by the lint pass instead.
    pub successors: Vec<usize>,
    /// `true` if the block is reachable from the region entry.
    pub reachable: bool,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the block holds no instructions (never produced by
    /// [`Cfg::build`]; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The recovered control-flow graph of one atomic-region program.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Basic blocks in ascending pc order. Block 0 is the region entry.
    pub blocks: Vec<BasicBlock>,
    /// Per-pc block index (`block_of[pc]` is the block containing `pc`).
    pub block_of: Vec<usize>,
}

impl Cfg {
    /// Recovers the CFG of `program`.
    pub fn build(program: &Program) -> Cfg {
        let n = program.len();
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for pc in 0..n {
            let s = program.successors(pc);
            if let Some(t) = s.target {
                if t < n {
                    leader[t] = true;
                }
            }
            // The instruction after any control transfer starts a block.
            let transfers = matches!(
                program.instrs()[pc],
                Instr::Branch { .. } | Instr::Jmp { .. } | Instr::XEnd | Instr::XAbort { .. }
            );
            if transfers && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for pc in 0..n {
            block_of[pc] = blocks.len();
            let last = pc + 1 == n || leader[pc + 1];
            if last {
                blocks.push(BasicBlock {
                    start,
                    end: pc + 1,
                    successors: Vec::new(),
                    reachable: false,
                });
                start = pc + 1;
            }
        }

        for block in &mut blocks {
            let tail = block.end - 1;
            block.successors = program
                .successors(tail)
                .iter()
                .filter(|&pc| pc < n)
                .map(|pc| block_of[pc])
                .collect();
        }

        // Reachability from the region entry (pc 0).
        if !blocks.is_empty() {
            let mut stack = vec![0usize];
            while let Some(b) = stack.pop() {
                if blocks[b].reachable {
                    continue;
                }
                blocks[b].reachable = true;
                stack.extend(blocks[b].successors.iter().copied());
            }
        }

        Cfg { blocks, block_of }
    }

    /// Per-pc reachability from the region entry.
    pub fn reachable_pcs(&self) -> Vec<bool> {
        self.block_of
            .iter()
            .map(|&b| self.blocks[b].reachable)
            .collect()
    }

    /// Number of blocks reachable from the region entry.
    pub fn reachable_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.reachable).count()
    }

    /// Per-pc "is part of a CFG cycle" flags: `true` when the pc can reach
    /// itself again. Used to decide whether an access site may execute more
    /// than once per region execution.
    pub fn in_cycle_pcs(&self) -> Vec<bool> {
        let nb = self.blocks.len();
        // Block-level: can block b reach block b again through >= 1 edge?
        let mut cyc = vec![false; nb];
        for (b, flag) in cyc.iter_mut().enumerate() {
            let mut seen = vec![false; nb];
            let mut stack: Vec<usize> = self.blocks[b].successors.clone();
            while let Some(s) = stack.pop() {
                if s == b {
                    *flag = true;
                    break;
                }
                if !seen[s] {
                    seen[s] = true;
                    stack.extend(self.blocks[s].successors.iter().copied());
                }
            }
        }
        self.block_of.iter().map(|&b| cyc[b]).collect()
    }

    /// Which blocks `b` can reach through one or more edges.
    fn reach_set(&self, b: usize) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack: Vec<usize> = self.blocks[b].successors.clone();
        while let Some(s) = stack.pop() {
            if !seen[s] {
                seen[s] = true;
                stack.extend(self.blocks[s].successors.iter().copied());
            }
        }
        seen
    }

    /// Per-pc static trip-count bounds for *canonical counted loops*: the
    /// bounded-loop-unrolling half of the sharpened cycle analysis.
    ///
    /// A cycle qualifies when it is a single natural loop (exactly one
    /// conditional branch among its blocks) driven by a counter register
    /// `ctr` that is
    ///
    /// * written exactly once inside the loop, by `addi ctr, ctr, step`
    ///   with `step >= 1`,
    /// * compared `Ge ctr, lim` by the loop branch whose taken edge leaves
    ///   the cycle, and
    /// * initialised — like `lim` — by a single `li` constant that is the
    ///   register's *only* definition outside the loop.
    ///
    /// The bound is then `ceil((lim0 - ctr0) / step)` iterations. Loops
    /// whose limit or start lives in an entry register (unknown at
    /// analysis time), nests sharing blocks, or any non-canonical shape
    /// yield `None` — the footprint stays unbounded, exactly as before.
    /// Pcs outside any cycle also report `None` (their sites run at most
    /// once and never consult a trip bound).
    pub fn trip_bounds(&self, program: &Program) -> Vec<Option<u32>> {
        /// Trip counts above this are treated as unbounded: the footprint
        /// bound would dwarf any ALT budget anyway, and huge constants
        /// must not inflate analysis cost.
        const MAX_TRIPS: u64 = 1 << 20;

        let nb = self.blocks.len();
        let n = self.block_of.len();
        let mut out: Vec<Option<u32>> = vec![None; n];
        if nb == 0 {
            return out;
        }

        // Strongly-connected cycle membership via pairwise reachability.
        let reach: Vec<Vec<bool>> = (0..nb).map(|b| self.reach_set(b)).collect();
        let mut scc_of: Vec<Option<usize>> = vec![None; nb];
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        for b in 0..nb {
            if scc_of[b].is_some() || !reach[b][b] {
                continue;
            }
            let id = sccs.len();
            let members: Vec<usize> = (b..nb).filter(|&o| reach[b][o] && reach[o][b]).collect();
            for &m in &members {
                scc_of[m] = Some(id);
            }
            sccs.push(members);
        }

        let instrs = program.instrs();
        // Last definition of a register at `pc` (None for non-writes).
        let def_of = |pc: usize| -> Option<Reg> {
            match instrs[pc] {
                Instr::Li { rd, .. }
                | Instr::Mv { rd, .. }
                | Instr::AluImm { rd, .. }
                | Instr::Alu { rd, .. }
                | Instr::Ld { rd, .. } => Some(rd),
                _ => None,
            }
        };

        for members in &sccs {
            let in_scc = |pc: usize| members.contains(&self.block_of[pc]);
            let member_pcs: Vec<usize> = members
                .iter()
                .flat_map(|&b| self.blocks[b].start..self.blocks[b].end)
                .collect();

            // Exactly one conditional branch, `Ge ctr, lim`, exiting the
            // cycle on its taken edge.
            let branches: Vec<usize> = member_pcs
                .iter()
                .copied()
                .filter(|&pc| matches!(instrs[pc], Instr::Branch { .. }))
                .collect();
            let [bpc] = branches[..] else { continue };
            let Instr::Branch {
                cond: Cond::Ge,
                rs1: ctr,
                rs2: lim,
                ..
            } = instrs[bpc]
            else {
                continue;
            };
            let Some(target) = program.successors(bpc).target else {
                continue;
            };
            if target < n && in_scc(target) {
                continue; // taken edge must leave the loop
            }

            // Exactly one in-loop write to ctr: `addi ctr, ctr, step`;
            // none to lim.
            if member_pcs.iter().any(|&pc| def_of(pc) == Some(lim)) {
                continue;
            }
            let ctr_writes: Vec<usize> = member_pcs
                .iter()
                .copied()
                .filter(|&pc| def_of(pc) == Some(ctr))
                .collect();
            let [wpc] = ctr_writes[..] else { continue };
            let Instr::AluImm {
                op: AluOp::Add,
                rd,
                rs,
                imm: step,
            } = instrs[wpc]
            else {
                continue;
            };
            if rd != ctr || rs != ctr || step == 0 || step > MAX_TRIPS {
                continue;
            }

            // Unique constant initialisers outside the loop.
            let init_const = |reg: Reg| -> Option<u64> {
                let defs: Vec<usize> = (0..n)
                    .filter(|&pc| !in_scc(pc) && def_of(pc) == Some(reg))
                    .collect();
                let [dpc] = defs[..] else { return None };
                match instrs[dpc] {
                    Instr::Li { imm, .. } => Some(imm),
                    _ => None,
                }
            };
            let (Some(c0), Some(k)) = (init_const(ctr), init_const(lim)) else {
                continue;
            };

            let trips = if k <= c0 { 0 } else { (k - c0).div_ceil(step) };
            if trips > MAX_TRIPS {
                continue;
            }
            for &pc in &member_pcs {
                out[pc] = Some(trips as u32);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_isa::{Cond, ProgramBuilder, Reg};

    fn loop_program() -> Program {
        // 0: li r1,0
        // 1: branch ge r1,r2 -> 5
        // 2: ld r3,[r0]
        // 3: addi r1,r1,1
        // 4: jmp 1
        // 5: xend
        let mut b = ProgramBuilder::new();
        let top = b.label();
        let out = b.label();
        b.li(Reg(1), 0)
            .bind(top)
            .branch(Cond::Ge, Reg(1), Reg(2), out)
            .ld(Reg(3), Reg(0), 0)
            .addi(Reg(1), Reg(1), 1)
            .jmp(top)
            .bind(out)
            .xend();
        b.build()
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(0), 1).addi(Reg(0), Reg(0), 2).xend();
        let cfg = Cfg::build(&b.build());
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].len(), 3);
        assert!(cfg.blocks[0].reachable);
        assert!(cfg.blocks[0].successors.is_empty());
        assert!(!cfg.blocks[0].is_empty());
        assert!(cfg.in_cycle_pcs().iter().all(|&c| !c));
    }

    #[test]
    fn loop_blocks_and_cycles() {
        let cfg = Cfg::build(&loop_program());
        // Blocks: [0], [1], [2..4], [5].
        assert_eq!(cfg.blocks.len(), 4);
        assert_eq!(cfg.reachable_blocks(), 4);
        let cyc = cfg.in_cycle_pcs();
        assert!(!cyc[0], "entry is not in the loop");
        assert!(cyc[1] && cyc[2] && cyc[3] && cyc[4], "loop body cycles");
        assert!(!cyc[5], "exit is not in the loop");
    }

    #[test]
    fn unreachable_block_is_flagged() {
        let mut b = ProgramBuilder::new();
        b.xend().li(Reg(0), 1).xend();
        let cfg = Cfg::build(&b.build());
        assert_eq!(cfg.blocks.len(), 2);
        assert!(cfg.blocks[0].reachable);
        assert!(!cfg.blocks[1].reachable);
        assert_eq!(cfg.reachable_pcs(), vec![true, false, false]);
    }

    #[test]
    fn off_end_fall_through_has_no_successor_block() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(0), 1); // runs off the end
        let cfg = Cfg::build(&b.build());
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].successors.is_empty());
    }
}
