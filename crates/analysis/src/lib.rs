//! **clear-analysis** — ahead-of-time static analysis of mini-ISA atomic
//! regions.
//!
//! The dynamic side of this repository (*discovery*, `clear-core`) learns
//! an AR's footprint, lockability and immutability by running it once
//! speculatively. This crate answers the same three assessments *before*
//! any execution, from the program text and the entry arguments alone:
//!
//! 1. [`Cfg`] recovers basic blocks and reachability from
//!    [`Program::successors`](clear_isa::Program::successors) — a program
//!    *is* one atomic region, entered at the implicit `XBegin` (pc 0) and
//!    left at `XEnd`/`XAbort`;
//! 2. [`Dataflow`] runs a register-provenance fixpoint that statically
//!    mirrors the VM's per-register indirection bits (§5 ① of the paper);
//! 3. [`analyze_program`] bounds the abstract address set against the
//!    hardware budgets ([`StaticBudget`]: ALT capacity, directory
//!    geometry) and condenses everything into a [`StaticVerdict`], plus
//!    a reusable [lint pass](lint_program) for workload authors.
//!
//! The verdicts are designed to be *sound against dynamic discovery* in
//! one direction: a [`StaticVerdict::StaticImmutable`] region can never
//! be observed with a mutated footprint at run time, because the analysis
//! over-approximates the VM's indirection tracking. The
//! `static-agreement` harness experiment holds that line as a regression
//! gate.
//!
//! # Examples
//!
//! ```
//! use clear_analysis::{analyze_program, EntryCtx, StaticBudget, StaticVerdict};
//! use clear_isa::{ProgramBuilder, Reg};
//!
//! // counter += 1, address computed outside the AR: Listing 1.
//! let mut b = ProgramBuilder::new();
//! b.ld(Reg(1), Reg(0), 0)
//!     .addi(Reg(1), Reg(1), 1)
//!     .st(Reg(0), 0, Reg(1))
//!     .xend();
//! let a = analyze_program(
//!     &b.build(),
//!     &EntryCtx::from_args(&[(Reg(0), 128)]),
//!     &StaticBudget::default(),
//! );
//! assert_eq!(a.verdict, StaticVerdict::StaticImmutable);
//! assert_eq!(a.footprint.lines, Some(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cfg;
mod dataflow;
mod lint;
mod sample;
mod verdict;

pub use cfg::{BasicBlock, Cfg};
pub use dataflow::{AbsVal, AccessSite, BranchSite, Dataflow, Root, MAX_DEPTH};
pub use lint::{lint_program, Lint};
pub use sample::{
    analyze_workload, sample_workload, workload_plans, ArReport, SampledAr, WorkloadReport,
    WorkloadSample, DEFAULT_MAX_PULLS,
};
pub use verdict::{
    analyze_program, static_plan, ArAnalysis, EntryCtx, FootprintBound, LockPrediction,
    OverflowPrediction, StaticBudget, StaticVerdict,
};
