//! Footprint bounding and the per-AR static verdict.
//!
//! This module mirrors the three discovery assessments of §4 ahead of
//! time:
//!
//! * **Assessment 1 (overflow)** — the abstract footprint bound is
//!   compared against the ALT capacity ([`StaticBudget::alt_entries`]);
//! * **Assessment 2 (lockability)** — resolved footprints are checked for
//!   simultaneous holdability against the directory geometry;
//! * **Assessment 3 (immutability)** — the provenance dataflow proves the
//!   absence (or stability) of indirections.
//!
//! The verdict lattice refines Table 1's static classes:
//!
//! * [`StaticVerdict::StaticImmutable`] — *proved* immutable: no address
//!   or branch depends on a value loaded in the AR. Sound: a dynamic run
//!   can never observe an indirection the analyzer missed.
//! * [`StaticVerdict::LikelyImmutable`] — every indirection is one load
//!   deep, from a slot the region itself never overwrites (Listing 2's
//!   `users` pointer). Immutable unless a *concurrent* writer changes the
//!   slot.
//! * [`StaticVerdict::Indirect`] — the footprint hangs off multi-hop or
//!   unstable indirections (Listing 3) and may change between retries.
//! * [`StaticVerdict::NonConvertible`] — the bounded footprint cannot fit
//!   the ALT (or is unbounded without indirection), so CLEAR would fall
//!   back to speculative retries regardless of mutability.

use crate::cfg::Cfg;
use crate::dataflow::{AbsVal, Dataflow, Root};
use crate::lint::{lint_program, Lint};
use clear_core::{ClearConfig, ObservedClass, PlanAddr, PlanClass, StaticPlan};
use clear_isa::{Mutability, Program, Reg};
use clear_mem::{CacheGeometry, FxHashMap, FxHashSet, LineAddr, LINE_BYTES};
use std::fmt;

/// Entry context of one AR invocation: which registers are defined at
/// `XBegin` and (when sampling a concrete invocation) their values.
#[derive(Clone, Debug, Default)]
pub struct EntryCtx {
    /// Entry registers with their invocation values.
    pub args: Vec<(Reg, u64)>,
    /// `true` when the argument values are real and may be used to
    /// resolve addresses concretely; `false` analyses the program purely
    /// symbolically (registers defined, values unknown).
    pub concrete: bool,
    /// Bytes of simulated memory mapped at analysis time
    /// ([`clear_mem::Memory::allocated_bytes`]); enables the
    /// out-of-bounds access lints.
    pub mapped_bytes: Option<u64>,
}

impl EntryCtx {
    /// Context from concrete invocation arguments.
    pub fn from_args(args: &[(Reg, u64)]) -> EntryCtx {
        EntryCtx {
            args: args.to_vec(),
            concrete: true,
            mapped_bytes: None,
        }
    }

    /// Context with entry registers defined but values unknown.
    pub fn symbolic(regs: &[Reg]) -> EntryCtx {
        EntryCtx {
            args: regs.iter().map(|&r| (r, 0)).collect(),
            concrete: false,
            mapped_bytes: None,
        }
    }

    /// The registers defined at region entry.
    pub fn regs(&self) -> Vec<Reg> {
        self.args.iter().map(|&(r, _)| r).collect()
    }

    /// Concrete entry value of `reg`, when known.
    pub fn value(&self, reg: Reg) -> Option<u64> {
        if !self.concrete {
            return None;
        }
        self.args.iter().find(|&&(r, _)| r == reg).map(|&(_, v)| v)
    }
}

/// The hardware budgets the static analyzer bounds footprints against.
#[derive(Clone, Copy, Debug)]
pub struct StaticBudget {
    /// ALT capacity in cachelines (Assessment 1).
    pub alt_entries: usize,
    /// Directory geometry for the lockability check (Assessment 2).
    pub directory: CacheGeometry,
}

impl StaticBudget {
    /// Budget from a CLEAR configuration and directory geometry.
    pub fn from_config(cfg: &ClearConfig, directory: CacheGeometry) -> StaticBudget {
        StaticBudget {
            alt_entries: cfg.alt_entries,
            directory,
        }
    }
}

impl Default for StaticBudget {
    /// The paper's Table 2 defaults: 32-entry ALT, 8192-set 16-way
    /// directory.
    fn default() -> Self {
        StaticBudget::from_config(&ClearConfig::default(), CacheGeometry::new(8192, 16))
    }
}

/// A symbolically resolved byte address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum SymAddr {
    /// Concrete byte address.
    Abs(u64),
    /// `entry_value(reg) + delta` for an unknown entry value.
    Sym(Reg, u64),
}

impl SymAddr {
    /// The cacheline key of the address. For symbolic addresses this
    /// assumes the entry value is line-aligned (workload allocators are
    /// line-aligned bump allocators); concrete addresses need no
    /// assumption.
    fn line_key(self) -> SymAddr {
        match self {
            SymAddr::Abs(a) => SymAddr::Abs(a / LINE_BYTES),
            SymAddr::Sym(r, d) => SymAddr::Sym(r, d / LINE_BYTES),
        }
    }
}

/// Resolves an access site's base + offset to a symbolic byte address,
/// when its provenance allows.
fn resolve(base: AbsVal, offset: i64, entry: &EntryCtx) -> Option<SymAddr> {
    let off = offset as u64; // wrapping two's-complement add
    match base {
        AbsVal::Const(c) => Some(SymAddr::Abs(c.wrapping_add(off))),
        AbsVal::Entry { reg, delta } => match entry.value(reg) {
            Some(v) => Some(SymAddr::Abs(v.wrapping_add(delta).wrapping_add(off))),
            None => Some(SymAddr::Sym(reg, delta.wrapping_add(off))),
        },
        _ => None,
    }
}

/// Abstract bound on the cachelines one region execution can touch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FootprintBound {
    /// Upper bound on distinct accessed lines; `None` when a site with an
    /// unresolved address sits inside a CFG cycle (unbounded).
    pub lines: Option<usize>,
    /// Upper bound on distinct written lines (same convention).
    pub written_lines: Option<usize>,
    /// Distinct lines with symbolically exact addresses.
    pub exact_lines: usize,
    /// Access sites whose address could not be resolved (each contributes
    /// one line to the bound when outside cycles).
    pub unknown_sites: usize,
    /// `true` when every reachable access resolved to a concrete address:
    /// the bound is then exact, not an over-approximation.
    pub concrete: bool,
    /// The exact line set, when [`FootprintBound::concrete`] (sorted).
    pub concrete_footprint: Vec<LineAddr>,
}

/// Predicted Assessment-1 outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverflowPrediction {
    /// The footprint bound fits the ALT.
    Fits,
    /// The footprint bound exceeds the ALT: discovery will overflow.
    Overflow,
    /// Unbounded footprint: no prediction.
    Unknown,
}

/// Predicted Assessment-2 outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockPrediction {
    /// The footprint can be held (locked) simultaneously.
    Lockable,
    /// A directory set is provably oversubscribed.
    Unlockable,
    /// Cannot tell (unbounded or too abstract).
    Unknown,
}

/// The per-AR static classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StaticVerdict {
    /// Proved footprint-immutable (Listing 1): every address and branch is
    /// computed from entry values and constants only.
    StaticImmutable,
    /// Immutable unless concurrently invalidated (Listing 2): indirections
    /// are single-hop through slots this region never overwrites.
    LikelyImmutable,
    /// The footprint depends on unstable or multi-hop indirections
    /// (Listing 3).
    Indirect,
    /// The footprint cannot fit CLEAR's structures, so conversion to
    /// cacheline locking is off the table (Fig. 2 left edge).
    NonConvertible,
}

impl StaticVerdict {
    /// The Table 1 class this verdict corresponds to, when one exists.
    /// `NonConvertible` is a *size* statement, orthogonal to mutability.
    pub fn expected_mutability(self) -> Option<Mutability> {
        match self {
            StaticVerdict::StaticImmutable => Some(Mutability::Immutable),
            StaticVerdict::LikelyImmutable => Some(Mutability::LikelyImmutable),
            StaticVerdict::Indirect => Some(Mutability::Mutable),
            StaticVerdict::NonConvertible => None,
        }
    }

    /// `true` if a dynamic observation of `obs` is consistent with this
    /// verdict:
    ///
    /// * proved-immutable ARs must be observed immutable — hardware
    ///   discovery tracks exactly the indirections the analyzer proved
    ///   absent, so anything else is an analyzer soundness bug;
    /// * likely-immutable ARs carry a real indirection the hardware
    ///   *will* see (observed mutable), unless the value never actually
    ///   feeds an address on the taken path (observed immutable): both
    ///   are consistent;
    /// * indirect ARs should be observed mutable;
    /// * non-convertible ARs should overflow or be unlockable.
    pub fn agrees_with(self, obs: ObservedClass) -> bool {
        match self {
            StaticVerdict::StaticImmutable => obs == ObservedClass::Immutable,
            StaticVerdict::LikelyImmutable => {
                obs == ObservedClass::Immutable || obs == ObservedClass::Mutable
            }
            StaticVerdict::Indirect => obs == ObservedClass::Mutable,
            StaticVerdict::NonConvertible => {
                obs == ObservedClass::Overflowed || obs == ObservedClass::Unlockable
            }
        }
    }

    /// Stable short name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            StaticVerdict::StaticImmutable => "static-immutable",
            StaticVerdict::LikelyImmutable => "likely-immutable",
            StaticVerdict::Indirect => "indirect",
            StaticVerdict::NonConvertible => "non-convertible",
        }
    }

    /// All verdicts, in lattice/report order.
    pub const ALL: [StaticVerdict; 4] = [
        StaticVerdict::StaticImmutable,
        StaticVerdict::LikelyImmutable,
        StaticVerdict::Indirect,
        StaticVerdict::NonConvertible,
    ];
}

impl fmt::Display for StaticVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Complete static analysis of one atomic-region program.
#[derive(Clone, Debug)]
pub struct ArAnalysis {
    /// The classification.
    pub verdict: StaticVerdict,
    /// Instruction count.
    pub instructions: usize,
    /// Total basic blocks.
    pub blocks: usize,
    /// Blocks reachable from entry.
    pub reachable_blocks: usize,
    /// The abstract footprint bound.
    pub footprint: FootprintBound,
    /// Predicted Assessment-1 outcome.
    pub overflow: OverflowPrediction,
    /// Predicted Assessment-2 outcome.
    pub lockability: LockPrediction,
    /// Deepest load chain behind any address or branch.
    pub max_depth: u8,
    /// Reachable access sites whose base is an indirection.
    pub indirect_sites: usize,
    /// Reachable branches that depend on loaded values.
    pub dependent_branches: usize,
    /// Lint findings, in deterministic order.
    pub lints: Vec<Lint>,
}

fn compute_footprint(flow: &Dataflow, entry: &EntryCtx) -> FootprintBound {
    let mut exact: FxHashSet<SymAddr> = FxHashSet::default();
    let mut exact_written: FxHashSet<SymAddr> = FxHashSet::default();
    let mut unknown_sites = 0usize;
    let mut unknown_written = 0usize;
    let mut unbounded = false;
    let mut unbounded_written = false;
    let mut concrete = true;
    let mut concrete_lines: FxHashSet<u64> = FxHashSet::default();

    for site in &flow.accesses {
        match resolve(site.base, site.offset, entry) {
            Some(addr) => {
                let key = addr.line_key();
                exact.insert(key);
                if site.is_store {
                    exact_written.insert(key);
                }
                match addr {
                    SymAddr::Abs(a) => {
                        concrete_lines.insert(a / LINE_BYTES);
                    }
                    SymAddr::Sym(..) => concrete = false,
                }
            }
            None => {
                concrete = false;
                // Per-site contribution to the line bound, sharpest first:
                // a saturated-depth base lost its provenance entirely
                // (widening takes precedence over any trip bound), a
                // bounded counted loop contributes at most one line per
                // iteration, an unbounded cycle gives up, and a
                // straight-line site is one line.
                let contribution = if site.widened {
                    None
                } else if site.in_cycle {
                    site.trip_bound.map(|k| k as usize)
                } else {
                    Some(1)
                };
                match contribution {
                    Some(k) => {
                        unknown_sites += k;
                        if site.is_store {
                            unknown_written += k;
                        }
                    }
                    None => {
                        unbounded = true;
                        if site.is_store {
                            unbounded_written = true;
                        }
                    }
                }
            }
        }
    }

    let mut footprint: Vec<LineAddr> = if concrete {
        concrete_lines.iter().map(|&l| LineAddr(l)).collect()
    } else {
        Vec::new()
    };
    footprint.sort_unstable();

    FootprintBound {
        lines: (!unbounded).then_some(exact.len() + unknown_sites),
        written_lines: (!unbounded_written).then_some(exact_written.len() + unknown_written),
        exact_lines: exact.len(),
        unknown_sites,
        concrete,
        concrete_footprint: footprint,
    }
}

fn predict_overflow(fp: &FootprintBound, budget: &StaticBudget) -> OverflowPrediction {
    match fp.lines {
        None => OverflowPrediction::Unknown,
        Some(n) if n > budget.alt_entries => OverflowPrediction::Overflow,
        Some(_) => OverflowPrediction::Fits,
    }
}

fn predict_lockability(fp: &FootprintBound, budget: &StaticBudget) -> LockPrediction {
    if fp.concrete {
        // Exact per-set occupancy test against the directory.
        let mut per_set: FxHashMap<usize, usize> = FxHashMap::default();
        for &line in &fp.concrete_footprint {
            *per_set.entry(budget.directory.set_index(line)).or_insert(0) += 1;
        }
        if per_set.values().all(|&c| c <= budget.directory.ways) {
            LockPrediction::Lockable
        } else {
            LockPrediction::Unlockable
        }
    } else {
        match fp.lines {
            // Worst case puts every line in one set: still lockable.
            Some(n) if n <= budget.directory.ways => LockPrediction::Lockable,
            _ => LockPrediction::Unknown,
        }
    }
}

/// `true` when a value is *stable* in the Listing-2 sense: either
/// indirection-free, or loaded exactly once from a slot this region never
/// overwrites (so it can only change under a concurrent writer).
fn value_stable(
    v: AbsVal,
    flow: &Dataflow,
    entry: &EntryCtx,
    stored_slots: &FxHashSet<SymAddr>,
) -> bool {
    match v {
        AbsVal::Loaded {
            depth: 1,
            root: Root::Site(p),
        } => {
            let Some(site) = flow.access_at(p as usize) else {
                return false;
            };
            match resolve(site.base, site.offset, entry) {
                Some(slot) => !stored_slots.contains(&slot),
                None => false,
            }
        }
        AbsVal::Loaded { .. } => false,
        _ => true,
    }
}

fn classify(
    flow: &Dataflow,
    entry: &EntryCtx,
    fp: &FootprintBound,
    overflow: OverflowPrediction,
) -> StaticVerdict {
    let any_indirect = flow.accesses.iter().any(|a| a.base.is_indirect())
        || flow.branches.iter().any(|b| b.is_dependent());

    if fp.lines.is_none() {
        // Unbounded: a pointer/branch-driven loop is Indirect; a direct
        // but unbounded region can never be captured by the ALT.
        return if any_indirect {
            StaticVerdict::Indirect
        } else {
            StaticVerdict::NonConvertible
        };
    }
    if overflow == OverflowPrediction::Overflow {
        return StaticVerdict::NonConvertible;
    }
    if !any_indirect {
        return StaticVerdict::StaticImmutable;
    }

    // Word-granular addresses of stores with resolvable targets; stores
    // through unresolved (loaded) bases are optimistically assumed to hit
    // data, not pointer slots — that optimism is exactly what makes the
    // verdict "likely" rather than proved.
    let stored_slots: FxHashSet<SymAddr> = flow
        .accesses
        .iter()
        .filter(|a| a.is_store)
        .filter_map(|a| resolve(a.base, a.offset, entry))
        .collect();

    let stable = flow
        .accesses
        .iter()
        .all(|a| value_stable(a.base, flow, entry, &stored_slots))
        && flow.branches.iter().all(|b| {
            value_stable(b.lhs, flow, entry, &stored_slots)
                && value_stable(b.rhs, flow, entry, &stored_slots)
        });

    if stable {
        StaticVerdict::LikelyImmutable
    } else {
        StaticVerdict::Indirect
    }
}

/// A [`SymAddr`] as its execution-time [`PlanAddr`] form.
fn plan_addr(addr: SymAddr) -> PlanAddr {
    match addr {
        SymAddr::Abs(a) => PlanAddr::Abs(a),
        SymAddr::Sym(reg, delta) => PlanAddr::Sym {
            reg: reg.index() as u8,
            delta,
        },
    }
}

/// Emits the execution-time [`StaticPlan`] for one AR program, or `None`
/// when the verdict does not support a static fast path.
///
/// The program is re-analyzed *symbolically* (entry registers defined,
/// values unknown) regardless of what `entry` carries, so the emitted
/// lock set is invocation-independent: entry-relative sites stay
/// [`PlanAddr::Sym`] and are resolved by the machine against each
/// invocation's own arguments. A plan is emitted when
///
/// * the verdict is [`StaticVerdict::StaticImmutable`] and every
///   reachable access resolved (the lock set is complete, so discovery
///   can be skipped outright), or
/// * the verdict is [`StaticVerdict::LikelyImmutable`] (the lock set is
///   the resolved subset; the root pointer slots the verdict hinges on
///   ride along for the partial-discovery confirmation),
///
/// and in both cases the static line bound fits the ALT budget.
pub fn static_plan(
    program: &Program,
    entry: &EntryCtx,
    budget: &StaticBudget,
) -> Option<StaticPlan> {
    let sym = EntryCtx::symbolic(&entry.regs());
    let cfg = Cfg::build(program);
    let flow = Dataflow::run(program, &sym.regs(), &cfg);
    let fp = compute_footprint(&flow, &sym);
    let overflow = predict_overflow(&fp, budget);
    let verdict = classify(&flow, &sym, &fp, overflow);

    let class = match verdict {
        StaticVerdict::StaticImmutable => PlanClass::Immutable,
        StaticVerdict::LikelyImmutable => PlanClass::LikelyImmutable,
        _ => return None,
    };
    let bound_lines = fp.lines?;
    if overflow != OverflowPrediction::Fits {
        return None;
    }

    let mut lock_set: Vec<PlanAddr> = Vec::new();
    let mut written: Vec<PlanAddr> = Vec::new();
    let mut complete = true;
    for site in &flow.accesses {
        match resolve(site.base, site.offset, &sym) {
            Some(addr) => {
                let a = plan_addr(addr);
                if !lock_set.contains(&a) {
                    lock_set.push(a);
                }
                if site.is_store && !written.contains(&a) {
                    written.push(a);
                }
            }
            None => complete = false,
        }
    }
    if class == PlanClass::Immutable && !complete {
        // A proved-immutable AR with untracked (Direct) sites cannot carry
        // a usable lock set; skipping discovery would be guesswork.
        return None;
    }

    // Root pointer slots of the Listing-2 pattern: the single-hop load
    // slots every indirection hangs off. `value_stable` proved each one
    // resolvable and never stored to.
    let mut root_slots: Vec<PlanAddr> = Vec::new();
    if class == PlanClass::LikelyImmutable {
        let mut roots: Vec<u16> = Vec::new();
        let mut note = |v: AbsVal| {
            if let AbsVal::Loaded {
                depth: 1,
                root: Root::Site(p),
            } = v
            {
                if !roots.contains(&p) {
                    roots.push(p);
                }
            }
        };
        for a in &flow.accesses {
            note(a.base);
        }
        for b in &flow.branches {
            note(b.lhs);
            note(b.rhs);
        }
        for p in roots {
            let site = flow.access_at(p as usize)?;
            let slot = resolve(site.base, site.offset, &sym)?;
            let a = plan_addr(slot);
            if !root_slots.contains(&a) {
                root_slots.push(a);
            }
        }
    }

    Some(StaticPlan {
        class,
        lock_set,
        written,
        root_slots,
        complete,
        bound_lines,
        bound_written: fp.written_lines.unwrap_or(bound_lines),
    })
}

/// Runs the full analysis pipeline over one atomic-region program.
pub fn analyze_program(program: &Program, entry: &EntryCtx, budget: &StaticBudget) -> ArAnalysis {
    let cfg = Cfg::build(program);
    let flow = Dataflow::run(program, &entry.regs(), &cfg);
    let footprint = compute_footprint(&flow, entry);
    let overflow = predict_overflow(&footprint, budget);
    let lockability = predict_lockability(&footprint, budget);
    let verdict = classify(&flow, entry, &footprint, overflow);
    let lints = lint_program(program, &cfg, &flow, entry);

    ArAnalysis {
        verdict,
        instructions: program.len(),
        blocks: cfg.blocks.len(),
        reachable_blocks: cfg.reachable_blocks(),
        indirect_sites: flow
            .accesses
            .iter()
            .filter(|a| a.base.is_indirect())
            .count(),
        dependent_branches: flow.branches.iter().filter(|b| b.is_dependent()).count(),
        max_depth: flow.max_depth,
        footprint,
        overflow,
        lockability,
        lints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_isa::{Cond, ProgramBuilder};

    fn ctx(args: &[(Reg, u64)]) -> EntryCtx {
        EntryCtx::from_args(args)
    }

    #[test]
    fn pure_register_region_is_static_immutable() {
        let mut b = ProgramBuilder::new();
        b.ld(Reg(1), Reg(0), 0)
            .addi(Reg(1), Reg(1), 1)
            .st(Reg(0), 0, Reg(1))
            .st(Reg(0), 64, Reg(1))
            .xend();
        let a = analyze_program(&b.build(), &ctx(&[(Reg(0), 128)]), &StaticBudget::default());
        assert_eq!(a.verdict, StaticVerdict::StaticImmutable);
        assert_eq!(a.footprint.lines, Some(2));
        assert_eq!(a.footprint.written_lines, Some(2));
        assert!(a.footprint.concrete);
        assert_eq!(
            a.footprint.concrete_footprint,
            vec![LineAddr(2), LineAddr(3)]
        );
        assert_eq!(a.overflow, OverflowPrediction::Fits);
        assert_eq!(a.lockability, LockPrediction::Lockable);
        assert!(a.lints.is_empty());
    }

    #[test]
    fn single_hop_stable_pointer_is_likely_immutable() {
        // Listing 2: base pointer loaded from a slot never stored here.
        let mut b = ProgramBuilder::new();
        b.ld(Reg(4), Reg(0), 0)
            .add(Reg(5), Reg(4), Reg(1))
            .ld(Reg(7), Reg(5), 0)
            .addi(Reg(7), Reg(7), 1)
            .st(Reg(5), 0, Reg(7))
            .xend();
        let a = analyze_program(
            &b.build(),
            &ctx(&[(Reg(0), 64), (Reg(1), 0)]),
            &StaticBudget::default(),
        );
        assert_eq!(a.verdict, StaticVerdict::LikelyImmutable);
        assert_eq!(a.max_depth, 1);
        assert!(!a.footprint.concrete);
    }

    #[test]
    fn overwritten_pointer_slot_demotes_to_indirect() {
        // Same shape, but the region also stores to the pointer slot.
        let mut b = ProgramBuilder::new();
        b.ld(Reg(4), Reg(0), 0)
            .ld(Reg(7), Reg(4), 0)
            .st(Reg(0), 0, Reg(7))
            .xend();
        let a = analyze_program(&b.build(), &ctx(&[(Reg(0), 64)]), &StaticBudget::default());
        assert_eq!(a.verdict, StaticVerdict::Indirect);
    }

    #[test]
    fn pointer_chase_is_indirect() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        let out = b.label();
        b.mv(Reg(1), Reg(0))
            .li(Reg(2), 0)
            .bind(top)
            .branch(Cond::Ge, Reg(2), Reg(3), out)
            .ld(Reg(1), Reg(1), 0)
            .addi(Reg(2), Reg(2), 1)
            .jmp(top)
            .bind(out)
            .xend();
        let a = analyze_program(
            &b.build(),
            &ctx(&[(Reg(0), 64), (Reg(3), 8)]),
            &StaticBudget::default(),
        );
        assert_eq!(a.verdict, StaticVerdict::Indirect);
        assert_eq!(a.footprint.lines, None, "chase loop is unbounded");
        assert_eq!(a.overflow, OverflowPrediction::Unknown);
        assert_eq!(a.lockability, LockPrediction::Unknown);
    }

    #[test]
    fn over_alt_region_is_non_convertible() {
        // 40 distinct lines > the 32-entry ALT.
        let mut b = ProgramBuilder::new();
        for i in 0..40i64 {
            b.st(Reg(0), i * 64, Reg(1));
        }
        b.xend();
        let a = analyze_program(
            &b.build(),
            &ctx(&[(Reg(0), 64), (Reg(1), 7)]),
            &StaticBudget::default(),
        );
        assert_eq!(a.verdict, StaticVerdict::NonConvertible);
        assert_eq!(a.footprint.lines, Some(40));
        assert_eq!(a.overflow, OverflowPrediction::Overflow);
    }

    #[test]
    fn direct_unbounded_loop_is_non_convertible() {
        // A direct-addressed loop whose trip count is a register: the
        // address is re-derived per iteration through untracked
        // arithmetic, so the bound is open-ended.
        let mut b = ProgramBuilder::new();
        let top = b.label();
        let out = b.label();
        b.li(Reg(2), 0)
            .bind(top)
            .branch(Cond::Ge, Reg(2), Reg(3), out)
            .alui(clear_isa::AluOp::Shl, Reg(4), Reg(2), 6)
            .add(Reg(4), Reg(4), Reg(0))
            .st(Reg(4), 0, Reg(2))
            .addi(Reg(2), Reg(2), 1)
            .jmp(top)
            .bind(out)
            .xend();
        let a = analyze_program(
            &b.build(),
            &ctx(&[(Reg(0), 64), (Reg(3), 100)]),
            &StaticBudget::default(),
        );
        assert_eq!(a.verdict, StaticVerdict::NonConvertible);
        assert_eq!(a.footprint.lines, None);
    }

    #[test]
    fn unlockable_concrete_footprint_is_detected() {
        // A tiny 1-set 2-way directory: three distinct lines collide.
        let budget = StaticBudget {
            alt_entries: 32,
            directory: CacheGeometry::new(1, 2),
        };
        let mut b = ProgramBuilder::new();
        b.st(Reg(0), 0, Reg(1))
            .st(Reg(0), 64, Reg(1))
            .st(Reg(0), 128, Reg(1))
            .xend();
        let a = analyze_program(&b.build(), &ctx(&[(Reg(0), 64), (Reg(1), 1)]), &budget);
        assert_eq!(a.lockability, LockPrediction::Unlockable);
        // Size-wise it still fits the ALT, and it is proved immutable.
        assert_eq!(a.verdict, StaticVerdict::StaticImmutable);
    }

    #[test]
    fn verdict_agreement_matrix() {
        use ObservedClass::*;
        assert!(StaticVerdict::StaticImmutable.agrees_with(Immutable));
        assert!(!StaticVerdict::StaticImmutable.agrees_with(Mutable));
        assert!(StaticVerdict::LikelyImmutable.agrees_with(Immutable));
        assert!(StaticVerdict::LikelyImmutable.agrees_with(Mutable));
        assert!(!StaticVerdict::LikelyImmutable.agrees_with(Overflowed));
        assert!(StaticVerdict::Indirect.agrees_with(Mutable));
        assert!(!StaticVerdict::Indirect.agrees_with(Immutable));
        assert!(StaticVerdict::NonConvertible.agrees_with(Overflowed));
        assert!(StaticVerdict::NonConvertible.agrees_with(Unlockable));
        assert!(!StaticVerdict::NonConvertible.agrees_with(Immutable));
    }

    #[test]
    fn verdict_names_are_stable() {
        let names: Vec<&str> = StaticVerdict::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(
            names,
            vec![
                "static-immutable",
                "likely-immutable",
                "indirect",
                "non-convertible"
            ]
        );
        assert_eq!(
            StaticVerdict::StaticImmutable.expected_mutability(),
            Some(Mutability::Immutable)
        );
        assert_eq!(StaticVerdict::NonConvertible.expected_mutability(), None);
    }

    #[test]
    fn static_plan_for_immutable_region_is_complete_and_symbolic() {
        // Entry-relative stores: the plan must stay Sym even though the
        // entry context carries concrete values.
        let mut b = ProgramBuilder::new();
        b.ld(Reg(1), Reg(0), 0)
            .addi(Reg(1), Reg(1), 1)
            .st(Reg(0), 0, Reg(1))
            .st(Reg(0), 64, Reg(1))
            .xend();
        let p = b.build();
        let plan = static_plan(&p, &ctx(&[(Reg(0), 128)]), &StaticBudget::default()).unwrap();
        assert_eq!(plan.class, PlanClass::Immutable);
        assert!(plan.complete);
        assert_eq!(
            plan.lock_set,
            vec![
                PlanAddr::Sym { reg: 0, delta: 0 },
                PlanAddr::Sym { reg: 0, delta: 64 }
            ]
        );
        assert_eq!(plan.written, plan.lock_set);
        assert!(plan.root_slots.is_empty());
        assert_eq!(plan.bound_lines, 2);
        assert_eq!(plan.bound_written, 2);
        // Identical plan from a symbolic context: invocation-independent.
        assert_eq!(
            static_plan(&p, &EntryCtx::symbolic(&[Reg(0)]), &StaticBudget::default()),
            Some(plan)
        );
    }

    #[test]
    fn static_plan_for_likely_immutable_carries_root_slots() {
        // Listing 2: r4 = ld [r0]; the plan must name slot r0+0 as the
        // root whose stability partial discovery confirms.
        let mut b = ProgramBuilder::new();
        b.ld(Reg(4), Reg(0), 0)
            .ld(Reg(7), Reg(4), 8)
            .addi(Reg(7), Reg(7), 1)
            .st(Reg(4), 8, Reg(7))
            .xend();
        let plan =
            static_plan(&b.build(), &ctx(&[(Reg(0), 64)]), &StaticBudget::default()).unwrap();
        assert_eq!(plan.class, PlanClass::LikelyImmutable);
        assert!(!plan.complete, "loaded-base sites are unresolved");
        assert_eq!(plan.lock_set, vec![PlanAddr::Sym { reg: 0, delta: 0 }]);
        assert_eq!(plan.root_slots, vec![PlanAddr::Sym { reg: 0, delta: 0 }]);
    }

    #[test]
    fn no_plan_for_indirect_overflowing_or_untracked_regions() {
        // Indirect (overwritten pointer slot): no plan.
        let mut b = ProgramBuilder::new();
        b.ld(Reg(4), Reg(0), 0)
            .ld(Reg(7), Reg(4), 0)
            .st(Reg(0), 0, Reg(7))
            .xend();
        assert_eq!(
            static_plan(&b.build(), &ctx(&[(Reg(0), 64)]), &StaticBudget::default()),
            None
        );

        // Over-ALT immutable region: no plan.
        let mut b = ProgramBuilder::new();
        for i in 0..40i64 {
            b.st(Reg(0), i * 64, Reg(1));
        }
        b.xend();
        assert_eq!(
            static_plan(
                &b.build(),
                &ctx(&[(Reg(0), 64), (Reg(1), 7)]),
                &StaticBudget::default()
            ),
            None
        );

        // Proved immutable but through an untracked (Direct) base — the
        // sum of two entry registers: incomplete lock set, no plan.
        let mut b = ProgramBuilder::new();
        b.add(Reg(2), Reg(0), Reg(1)).st(Reg(2), 0, Reg(0)).xend();
        assert_eq!(
            static_plan(
                &b.build(),
                &ctx(&[(Reg(0), 64), (Reg(1), 64)]),
                &StaticBudget::default()
            ),
            None
        );
    }

    #[test]
    fn symbolic_entry_args_still_classify() {
        // Without concrete values the same program classifies identically,
        // only the footprint loses concreteness.
        let mut b = ProgramBuilder::new();
        b.ld(Reg(1), Reg(0), 0).st(Reg(0), 64, Reg(1)).xend();
        let p = b.build();
        let concrete = analyze_program(&p, &ctx(&[(Reg(0), 128)]), &StaticBudget::default());
        let symbolic =
            analyze_program(&p, &EntryCtx::symbolic(&[Reg(0)]), &StaticBudget::default());
        assert_eq!(concrete.verdict, StaticVerdict::StaticImmutable);
        assert_eq!(symbolic.verdict, concrete.verdict);
        assert_eq!(concrete.footprint.lines, Some(2));
    }
}
