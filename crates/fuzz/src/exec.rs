//! The reference executor: drives the clear-isa [`Vm`] against a plain
//! [`Memory`] image with instantly-visible stores. This is the sequential
//! semantics the differential oracle compares the full machine against.

use clear_isa::{Effect, Program, Reg, Vm};
use clear_mem::{Addr, Memory, WORD_BYTES};
use std::sync::Arc;

/// Hard cap on reference steps per invocation; generated programs retire
/// well under this, so hitting it means the program (or the VM) ran away.
pub const STEP_CAP: u64 = 200_000;

/// How one reference invocation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefOutcome {
    /// The program retired `XEnd`.
    Committed {
        /// Instructions retired, including the `XEnd`.
        steps: u64,
    },
    /// The program touched the null line or an unaligned address.
    Fault {
        /// The offending byte address.
        addr: Addr,
    },
    /// The program retired `XAbort`.
    ExplicitAbort {
        /// The program-supplied abort code.
        code: u64,
    },
    /// The program exceeded [`STEP_CAP`].
    Runaway,
}

fn faulty(addr: Addr) -> bool {
    addr.0 < clear_mem::LINE_BYTES || !addr.0.is_multiple_of(WORD_BYTES)
}

/// Runs one invocation of `program` to completion against `mem`, applying
/// stores immediately. Faults are reported, not panicked, so the oracle
/// can flag a divergence instead of tearing the process down.
pub fn run_invocation(program: &Arc<Program>, args: &[(Reg, u64)], mem: &mut Memory) -> RefOutcome {
    let mut vm = Vm::new(Arc::clone(program));
    for &(r, v) in args {
        vm.set_reg(r, v);
    }
    let mut steps = 0u64;
    loop {
        if steps >= STEP_CAP {
            return RefOutcome::Runaway;
        }
        steps += 1;
        match vm.step() {
            Effect::Compute { .. } | Effect::Branch { .. } => {}
            Effect::Load { addr, .. } => {
                if faulty(addr) {
                    return RefOutcome::Fault { addr };
                }
                vm.finish_load(mem.load_word(addr));
            }
            Effect::Store { addr, value, .. } => {
                if faulty(addr) {
                    return RefOutcome::Fault { addr };
                }
                mem.store_word(addr, value);
            }
            Effect::Commit => return RefOutcome::Committed { steps },
            Effect::Abort { code } => return RefOutcome::ExplicitAbort { code },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::FuzzCase;
    use crate::workload::initial_image;

    #[test]
    fn generated_programs_commit_within_the_cap() {
        for i in 0..16 {
            let case = Arc::new(FuzzCase::generate(5, i));
            let (mut mem, layout) = initial_image(&case, 2);
            let args = case.args(&layout);
            match run_invocation(&case.program, &args, &mut mem) {
                RefOutcome::Committed { steps } => assert!(steps < STEP_CAP),
                other => panic!("case {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn repeated_invocations_are_deterministic() {
        let case = Arc::new(FuzzCase::generate(5, 1));
        let image = || {
            let (mut mem, layout) = initial_image(&case, 2);
            let args = case.args(&layout);
            for _ in 0..3 {
                assert!(matches!(
                    run_invocation(&case.program, &args, &mut mem),
                    RefOutcome::Committed { .. }
                ));
            }
            mem
        };
        let (a, b) = (image(), image());
        assert_eq!(a.words(), b.words());
    }

    #[test]
    fn null_access_reports_a_fault() {
        use clear_isa::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        b.li(Reg(4), 0).ld(Reg(5), Reg(4), 0).xend();
        let p = Arc::new(b.build());
        let mut mem = Memory::new();
        mem.alloc_line();
        assert_eq!(
            run_invocation(&p, &[], &mut mem),
            RefOutcome::Fault { addr: Addr(0) }
        );
    }
}
