//! Differential fuzzing for the CLEAR reproduction.
//!
//! Three independent implementations of atomic-region semantics live in
//! this workspace: the clear-isa [`Vm`](clear_isa::Vm), the full
//! [`Machine`](clear_machine::Machine), and the static analyzer in
//! [`clear_analysis`]. This crate cross-checks them at scale:
//!
//! - [`gen`] emits seeded, random-but-lint-clean AR programs (weighted
//!   instruction mixes, bounded loops, pointer chases up to the ALT
//!   depth);
//! - [`exec`] is the sequential reference executor over the VM;
//! - [`oracle`] runs each program through the machine solo, under
//!   contention, and across every built-in speculation backend
//!   ([`check_case_matrix`]) and compares memory images, commit/abort
//!   accounting, the paper's single-retry bound, capacity-abort
//!   accounting, and static-verdict soundness;
//! - [`shrink`] reduces failing cases to minimal reproducers;
//! - [`litmus`] pins the classic relaxed-memory shapes (SB, LB, MP, IRIW)
//!   to their atomic outcomes — the harness's `litmus-conformance` gate.
//!
//! Everything is a pure function of `(master_seed, index)`: corpus files
//! persist only those two numbers, and reports are byte-reproducible
//! across runs and worker counts.

#![warn(missing_docs)]

pub mod exec;
pub mod gen;
pub mod litmus;
pub mod oracle;
pub mod shrink;
pub mod workload;

pub use exec::{run_invocation, RefOutcome};
pub use gen::{case_seed, FuzzCase, Shape};
pub use litmus::{
    cases as litmus_cases, wide_cases as litmus_wide_cases, LitmusCase, LitmusWorkload,
};
pub use oracle::{
    check_case, check_case_at, check_case_matrix, BackendOutcome, CaseReport, Divergence,
    MatrixReport,
};
pub use shrink::{shrink, shrink_with, Shrunk};
pub use workload::{initial_image, FuzzWorkload, Layout, SharedSlot};
