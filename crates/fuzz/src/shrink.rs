//! Delta-debugging shrinker: reduces a failing case to a (locally)
//! minimal reproducer while staying inside the generator's validity
//! envelope — every candidate is re-lowered and re-linted via
//! [`FuzzCase::with_shapes`], so a shrunk reproducer is still a program
//! the generator could have emitted.

use crate::gen::{FuzzCase, Shape};
use crate::oracle::check_case;
use std::sync::Arc;

/// Oracle-run budget per shrink; a shrink never runs the machine more
/// often than this.
pub const MAX_ATTEMPTS: u32 = 300;

/// A shrinking result.
#[derive(Clone, Debug)]
pub struct Shrunk {
    /// The smallest still-failing case found.
    pub case: Arc<FuzzCase>,
    /// Oracle runs spent.
    pub attempts: u32,
}

/// Shrinks `case` against the real differential oracle.
pub fn shrink(case: Arc<FuzzCase>) -> Shrunk {
    shrink_with(case, |c| check_case(c).divergence.is_some())
}

/// Shrinks `case` against an arbitrary failure predicate (tests inject
/// cheap predicates here). `fails(&case)` must be true on entry; the
/// result is the smallest candidate for which it stayed true.
pub fn shrink_with(case: Arc<FuzzCase>, fails: impl Fn(&Arc<FuzzCase>) -> bool) -> Shrunk {
    let mut best = case;
    let mut attempts = 0u32;

    // A candidate is admitted only if it lints clean AND still fails.
    let try_candidate = |best: &Arc<FuzzCase>,
                         attempts: &mut u32,
                         shapes: Vec<Shape>,
                         threads: usize,
                         invocations: usize| {
        if *attempts >= MAX_ATTEMPTS {
            return None;
        }
        let candidate = Arc::new(best.with_shapes(shapes, threads, invocations)?);
        *attempts += 1;
        fails(&candidate).then_some(candidate)
    };

    // Pass 1: schedule first — a 2-thread single-invocation reproducer is
    // worth more than a short program under a wide schedule.
    for (threads, invocations) in [(2, 1), (2, best.invocations), (best.threads, 1)] {
        if threads == best.threads && invocations == best.invocations {
            continue;
        }
        if let Some(c) = try_candidate(
            &best,
            &mut attempts,
            best.shapes.clone(),
            threads,
            invocations,
        ) {
            best = c;
            break; // candidates are ordered most-reduced first
        }
    }

    // Pass 2: ddmin over top-level shapes — drop chunks, halving the
    // chunk size, restarting whenever a removal sticks.
    let mut chunk = (best.shapes.len() / 2).max(1);
    while chunk >= 1 && attempts < MAX_ATTEMPTS {
        let mut start = 0;
        let mut removed_any = false;
        while start < best.shapes.len() && attempts < MAX_ATTEMPTS {
            let end = (start + chunk).min(best.shapes.len());
            let mut shapes = best.shapes.clone();
            shapes.drain(start..end);
            match try_candidate(&best, &mut attempts, shapes, best.threads, best.invocations) {
                Some(c) => {
                    best = c;
                    removed_any = true;
                    // Do not advance: the next chunk slid into `start`.
                }
                None => start += chunk,
            }
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }

    // Pass 3: structural simplification — inline compound bodies and
    // flatten loops to one trip, one shape at a time.
    let mut i = 0;
    while i < best.shapes.len() && attempts < MAX_ATTEMPTS {
        let replacement: Option<Vec<Shape>> = match &best.shapes[i] {
            Shape::Loop { trips, body } if *trips > 1 => Some(vec![Shape::Loop {
                trips: 1,
                body: body.clone(),
            }]),
            Shape::Loop { trips: 1, body } => Some(body.clone()),
            Shape::Skip { body, .. } => Some(body.clone()),
            _ => None,
        };
        if let Some(replacement) = replacement {
            let mut shapes = best.shapes.clone();
            shapes.splice(i..=i, replacement);
            if let Some(c) =
                try_candidate(&best, &mut attempts, shapes, best.threads, best.invocations)
            {
                best = c;
                continue; // retry the same index: it may simplify further
            }
        }
        i += 1;
    }

    Shrunk {
        case: best,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::max_dynamic_stores;

    /// A predicate with a stable "interesting" core: the case fails while
    /// it still contains at least one store shape.
    fn has_store(case: &Arc<FuzzCase>) -> bool {
        max_dynamic_stores(&case.shapes) > 0
    }

    fn case_with_store() -> Arc<FuzzCase> {
        (0..64)
            .map(|i| Arc::new(FuzzCase::generate(0xD0, i)))
            .find(|c| has_store(c) && c.shapes.len() > 4)
            .expect("some generated case stores")
    }

    #[test]
    fn shrinking_preserves_failure_and_shrinks() {
        let case = case_with_store();
        let before = case.shapes.len();
        let s = shrink_with(Arc::clone(&case), has_store);
        assert!(has_store(&s.case), "shrunk case lost the failure");
        assert!(s.case.shapes.len() <= before);
        assert!(s.attempts <= MAX_ATTEMPTS);
        assert!(
            s.case.lints().is_empty(),
            "shrunk case must stay lint-clean"
        );
        // The schedule shrinks too.
        assert_eq!((s.case.threads, s.case.invocations), (2, 1));
    }

    #[test]
    fn shrinking_is_deterministic() {
        let case = case_with_store();
        let a = shrink_with(Arc::clone(&case), has_store);
        let b = shrink_with(case, has_store);
        assert_eq!(a.case.shapes, b.case.shapes);
        assert_eq!(a.attempts, b.attempts);
    }

    #[test]
    fn passing_cases_shrink_to_themselves_under_a_never_failing_predicate() {
        // `shrink_with` contract: `fails` is true on entry. With a
        // predicate that always fails, the minimum is a single shape.
        let case = case_with_store();
        let s = shrink_with(case, |_| true);
        assert!(s.case.shapes.len() <= 2);
    }
}
