//! The differential oracle: one fuzz case, three semantics, one verdict.
//!
//! Each case is judged by cross-checking
//!
//! 1. **the clear-isa VM** ([`crate::exec`]) as the sequential reference —
//!    final memory after replaying every committed invocation serially
//!    must equal the machine's final memory, both solo and contended;
//! 2. **the full machine** — commit/abort accounting must close (every
//!    invocation commits exactly once, no explicit or fault aborts), and
//!    the paper's single-retry bound must hold: an attempt started in a
//!    mode the backend's
//!    [`SpeculationBackend::guarantees_commit`](clear_machine::SpeculationBackend::guarantees_commit)
//!    vouches for must commit, never abort;
//! 3. **the static analyzer** — a `static-immutable` verdict on a program
//!    whose failed-mode discovery later observes a mutable footprint is a
//!    soundness violation, full stop.
//!
//! [`check_case_matrix`] widens check 1 and 2 across every built-in
//! [`BackendId`]: the same case runs under all five speculation backends
//! and each final memory image is cross-checked against the serial VM
//! replay. The single-retry scan rides the backend's own
//! `guarantees_commit` answer (only CLEAR promises the bound), and the
//! limited-R/W-set backend's capacity-abort counters must reconcile with
//! the abort taxonomy.
//!
//! Check 4 — **the static fast path** — re-runs the contended
//! configuration with [`clear_analysis::static_plan`]'s plan installed in
//! the machine: the fast-path run must land on the byte-identical final
//! memory, the same commit count, the single-retry bound, and zero
//! plan-guard violations. A plan whose proved-immutable AR dynamically
//! mutates trips the NS-CL guard and is an instant
//! [`Divergence::PlanViolation`]. The matrix oracle runs the same check
//! under every backend (plans are inert off-CLEAR, which the leg then
//! doubles as a control for).
//!
//! Every check reports a structured [`Divergence`] instead of panicking,
//! so the harness can shrink the case and file a reproducer.

use crate::exec::{run_invocation, RefOutcome};
use crate::gen::FuzzCase;
use crate::workload::{initial_image, FuzzWorkload, Layout};
use clear_analysis::{static_plan, StaticBudget, StaticVerdict};
use clear_core::{RetryMode, StaticPlanSet};
use clear_htm::AbortKind;
use clear_machine::{BackendId, Machine, Preset, TraceEvent};
use clear_mem::{Addr, Memory, WORD_BYTES};
use std::fmt;
use std::sync::Arc;

/// Retry budget for oracle runs (the paper's default sweep midpoint).
const MAX_RETRIES: u32 = 5;

/// One way a fuzz case can fail the oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Divergence {
    /// The run under test never finished.
    TimedOut {
        /// `"solo"` or `"contended"`.
        phase: &'static str,
    },
    /// The trace ring dropped events, so the replay order is incomplete.
    TraceDropped {
        /// Events lost.
        dropped: u64,
    },
    /// Commit count differs from the invocation count.
    CommitCount {
        /// `"solo"` or `"contended"`.
        phase: &'static str,
        /// Commits observed.
        got: u64,
        /// Commits expected.
        want: u64,
    },
    /// The machine reported explicit aborts for a program with no `XAbort`.
    ExplicitAbort {
        /// Explicit aborts counted.
        count: u64,
    },
    /// The machine reported fault-class aborts ([`AbortKind::Other`]).
    FaultAbort {
        /// Such aborts counted.
        count: u64,
    },
    /// A guaranteed-commit attempt aborted: the single-retry bound broke.
    SingleRetryViolated {
        /// The offending core.
        core: usize,
        /// The mode the doomed attempt started in.
        mode: RetryMode,
    },
    /// Final memory differs between machine and reference replay.
    MemoryMismatch {
        /// `"solo"` or `"contended"`.
        phase: &'static str,
        /// First differing byte address.
        addr: Addr,
        /// The machine's word there.
        machine: u64,
        /// The reference replay's word there.
        reference: u64,
    },
    /// The reference VM faulted on a lint-clean program.
    ReferenceFault {
        /// The offending byte address.
        addr: Addr,
    },
    /// The reference VM retired `XAbort` (the generator never emits one).
    ReferenceAbort {
        /// Program-supplied code.
        code: u64,
    },
    /// The reference VM exceeded its step cap.
    ReferenceRunaway,
    /// Static `static-immutable` verdict, but discovery observed a mutable
    /// footprint at runtime.
    SoundnessViolation {
        /// Dynamic decisions that contradicted the static verdict.
        decisions: u64,
    },
    /// A static plan tripped its runtime guard: the analyzer called an AR
    /// immutable whose execution touched a line outside the precomputed
    /// lock set.
    PlanViolation {
        /// Guard trips counted.
        count: u64,
    },
    /// Limited-R/W-set buffer counters disagree with the abort taxonomy:
    /// either a backend without bounded buffers reported buffer overflows,
    /// or the buffers overflowed more often than capacity aborts were
    /// recorded.
    CapacityAccounting {
        /// The offending backend's name.
        backend: &'static str,
        /// Buffer-overflow capacity aborts the tracker counted.
        lrws: u64,
        /// Capacity aborts in the taxonomy.
        capacity: u64,
    },
}

impl Divergence {
    /// A stable kind tag for JSON reports and histograms.
    pub fn kind(&self) -> &'static str {
        match self {
            Divergence::TimedOut { .. } => "timed-out",
            Divergence::TraceDropped { .. } => "trace-dropped",
            Divergence::CommitCount { .. } => "commit-count",
            Divergence::ExplicitAbort { .. } => "explicit-abort",
            Divergence::FaultAbort { .. } => "fault-abort",
            Divergence::SingleRetryViolated { .. } => "single-retry-violated",
            Divergence::MemoryMismatch { .. } => "memory-mismatch",
            Divergence::ReferenceFault { .. } => "reference-fault",
            Divergence::ReferenceAbort { .. } => "reference-abort",
            Divergence::ReferenceRunaway => "reference-runaway",
            Divergence::SoundnessViolation { .. } => "soundness-violation",
            Divergence::PlanViolation { .. } => "plan-violation",
            Divergence::CapacityAccounting { .. } => "capacity-accounting",
        }
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::TimedOut { phase } => write!(f, "{phase} run timed out"),
            Divergence::TraceDropped { dropped } => {
                write!(f, "trace ring dropped {dropped} events")
            }
            Divergence::CommitCount { phase, got, want } => {
                write!(f, "{phase} run committed {got} ARs, expected {want}")
            }
            Divergence::ExplicitAbort { count } => {
                write!(f, "{count} explicit aborts from a program with no xabort")
            }
            Divergence::FaultAbort { count } => {
                write!(f, "{count} fault-class aborts on a lint-clean program")
            }
            Divergence::SingleRetryViolated { core, mode } => {
                write!(
                    f,
                    "core {core}: {mode} attempt aborted (single-retry bound)"
                )
            }
            Divergence::MemoryMismatch {
                phase,
                addr,
                machine,
                reference,
            } => write!(
                f,
                "{phase} memory diverged at {addr}: machine {machine:#x}, reference {reference:#x}"
            ),
            Divergence::ReferenceFault { addr } => {
                write!(f, "reference VM faulted at {addr}")
            }
            Divergence::ReferenceAbort { code } => {
                write!(f, "reference VM hit xabort({code})")
            }
            Divergence::ReferenceRunaway => f.write_str("reference VM exceeded its step cap"),
            Divergence::SoundnessViolation { decisions } => write!(
                f,
                "static-immutable verdict contradicted by {decisions} mutable dynamic decisions"
            ),
            Divergence::PlanViolation { count } => write!(
                f,
                "static plan tripped its runtime guard {count} times (analyzer unsound)"
            ),
            Divergence::CapacityAccounting {
                backend,
                lrws,
                capacity,
            } => write!(
                f,
                "{backend}: {lrws} R/W-set overflows vs {capacity} capacity aborts"
            ),
        }
    }
}

/// The oracle's full account of one case.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// Case index within the run.
    pub index: u64,
    /// Per-case seed.
    pub seed: u64,
    /// Lowered program length in instructions.
    pub program_len: usize,
    /// Drafts the lint filter rejected before this case.
    pub rejected: u32,
    /// Static verdict name.
    pub verdict: &'static str,
    /// Threads in the contended phase.
    pub threads: usize,
    /// Invocations per thread.
    pub invocations: usize,
    /// Instructions the machine retired across both phases.
    pub machine_instructions: u64,
    /// Steps the reference VM retired across both phases.
    pub reference_steps: u64,
    /// Machine commits by mode in the contended phase
    /// `(speculative, nscl, scl, fallback)`.
    pub mode_commits: (u64, u64, u64, u64),
    /// Machine aborts in the contended phase.
    pub aborts: u64,
    /// ARs the analyzer emitted a static plan for (0 or 1 — every case
    /// has exactly one AR).
    pub planned_ars: usize,
    /// Discovery runs the fast-path leg elided outright.
    pub fastpath_elided: u64,
    /// Discovery runs the fast-path leg shortened to root confirmation.
    pub fastpath_partial: u64,
    /// The first divergence found, if any. `None` means the case passed.
    pub divergence: Option<Divergence>,
}

/// The analyzer's plan set for a case: [`static_plan`] on the single AR
/// program, keyed by its static id. Plans are symbolic in the entry
/// registers, so the canonical layout serves every machine shape. An
/// empty set is the analyzer declining — the fast-path leg still runs
/// (the machinery must be a no-op then).
fn case_plans(case: &FuzzCase) -> Arc<StaticPlanSet> {
    let mut plans = StaticPlanSet::default();
    if let Some(plan) = static_plan(
        &case.program,
        &case.entry_ctx(&Layout::canonical()),
        &StaticBudget::default(),
    ) {
        plans.insert(0, plan);
    }
    Arc::new(plans)
}

/// Replays `n` reference invocations serially on `mem`; returns total
/// steps or the divergence.
fn replay(case: &FuzzCase, layout: &Layout, mem: &mut Memory, n: usize) -> Result<u64, Divergence> {
    let args = case.args(layout);
    let mut steps = 0;
    for _ in 0..n {
        match run_invocation(&case.program, &args, mem) {
            RefOutcome::Committed { steps: s } => steps += s,
            RefOutcome::Fault { addr } => return Err(Divergence::ReferenceFault { addr }),
            RefOutcome::ExplicitAbort { code } => return Err(Divergence::ReferenceAbort { code }),
            RefOutcome::Runaway => return Err(Divergence::ReferenceRunaway),
        }
    }
    Ok(steps)
}

/// Compares two memory images from `start` up; missing trailing words read
/// as zero, matching [`Memory::load_word`].
fn compare_images(
    phase: &'static str,
    start: Addr,
    machine: &Memory,
    reference: &Memory,
) -> Option<Divergence> {
    let (m, r) = (machine.words(), reference.words());
    let len = m.len().max(r.len());
    for w in start.word_index()..len {
        let mv = m.get(w).copied().unwrap_or(0);
        let rv = r.get(w).copied().unwrap_or(0);
        if mv != rv {
            return Some(Divergence::MemoryMismatch {
                phase,
                addr: Addr(w as u64 * WORD_BYTES),
                machine: mv,
                reference: rv,
            });
        }
    }
    None
}

/// Scans one core's event stream for an attempt that aborted despite
/// starting in a mode `guarantees` vouches for. The predicate is the
/// machine backend's `guarantees_commit`, so the scan is armed exactly
/// where the design promises the bound (CLEAR's NS-CL) and can never
/// silently pass for a backend that promises nothing.
fn single_retry_violation(
    events: impl Iterator<Item = TraceEvent>,
    core: usize,
    guarantees: impl Fn(RetryMode) -> bool,
) -> Option<Divergence> {
    let mut pending: Option<RetryMode> = None;
    for e in events {
        match e {
            TraceEvent::AttemptStart { mode } => pending = Some(mode),
            TraceEvent::Commit { .. } => pending = None,
            TraceEvent::Abort { .. } => {
                if let Some(mode) = pending.take() {
                    if guarantees(mode) {
                        return Some(Divergence::SingleRetryViolated { core, mode });
                    }
                }
            }
            _ => {}
        }
    }
    None
}

/// Runs the full differential oracle on one case at the case's own
/// contended-phase thread count.
pub fn check_case(case: &Arc<FuzzCase>) -> CaseReport {
    check_case_at(case, case.threads)
}

/// [`check_case`] with the contended phase widened (or narrowed) to an
/// explicit core count. The workload hands every machine thread the full
/// `invocations` quota, so the expected commit count scales to
/// `cores * invocations` — this is how the oracle and the single-retry
/// bound are exercised beyond the generator's native thread range (e.g.
/// on 128-core sharded-directory configurations).
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn check_case_at(case: &Arc<FuzzCase>, cores: usize) -> CaseReport {
    assert!(cores > 0, "contended phase needs at least one core");
    let analysis = case.analysis();
    let mut report = CaseReport {
        index: case.index,
        seed: case.seed,
        program_len: case.program.len(),
        rejected: case.rejected,
        verdict: analysis.verdict.name(),
        threads: cores,
        invocations: case.invocations,
        machine_instructions: 0,
        reference_steps: 0,
        mode_commits: (0, 0, 0, 0),
        aborts: 0,
        planned_ars: 0,
        fastpath_elided: 0,
        fastpath_partial: 0,
        divergence: None,
    };

    // Phase 1: solo — one core, no contention. Any abort at all here is
    // suspicious, but the binding check is the memory image.
    {
        let mut cfg = Preset::C.config(1, MAX_RETRIES);
        cfg.seed = case.seed;
        let mut machine = Machine::new(cfg, Box::new(FuzzWorkload::new(Arc::clone(case))));
        let stats = machine.run();
        report.machine_instructions += stats.instructions_retired;
        if stats.timed_out {
            report.divergence = Some(Divergence::TimedOut { phase: "solo" });
            return report;
        }
        let want = case.invocations as u64;
        if stats.commits_by_mode.total() != want {
            report.divergence = Some(Divergence::CommitCount {
                phase: "solo",
                got: stats.commits_by_mode.total(),
                want,
            });
            return report;
        }
        let (mut ref_mem, layout) = initial_image(case, 1);
        match replay(case, &layout, &mut ref_mem, case.invocations) {
            Ok(steps) => report.reference_steps += steps,
            Err(d) => {
                report.divergence = Some(d);
                return report;
            }
        }
        if let Some(d) = compare_images("solo", layout.start, machine.memory(), &ref_mem) {
            report.divergence = Some(d);
            return report;
        }
    }

    // Phase 2: contended — every thread hammers the same lines, tracing on.
    let mut cfg = Preset::C.config(cores, MAX_RETRIES);
    cfg.seed = case.seed;
    let mut machine = Machine::new(cfg, Box::new(FuzzWorkload::new(Arc::clone(case))));
    machine.enable_tracing();
    let stats = machine.run();
    report.machine_instructions += stats.instructions_retired;
    report.mode_commits = (
        stats.commits_by_mode.speculative,
        stats.commits_by_mode.nscl,
        stats.commits_by_mode.scl,
        stats.commits_by_mode.fallback,
    );
    report.aborts = stats.aborts.total();
    if stats.timed_out {
        report.divergence = Some(Divergence::TimedOut { phase: "contended" });
        return report;
    }
    if machine.trace().dropped() > 0 {
        report.divergence = Some(Divergence::TraceDropped {
            dropped: machine.trace().dropped(),
        });
        return report;
    }
    let explicit = stats.aborts.get(AbortKind::Explicit);
    if explicit > 0 {
        report.divergence = Some(Divergence::ExplicitAbort { count: explicit });
        return report;
    }
    let faults = stats.aborts.get(AbortKind::Other);
    if faults > 0 {
        report.divergence = Some(Divergence::FaultAbort { count: faults });
        return report;
    }
    let want = (cores * case.invocations) as u64;
    let committed = machine.trace().commits().count() as u64;
    if stats.commits_by_mode.total() != want || committed != want {
        report.divergence = Some(Divergence::CommitCount {
            phase: "contended",
            got: stats.commits_by_mode.total().min(committed),
            want,
        });
        return report;
    }
    for core in 0..cores {
        if let Some(d) =
            single_retry_violation(machine.trace().core_events(core).cloned(), core, |m| {
                machine.backend().guarantees_commit(m)
            })
        {
            report.divergence = Some(d);
            return report;
        }
    }
    // Serialization replay: commit-event order is the serialization order
    // (see `Trace::commits`); every invocation runs the same program with
    // the same args, so replaying `want` of them serially must land on
    // exactly the machine's final image if the ARs were atomic.
    let (mut ref_mem, layout) = initial_image(case, cores);
    match replay(case, &layout, &mut ref_mem, want as usize) {
        Ok(steps) => report.reference_steps += steps,
        Err(d) => {
            report.divergence = Some(d);
            return report;
        }
    }
    if let Some(d) = compare_images("contended", layout.start, machine.memory(), &ref_mem) {
        report.divergence = Some(d);
        return report;
    }

    // Phase 3: static-verdict soundness against the traced decisions.
    if analysis.verdict == StaticVerdict::StaticImmutable {
        let contradicted = machine
            .trace()
            .records()
            .filter(|r| {
                matches!(
                    r.event,
                    TraceEvent::Decision {
                        immutable: false,
                        ..
                    }
                )
            })
            .count() as u64;
        if contradicted > 0 {
            report.divergence = Some(Divergence::SoundnessViolation {
                decisions: contradicted,
            });
            return report;
        }
    }

    // Phase 4: the static fast path. The same contended configuration
    // with the analyzer's plan installed must be indistinguishable from
    // discovery: identical final memory, the same commit count, the
    // single-retry bound, and no plan-guard trips. A fast-path AR that
    // dynamically mutates is an instant divergence.
    let plans = case_plans(case);
    report.planned_ars = plans.len();
    let mut cfg = Preset::C.config(cores, MAX_RETRIES);
    cfg.seed = case.seed;
    cfg.static_plans = Some(plans);
    let mut machine = Machine::new(cfg, Box::new(FuzzWorkload::new(Arc::clone(case))));
    machine.enable_tracing();
    let stats = machine.run();
    report.machine_instructions += stats.instructions_retired;
    report.fastpath_elided = stats.discovery_runs_elided;
    report.fastpath_partial = stats.partial_discovery_runs;
    if stats.timed_out {
        report.divergence = Some(Divergence::TimedOut { phase: "fastpath" });
        return report;
    }
    if stats.static_plan_violations > 0 {
        report.divergence = Some(Divergence::PlanViolation {
            count: stats.static_plan_violations,
        });
        return report;
    }
    if machine.trace().dropped() > 0 {
        report.divergence = Some(Divergence::TraceDropped {
            dropped: machine.trace().dropped(),
        });
        return report;
    }
    if stats.commits_by_mode.total() != want {
        report.divergence = Some(Divergence::CommitCount {
            phase: "fastpath",
            got: stats.commits_by_mode.total(),
            want,
        });
        return report;
    }
    for core in 0..cores {
        if let Some(d) =
            single_retry_violation(machine.trace().core_events(core).cloned(), core, |m| {
                machine.backend().guarantees_commit(m)
            })
        {
            report.divergence = Some(d);
            return report;
        }
    }
    // Every invocation runs the same program with the same args, so the
    // fast-path serialization replays to the same image the baseline
    // replay already produced.
    if let Some(d) = compare_images("fastpath", layout.start, machine.memory(), &ref_mem) {
        report.divergence = Some(d);
        return report;
    }

    report
}

/// One backend's verdict on a matrix case.
#[derive(Clone, Debug)]
pub struct BackendOutcome {
    /// The backend's stable name.
    pub backend: &'static str,
    /// Commits in the contended run.
    pub commits: u64,
    /// Aborts of any kind in the contended run.
    pub aborts: u64,
    /// Capacity aborts in the taxonomy.
    pub capacity_aborts: u64,
    /// Capacity aborts charged to the limited R/W-set buffers.
    pub lrws_capacity_aborts: u64,
    /// Discovery runs the fast-path leg elided (nonzero only under
    /// CLEAR — plans are inert everywhere else).
    pub fastpath_elided: u64,
    /// The first divergence under this backend; `None` means it passed.
    pub divergence: Option<Divergence>,
}

/// Phase label for the fast-path leg of one backend's matrix run.
fn fastpath_phase(id: BackendId) -> &'static str {
    match id {
        BackendId::Tsx => "tsx+plan",
        BackendId::PowerTm => "powertm+plan",
        BackendId::Sle => "sle+plan",
        BackendId::Clear => "clear+plan",
        BackendId::Lrws => "lrws+plan",
    }
}

/// The backend-matrix oracle's account of one case: one
/// [`BackendOutcome`] per built-in backend, in [`BackendId::ALL`] order.
#[derive(Clone, Debug)]
pub struct MatrixReport {
    /// Case index within the run.
    pub index: u64,
    /// Per-case seed.
    pub seed: u64,
    /// Threads in every contended run.
    pub threads: usize,
    /// Invocations per thread.
    pub invocations: usize,
    /// Per-backend verdicts.
    pub outcomes: Vec<BackendOutcome>,
}

impl MatrixReport {
    /// The first diverging backend, if any.
    pub fn divergence(&self) -> Option<(&'static str, &Divergence)> {
        self.outcomes
            .iter()
            .find_map(|o| o.divergence.as_ref().map(|d| (o.backend, d)))
    }

    /// `true` when every backend passed every check.
    pub fn passed(&self) -> bool {
        self.divergence().is_none()
    }
}

/// Runs one fuzz case under every built-in speculation backend
/// ([`BackendId::ALL`]) at the case's own thread count, cross-checking
/// each backend's final memory image against the serial VM replay.
///
/// Per backend: the run must finish, trace nothing away, commit exactly
/// `threads * invocations` ARs (both by the statistics and by the trace),
/// raise no explicit or fault-class aborts, uphold the single-retry bound
/// wherever its own `guarantees_commit` promises one, and reconcile the
/// limited-R/W-set buffer counters with the Capacity bucket of the abort
/// taxonomy (non-bounded backends must report zero buffer overflows).
pub fn check_case_matrix(case: &Arc<FuzzCase>) -> MatrixReport {
    let mut report = MatrixReport {
        index: case.index,
        seed: case.seed,
        threads: case.threads,
        invocations: case.invocations,
        outcomes: Vec::with_capacity(BackendId::ALL.len()),
    };
    for id in BackendId::ALL {
        report.outcomes.push(check_backend(case, id));
    }
    report
}

/// One backend's leg of the matrix: contended run + full check battery.
fn check_backend(case: &Arc<FuzzCase>, id: BackendId) -> BackendOutcome {
    let name = id.name();
    let mut cfg = id.config(case.threads, MAX_RETRIES);
    cfg.seed = case.seed;
    let mut machine = Machine::new(cfg, Box::new(FuzzWorkload::new(Arc::clone(case))));
    debug_assert_eq!(machine.backend().name(), name);
    machine.enable_tracing();
    let stats = machine.run();
    let mut outcome = BackendOutcome {
        backend: name,
        commits: stats.commits_by_mode.total(),
        aborts: stats.aborts.total(),
        capacity_aborts: stats.aborts.get(AbortKind::Capacity),
        lrws_capacity_aborts: stats.lrws_capacity_aborts(),
        fastpath_elided: 0,
        divergence: None,
    };
    if stats.timed_out {
        outcome.divergence = Some(Divergence::TimedOut { phase: name });
        return outcome;
    }
    if machine.trace().dropped() > 0 {
        outcome.divergence = Some(Divergence::TraceDropped {
            dropped: machine.trace().dropped(),
        });
        return outcome;
    }
    let explicit = stats.aborts.get(AbortKind::Explicit);
    if explicit > 0 {
        outcome.divergence = Some(Divergence::ExplicitAbort { count: explicit });
        return outcome;
    }
    let faults = stats.aborts.get(AbortKind::Other);
    if faults > 0 {
        outcome.divergence = Some(Divergence::FaultAbort { count: faults });
        return outcome;
    }
    let want = (case.threads * case.invocations) as u64;
    let committed = machine.trace().commits().count() as u64;
    if stats.commits_by_mode.total() != want || committed != want {
        outcome.divergence = Some(Divergence::CommitCount {
            phase: name,
            got: stats.commits_by_mode.total().min(committed),
            want,
        });
        return outcome;
    }
    // Capacity accounting: buffer overflows are a subset of the Capacity
    // bucket, and only the bounded backend may report any.
    let lrws = stats.lrws_capacity_aborts();
    let capacity = stats.aborts.get(AbortKind::Capacity);
    let bounded = machine.backend().rw_limits().is_some();
    if (bounded && lrws > capacity) || (!bounded && lrws > 0) {
        outcome.divergence = Some(Divergence::CapacityAccounting {
            backend: name,
            lrws,
            capacity,
        });
        return outcome;
    }
    for core in 0..case.threads {
        if let Some(d) =
            single_retry_violation(machine.trace().core_events(core).cloned(), core, |m| {
                machine.backend().guarantees_commit(m)
            })
        {
            outcome.divergence = Some(d);
            return outcome;
        }
    }
    let (mut ref_mem, layout) = initial_image(case, case.threads);
    if let Err(d) = replay(case, &layout, &mut ref_mem, want as usize) {
        outcome.divergence = Some(d);
        return outcome;
    }
    if let Some(d) = compare_images(name, layout.start, machine.memory(), &ref_mem) {
        outcome.divergence = Some(d);
        return outcome;
    }

    // The fast-path leg: same backend, plan installed. Under CLEAR it
    // must elide discovery without changing anything observable; under
    // every other backend it must be a strict no-op.
    let phase = fastpath_phase(id);
    let mut cfg = id.config(case.threads, MAX_RETRIES);
    cfg.seed = case.seed;
    cfg.static_plans = Some(case_plans(case));
    let mut machine = Machine::new(cfg, Box::new(FuzzWorkload::new(Arc::clone(case))));
    machine.enable_tracing();
    let stats = machine.run();
    outcome.fastpath_elided = stats.discovery_runs_elided;
    if stats.timed_out {
        outcome.divergence = Some(Divergence::TimedOut { phase });
        return outcome;
    }
    if stats.static_plan_violations > 0 {
        outcome.divergence = Some(Divergence::PlanViolation {
            count: stats.static_plan_violations,
        });
        return outcome;
    }
    if stats.commits_by_mode.total() != want {
        outcome.divergence = Some(Divergence::CommitCount {
            phase,
            got: stats.commits_by_mode.total(),
            want,
        });
        return outcome;
    }
    for core in 0..case.threads {
        if let Some(d) =
            single_retry_violation(machine.trace().core_events(core).cloned(), core, |m| {
                machine.backend().guarantees_commit(m)
            })
        {
            outcome.divergence = Some(d);
            return outcome;
        }
    }
    outcome.divergence = compare_images(phase, layout.start, machine.memory(), &ref_mem);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_batch_of_generated_cases_passes_the_oracle() {
        let mut planned = 0usize;
        for i in 0..12 {
            let case = Arc::new(FuzzCase::generate(0xFACE, i));
            let r = check_case(&case);
            assert!(
                r.divergence.is_none(),
                "case {i} diverged: {}",
                r.divergence.unwrap()
            );
            assert!(r.machine_instructions > 0);
            assert!(r.reference_steps > 0);
            planned += r.planned_ars;
        }
        // Phase 4 only bites when the analyzer actually emits plans; the
        // generator must keep producing plannable programs.
        assert!(planned > 0, "no generated case produced a static plan");
    }

    #[test]
    fn wide_contention_upholds_oracle_and_single_retry_bound() {
        // 128 cores exceeds the inline width of every per-core bitset and
        // spans many directory shards: the oracle, the commit accounting
        // and the single-retry bound must all survive the wide machine.
        for i in 0..2 {
            let case = Arc::new(FuzzCase::generate(0xFACE, i));
            let r = check_case_at(&case, 128);
            assert!(
                r.divergence.is_none(),
                "wide case {i} diverged: {}",
                r.divergence.unwrap()
            );
            assert_eq!(r.threads, 128);
            assert_eq!(
                r.mode_commits.0 + r.mode_commits.1 + r.mode_commits.2 + r.mode_commits.3,
                128 * case.invocations as u64
            );
        }
    }

    #[test]
    fn reports_are_deterministic() {
        let case = Arc::new(FuzzCase::generate(0xFACE, 3));
        let (a, b) = (check_case(&case), check_case(&case));
        assert_eq!(a.machine_instructions, b.machine_instructions);
        assert_eq!(a.reference_steps, b.reference_steps);
        assert_eq!(a.mode_commits, b.mode_commits);
        assert_eq!(a.aborts, b.aborts);
    }

    #[test]
    fn single_retry_scan_flags_nscl_abort() {
        use clear_htm::AbortKind;
        let events = vec![
            TraceEvent::AttemptStart {
                mode: RetryMode::NsCl,
            },
            TraceEvent::Abort {
                kind: AbortKind::MemoryConflict,
                span: 10,
            },
        ];
        let d = single_retry_violation(events.into_iter(), 2, |m| m == RetryMode::NsCl)
            .expect("violation");
        assert_eq!(
            d,
            Divergence::SingleRetryViolated {
                core: 2,
                mode: RetryMode::NsCl
            }
        );
        assert_eq!(d.kind(), "single-retry-violated");
    }

    #[test]
    fn single_retry_scan_accepts_speculative_aborts() {
        use clear_htm::AbortKind;
        let events = vec![
            TraceEvent::AttemptStart {
                mode: RetryMode::SpeculativeRetry,
            },
            TraceEvent::Abort {
                kind: AbortKind::MemoryConflict,
                span: 10,
            },
            TraceEvent::AttemptStart {
                mode: RetryMode::NsCl,
            },
            TraceEvent::Commit {
                mode: RetryMode::NsCl,
                retries: 1,
            },
        ];
        assert!(single_retry_violation(events.into_iter(), 0, |m| m == RetryMode::NsCl).is_none());
    }

    #[test]
    fn single_retry_scan_is_disarmed_for_non_bounding_backends() {
        use clear_htm::AbortKind;
        // The same NS-CL abort that flags CLEAR passes when the backend
        // guarantees nothing (the scan asks the backend, not the mode).
        let events = vec![
            TraceEvent::AttemptStart {
                mode: RetryMode::NsCl,
            },
            TraceEvent::Abort {
                kind: AbortKind::MemoryConflict,
                span: 10,
            },
        ];
        assert!(single_retry_violation(events.into_iter(), 0, |_| false).is_none());
    }

    #[test]
    fn a_batch_of_generated_cases_passes_the_backend_matrix() {
        for i in 0..4 {
            let case = Arc::new(FuzzCase::generate(0xFACE, i));
            let r = check_case_matrix(&case);
            assert_eq!(r.outcomes.len(), BackendId::ALL.len());
            for (o, id) in r.outcomes.iter().zip(BackendId::ALL) {
                assert_eq!(o.backend, id.name());
                assert_eq!(
                    o.commits,
                    (case.threads * case.invocations) as u64,
                    "{} commit count",
                    o.backend
                );
                if id != BackendId::Lrws {
                    assert_eq!(o.lrws_capacity_aborts, 0, "{}", o.backend);
                }
            }
            assert!(
                r.passed(),
                "case {i} diverged under {:?}",
                r.divergence().map(|(b, d)| format!("{b}: {d}"))
            );
        }
    }

    #[test]
    fn matrix_reports_are_deterministic() {
        let case = Arc::new(FuzzCase::generate(0xFACE, 5));
        let (a, b) = (check_case_matrix(&case), check_case_matrix(&case));
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.backend, y.backend);
            assert_eq!(x.commits, y.commits);
            assert_eq!(x.aborts, y.aborts);
            assert_eq!(x.capacity_aborts, y.capacity_aborts);
            assert_eq!(x.lrws_capacity_aborts, y.lrws_capacity_aborts);
        }
    }

    #[test]
    fn image_compare_reports_first_mismatch() {
        let mut a = Memory::new();
        let base = a.alloc_words(8);
        let mut b = a.clone();
        a.store_word(base.add_words(2), 7);
        b.store_word(base.add_words(2), 9);
        let d = compare_images("solo", base, &a, &b).expect("mismatch");
        match d {
            Divergence::MemoryMismatch {
                addr,
                machine,
                reference,
                ..
            } => {
                assert_eq!(addr, base.add_words(2));
                assert_eq!((machine, reference), (7, 9));
            }
            other => panic!("{other:?}"),
        }
    }
}
