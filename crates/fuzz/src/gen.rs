//! The seeded program generator: random-but-lint-clean atomic regions.
//!
//! A generated program is described by a small shape IR ([`Shape`]) that
//! lowers to mini-ISA instructions. Shapes — not instructions — are the
//! unit of mutation for shrinking, and they encode the safety invariants
//! that keep every generated program executable under *any* machine mode:
//!
//! - **Stores only target the data regions.** The two pointer tables are
//!   written once at setup and never stored to, so a pointer loaded inside
//!   an AR is always a valid word-aligned address even when failed-mode
//!   discovery observes torn data (§5.1's non-aborting reads).
//! - **Loops have constant trip counts** seeded by `Li`, never by loaded
//!   data, so execution is bounded on every path including failed mode.
//! - **Every path ends in `XEnd`.** `XAbort` is never emitted: an explicit
//!   abort in fallback mode would retry forever, and the oracle pins the
//!   explicit-abort count to zero.
//! - **Sources are always defined.** The generator tracks definedness
//!   path-sensitively (definitions inside a conditionally-executed body do
//!   not escape it), mirroring the dataflow lint exactly.
//!
//! Drafts are still run through the full [`clear_analysis`] lint pass as a
//! validity filter — a draft with any finding is discarded and counted in
//! [`FuzzCase::rejected`], so the filter doubles as a regression check on
//! the invariants above.

use crate::workload::Layout;
use clear_analysis::{analyze_program, ArAnalysis, Cfg, Dataflow, EntryCtx, StaticBudget};
use clear_isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use clear_mem::rng::SplitMix64;
use clear_mem::WORD_BYTES;
use std::sync::Arc;

/// Cachelines per data region (two regions: A and B).
pub const DATA_LINES: u64 = 4;
/// First-level pointer-table slots, one per cacheline.
pub const PTR_SLOTS: u64 = 8;
/// Second-level pointer-table slots, one per cacheline.
pub const PTR2_SLOTS: u64 = 4;
/// Words per cacheline.
const LINE_WORDS: u64 = clear_mem::LINE_BYTES / WORD_BYTES;

/// Entry registers: the four region base addresses.
pub const REG_DATA_A: Reg = Reg(0);
/// Entry register holding the second data region base.
pub const REG_DATA_B: Reg = Reg(1);
/// Entry register holding the first-level pointer table base.
pub const REG_PTR: Reg = Reg(2);
/// Entry register holding the second-level pointer table base.
pub const REG_PTR2: Reg = Reg(3);

/// Scratch registers the generator allocates destinations from.
const SCRATCH: [Reg; 8] = [
    Reg(8),
    Reg(9),
    Reg(10),
    Reg(11),
    Reg(12),
    Reg(13),
    Reg(14),
    Reg(15),
];
/// Temporary used by pointer-chase lowering (never a shape destination).
const CHASE_TMP: Reg = Reg(16);
/// Loop counter / limit registers used by loop lowering.
const LOOP_CTR: Reg = Reg(20);
const LOOP_LIM: Reg = Reg(21);

/// Worst-case dynamic stores per invocation (kept well under the 72-entry
/// store queue so capacity aborts never fire for generated programs).
const MAX_DYN_STORES: u32 = 40;
/// Worst-case dynamic instructions per invocation (kept far under the
/// failed-mode instruction cap).
const MAX_DYN_INSTRS: u32 = 2_000;

/// Which data region a direct access targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataRegion {
    /// The region based at [`REG_DATA_A`].
    A,
    /// The region based at [`REG_DATA_B`].
    B,
}

impl DataRegion {
    fn base(self) -> Reg {
        match self {
            DataRegion::A => REG_DATA_A,
            DataRegion::B => REG_DATA_B,
        }
    }
}

/// How a pointer chase ends: loading from or storing to the pointed-at
/// data word.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseAccess {
    /// `dst <- mem[p + word*8]`.
    Load {
        /// Destination scratch register.
        dst: Reg,
    },
    /// `mem[p + word*8] <- src`.
    Store {
        /// Source register.
        src: Reg,
    },
}

/// One generator shape: the IR a fuzz program is described (and shrunk) in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Shape {
    /// `dst <- imm`.
    Li {
        /// Destination scratch register.
        dst: Reg,
        /// Immediate.
        imm: u64,
    },
    /// `dst <- op(a, b)` over defined registers.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination scratch register.
        dst: Reg,
        /// First source.
        a: Reg,
        /// Second source.
        b: Reg,
    },
    /// `dst <- op(src, imm)`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination scratch register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Immediate.
        imm: u64,
    },
    /// Direct load from a data region word.
    LoadData {
        /// Destination scratch register.
        dst: Reg,
        /// Target region.
        region: DataRegion,
        /// Word index inside the region.
        word: u32,
    },
    /// Direct store to a data region word.
    StoreData {
        /// Target region.
        region: DataRegion,
        /// Word index inside the region.
        word: u32,
        /// Source register.
        src: Reg,
    },
    /// Pointer chase through the pointer tables (Listing 3 shape): depth 1
    /// loads a data pointer from the first-level table, depth 2 goes
    /// through the second-level table first. The chase ends with a data
    /// access at a word offset inside the pointed-at line.
    Chase {
        /// Table slot index (`< PTR_SLOTS` for depth 1, `< PTR2_SLOTS` for
        /// depth 2).
        slot: u32,
        /// Chain depth: 1 or 2.
        depth: u8,
        /// Word offset inside the target data line (`< 8`).
        word: u32,
        /// Final access.
        access: ChaseAccess,
    },
    /// A constant-trip-count counter loop over a body (never nested).
    Loop {
        /// Trip count (≥ 1).
        trips: u8,
        /// Body shapes.
        body: Vec<Shape>,
    },
    /// Skip the body when `cond(a, b)` holds (a forward branch, possibly
    /// on loaded data — a control dependence in the paper's sense).
    Skip {
        /// Branch condition.
        cond: Cond,
        /// Left comparand.
        a: Reg,
        /// Right comparand.
        b: Reg,
        /// Conditionally executed body.
        body: Vec<Shape>,
    },
    /// Non-memory work of `cycles` cycles.
    Compute {
        /// Retire latency.
        cycles: u32,
    },
}

/// One generated, lint-clean fuzz case: a program plus the contention
/// schedule it is checked under. Fully regenerable from
/// `(master_seed, index)` — corpus entries store only those two values.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The fuzz run's master seed.
    pub master_seed: u64,
    /// Case index within the run.
    pub index: u64,
    /// Per-case seed derived from `(master_seed, index)`.
    pub seed: u64,
    /// The shape IR the program lowers from.
    pub shapes: Vec<Shape>,
    /// First-level pointer table contents: per slot, the data line it
    /// points at.
    pub ptr_targets: Vec<(DataRegion, u8)>,
    /// Second-level pointer table contents: per slot, the first-level slot
    /// it points at.
    pub ptr2_targets: Vec<u8>,
    /// Threads in the contended oracle run.
    pub threads: usize,
    /// AR invocations per thread.
    pub invocations: usize,
    /// Drafts discarded by the lint validity filter before this case.
    pub rejected: u32,
    /// The lowered program.
    pub program: Arc<Program>,
}

/// Derives the per-case seed from the run's master seed and case index.
pub fn case_seed(master_seed: u64, index: u64) -> u64 {
    let mut r = SplitMix64::new(master_seed ^ index.wrapping_mul(0xa24b_aed4_963e_e407));
    r.next_u64()
}

impl FuzzCase {
    /// Generates case `index` of the run seeded with `master_seed`.
    ///
    /// Deterministic: the same `(master_seed, index)` always yields the
    /// same case, independent of worker count or generation order. Drafts
    /// rejected by the lint filter are counted, not silently retried away.
    ///
    /// # Panics
    ///
    /// Panics if 64 consecutive drafts fail the lint filter, which would
    /// mean the generator's safety invariants are broken.
    pub fn generate(master_seed: u64, index: u64) -> FuzzCase {
        let seed = case_seed(master_seed, index);
        let mut rng = SplitMix64::new(seed);

        let ptr_targets: Vec<(DataRegion, u8)> = (0..PTR_SLOTS)
            .map(|_| {
                let region = if rng.flip() {
                    DataRegion::A
                } else {
                    DataRegion::B
                };
                (region, rng.below(DATA_LINES) as u8)
            })
            .collect();
        let ptr2_targets: Vec<u8> = (0..PTR2_SLOTS)
            .map(|_| rng.below(PTR_SLOTS) as u8)
            .collect();
        let threads = 2 + rng.below(3) as usize; // 2..=4
        let invocations = 1 + rng.below(3) as usize; // 1..=3

        let mut rejected = 0u32;
        loop {
            let shapes = draft(&mut rng);
            let program = Arc::new(lower(&shapes));
            let case = FuzzCase {
                master_seed,
                index,
                seed,
                shapes,
                ptr_targets: ptr_targets.clone(),
                ptr2_targets: ptr2_targets.clone(),
                threads,
                invocations,
                rejected,
                program,
            };
            if case.lints().is_empty() {
                return case;
            }
            rejected += 1;
            assert!(
                rejected < 64,
                "fuzz generator invariants broken: 64 drafts in a row failed the lint \
                 filter (seed {master_seed:#x}, index {index})"
            );
        }
    }

    /// Rebuilds this case with different shapes and schedule, re-lowering
    /// and re-linting. Returns `None` when the result is not lint-clean —
    /// shrinking uses this to stay inside the generator's validity
    /// envelope.
    pub fn with_shapes(
        &self,
        shapes: Vec<Shape>,
        threads: usize,
        invocations: usize,
    ) -> Option<FuzzCase> {
        if shapes.is_empty() || threads < 1 || invocations < 1 {
            return None;
        }
        let candidate = FuzzCase {
            master_seed: self.master_seed,
            index: self.index,
            seed: self.seed,
            shapes: shapes.clone(),
            ptr_targets: self.ptr_targets.clone(),
            ptr2_targets: self.ptr2_targets.clone(),
            threads,
            invocations,
            rejected: self.rejected,
            program: Arc::new(lower(&shapes)),
        };
        candidate.lints().is_empty().then_some(candidate)
    }

    /// Entry arguments for an invocation, given the run-time layout.
    pub fn args(&self, layout: &Layout) -> Vec<(Reg, u64)> {
        vec![
            (REG_DATA_A, layout.data_a.0),
            (REG_DATA_B, layout.data_b.0),
            (REG_PTR, layout.ptr.0),
            (REG_PTR2, layout.ptr2.0),
        ]
    }

    /// The concrete static-analysis entry context for this case.
    pub fn entry_ctx(&self, layout: &Layout) -> EntryCtx {
        let mut entry = EntryCtx::from_args(&self.args(layout));
        entry.mapped_bytes = Some(layout.end.0);
        entry
    }

    /// Lints against the canonical layout (the validity filter).
    pub fn lints(&self) -> Vec<clear_analysis::Lint> {
        let entry = self.entry_ctx(&Layout::canonical());
        let cfg = Cfg::build(&self.program);
        let flow = Dataflow::run(&self.program, &entry.regs(), &cfg);
        clear_analysis::lint_program(&self.program, &cfg, &flow, &entry)
    }

    /// Full static analysis against the canonical layout (the oracle's
    /// soundness input).
    pub fn analysis(&self) -> ArAnalysis {
        analyze_program(
            &self.program,
            &self.entry_ctx(&Layout::canonical()),
            &StaticBudget::default(),
        )
    }

    /// Deterministic think-time before invocation `k` on thread `tid`.
    pub fn think_cycles(&self, tid: usize, k: usize) -> u64 {
        let mut r = SplitMix64::new(
            self.seed ^ (tid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (k as u64),
        );
        5 + r.below(40)
    }

    /// A short stable name for reports and reproducer files.
    pub fn name(&self) -> String {
        format!("case-{:#x}-{}", self.master_seed, self.index)
    }
}

/// Remaining dynamic budgets while drafting (stores and instructions are
/// multiplied by the surrounding loop's trip count).
struct Budget {
    stores: u32,
    instrs: u32,
}

/// Drafts a top-level shape list.
fn draft(rng: &mut SplitMix64) -> Vec<Shape> {
    let mut defined: Vec<Reg> = Vec::new();
    let mut shapes = Vec::new();
    // Two seeded scratch values so ALU/branch sources always exist.
    for _ in 0..2 {
        let dst = SCRATCH[rng.index(SCRATCH.len())];
        shapes.push(Shape::Li {
            dst,
            imm: rng.below(256),
        });
        define(&mut defined, dst);
    }
    let mut budget = Budget {
        stores: MAX_DYN_STORES,
        instrs: MAX_DYN_INSTRS,
    };
    let n = 3 + rng.below(14) as usize;
    for _ in 0..n {
        if let Some(s) = draft_shape(rng, &mut defined, &mut budget, 1, true) {
            shapes.push(s);
        }
    }
    shapes
}

fn define(defined: &mut Vec<Reg>, r: Reg) {
    if !defined.contains(&r) {
        defined.push(r);
    }
}

fn pick_defined(rng: &mut SplitMix64, defined: &[Reg]) -> Reg {
    defined[rng.index(defined.len())]
}

const ALU_OPS: [AluOp; 9] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Rem,
];

/// Drafts one shape. `weight_mult` is the trip count of the enclosing
/// loop (1 at top level); `allow_nesting` permits `Loop`/`Skip` shapes.
/// Returns `None` when the drawn shape does not fit the remaining budget.
fn draft_shape(
    rng: &mut SplitMix64,
    defined: &mut Vec<Reg>,
    budget: &mut Budget,
    weight_mult: u32,
    allow_nesting: bool,
) -> Option<Shape> {
    // Weighted pick over shape kinds.
    let roll = rng.below(100);
    let kind = match roll {
        0..=11 => 0,  // Li
        12..=23 => 1, // Alu
        24..=33 => 2, // AluImm
        34..=47 => 3, // LoadData
        48..=61 => 4, // StoreData
        62..=77 => 5, // Chase
        78..=82 => 6, // Compute
        83..=91 => 7, // Skip
        _ => 8,       // Loop
    };
    if budget.instrs < 8 * weight_mult {
        return None;
    }
    match kind {
        0 => {
            let dst = SCRATCH[rng.index(SCRATCH.len())];
            budget.instrs -= weight_mult;
            define(defined, dst);
            Some(Shape::Li {
                dst,
                imm: rng.next_u64() >> rng.below(48),
            })
        }
        1 => {
            let dst = SCRATCH[rng.index(SCRATCH.len())];
            let a = pick_defined(rng, defined);
            let b = pick_defined(rng, defined);
            budget.instrs -= weight_mult;
            define(defined, dst);
            Some(Shape::Alu {
                op: ALU_OPS[rng.index(ALU_OPS.len())],
                dst,
                a,
                b,
            })
        }
        2 => {
            let dst = SCRATCH[rng.index(SCRATCH.len())];
            let src = pick_defined(rng, defined);
            budget.instrs -= weight_mult;
            define(defined, dst);
            Some(Shape::AluImm {
                op: ALU_OPS[rng.index(ALU_OPS.len())],
                dst,
                src,
                imm: 1 + rng.below(63),
            })
        }
        3 => {
            let dst = SCRATCH[rng.index(SCRATCH.len())];
            let shape = Shape::LoadData {
                dst,
                region: if rng.flip() {
                    DataRegion::A
                } else {
                    DataRegion::B
                },
                word: rng.below(DATA_LINES * LINE_WORDS) as u32,
            };
            budget.instrs -= weight_mult;
            define(defined, dst);
            Some(shape)
        }
        4 => {
            if budget.stores < weight_mult {
                return None;
            }
            budget.stores -= weight_mult;
            budget.instrs -= weight_mult;
            Some(Shape::StoreData {
                region: if rng.flip() {
                    DataRegion::A
                } else {
                    DataRegion::B
                },
                word: rng.below(DATA_LINES * LINE_WORDS) as u32,
                src: pick_defined(rng, defined),
            })
        }
        5 => {
            let depth = if rng.flip() { 1 } else { 2 };
            let slot = if depth == 1 {
                rng.below(PTR_SLOTS) as u32
            } else {
                rng.below(PTR2_SLOTS) as u32
            };
            let word = rng.below(LINE_WORDS) as u32;
            let is_store = rng.flip();
            let cost = 2 + depth as u32; // chase loads + final access
            if budget.instrs < cost * weight_mult {
                return None;
            }
            if is_store && budget.stores < weight_mult {
                return None;
            }
            budget.instrs -= cost * weight_mult;
            let access = if is_store {
                budget.stores -= weight_mult;
                ChaseAccess::Store {
                    src: pick_defined(rng, defined),
                }
            } else {
                let dst = SCRATCH[rng.index(SCRATCH.len())];
                define(defined, dst);
                ChaseAccess::Load { dst }
            };
            Some(Shape::Chase {
                slot,
                depth,
                word,
                access,
            })
        }
        6 => {
            budget.instrs -= weight_mult;
            Some(Shape::Compute {
                cycles: 1 + rng.below(12) as u32,
            })
        }
        7 if allow_nesting => {
            let a = pick_defined(rng, defined);
            let b = pick_defined(rng, defined);
            let cond = match rng.below(4) {
                0 => Cond::Eq,
                1 => Cond::Ne,
                2 => Cond::Lt,
                _ => Cond::Ge,
            };
            budget.instrs -= weight_mult; // the branch itself
            let mut inner = defined.clone();
            let n = 1 + rng.below(4) as usize;
            let mut body = Vec::new();
            for _ in 0..n {
                if let Some(s) = draft_shape(rng, &mut inner, budget, weight_mult, false) {
                    body.push(s);
                }
            }
            // Conditional definitions do not escape the body.
            (!body.is_empty()).then_some(Shape::Skip { cond, a, b, body })
        }
        8 if allow_nesting => {
            let trips = 1 + rng.below(6) as u8;
            let mult = weight_mult * trips as u32;
            if budget.instrs < 16 * mult {
                return None;
            }
            budget.instrs -= 4 * mult; // loop scaffolding
            let mut inner = defined.clone();
            let n = 1 + rng.below(4) as usize;
            let mut body = Vec::new();
            for _ in 0..n {
                if let Some(s) = draft_shape(rng, &mut inner, budget, mult, false) {
                    body.push(s);
                }
            }
            (!body.is_empty()).then_some(Shape::Loop { trips, body })
        }
        _ => {
            budget.instrs -= weight_mult;
            Some(Shape::Compute {
                cycles: 1 + rng.below(12) as u32,
            })
        }
    }
}

/// Lowers a shape list to a mini-ISA program ending in `XEnd`.
pub fn lower(shapes: &[Shape]) -> Program {
    let mut b = ProgramBuilder::new();
    for s in shapes {
        lower_shape(&mut b, s);
    }
    b.xend();
    b.build()
}

fn lower_shape(b: &mut ProgramBuilder, shape: &Shape) {
    match shape {
        Shape::Li { dst, imm } => {
            b.li(*dst, *imm);
        }
        Shape::Alu { op, dst, a, b: rb } => {
            b.alu(*op, *dst, *a, *rb);
        }
        Shape::AluImm { op, dst, src, imm } => {
            b.alui(*op, *dst, *src, *imm);
        }
        Shape::LoadData { dst, region, word } => {
            b.ld(*dst, region.base(), (*word as i64) * WORD_BYTES as i64);
        }
        Shape::StoreData { region, word, src } => {
            b.st(region.base(), (*word as i64) * WORD_BYTES as i64, *src);
        }
        Shape::Chase {
            slot,
            depth,
            word,
            access,
        } => {
            let line_bytes = clear_mem::LINE_BYTES as i64;
            if *depth == 1 {
                b.ld(CHASE_TMP, REG_PTR, *slot as i64 * line_bytes);
            } else {
                b.ld(CHASE_TMP, REG_PTR2, *slot as i64 * line_bytes);
                b.ld(CHASE_TMP, CHASE_TMP, 0);
            }
            let off = (*word as i64) * WORD_BYTES as i64;
            match access {
                ChaseAccess::Load { dst } => {
                    b.ld(*dst, CHASE_TMP, off);
                }
                ChaseAccess::Store { src } => {
                    b.st(CHASE_TMP, off, *src);
                }
            }
        }
        Shape::Loop { trips, body } => {
            let top = b.label();
            let done = b.label();
            b.li(LOOP_CTR, 0).li(LOOP_LIM, *trips as u64);
            b.bind(top).branch(Cond::Ge, LOOP_CTR, LOOP_LIM, done);
            for s in body {
                lower_shape(b, s);
            }
            b.addi(LOOP_CTR, LOOP_CTR, 1).jmp(top).bind(done);
        }
        Shape::Skip {
            cond,
            a,
            b: rb,
            body,
        } => {
            let over = b.label();
            b.branch(*cond, *a, *rb, over);
            for s in body {
                lower_shape(b, s);
            }
            b.bind(over);
        }
        Shape::Compute { cycles } => {
            b.compute(*cycles);
        }
    }
}

/// Worst-case dynamic store count of a shape list (loops multiplied out).
pub fn max_dynamic_stores(shapes: &[Shape]) -> u32 {
    shapes
        .iter()
        .map(|s| match s {
            Shape::StoreData { .. } => 1,
            Shape::Chase {
                access: ChaseAccess::Store { .. },
                ..
            } => 1,
            Shape::Loop { trips, body } => *trips as u32 * max_dynamic_stores(body),
            Shape::Skip { body, .. } => max_dynamic_stores(body),
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FuzzCase::generate(0xC1EA, 7);
        let b = FuzzCase::generate(0xC1EA, 7);
        assert_eq!(a.shapes, b.shapes);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.program.instrs(), b.program.instrs());
        assert_eq!(a.ptr_targets, b.ptr_targets);
        // Different indices give different cases (overwhelmingly).
        let c = FuzzCase::generate(0xC1EA, 8);
        assert_ne!(a.seed, c.seed);
    }

    #[test]
    fn generated_cases_are_lint_clean_and_bounded() {
        for i in 0..64 {
            let case = FuzzCase::generate(42, i);
            assert!(case.lints().is_empty(), "case {i} has lints");
            assert!(case.program.len() >= 3);
            assert!(
                max_dynamic_stores(&case.shapes) <= MAX_DYN_STORES,
                "case {i} exceeds the store budget"
            );
            assert!((2..=4).contains(&case.threads));
            assert!((1..=3).contains(&case.invocations));
        }
    }

    #[test]
    fn lowering_ends_every_path_in_xend() {
        for i in 0..32 {
            let case = FuzzCase::generate(7, i);
            let last = case.program.instrs().last().unwrap();
            assert!(last.ends_region());
            assert!(!case
                .program
                .instrs()
                .iter()
                .any(|ins| matches!(ins, clear_isa::Instr::XAbort { .. })));
        }
    }

    #[test]
    fn with_shapes_rejects_lint_dirty_candidates() {
        let case = FuzzCase::generate(1, 0);
        // An undefined-register read must be rejected by the filter.
        let bad = vec![Shape::StoreData {
            region: DataRegion::A,
            word: 0,
            src: Reg(15),
        }];
        // Reg(15) may or may not be defined in this draft; build a shape
        // reading a register the generator never touches instead.
        let _ = bad;
        let bad = vec![Shape::Alu {
            op: AluOp::Add,
            dst: Reg(8),
            a: Reg(30),
            b: Reg(30),
        }];
        assert!(case.with_shapes(bad, 2, 1).is_none());
        // The original shapes round-trip.
        assert!(case
            .with_shapes(case.shapes.clone(), case.threads, case.invocations)
            .is_some());
    }

    #[test]
    fn think_cycles_are_deterministic_and_small() {
        let case = FuzzCase::generate(3, 3);
        assert_eq!(case.think_cycles(1, 2), case.think_cycles(1, 2));
        assert!(case.think_cycles(0, 0) >= 5);
        assert!(case.think_cycles(3, 2) < 45);
    }
}
