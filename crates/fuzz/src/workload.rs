//! The [`Workload`] adapter that drives a [`FuzzCase`] through the full
//! machine, plus the arena layout shared with the oracle.

use crate::gen::{FuzzCase, DATA_LINES, PTR2_SLOTS, PTR_SLOTS};
use clear_isa::{ArId, ArInvocation, ArSpec, Mutability, Workload, WorkloadMeta};
use clear_mem::{Addr, Memory, LINE_BYTES, WORD_BYTES};
use std::sync::{Arc, Mutex};

/// A write-once slot shared between a workload (which learns addresses at
/// `setup` time, after the machine has boxed it) and the oracle outside
/// the machine.
#[derive(Clone, Debug, Default)]
pub struct SharedSlot<T>(Arc<Mutex<Option<T>>>);

impl<T: Clone> SharedSlot<T> {
    /// Creates an empty slot.
    pub fn new() -> Self {
        SharedSlot(Arc::new(Mutex::new(None)))
    }

    /// Stores a value (replacing any previous one).
    pub fn set(&self, value: T) {
        *self.0.lock().expect("shared slot poisoned") = Some(value);
    }

    /// Clones the stored value out, if set.
    pub fn get(&self) -> Option<T> {
        self.0.lock().expect("shared slot poisoned").clone()
    }
}

/// The fuzz arena layout: two data regions the programs may store to, and
/// two read-only pointer tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    /// First data region base (4 lines).
    pub data_a: Addr,
    /// Second data region base (4 lines).
    pub data_b: Addr,
    /// First-level pointer table base (one slot per line).
    pub ptr: Addr,
    /// Second-level pointer table base (one slot per line).
    pub ptr2: Addr,
    /// First byte of the arena.
    pub start: Addr,
    /// One past the last mapped byte.
    pub end: Addr,
}

impl Layout {
    /// Computes the layout for an arena starting at `start`, mirroring the
    /// allocation order of [`FuzzWorkload::setup`].
    pub fn compute(start: Addr) -> Layout {
        let data_a = start;
        let data_b = Addr(data_a.0 + DATA_LINES * LINE_BYTES);
        let ptr = Addr(data_b.0 + DATA_LINES * LINE_BYTES);
        let ptr2 = Addr(ptr.0 + PTR_SLOTS * LINE_BYTES);
        let end = Addr(ptr2.0 + PTR2_SLOTS * LINE_BYTES);
        Layout {
            data_a,
            data_b,
            ptr,
            ptr2,
            start,
            end,
        }
    }

    /// The layout under the machine's canonical memory map: the null line,
    /// then the fallback-lock line the machine allocates before workload
    /// setup, then the arena.
    pub fn canonical() -> Layout {
        Layout::compute(Addr(2 * LINE_BYTES))
    }
}

/// Drives one [`FuzzCase`]: every thread runs the same program with the
/// same arguments `invocations` times, maximising contention on the
/// shared arena.
#[derive(Debug)]
pub struct FuzzWorkload {
    case: Arc<FuzzCase>,
    layout: SharedSlot<Layout>,
    remaining: Vec<usize>,
}

impl FuzzWorkload {
    /// Creates the workload for `case`.
    pub fn new(case: Arc<FuzzCase>) -> FuzzWorkload {
        FuzzWorkload {
            case,
            layout: SharedSlot::new(),
            remaining: Vec::new(),
        }
    }

    /// Handle to the layout published at `setup` time.
    pub fn layout_handle(&self) -> SharedSlot<Layout> {
        self.layout.clone()
    }
}

impl Workload for FuzzWorkload {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: self.case.name(),
            ars: vec![ArSpec {
                id: ArId(0),
                name: "fuzzed".into(),
                mutability: Mutability::Mutable,
            }],
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        let data_a = mem.alloc_words(DATA_LINES * (LINE_BYTES / WORD_BYTES));
        let layout = Layout::compute(data_a);
        let data_b = mem.alloc_words(DATA_LINES * (LINE_BYTES / WORD_BYTES));
        let ptr = mem.alloc_words(PTR_SLOTS * (LINE_BYTES / WORD_BYTES));
        let ptr2 = mem.alloc_words(PTR2_SLOTS * (LINE_BYTES / WORD_BYTES));
        assert_eq!(
            (data_b, ptr, ptr2),
            (layout.data_b, layout.ptr, layout.ptr2),
            "arena allocation diverged from Layout::compute"
        );

        // Distinct data values so lost updates are visible in the image.
        for w in 0..(2 * DATA_LINES * (LINE_BYTES / WORD_BYTES)) {
            mem.store_word(data_a.add_words(w), 0x1000 + w);
        }
        // Pointer tables: written once here, never stored to by programs.
        for (i, (region, line)) in self.case.ptr_targets.iter().enumerate() {
            let base = match region {
                crate::gen::DataRegion::A => layout.data_a,
                crate::gen::DataRegion::B => layout.data_b,
            };
            let target = Addr(base.0 + *line as u64 * LINE_BYTES);
            mem.store_word(Addr(ptr.0 + i as u64 * LINE_BYTES), target.0);
        }
        for (j, slot) in self.case.ptr2_targets.iter().enumerate() {
            let target = Addr(ptr.0 + *slot as u64 * LINE_BYTES);
            mem.store_word(Addr(ptr2.0 + j as u64 * LINE_BYTES), target.0);
        }

        self.remaining = vec![self.case.invocations; threads];
        self.layout.set(layout);
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        let k = self.case.invocations - self.remaining[tid];
        self.remaining[tid] -= 1;
        let layout = self.layout.get().expect("setup ran");
        Some(ArInvocation {
            ar: ArId(0),
            program: Arc::clone(&self.case.program),
            args: self.case.args(&layout),
            think_cycles: self.case.think_cycles(tid, k),
            static_footprint: None,
        })
    }

    fn validate(&self, _mem: &Memory) -> Result<(), String> {
        // The differential oracle, not an in-workload invariant, judges
        // final memory; anything committed is acceptable here.
        Ok(())
    }
}

/// Builds the initial memory image exactly as the machine does: the null
/// line is unmapped, the machine's fallback-lock line comes first, then
/// the workload arena. Returns the image and the published layout.
pub fn initial_image(case: &Arc<FuzzCase>, threads: usize) -> (Memory, Layout) {
    let mut w = FuzzWorkload::new(Arc::clone(case));
    let mut mem = Memory::new();
    mem.alloc_line(); // the machine's fallback-lock line
    w.setup(&mut mem, threads);
    let layout = w.layout_handle().get().expect("setup published layout");
    (mem, layout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_canonical_under_machine_memory_map() {
        let case = Arc::new(FuzzCase::generate(11, 0));
        let (_, layout) = initial_image(&case, 2);
        assert_eq!(layout, Layout::canonical());
        assert_eq!(layout.start.0, 2 * LINE_BYTES);
        assert!(layout.end.0 > layout.ptr2.0);
    }

    #[test]
    fn pointer_tables_hold_valid_data_addresses() {
        let case = Arc::new(FuzzCase::generate(11, 1));
        let (mem, layout) = initial_image(&case, 2);
        for i in 0..PTR_SLOTS {
            let p = mem.load_word(Addr(layout.ptr.0 + i * LINE_BYTES));
            assert!(p >= layout.data_a.0 && p < layout.ptr.0, "slot {i}: {p:#x}");
            assert_eq!(p % LINE_BYTES, 0);
        }
        for j in 0..PTR2_SLOTS {
            let q = mem.load_word(Addr(layout.ptr2.0 + j * LINE_BYTES));
            assert!(q >= layout.ptr.0 && q < layout.ptr2.0, "slot {j}: {q:#x}");
        }
    }

    #[test]
    fn next_ar_exhausts_after_invocations() {
        let case = Arc::new(FuzzCase::generate(11, 2));
        let mut w = FuzzWorkload::new(Arc::clone(&case));
        let mut mem = Memory::new();
        mem.alloc_line();
        w.setup(&mut mem, 3);
        for tid in 0..3 {
            let mut n = 0;
            while w.next_ar(tid, &mem).is_some() {
                n += 1;
            }
            assert_eq!(n, case.invocations, "thread {tid}");
        }
    }
}
