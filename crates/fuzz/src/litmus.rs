//! Classic litmus shapes (SB, LB, MP, IRIW) as machine-level atomicity
//! conformance checks.
//!
//! Each litmus thread wraps its whole observable program in one atomic
//! region, so outcomes that weak memory models famously permit must be
//! **impossible** here: ARs serialize, and every relaxed outcome requires
//! interleaving inside a region. The forbidden predicate of each case is
//! exactly that relaxed outcome; observing it even once means atomicity
//! broke. The harness's `litmus-conformance` experiment runs every case
//! across all machine presets and a seed sweep and pins the forbidden
//! counts to zero in a golden file.

use crate::workload::SharedSlot;
use clear_isa::{
    ArId, ArInvocation, ArSpec, Mutability, Program, ProgramBuilder, Reg, Workload, WorkloadMeta,
};
use clear_mem::rng::SplitMix64;
use clear_mem::{Addr, Memory, WORD_BYTES};
use std::sync::Arc;

/// Entry register holding this thread's first variable address.
const R_VAR0: Reg = Reg(0);
/// Entry register holding this thread's second variable address.
const R_VAR1: Reg = Reg(1);
/// Entry register holding this thread's private result-line address.
const R_RES: Reg = Reg(2);
/// Scratch: the constant one.
const R_ONE: Reg = Reg(8);
/// Scratch: first loaded value.
const R_L0: Reg = Reg(9);
/// Scratch: second loaded value.
const R_L1: Reg = Reg(10);

/// The two shared variables every litmus shape is written over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Var {
    /// The first shared line (`data` in MP).
    X,
    /// The second shared line (`flag` in MP).
    Y,
}

/// One litmus thread: an AR program plus the variable-to-register binding
/// it runs under (`vars.0` lands in [`R_VAR0`], `vars.1` in [`R_VAR1`]).
#[derive(Clone, Debug)]
pub struct LitmusThread {
    /// The thread's single atomic region.
    pub program: Arc<Program>,
    /// Which shared variable each address register carries.
    pub vars: (Var, Var),
}

/// One litmus case.
#[derive(Clone, Debug)]
pub struct LitmusCase {
    /// Short canonical name (`"SB"`, `"LB"`, `"MP"`, `"IRIW"`).
    pub name: &'static str,
    /// One-line description of the forbidden outcome.
    pub about: &'static str,
    /// The participating threads.
    pub threads: Vec<LitmusThread>,
    /// Words each thread's result line contributes to the outcome.
    pub result_words: usize,
    /// `true` when an outcome (per-thread result vectors) is forbidden
    /// under AR atomicity.
    pub forbidden: fn(&[Vec<u64>]) -> bool,
}

impl LitmusCase {
    /// Renders an outcome as a stable histogram label, e.g. `t0=[1] t1=[0]`.
    pub fn label(&self, outcome: &[Vec<u64>]) -> String {
        outcome
            .iter()
            .enumerate()
            .map(|(t, words)| {
                let inner = words
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                format!("t{t}=[{inner}]")
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Store-buffering thread: `var0 <- 1; r <- var1; result[0] <- r`.
fn sb_thread(vars: (Var, Var)) -> LitmusThread {
    let mut b = ProgramBuilder::new();
    b.li(R_ONE, 1)
        .st(R_VAR0, 0, R_ONE)
        .ld(R_L0, R_VAR1, 0)
        .st(R_RES, 0, R_L0)
        .xend();
    LitmusThread {
        program: Arc::new(b.build()),
        vars,
    }
}

/// Load-buffering thread: `r <- var1; var0 <- 1; result[0] <- r`.
fn lb_thread(vars: (Var, Var)) -> LitmusThread {
    let mut b = ProgramBuilder::new();
    b.ld(R_L0, R_VAR1, 0)
        .li(R_ONE, 1)
        .st(R_VAR0, 0, R_ONE)
        .st(R_RES, 0, R_L0)
        .xend();
    LitmusThread {
        program: Arc::new(b.build()),
        vars,
    }
}

/// Writer thread: `var0 <- 1`.
fn writer_thread(vars: (Var, Var)) -> LitmusThread {
    let mut b = ProgramBuilder::new();
    b.li(R_ONE, 1).st(R_VAR0, 0, R_ONE).xend();
    LitmusThread {
        program: Arc::new(b.build()),
        vars,
    }
}

/// MP producer: `var0(data) <- 1; var1(flag) <- 1`.
fn mp_producer() -> LitmusThread {
    let mut b = ProgramBuilder::new();
    b.li(R_ONE, 1)
        .st(R_VAR0, 0, R_ONE)
        .st(R_VAR1, 0, R_ONE)
        .xend();
    LitmusThread {
        program: Arc::new(b.build()),
        vars: (Var::X, Var::Y),
    }
}

/// Reader thread: `result[0] <- var0; result[1] <- var1` (var0 first).
fn reader_thread(vars: (Var, Var)) -> LitmusThread {
    let mut b = ProgramBuilder::new();
    b.ld(R_L0, R_VAR0, 0)
        .ld(R_L1, R_VAR1, 0)
        .st(R_RES, 0, R_L0)
        .st(R_RES, WORD_BYTES as i64, R_L1)
        .xend();
    LitmusThread {
        program: Arc::new(b.build()),
        vars,
    }
}

/// The catalogue, in canonical order.
pub fn cases() -> Vec<LitmusCase> {
    vec![
        LitmusCase {
            name: "SB",
            about: "store buffering: both threads reading 0 is forbidden",
            threads: vec![sb_thread((Var::X, Var::Y)), sb_thread((Var::Y, Var::X))],
            result_words: 1,
            forbidden: |r| r[0][0] == 0 && r[1][0] == 0,
        },
        LitmusCase {
            name: "LB",
            about: "load buffering: both threads reading 1 is forbidden",
            threads: vec![lb_thread((Var::X, Var::Y)), lb_thread((Var::Y, Var::X))],
            result_words: 1,
            forbidden: |r| r[0][0] == 1 && r[1][0] == 1,
        },
        LitmusCase {
            name: "MP",
            about: "message passing: flag=1 with data=0 is forbidden",
            threads: vec![mp_producer(), reader_thread((Var::Y, Var::X))],
            result_words: 2,
            // Reader loads flag (var0=Y) into word 0, data (var1=X) into 1.
            forbidden: |r| r[1][0] == 1 && r[1][1] == 0,
        },
        LitmusCase {
            name: "IRIW",
            about: "independent readers seeing the writes in opposite orders is forbidden",
            threads: vec![
                writer_thread((Var::X, Var::Y)),
                writer_thread((Var::Y, Var::X)),
                reader_thread((Var::X, Var::Y)),
                reader_thread((Var::Y, Var::X)),
            ],
            result_words: 2,
            // Reader t2 saw x=1,y=0; reader t3 saw y=1,x=0: the readers
            // disagree on the write order.
            forbidden: |r| r[2] == [1, 0] && r[3] == [1, 0],
        },
    ]
}

/// Reader count of the wide IRIW variant: 126 readers plus the two
/// writers give a 128-thread case, past the inline width of every
/// per-core bitset and across many directory shards.
pub const IRIW_WIDE_READERS: usize = 126;

/// Wide litmus variants exercising the many-core machine. Kept out of
/// [`cases`] so the golden-gated `litmus-conformance` corpus and its
/// baseline stay byte-identical; the harness and unit tests run these
/// directly at 128 simulated cores.
///
/// `IRIW-wide` scales IRIW to [`IRIW_WIDE_READERS`] readers: threads 0
/// and 1 write `x` and `y`, then readers alternate observation order —
/// even reader indices load `(x, y)`, odd ones `(y, x)`. Any even reader
/// seeing `x=1,y=0` while any odd reader sees `y=1,x=0` means two
/// readers disagreed on the write order, which AR atomicity forbids.
pub fn wide_cases() -> Vec<LitmusCase> {
    let mut threads = vec![
        writer_thread((Var::X, Var::Y)),
        writer_thread((Var::Y, Var::X)),
    ];
    for r in 0..IRIW_WIDE_READERS {
        threads.push(if r % 2 == 0 {
            reader_thread((Var::X, Var::Y))
        } else {
            reader_thread((Var::Y, Var::X))
        });
    }
    vec![LitmusCase {
        name: "IRIW-wide",
        about: "any two of 126 independent readers disagreeing on the write order is forbidden",
        threads,
        result_words: 2,
        forbidden: |r| {
            let saw_first = |parity: usize| {
                r.iter()
                    .enumerate()
                    .skip(2)
                    .any(|(t, words)| t % 2 == parity && words == &[1, 0])
            };
            saw_first(0) && saw_first(1)
        },
    }]
}

/// Runtime addresses of a litmus run's shared variables and result lines.
#[derive(Clone, Debug)]
pub struct LitmusLayout {
    /// Address of `x`.
    pub x: Addr,
    /// Address of `y`.
    pub y: Addr,
    /// Per-thread result line addresses.
    pub results: Vec<Addr>,
}

/// Drives one [`LitmusCase`]: each thread runs its AR exactly once, with
/// seed-jittered think time so different seeds explore different arrival
/// interleavings.
#[derive(Debug)]
pub struct LitmusWorkload {
    case: Arc<LitmusCase>,
    seed: u64,
    layout: SharedSlot<LitmusLayout>,
    fired: Vec<bool>,
}

impl LitmusWorkload {
    /// Creates the workload for `case` under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the machine is configured with fewer cores than the case
    /// has threads (extra cores simply idle).
    pub fn new(case: Arc<LitmusCase>, seed: u64) -> LitmusWorkload {
        LitmusWorkload {
            case,
            seed,
            layout: SharedSlot::new(),
            fired: Vec::new(),
        }
    }

    /// Handle to the layout published at `setup` time.
    pub fn layout_handle(&self) -> SharedSlot<LitmusLayout> {
        self.layout.clone()
    }

    /// Reads the per-thread result vectors out of a final memory image.
    pub fn outcome(&self, mem: &Memory) -> Vec<Vec<u64>> {
        outcome_from(&self.case, &self.layout.get().expect("setup ran"), mem)
    }
}

/// Reads a case's per-thread result vectors from a final memory image,
/// given the layout published at setup (callers that box the workload
/// into a machine keep a [`SharedSlot`] handle for this).
pub fn outcome_from(case: &LitmusCase, layout: &LitmusLayout, mem: &Memory) -> Vec<Vec<u64>> {
    layout
        .results
        .iter()
        .map(|&base| {
            (0..case.result_words)
                .map(|w| mem.load_word(base.add_words(w as u64)))
                .collect()
        })
        .collect()
}

impl Workload for LitmusWorkload {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: format!("litmus-{}", self.case.name),
            ars: self
                .case
                .threads
                .iter()
                .enumerate()
                .map(|(t, _)| ArSpec {
                    id: ArId(t as u32),
                    name: format!("t{t}"),
                    // Addresses come straight from entry registers: the
                    // footprint is immutable by construction.
                    mutability: Mutability::Immutable,
                })
                .collect(),
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        assert!(
            threads >= self.case.threads.len(),
            "litmus {} needs {} threads, machine has {threads}",
            self.case.name,
            self.case.threads.len()
        );
        let x = mem.alloc_line();
        let y = mem.alloc_line();
        let results = (0..self.case.threads.len())
            .map(|_| mem.alloc_line())
            .collect();
        self.fired = vec![false; threads];
        self.layout.set(LitmusLayout { x, y, results });
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if tid >= self.case.threads.len() || self.fired[tid] {
            return None;
        }
        self.fired[tid] = true;
        let layout = self.layout.get().expect("setup ran");
        let thread = &self.case.threads[tid];
        let addr = |v: Var| match v {
            Var::X => layout.x.0,
            Var::Y => layout.y.0,
        };
        let mut jitter =
            SplitMix64::new(self.seed ^ (tid as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        Some(ArInvocation {
            ar: ArId(tid as u32),
            program: Arc::clone(&thread.program),
            args: vec![
                (R_VAR0, addr(thread.vars.0)),
                (R_VAR1, addr(thread.vars.1)),
                (R_RES, layout.results[tid].0),
            ],
            think_cycles: jitter.below(60),
            static_footprint: None,
        })
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let outcome = self.outcome(mem);
        if (self.case.forbidden)(&outcome) {
            return Err(format!(
                "litmus {}: forbidden outcome observed: {} ({})",
                self.case.name,
                self.case.label(&outcome),
                self.case.about
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_machine::{Machine, Preset};

    fn run(case: LitmusCase, seed: u64) -> (Vec<Vec<u64>>, String) {
        let case = Arc::new(case);
        let threads = case.threads.len();
        let workload = LitmusWorkload::new(Arc::clone(&case), seed);
        let handle = workload.layout_handle();
        let mut cfg = Preset::C.config(threads, 5);
        cfg.seed = seed;
        let mut machine = Machine::new(cfg, Box::new(workload));
        let stats = machine.run();
        assert!(!stats.timed_out);
        assert_eq!(stats.commits_by_mode.total(), threads as u64);
        let layout = handle.get().expect("layout");
        let outcome: Vec<Vec<u64>> = layout
            .results
            .iter()
            .map(|&base| {
                (0..case.result_words)
                    .map(|w| machine.memory().load_word(base.add_words(w as u64)))
                    .collect()
            })
            .collect();
        let label = case.label(&outcome);
        assert!(!(case.forbidden)(&outcome), "{}: {label}", case.name);
        (outcome, label)
    }

    #[test]
    fn all_cases_avoid_forbidden_outcomes_across_seeds() {
        for seed in 1..=8 {
            for case in cases() {
                run(case, seed);
            }
        }
    }

    #[test]
    fn wide_iriw_runs_clean_on_a_128_core_machine() {
        let mut wide = wide_cases();
        assert_eq!(wide.len(), 1);
        let case = wide.pop().unwrap();
        assert_eq!(case.threads.len(), 2 + IRIW_WIDE_READERS);
        let (outcome, _) = run(case, 5);
        // Both writers committed, so every reader saw a final 1 somewhere.
        assert!(outcome
            .iter()
            .skip(2)
            .all(|words| words.contains(&1) || words == &[0, 0]));
    }

    #[test]
    fn wide_iriw_forbidden_predicate_needs_disagreeing_parities() {
        let case = wide_cases().pop().unwrap();
        let mut outcome = vec![vec![0, 0]; 2 + IRIW_WIDE_READERS];
        assert!(!(case.forbidden)(&outcome));
        outcome[2] = vec![1, 0]; // even reader: x before y
        assert!(!(case.forbidden)(&outcome), "one parity alone is allowed");
        outcome[7] = vec![1, 0]; // odd reader: y before x
        assert!((case.forbidden)(&outcome), "disagreeing readers forbidden");
    }

    #[test]
    fn sb_threads_observe_each_other_when_serialized() {
        // Under atomicity at least one SB thread reads the other's store.
        let (outcome, _) = run(cases().remove(0), 3);
        assert!(outcome[0][0] == 1 || outcome[1][0] == 1);
    }

    #[test]
    fn labels_are_stable() {
        let case = cases().remove(3);
        assert_eq!(case.name, "IRIW");
        let outcome = vec![vec![0, 0], vec![0, 0], vec![1, 0], vec![0, 1]];
        assert_eq!(case.label(&outcome), "t0=[0,0] t1=[0,0] t2=[1,0] t3=[0,1]");
    }

    #[test]
    fn forbidden_predicates_fire_on_the_canonical_relaxed_outcomes() {
        let all = cases();
        assert!((all[0].forbidden)(&[vec![0], vec![0]]));
        assert!(!(all[0].forbidden)(&[vec![0], vec![1]]));
        assert!((all[1].forbidden)(&[vec![1], vec![1]]));
        assert!((all[2].forbidden)(&[vec![0, 0], vec![1, 0]]));
        assert!(!(all[2].forbidden)(&[vec![0, 0], vec![1, 1]]));
        assert!((all[3].forbidden)(&[
            vec![0, 0],
            vec![0, 0],
            vec![1, 0],
            vec![1, 0]
        ]));
    }
}
