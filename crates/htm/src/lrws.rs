//! Limited read/write-set HTM: bounded per-attempt access tracking.
//!
//! Models the FORTH "Limited Read/Write-Set HTM without modifying the ISA
//! or the Coherence Protocol" scheme: each core owns two small dedicated
//! buffers — a read-set and a write-set of cacheline addresses — filled by
//! the speculative attempt as it executes. The buffers are the *only*
//! hardware added; conflict detection still rides the unmodified coherence
//! protocol, and an attempt whose footprint outgrows either buffer raises
//! a **capacity abort** (the retry policy then bounds how often that can
//! happen before the non-speculative fallback path guarantees progress).
//!
//! A line held in the write-set never charges the read-set: the store
//! already pinned it, so a subsequent load is served from the same buffer
//! entry. This matches the usual hardware organisation (the write-set is
//! checked first) and keeps the two bounds independent.

use clear_mem::{LineAddr, LineSet};

/// Capacity bounds of the limited read/write-set backend, in cachelines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LrwsConfig {
    /// Maximum distinct lines the read-set buffer holds.
    pub read_lines: usize,
    /// Maximum distinct lines the write-set buffer holds.
    pub write_lines: usize,
}

impl Default for LrwsConfig {
    /// A small dedicated buffer pair (32 read / 8 write lines): large
    /// enough that most of the paper's ARs fit (Fig. 1 observes footprints
    /// of ≤ 32 lines), small enough that the write-heavy benchmarks
    /// actually exercise capacity aborts.
    fn default() -> Self {
        LrwsConfig {
            read_lines: 32,
            write_lines: 8,
        }
    }
}

/// Which buffer overflowed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RwSetOverflow {
    /// The read-set buffer is full.
    Reads,
    /// The write-set buffer is full.
    Writes,
}

/// Per-attempt read/write-set tracker: the two bounded buffers of one
/// core, cleared at the start of every attempt.
///
/// # Examples
///
/// ```
/// use clear_htm::{LrwsConfig, RwSetOverflow, RwSetTracker};
/// use clear_mem::LineAddr;
///
/// let mut t = RwSetTracker::new(LrwsConfig { read_lines: 2, write_lines: 1 });
/// assert!(t.track(LineAddr(1), true).is_ok());
/// // A line in the write-set reads for free.
/// assert!(t.track(LineAddr(1), false).is_ok());
/// // A second written line exceeds the one-entry write buffer.
/// assert_eq!(t.track(LineAddr(2), true), Err(RwSetOverflow::Writes));
/// ```
#[derive(Clone, Debug)]
pub struct RwSetTracker {
    cfg: LrwsConfig,
    reads: LineSet,
    writes: LineSet,
}

impl RwSetTracker {
    /// Creates an empty tracker with the given bounds.
    pub fn new(cfg: LrwsConfig) -> Self {
        RwSetTracker {
            cfg,
            reads: LineSet::new(),
            writes: LineSet::new(),
        }
    }

    /// Records one speculative access. Returns the overflowing buffer if
    /// admitting the line would exceed its bound; the tracker is left
    /// unchanged in that case (the attempt aborts, the buffers are
    /// cleared at the next attempt).
    pub fn track(&mut self, line: LineAddr, is_write: bool) -> Result<(), RwSetOverflow> {
        if is_write {
            if self.writes.contains(line) {
                return Ok(());
            }
            if self.writes.len() >= self.cfg.write_lines {
                return Err(RwSetOverflow::Writes);
            }
            self.writes.insert(line);
            Ok(())
        } else {
            // The write-set pins the line already; reads of it are free.
            if self.writes.contains(line) || self.reads.contains(line) {
                return Ok(());
            }
            if self.reads.len() >= self.cfg.read_lines {
                return Err(RwSetOverflow::Reads);
            }
            self.reads.insert(line);
            Ok(())
        }
    }

    /// Empties both buffers (attempt boundary).
    pub fn clear(&mut self) {
        self.reads.clear();
        self.writes.clear();
    }

    /// Lines currently in the read-set buffer.
    pub fn read_lines(&self) -> usize {
        self.reads.len()
    }

    /// Lines currently in the write-set buffer.
    pub fn write_lines(&self) -> usize {
        self.writes.len()
    }

    /// The configured bounds.
    pub fn config(&self) -> LrwsConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_set_lines_read_for_free() {
        let mut t = RwSetTracker::new(LrwsConfig {
            read_lines: 1,
            write_lines: 2,
        });
        assert!(t.track(LineAddr(10), true).is_ok());
        assert!(t.track(LineAddr(11), true).is_ok());
        // Reads of written lines never charge the read budget.
        assert!(t.track(LineAddr(10), false).is_ok());
        assert!(t.track(LineAddr(11), false).is_ok());
        assert_eq!(t.read_lines(), 0);
        // One fresh read fits, the second overflows.
        assert!(t.track(LineAddr(20), false).is_ok());
        assert_eq!(t.track(LineAddr(21), false), Err(RwSetOverflow::Reads));
        assert_eq!(t.read_lines(), 1);
    }

    #[test]
    fn overflow_leaves_tracker_unchanged_and_clear_resets() {
        let mut t = RwSetTracker::new(LrwsConfig {
            read_lines: 4,
            write_lines: 1,
        });
        assert!(t.track(LineAddr(1), true).is_ok());
        assert_eq!(t.track(LineAddr(2), true), Err(RwSetOverflow::Writes));
        assert_eq!(t.write_lines(), 1);
        // Re-touching the admitted line stays fine.
        assert!(t.track(LineAddr(1), true).is_ok());
        t.clear();
        assert_eq!((t.read_lines(), t.write_lines()), (0, 0));
        assert!(t.track(LineAddr(2), true).is_ok());
    }

    #[test]
    fn duplicate_accesses_do_not_consume_capacity() {
        let mut t = RwSetTracker::new(LrwsConfig {
            read_lines: 1,
            write_lines: 1,
        });
        for _ in 0..10 {
            assert!(t.track(LineAddr(5), false).is_ok());
            assert!(t.track(LineAddr(6), true).is_ok());
        }
        assert_eq!((t.read_lines(), t.write_lines()), (1, 1));
    }

    #[test]
    fn default_bounds_match_the_paper_scale() {
        let d = LrwsConfig::default();
        assert_eq!(d.read_lines, 32);
        assert_eq!(d.write_lines, 8);
    }
}
