//! The global fallback lock.

use clear_coherence::CoreId;
use clear_mem::{CoreBitSet, LineAddr};

/// The fallback mutex of SLE/HTM (§2.1, §4.3).
///
/// Semantically a reader/writer lock over a dedicated cacheline:
///
/// * a thread entering the **fallback path** write-locks it (mutual
///   exclusion with everything);
/// * **NS-CL / S-CL** executions *read-lock* it before locking cachelines,
///   guaranteeing no fallback execution is in flight (§4.3) — multiple
///   CL-mode ARs may hold the read lock concurrently;
/// * **speculative** ARs do not lock it at all: they *subscribe* by adding
///   [`FallbackLock::line`] to their transactional read set at `XBegin`, so
///   a writer's lock acquisition aborts them through normal conflict
///   detection.
///
/// The lock itself is modelled logically (not through simulated memory
/// words) but exposes the line address used for read-set subscription.
///
/// # Examples
///
/// ```
/// use clear_htm::FallbackLock;
/// use clear_coherence::CoreId;
/// use clear_mem::LineAddr;
///
/// let mut fl = FallbackLock::new(LineAddr(1));
/// assert!(fl.try_read(CoreId(0)));
/// assert!(!fl.try_write(CoreId(1))); // reader blocks writer
/// fl.release_read(CoreId(0));
/// assert!(fl.try_write(CoreId(1)));
/// ```
#[derive(Clone, Debug)]
pub struct FallbackLock {
    line: LineAddr,
    writer: Option<CoreId>,
    readers: CoreBitSet,
}

impl FallbackLock {
    /// Creates the lock living on cacheline `line`.
    pub fn new(line: LineAddr) -> Self {
        FallbackLock {
            line,
            writer: None,
            readers: CoreBitSet::new(),
        }
    }

    /// The cacheline speculative ARs subscribe to.
    pub fn line(&self) -> LineAddr {
        self.line
    }

    /// Current write holder, if any.
    pub fn writer(&self) -> Option<CoreId> {
        self.writer
    }

    /// `true` if any core holds the read lock.
    pub fn has_readers(&self) -> bool {
        !self.readers.is_empty()
    }

    /// `true` if `core` holds the read lock.
    pub fn is_reader(&self, core: CoreId) -> bool {
        self.readers.contains(core.0)
    }

    /// Attempts to write-lock (fallback path entry). Fails while any reader
    /// or another writer holds the lock.
    pub fn try_write(&mut self, core: CoreId) -> bool {
        if self.writer.is_none() && self.readers.is_empty() {
            self.writer = Some(core);
            true
        } else {
            self.writer == Some(core)
        }
    }

    /// Releases the write lock.
    ///
    /// # Panics
    ///
    /// Panics if `core` does not hold it.
    pub fn release_write(&mut self, core: CoreId) {
        assert_eq!(self.writer, Some(core), "release_write by non-holder");
        self.writer = None;
    }

    /// Attempts to read-lock (CL-mode entry). Fails while write-locked.
    pub fn try_read(&mut self, core: CoreId) -> bool {
        if self.writer.is_some() {
            return false;
        }
        self.readers.insert(core.0);
        true
    }

    /// Releases `core`'s read lock (idempotent).
    pub fn release_read(&mut self, core: CoreId) {
        self.readers.remove(core.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_excludes_writer() {
        let mut fl = FallbackLock::new(LineAddr(1));
        assert!(fl.try_write(CoreId(0)));
        assert!(!fl.try_write(CoreId(1)));
        assert_eq!(fl.writer(), Some(CoreId(0)));
        fl.release_write(CoreId(0));
        assert!(fl.try_write(CoreId(1)));
    }

    #[test]
    fn write_is_reentrant_for_holder() {
        let mut fl = FallbackLock::new(LineAddr(1));
        assert!(fl.try_write(CoreId(0)));
        assert!(fl.try_write(CoreId(0)));
    }

    #[test]
    fn readers_share() {
        let mut fl = FallbackLock::new(LineAddr(1));
        assert!(fl.try_read(CoreId(0)));
        assert!(fl.try_read(CoreId(1)));
        assert!(fl.is_reader(CoreId(0)) && fl.is_reader(CoreId(1)));
    }

    #[test]
    fn writer_blocks_readers_and_vice_versa() {
        let mut fl = FallbackLock::new(LineAddr(1));
        assert!(fl.try_write(CoreId(0)));
        assert!(!fl.try_read(CoreId(1)));
        fl.release_write(CoreId(0));
        assert!(fl.try_read(CoreId(1)));
        assert!(!fl.try_write(CoreId(0)));
        fl.release_read(CoreId(1));
        assert!(fl.try_write(CoreId(0)));
    }

    #[test]
    fn release_read_is_idempotent() {
        let mut fl = FallbackLock::new(LineAddr(1));
        fl.release_read(CoreId(3));
        assert!(!fl.has_readers());
    }

    #[test]
    fn readers_beyond_64_cores_block_the_writer() {
        let mut fl = FallbackLock::new(LineAddr(1));
        assert!(fl.try_read(CoreId(900)));
        assert!(fl.is_reader(CoreId(900)));
        assert!(!fl.try_write(CoreId(0)));
        fl.release_read(CoreId(900));
        assert!(fl.try_write(CoreId(0)));
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn foreign_write_release_panics() {
        let mut fl = FallbackLock::new(LineAddr(1));
        fl.try_write(CoreId(0));
        fl.release_write(CoreId(1));
    }
}
