//! Conflict resolution and retry policies.

use clear_coherence::CoreId;

/// Which baseline HTM flavour is simulated (the B/P axes of the figures).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HtmFlavor {
    /// Intel-TSX-like requester-wins: the core *receiving* a conflicting
    /// coherence request aborts; the requester proceeds.
    RequesterWins,
    /// PowerTM: like requester-wins, except the unique power-mode
    /// transaction wins every conflict (requesters are NACKed and abort).
    PowerTm,
}

/// Transactional status of one party in a conflict, as the policy sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxInfo {
    /// The core.
    pub core: CoreId,
    /// Holds the PowerTM power token.
    pub power: bool,
    /// Executing in S-CL mode (speculative cacheline-locked, §4.3).
    pub scl: bool,
}

/// Outcome of conflict arbitration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Requester wins: every conflicting victim transaction aborts.
    AbortVictims,
    /// A victim is protected (power mode or S-CL, §5.2): the request is
    /// answered with a NACK and the *requester* aborts.
    NackRequester,
}

/// Arbitrates a transactional conflict between `requester` and the
/// conflicting `victims` under `flavor`.
///
/// Baseline rule is requester-wins: victims abort. Under
/// [`HtmFlavor::PowerTm`], the unique power-mode victim NACKs the requester
/// instead, and — the §5.2 enhancement — S-CL and power transactions never
/// abort *each other*: a power requester hitting an S-CL victim is NACKed
/// too. A plain requester hitting an S-CL victim still aborts the victim
/// (which then records the line in its CRT and locks it on the next retry).
pub fn resolve_conflict(flavor: HtmFlavor, requester: TxInfo, victims: &[TxInfo]) -> Resolution {
    let protected = |v: &TxInfo| match flavor {
        HtmFlavor::RequesterWins => false,
        HtmFlavor::PowerTm => v.power || (v.scl && requester.power),
    };
    if victims.iter().any(protected) {
        Resolution::NackRequester
    } else {
        Resolution::AbortVictims
    }
}

/// Bounded-retries-then-fallback policy.
///
/// The paper performs a per-application design-space exploration over 1..10
/// maximum retries and reports the best; harnesses sweep this value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Counted aborts after which the AR takes the fallback path.
    pub max_retries: u32,
}

impl RetryPolicy {
    /// Creates a policy with the given retry bound.
    ///
    /// # Panics
    ///
    /// Panics if `max_retries` is zero.
    pub fn new(max_retries: u32) -> Self {
        assert!(max_retries > 0, "at least one retry required");
        RetryPolicy { max_retries }
    }

    /// `true` when an AR with `counted_retries` failed attempts must take
    /// the fallback path instead of retrying speculatively.
    pub fn must_fall_back(&self, counted_retries: u32) -> bool {
        counted_retries >= self.max_retries
    }
}

impl Default for RetryPolicy {
    /// A common TSX-runtime default of 5 retries.
    fn default() -> Self {
        RetryPolicy::new(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(core: usize) -> TxInfo {
        TxInfo {
            core: CoreId(core),
            power: false,
            scl: false,
        }
    }

    #[test]
    fn requester_wins_aborts_victims() {
        let r = resolve_conflict(HtmFlavor::RequesterWins, plain(0), &[plain(1), plain(2)]);
        assert_eq!(r, Resolution::AbortVictims);
    }

    #[test]
    fn power_victim_nacks_requester() {
        let mut v = plain(1);
        v.power = true;
        assert_eq!(
            resolve_conflict(HtmFlavor::PowerTm, plain(0), &[v]),
            Resolution::NackRequester
        );
        // Under plain requester-wins the power bit has no meaning.
        assert_eq!(
            resolve_conflict(HtmFlavor::RequesterWins, plain(0), &[v]),
            Resolution::AbortVictims
        );
    }

    #[test]
    fn plain_requester_aborts_scl_victim() {
        // S-CL victims abort on plain conflicts (and learn via the CRT);
        // only the power interplay of §5.2 protects them.
        let mut v = plain(1);
        v.scl = true;
        for f in [HtmFlavor::RequesterWins, HtmFlavor::PowerTm] {
            assert_eq!(
                resolve_conflict(f, plain(0), &[v]),
                Resolution::AbortVictims
            );
        }
    }

    #[test]
    fn power_requester_also_nacked_by_scl() {
        let mut req = plain(0);
        req.power = true;
        let mut v = plain(1);
        v.scl = true;
        assert_eq!(
            resolve_conflict(HtmFlavor::PowerTm, req, &[v]),
            Resolution::NackRequester
        );
    }

    #[test]
    fn retry_policy_bounds() {
        let p = RetryPolicy::new(3);
        assert!(!p.must_fall_back(0));
        assert!(!p.must_fall_back(2));
        assert!(p.must_fall_back(3));
        assert!(p.must_fall_back(4));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_retries_panics() {
        RetryPolicy::new(0);
    }

    #[test]
    fn default_retry_policy_is_five() {
        assert_eq!(RetryPolicy::default().max_retries, 5);
    }
}
