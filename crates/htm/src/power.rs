//! The PowerTM power-mode token.

use clear_coherence::CoreId;

/// The single global power-mode slot of PowerTM \[9\].
///
/// A transaction that has already aborted at least once may enter *power
/// mode* if the slot is free; a power transaction wins all conflicts (its
/// peers abort or get NACKed) until it commits, at which point it releases
/// the slot.
///
/// # Examples
///
/// ```
/// use clear_htm::PowerToken;
/// use clear_coherence::CoreId;
///
/// let mut t = PowerToken::new();
/// assert!(t.try_acquire(CoreId(2)));
/// assert!(!t.try_acquire(CoreId(3)));
/// assert!(t.is_held_by(CoreId(2)));
/// t.release(CoreId(2));
/// assert!(t.try_acquire(CoreId(3)));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PowerToken {
    holder: Option<CoreId>,
}

impl PowerToken {
    /// Creates a free token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current holder.
    pub fn holder(&self) -> Option<CoreId> {
        self.holder
    }

    /// `true` if `core` holds the token.
    pub fn is_held_by(&self, core: CoreId) -> bool {
        self.holder == Some(core)
    }

    /// Attempts to take the token; reentrant for the current holder.
    pub fn try_acquire(&mut self, core: CoreId) -> bool {
        match self.holder {
            None => {
                self.holder = Some(core);
                true
            }
            Some(h) => h == core,
        }
    }

    /// Releases the token if held by `core` (idempotent otherwise).
    pub fn release(&mut self, core: CoreId) {
        if self.holder == Some(core) {
            self.holder = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_one_holder() {
        let mut t = PowerToken::new();
        assert!(t.try_acquire(CoreId(0)));
        assert!(!t.try_acquire(CoreId(1)));
        assert_eq!(t.holder(), Some(CoreId(0)));
    }

    #[test]
    fn reentrant_for_holder() {
        let mut t = PowerToken::new();
        assert!(t.try_acquire(CoreId(0)));
        assert!(t.try_acquire(CoreId(0)));
    }

    #[test]
    fn release_by_non_holder_is_noop() {
        let mut t = PowerToken::new();
        t.try_acquire(CoreId(0));
        t.release(CoreId(1));
        assert!(t.is_held_by(CoreId(0)));
    }
}
