//! Abort taxonomy (Fig. 11 of the paper).

use std::fmt;

/// Why an atomic region aborted, ordered roughly from cheap to expensive
/// (the grouping of Fig. 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortKind {
    /// A transactional memory conflict (remote access hit the read/write
    /// set, or this AR lost requester-wins arbitration).
    MemoryConflict,
    /// The thread attempted to start a speculative AR but found the
    /// fallback lock taken.
    ExplicitFallback,
    /// The AR was running speculatively when another thread took the
    /// fallback lock (the subscribed lock line was invalidated).
    OtherFallback,
    /// Speculative resources overflowed: the read/write set no longer fits
    /// the L1, or the store queue filled during failed-mode discovery.
    Capacity,
    /// A request was NACKed by a power-mode or S-CL transaction (§5.2) or
    /// by a locked cacheline (§4.4.2), aborting the requester.
    Nacked,
    /// The program executed `XAbort`.
    Explicit,
    /// A static-plan guard fired: an NS-CL attempt driven by an
    /// analyzer-emitted lock set touched a line the plan had not locked.
    /// The plan is poisoned and the AR falls back to normal discovery.
    PlanViolation,
    /// Everything else (exceptions, interrupts, non-memory aborts).
    Other,
}

impl AbortKind {
    /// Whether this abort increments the bounded-retry counter.
    ///
    /// The paper notes that fallback-lock-related aborts do not advance the
    /// counter toward the fallback threshold (which is why some apps show
    /// more than `max_retries` retries in Fig. 13).
    pub fn counts_toward_retry_limit(self) -> bool {
        !matches!(self, AbortKind::ExplicitFallback | AbortKind::OtherFallback)
    }

    /// All abort kinds, in Fig. 11 display order.
    pub const ALL: [AbortKind; 8] = [
        AbortKind::MemoryConflict,
        AbortKind::ExplicitFallback,
        AbortKind::OtherFallback,
        AbortKind::Capacity,
        AbortKind::Nacked,
        AbortKind::Explicit,
        AbortKind::PlanViolation,
        AbortKind::Other,
    ];
}

impl fmt::Display for AbortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortKind::MemoryConflict => "memory-conflict",
            AbortKind::ExplicitFallback => "explicit-fallback",
            AbortKind::OtherFallback => "other-fallback",
            AbortKind::Capacity => "capacity",
            AbortKind::Nacked => "nacked",
            AbortKind::Explicit => "explicit",
            AbortKind::PlanViolation => "plan-violation",
            AbortKind::Other => "other",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_aborts_do_not_count() {
        assert!(!AbortKind::ExplicitFallback.counts_toward_retry_limit());
        assert!(!AbortKind::OtherFallback.counts_toward_retry_limit());
    }

    #[test]
    fn conflict_and_capacity_count() {
        assert!(AbortKind::MemoryConflict.counts_toward_retry_limit());
        assert!(AbortKind::Capacity.counts_toward_retry_limit());
        assert!(AbortKind::Nacked.counts_toward_retry_limit());
        assert!(AbortKind::Explicit.counts_toward_retry_limit());
        assert!(AbortKind::PlanViolation.counts_toward_retry_limit());
        assert!(AbortKind::Other.counts_toward_retry_limit());
    }

    #[test]
    fn all_lists_every_kind_once() {
        let mut v = AbortKind::ALL.to_vec();
        v.dedup();
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn display_is_kebab() {
        assert_eq!(AbortKind::MemoryConflict.to_string(), "memory-conflict");
        assert_eq!(AbortKind::Nacked.to_string(), "nacked");
    }
}
