//! Hardware-transactional-memory substrate for the CLEAR reproduction.
//!
//! Models the policy layer of an Intel-TSX-like best-effort HTM (Vol 1
//! Ch 16 of the Intel SDM) plus **PowerTM** \[Dice, Herlihy, Kogan — TACO
//! 2018\], the two baselines of the paper:
//!
//! * [`AbortKind`] — the abort taxonomy of Fig. 11 (memory conflict,
//!   explicit fallback, other fallback, capacity, NACK, explicit, other)
//!   and which kinds count toward the retry limit;
//! * [`FallbackLock`] — the global fallback mutex with *read-lock*
//!   subscription: speculative ARs subscribe by reading the lock's
//!   cacheline; NS-CL/S-CL executions read-lock it (§4.3); a thread taking
//!   the fallback path write-locks it;
//! * [`PowerToken`] — the single global power-mode slot of PowerTM;
//! * [`resolve_conflict`] — requester-wins conflict resolution with the
//!   PowerTM and S-CL NACK enhancements of §5.2;
//! * [`RetryPolicy`] — the bounded-retries-then-fallback policy (the paper
//!   sweeps best-of-1..10 per application);
//! * [`RwSetTracker`] — the FORTH limited read/write-set scheme's bounded
//!   per-attempt line buffers, whose overflow is a capacity abort.
//!
//! Read/write *sets* themselves are tracked by `clear-coherence` as
//! per-line transactional bits; this crate is pure policy and holds no
//! per-line state.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod abort;
mod fallback;
mod lrws;
mod policy;

pub use abort::AbortKind;
pub use fallback::FallbackLock;
pub use lrws::{LrwsConfig, RwSetOverflow, RwSetTracker};
pub use policy::{resolve_conflict, HtmFlavor, Resolution, RetryPolicy, TxInfo};

mod power;
pub use power::PowerToken;
