//! Property tests for the fallback lock and power token state machines.

use clear_coherence::CoreId;
use clear_htm::{FallbackLock, PowerToken};
use clear_mem::LineAddr;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    TryWrite(usize),
    ReleaseWrite(usize),
    TryRead(usize),
    ReleaseRead(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4).prop_map(Op::TryWrite),
        (0usize..4).prop_map(Op::ReleaseWrite),
        (0usize..4).prop_map(Op::TryRead),
        (0usize..4).prop_map(Op::ReleaseRead),
    ]
}

proptest! {
    /// Writer and readers are mutually exclusive under any op sequence.
    #[test]
    fn fallback_lock_never_mixes_writer_and_readers(
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let mut fl = FallbackLock::new(LineAddr(1));
        for op in ops {
            match op {
                Op::TryWrite(c) => {
                    let _ = fl.try_write(CoreId(c));
                }
                Op::ReleaseWrite(c) => {
                    if fl.writer() == Some(CoreId(c)) {
                        fl.release_write(CoreId(c));
                    }
                }
                Op::TryRead(c) => {
                    let _ = fl.try_read(CoreId(c));
                }
                Op::ReleaseRead(c) => fl.release_read(CoreId(c)),
            }
            prop_assert!(
                !(fl.writer().is_some() && fl.has_readers()),
                "writer and readers held simultaneously"
            );
        }
    }

    /// The power token has at most one holder, and acquire/release pairs
    /// leave it free.
    #[test]
    fn power_token_single_holder(
        ops in prop::collection::vec((0usize..4, any::<bool>()), 1..100),
    ) {
        let mut t = PowerToken::new();
        let mut model: Option<usize> = None;
        for (c, acquire) in ops {
            if acquire {
                let got = t.try_acquire(CoreId(c));
                prop_assert_eq!(got, model.is_none() || model == Some(c));
                if got {
                    model = Some(c);
                }
            } else {
                t.release(CoreId(c));
                if model == Some(c) {
                    model = None;
                }
            }
            prop_assert_eq!(t.holder(), model.map(CoreId));
        }
    }
}
