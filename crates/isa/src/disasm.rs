//! Disassembly: human-readable rendering of instructions and programs,
//! and the inverse parser that reassembles a disassembly listing back
//! into a [`Program`].

use crate::{AluOp, Cond, Instr, Program, ProgramBuilder, Reg};
use std::collections::HashMap;
use std::fmt;

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Rem => "rem",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Mv { rd, rs } => write!(f, "mv {rd}, {rs}"),
            Instr::Alu { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            Instr::AluImm { op, rd, rs, imm } => write!(f, "{op} {rd}, {rs}, {imm}"),
            Instr::Ld { rd, base, offset } => {
                if *offset < 0 {
                    write!(f, "ld {rd}, [{base}{offset}]")
                } else {
                    write!(f, "ld {rd}, [{base}+{offset}]")
                }
            }
            Instr::St { base, offset, src } => {
                if *offset < 0 {
                    write!(f, "st [{base}{offset}], {src}")
                } else {
                    write!(f, "st [{base}+{offset}], {src}")
                }
            }
            Instr::Branch { cond, rs1, rs2, .. } => write!(f, "b{cond} {rs1}, {rs2}"),
            Instr::Jmp { .. } => write!(f, "jmp"),
            Instr::Nop { cycles } => write!(f, "compute {cycles}"),
            Instr::XEnd => write!(f, "xend"),
            Instr::XAbort { code } => write!(f, "xabort {code}"),
        }
    }
}

impl Program {
    /// Renders the whole program, one instruction per line, with branch
    /// targets resolved to instruction indices.
    ///
    /// # Examples
    ///
    /// ```
    /// use clear_isa::{ProgramBuilder, Reg};
    ///
    /// let mut b = ProgramBuilder::new();
    /// b.li(Reg(1), 7).st(Reg(0), 8, Reg(1)).xend();
    /// let text = b.build().disassemble();
    /// assert!(text.contains("li r1, 7"));
    /// assert!(text.contains("st [r0+8], r1"));
    /// ```
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for pc in 0..self.len() {
            let instr = self.fetch(pc);
            let rendered = match instr {
                Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    format!("b{cond} {rs1}, {rs2} -> @{}", self.resolve(*target))
                }
                Instr::Jmp { target } => format!("jmp -> @{}", self.resolve(*target)),
                other => other.to_string(),
            };
            out.push_str(&format!("{pc:>4}: {rendered}\n"));
        }
        out
    }
}

/// Parses one line of [`Program::disassemble`] output back into its
/// instruction and optional branch-target pc.
fn parse_line(line: &str) -> Result<(Instr, Option<usize>), String> {
    let err = |msg: &str| format!("{msg} in {line:?}");
    let reg = |tok: &str| -> Result<Reg, String> {
        let n: u8 = tok
            .strip_prefix('r')
            .ok_or_else(|| err("expected register"))?
            .parse()
            .map_err(|_| err("bad register index"))?;
        Ok(Reg(n))
    };
    // Split off a trailing "-> @N" target, if any.
    let (body, target) = match line.split_once("->") {
        Some((body, t)) => {
            let pc: usize = t
                .trim()
                .strip_prefix('@')
                .ok_or_else(|| err("expected @pc target"))?
                .parse()
                .map_err(|_| err("bad target pc"))?;
            (body.trim(), Some(pc))
        }
        None => (line.trim(), None),
    };
    let (mnemonic, rest) = body.split_once(' ').unwrap_or((body, ""));
    let ops: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let alu = |name: &str| -> Option<AluOp> {
        Some(match name {
            "add" => AluOp::Add,
            "sub" => AluOp::Sub,
            "mul" => AluOp::Mul,
            "and" => AluOp::And,
            "or" => AluOp::Or,
            "xor" => AluOp::Xor,
            "shl" => AluOp::Shl,
            "shr" => AluOp::Shr,
            "rem" => AluOp::Rem,
            _ => return None,
        })
    };
    let cond = |name: &str| -> Option<Cond> {
        Some(match name {
            "beq" => Cond::Eq,
            "bne" => Cond::Ne,
            "blt" => Cond::Lt,
            "bge" => Cond::Ge,
            _ => return None,
        })
    };
    // "[rN+off]" / "[rN-off]" memory operand.
    let mem_operand = |tok: &str| -> Result<(Reg, i64), String> {
        let inner = tok
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| err("expected [base+offset]"))?;
        let split = inner[1..]
            .find(['+', '-'])
            .map(|i| i + 1)
            .ok_or_else(|| err("expected signed offset"))?;
        let base = reg(&inner[..split])?;
        let offset: i64 = inner[split..].parse().map_err(|_| err("bad byte offset"))?;
        Ok((base, offset))
    };
    let want = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err("wrong operand count"))
        }
    };
    let instr = match mnemonic {
        "li" => {
            want(2)?;
            Instr::Li {
                rd: reg(ops[0])?,
                imm: ops[1].parse().map_err(|_| err("bad immediate"))?,
            }
        }
        "mv" => {
            want(2)?;
            Instr::Mv {
                rd: reg(ops[0])?,
                rs: reg(ops[1])?,
            }
        }
        "ld" => {
            want(2)?;
            let (base, offset) = mem_operand(ops[1])?;
            Instr::Ld {
                rd: reg(ops[0])?,
                base,
                offset,
            }
        }
        "st" => {
            want(2)?;
            let (base, offset) = mem_operand(ops[0])?;
            Instr::St {
                base,
                offset,
                src: reg(ops[1])?,
            }
        }
        "compute" => {
            want(1)?;
            Instr::Nop {
                cycles: ops[0].parse().map_err(|_| err("bad cycle count"))?,
            }
        }
        "xend" => {
            want(0)?;
            Instr::XEnd
        }
        "xabort" => {
            want(1)?;
            Instr::XAbort {
                code: ops[0].parse().map_err(|_| err("bad abort code"))?,
            }
        }
        "jmp" => {
            want(0)?;
            // Target is attached by the caller; emit a placeholder label.
            return Ok((
                Instr::Jmp {
                    target: crate::Label(0),
                },
                Some(target.ok_or_else(|| err("jmp without target"))?),
            ));
        }
        m => {
            if let Some(op) = alu(m) {
                want(3)?;
                let rd = reg(ops[0])?;
                let rs = reg(ops[1])?;
                if ops[2].starts_with('r') {
                    Instr::Alu {
                        op,
                        rd,
                        rs1: rs,
                        rs2: reg(ops[2])?,
                    }
                } else {
                    Instr::AluImm {
                        op,
                        rd,
                        rs,
                        imm: ops[2].parse().map_err(|_| err("bad immediate"))?,
                    }
                }
            } else if let Some(c) = cond(m) {
                want(2)?;
                return Ok((
                    Instr::Branch {
                        cond: c,
                        rs1: reg(ops[0])?,
                        rs2: reg(ops[1])?,
                        target: crate::Label(0),
                    },
                    Some(target.ok_or_else(|| err("branch without target"))?),
                ));
            } else {
                return Err(err("unknown mnemonic"));
            }
        }
    };
    if target.is_some() {
        return Err(err("unexpected target"));
    }
    Ok((instr, None))
}

/// Reassembles a [`Program::disassemble`] listing into a [`Program`].
///
/// The parser accepts exactly the surface the disassembler emits: one
/// `pc: instr` line per instruction, branch and jump targets given as
/// resolved `@pc` indices. Together with [`Program::disassemble`] this
/// forms a round-trip (`parse_program(p.disassemble())` disassembles back
/// to the identical text), which keeps the disassembly a faithful surface
/// for analyzer diagnostics.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input,
/// out-of-range targets, or non-contiguous pc numbering.
///
/// # Examples
///
/// ```
/// use clear_isa::{parse_program, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg(1), 7).st(Reg(0), 8, Reg(1)).xend();
/// let text = b.build().disassemble();
/// let p = parse_program(&text).unwrap();
/// assert_eq!(p.disassemble(), text);
/// ```
pub fn parse_program(text: &str) -> Result<Program, String> {
    let mut parsed: Vec<(Instr, Option<usize>)> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let (pc_str, body) = line
            .split_once(':')
            .ok_or_else(|| format!("missing pc prefix in {line:?}"))?;
        let pc: usize = pc_str
            .trim()
            .parse()
            .map_err(|_| format!("bad pc in {line:?}"))?;
        if pc != parsed.len() {
            return Err(format!("non-contiguous pc {pc} in {line:?}"));
        }
        parsed.push(parse_line(body.trim())?);
    }
    if parsed.is_empty() {
        return Err("empty listing".into());
    }
    let n = parsed.len();
    let mut b = ProgramBuilder::new();
    let mut labels: HashMap<usize, crate::Label> = HashMap::new();
    for target in parsed.iter().filter_map(|(_, t)| *t) {
        if target > parsed.len() {
            return Err(format!("target @{target} out of range"));
        }
        labels.entry(target).or_insert_with(|| b.label());
    }
    for (pc, (instr, target)) in parsed.into_iter().enumerate() {
        if let Some(l) = labels.get(&pc) {
            b.bind(*l);
        }
        match (instr, target) {
            (Instr::Jmp { .. }, Some(t)) => {
                b.jmp(labels[&t]);
            }
            (Instr::Branch { cond, rs1, rs2, .. }, Some(t)) => {
                b.branch(cond, rs1, rs2, labels[&t]);
            }
            (i, None) => {
                b.push(i);
            }
            (i, Some(_)) => unreachable!("non-control instruction {i} with target"),
        }
    }
    // A target one past the last instruction is representable (a label
    // bound after the final emit); bind it so build() succeeds.
    if let Some(l) = labels.get(&n) {
        b.bind(*l);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramBuilder, Reg};

    #[test]
    fn instruction_rendering() {
        assert_eq!(Instr::Li { rd: Reg(1), imm: 7 }.to_string(), "li r1, 7");
        assert_eq!(
            Instr::Mv {
                rd: Reg(2),
                rs: Reg(3)
            }
            .to_string(),
            "mv r2, r3"
        );
        assert_eq!(
            Instr::Alu {
                op: AluOp::Xor,
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(3)
            }
            .to_string(),
            "xor r1, r2, r3"
        );
        assert_eq!(
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg(1),
                rs: Reg(1),
                imm: 8
            }
            .to_string(),
            "add r1, r1, 8"
        );
        assert_eq!(
            Instr::Ld {
                rd: Reg(4),
                base: Reg(0),
                offset: 16
            }
            .to_string(),
            "ld r4, [r0+16]"
        );
        assert_eq!(
            Instr::Ld {
                rd: Reg(4),
                base: Reg(0),
                offset: -8
            }
            .to_string(),
            "ld r4, [r0-8]"
        );
        assert_eq!(
            Instr::St {
                base: Reg(0),
                offset: 0,
                src: Reg(5)
            }
            .to_string(),
            "st [r0+0], r5"
        );
        assert_eq!(Instr::Nop { cycles: 3 }.to_string(), "compute 3");
        assert_eq!(Instr::XEnd.to_string(), "xend");
        assert_eq!(Instr::XAbort { code: 2 }.to_string(), "xabort 2");
    }

    #[test]
    fn program_disassembly_resolves_targets() {
        let mut b = ProgramBuilder::new();
        let done = b.label();
        b.branch(Cond::Eq, Reg(1), Reg(2), done)
            .li(Reg(3), 1)
            .bind(done)
            .xend();
        let text = b.build().disassemble();
        assert!(text.contains("beq r1, r2 -> @2"), "{text}");
        assert!(text.lines().count() == 3);
    }

    #[test]
    fn parse_round_trips_every_instruction_shape() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        let done = b.label();
        b.bind(top)
            .li(Reg(0), 7)
            .mv(Reg(1), Reg(0))
            .alu(AluOp::Xor, Reg(2), Reg(0), Reg(1))
            .alui(AluOp::Add, Reg(3), Reg(2), 12)
            .ld(Reg(4), Reg(0), -8)
            .st(Reg(0), 16, Reg(4))
            .branch(Cond::Lt, Reg(1), Reg(2), done)
            .compute(5)
            .jmp(top)
            .bind(done)
            .xabort(3)
            .xend();
        let p = b.build();
        let text = p.disassemble();
        let q = parse_program(&text).expect("parses");
        // Label *numbering* may differ (labels are renamed in order of
        // first use), so compare the resolved control flow, not structure.
        assert_eq!(q.len(), p.len());
        for pc in 0..p.len() {
            assert_eq!(q.successors(pc), p.successors(pc), "pc {pc}");
        }
        assert_eq!(q.disassemble(), text);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_program("").is_err());
        assert!(parse_program("0: frob r1").is_err());
        assert!(parse_program("0: li r1").is_err());
        assert!(parse_program("0: jmp\n1: xend").is_err(), "jmp sans target");
        assert!(parse_program("1: xend").is_err(), "non-contiguous pc");
        assert!(
            parse_program("0: jmp -> @9\n1: xend").is_err(),
            "oob target"
        );
        assert!(parse_program("xend").is_err(), "missing pc prefix");
        assert!(parse_program("0: ld r1, [r0*4]").is_err(), "bad operand");
    }

    #[test]
    fn parse_accepts_end_of_program_target() {
        // A branch to one-past-the-last-instruction is representable by
        // the builder; the parser must accept it too.
        let mut b = ProgramBuilder::new();
        let end = b.label();
        b.branch(Cond::Eq, Reg(0), Reg(0), end).xend().bind(end);
        let p = b.build();
        let text = p.disassemble();
        assert!(text.contains("-> @2"), "{text}");
        let q = parse_program(&text).expect("parses");
        assert_eq!(q.disassemble(), text);
    }
}
