//! Disassembly: human-readable rendering of instructions and programs.

use crate::{AluOp, Cond, Instr, Program};
use std::fmt;

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Rem => "rem",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Mv { rd, rs } => write!(f, "mv {rd}, {rs}"),
            Instr::Alu { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            Instr::AluImm { op, rd, rs, imm } => write!(f, "{op} {rd}, {rs}, {imm}"),
            Instr::Ld { rd, base, offset } => {
                if *offset < 0 {
                    write!(f, "ld {rd}, [{base}{offset}]")
                } else {
                    write!(f, "ld {rd}, [{base}+{offset}]")
                }
            }
            Instr::St { base, offset, src } => {
                if *offset < 0 {
                    write!(f, "st [{base}{offset}], {src}")
                } else {
                    write!(f, "st [{base}+{offset}], {src}")
                }
            }
            Instr::Branch { cond, rs1, rs2, .. } => write!(f, "b{cond} {rs1}, {rs2}"),
            Instr::Jmp { .. } => write!(f, "jmp"),
            Instr::Nop { cycles } => write!(f, "compute {cycles}"),
            Instr::XEnd => write!(f, "xend"),
            Instr::XAbort { code } => write!(f, "xabort {code}"),
        }
    }
}

impl Program {
    /// Renders the whole program, one instruction per line, with branch
    /// targets resolved to instruction indices.
    ///
    /// # Examples
    ///
    /// ```
    /// use clear_isa::{ProgramBuilder, Reg};
    ///
    /// let mut b = ProgramBuilder::new();
    /// b.li(Reg(1), 7).st(Reg(0), 8, Reg(1)).xend();
    /// let text = b.build().disassemble();
    /// assert!(text.contains("li r1, 7"));
    /// assert!(text.contains("st [r0+8], r1"));
    /// ```
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for pc in 0..self.len() {
            let instr = self.fetch(pc);
            let rendered = match instr {
                Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    format!("b{cond} {rs1}, {rs2} -> @{}", self.resolve(*target))
                }
                Instr::Jmp { target } => format!("jmp -> @{}", self.resolve(*target)),
                other => other.to_string(),
            };
            out.push_str(&format!("{pc:>4}: {rendered}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramBuilder, Reg};

    #[test]
    fn instruction_rendering() {
        assert_eq!(Instr::Li { rd: Reg(1), imm: 7 }.to_string(), "li r1, 7");
        assert_eq!(
            Instr::Mv {
                rd: Reg(2),
                rs: Reg(3)
            }
            .to_string(),
            "mv r2, r3"
        );
        assert_eq!(
            Instr::Alu {
                op: AluOp::Xor,
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(3)
            }
            .to_string(),
            "xor r1, r2, r3"
        );
        assert_eq!(
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg(1),
                rs: Reg(1),
                imm: 8
            }
            .to_string(),
            "add r1, r1, 8"
        );
        assert_eq!(
            Instr::Ld {
                rd: Reg(4),
                base: Reg(0),
                offset: 16
            }
            .to_string(),
            "ld r4, [r0+16]"
        );
        assert_eq!(
            Instr::Ld {
                rd: Reg(4),
                base: Reg(0),
                offset: -8
            }
            .to_string(),
            "ld r4, [r0-8]"
        );
        assert_eq!(
            Instr::St {
                base: Reg(0),
                offset: 0,
                src: Reg(5)
            }
            .to_string(),
            "st [r0+0], r5"
        );
        assert_eq!(Instr::Nop { cycles: 3 }.to_string(), "compute 3");
        assert_eq!(Instr::XEnd.to_string(), "xend");
        assert_eq!(Instr::XAbort { code: 2 }.to_string(), "xabort 2");
    }

    #[test]
    fn program_disassembly_resolves_targets() {
        let mut b = ProgramBuilder::new();
        let done = b.label();
        b.branch(Cond::Eq, Reg(1), Reg(2), done)
            .li(Reg(3), 1)
            .bind(done)
            .xend();
        let text = b.build().disassemble();
        assert!(text.contains("beq r1, r2 -> @2"), "{text}");
        assert!(text.lines().count() == 3);
    }
}
