//! Programs and the label-resolving program builder.

use crate::{AluOp, Cond, Instr, Label, Reg};

/// An immutable, label-resolved atomic-region program.
///
/// Produced by [`ProgramBuilder::build`]. Branch targets are instruction
/// indices. A program always terminates in [`Instr::XEnd`] or
/// [`Instr::XAbort`] on every path (enforced dynamically by the VM: running
/// off the end is a builder bug and panics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
    targets: Vec<usize>,
}

impl Program {
    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` runs past the end of the program, which indicates a
    /// malformed program (missing `XEnd`).
    #[inline]
    pub fn fetch(&self, pc: usize) -> &Instr {
        self.instrs
            .get(pc)
            .expect("program ran past its end: missing XEnd/XAbort")
    }

    /// Resolves a label to its instruction index.
    #[inline]
    pub fn resolve(&self, label: Label) -> usize {
        self.targets[label.0 as usize]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The full instruction stream, in program order.
    ///
    /// Branch targets inside the returned instructions are [`Label`]s;
    /// resolve them with [`Program::resolve`]. Static analyses (CFG
    /// recovery, dataflow) walk this slice instead of calling
    /// [`Program::fetch`] per pc.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Control-flow successors of the instruction at `pc`.
    ///
    /// A fall-through successor equal to [`Program::len`] means control
    /// runs off the end of the program — the VM panics on that, and the
    /// static lint pass reports it as an unbalanced atomic region.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn successors(&self, pc: usize) -> Successors {
        match self.instrs[pc] {
            Instr::XEnd | Instr::XAbort { .. } => Successors {
                fall_through: None,
                target: None,
            },
            Instr::Jmp { target } => Successors {
                fall_through: None,
                target: Some(self.resolve(target)),
            },
            Instr::Branch { target, .. } => Successors {
                fall_through: Some(pc + 1),
                target: Some(self.resolve(target)),
            },
            _ => Successors {
                fall_through: Some(pc + 1),
                target: None,
            },
        }
    }
}

/// The (at most two) control-flow successors of one instruction.
///
/// Produced by [`Program::successors`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Successors {
    /// The next sequential pc, when control can fall through. May equal
    /// the program length for a malformed program that runs off its end.
    pub fall_through: Option<usize>,
    /// The resolved branch/jump target, when the instruction has one.
    pub target: Option<usize>,
}

impl Successors {
    /// Iterates the successors in (fall-through, target) order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        self.fall_through.into_iter().chain(self.target)
    }
}

/// Incrementally builds a [`Program`], resolving forward label references.
///
/// All emit methods return `&mut self` for chaining.
///
/// # Examples
///
/// ```
/// use clear_isa::{Cond, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let done = b.label();
/// b.li(Reg(0), 3)
///     .li(Reg(1), 0)
///     .branch(Cond::Eq, Reg(0), Reg(1), done)
///     .addi(Reg(1), Reg(1), 1)
///     .bind(done)
///     .xend();
/// let p = b.build();
/// assert_eq!(p.len(), 5);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    targets: Vec<Option<usize>>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.targets.push(None);
        Label((self.targets.len() - 1) as u32)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = &mut self.targets[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.instrs.len());
        self
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Instructions emitted so far. Program generators use this to keep
    /// drafts within dynamic-footprint budgets while building.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when nothing has been emitted yet ([`ProgramBuilder::build`]
    /// would panic).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// `rd <- imm`.
    pub fn li(&mut self, rd: Reg, imm: u64) -> &mut Self {
        self.push(Instr::Li { rd, imm })
    }

    /// `rd <- rs`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.push(Instr::Mv { rd, rs })
    }

    /// `rd <- rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Instr::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        })
    }

    /// `rd <- rs + imm`.
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: u64) -> &mut Self {
        self.push(Instr::AluImm {
            op: AluOp::Add,
            rd,
            rs,
            imm,
        })
    }

    /// `rd <- rs - imm`.
    pub fn subi(&mut self, rd: Reg, rs: Reg, imm: u64) -> &mut Self {
        self.push(Instr::AluImm {
            op: AluOp::Sub,
            rd,
            rs,
            imm,
        })
    }

    /// `rd <- op(rs1, rs2)`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Instr::Alu { op, rd, rs1, rs2 })
    }

    /// `rd <- op(rs, imm)`.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs: Reg, imm: u64) -> &mut Self {
        self.push(Instr::AluImm { op, rd, rs, imm })
    }

    /// `rd <- mem[base + offset]`.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.push(Instr::Ld { rd, base, offset })
    }

    /// `mem[base + offset] <- src`.
    pub fn st(&mut self, base: Reg, offset: i64, src: Reg) -> &mut Self {
        self.push(Instr::St { base, offset, src })
    }

    /// Conditional branch.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.push(Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        })
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.push(Instr::Jmp { target })
    }

    /// Non-memory work of `cycles` cycles.
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        self.push(Instr::Nop { cycles })
    }

    /// Commit the atomic region.
    pub fn xend(&mut self) -> &mut Self {
        self.push(Instr::XEnd)
    }

    /// Explicitly abort with `code`.
    pub fn xabort(&mut self, code: u64) -> &mut Self {
        self.push(Instr::XAbort { code })
    }

    /// Finalises the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound or the program is
    /// empty.
    pub fn build(self) -> Program {
        assert!(!self.instrs.is_empty(), "empty program");
        let targets: Vec<usize> = self
            .targets
            .iter()
            .enumerate()
            .map(|(i, t)| t.unwrap_or_else(|| panic!("label {i} never bound")))
            .collect();
        Program {
            instrs: self.instrs,
            targets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_label_resolves() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jmp(l).li(Reg(0), 1).bind(l).xend();
        let p = b.build();
        assert_eq!(p.resolve(l), 2);
    }

    #[test]
    fn backward_label_resolves() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top).compute(1).jmp(top);
        // Unreachable xend to satisfy build-time sanity.
        b.xend();
        let p = b.build();
        assert_eq!(p.resolve(top), 0);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jmp(l).xend();
        b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l).xend();
        b.bind(l);
    }

    #[test]
    #[should_panic(expected = "empty program")]
    fn empty_build_panics() {
        ProgramBuilder::new().build();
    }

    #[test]
    fn fetch_returns_instruction() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(7), 42).xend();
        let p = b.build();
        assert_eq!(
            *p.fetch(0),
            Instr::Li {
                rd: Reg(7),
                imm: 42
            }
        );
        assert_eq!(*p.fetch(1), Instr::XEnd);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn successors_cover_all_shapes() {
        let mut b = ProgramBuilder::new();
        let done = b.label();
        b.li(Reg(0), 1) // 0: falls through
            .branch(Cond::Eq, Reg(0), Reg(1), done) // 1: fall + target
            .jmp(done) // 2: target only
            .bind(done)
            .xend(); // 3: none
        let p = b.build();
        assert_eq!(
            p.successors(0),
            Successors {
                fall_through: Some(1),
                target: None
            }
        );
        assert_eq!(
            p.successors(1),
            Successors {
                fall_through: Some(2),
                target: Some(3)
            }
        );
        assert_eq!(p.successors(1).iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(
            p.successors(2),
            Successors {
                fall_through: None,
                target: Some(3)
            }
        );
        assert_eq!(p.successors(3).iter().count(), 0);
    }

    #[test]
    fn fall_through_off_end_is_visible() {
        let mut b = ProgramBuilder::new();
        b.xabort(1).li(Reg(0), 1);
        let p = b.build();
        // The trailing li falls through past the end; the lint pass
        // reports this (the block is also unreachable).
        assert_eq!(p.successors(1).fall_through, Some(2));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn instrs_exposes_stream() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(3), 9).xend();
        let p = b.build();
        assert_eq!(p.instrs().len(), 2);
        assert!(matches!(p.instrs()[0], Instr::Li { .. }));
        assert!(p.instrs()[1].ends_region());
        assert!(p.instrs()[1].is_terminator());
        assert!(!p.instrs()[0].is_terminator());
    }

    #[test]
    #[should_panic(expected = "ran past its end")]
    fn fetch_past_end_panics() {
        let mut b = ProgramBuilder::new();
        b.xend();
        let p = b.build();
        p.fetch(1);
    }
}
