//! Mini-ISA for the CLEAR reproduction.
//!
//! The paper evaluates CLEAR on x86 programs running under gem5. We replace
//! that substrate with a small 64-bit load/store ISA interpreted one
//! instruction per simulated step. The ISA preserves exactly the properties
//! CLEAR's hardware observes:
//!
//! * **memory footprint** — loads/stores carry their effective cacheline;
//! * **indirection dataflow** — every register has an *indirection bit*
//!   (§5 ① of the paper), set when the register is written by a load or by
//!   an instruction whose sources are indirect; address registers of memory
//!   operations and condition registers of branches report their indirection
//!   so CLEAR can track footprint immutability;
//! * **speculative-window pressure** — the VM counts retired instructions
//!   and stores so the machine can model ROB/SQ exhaustion.
//!
//! A program is one **atomic region**: execution implicitly begins with
//! `XBegin` at pc 0 and ends at [`Instr::XEnd`] (commit) or [`Instr::XAbort`]
//! (explicit abort). The machine re-runs the same program on retries.
//!
//! # Examples
//!
//! Build and run the paper's Listing 1 (`arrayswap`): swap two words whose
//! addresses were computed *outside* the AR.
//!
//! ```
//! use clear_isa::{Effect, ProgramBuilder, Reg, Vm};
//! use clear_mem::{Addr, Memory};
//!
//! let (a, b) = (Reg(1), Reg(2));
//! let (ea, eb) = (Reg(3), Reg(4));
//! let mut p = ProgramBuilder::new();
//! p.ld(ea, a, 0).ld(eb, b, 0).st(a, 0, eb).st(b, 0, ea).xend();
//! let program = p.build();
//!
//! let mut mem = Memory::new();
//! let arr = mem.alloc_words(2);
//! mem.store_word(arr, 10);
//! mem.store_word(arr.add_words(1), 20);
//!
//! let mut vm = Vm::new(std::sync::Arc::new(program));
//! vm.set_reg(a, arr.0);
//! vm.set_reg(b, arr.add_words(1).0);
//! loop {
//!     match vm.step() {
//!         Effect::Load { addr, .. } => {
//!             let v = mem.load_word(addr);
//!             vm.finish_load(v);
//!         }
//!         Effect::Store { addr, value, .. } => mem.store_word(addr, value),
//!         Effect::Commit => break,
//!         _ => {}
//!     }
//! }
//! assert_eq!(mem.load_word(arr), 20);
//! assert_eq!(mem.load_word(arr.add_words(1)), 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod disasm;
mod instr;
mod program;
mod vm;
mod workload;

pub use disasm::parse_program;
pub use instr::{AluOp, Cond, Instr, Label, Reg, NUM_REGS};
pub use program::{Program, ProgramBuilder, Successors};
pub use vm::{Effect, Vm, VmState};
pub use workload::{ArId, ArInvocation, ArSpec, Mutability, Workload, WorkloadMeta};
