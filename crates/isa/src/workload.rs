//! The workload interface: how benchmarks feed atomic regions to the machine.

use crate::{Program, Reg};
use clear_mem::Memory;
use std::fmt;
use std::sync::Arc;

/// Static identity of an atomic region.
///
/// Plays the role of the *Program Counter* field of the paper's Explored
/// Region Table: two invocations of the same source-level AR share the id,
/// so what discovery learned about one execution can steer the next.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArId(pub u32);

impl fmt::Display for ArId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AR{}", self.0)
    }
}

/// Static footprint-mutability class of an AR (Table 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mutability {
    /// The AR always accesses the same cachelines on a retry: addresses are
    /// computed outside the AR, no indirections inside (Listing 1).
    Immutable,
    /// Addresses are computed through indirections whose values are not
    /// modified by concurrent ARs (Listing 2).
    LikelyImmutable,
    /// The indirection values can change between executions, so the
    /// footprint can change on a retry (Listing 3).
    Mutable,
}

impl fmt::Display for Mutability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mutability::Immutable => "immutable",
            Mutability::LikelyImmutable => "likely-immutable",
            Mutability::Mutable => "mutable",
        };
        f.write_str(s)
    }
}

/// Static description of one AR of a workload, used by the Table 1 harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArSpec {
    /// Identity shared by all invocations of this AR.
    pub id: ArId,
    /// Human-readable name (e.g. `"swap"`, `"enqueue"`).
    pub name: String,
    /// Static mutability class per the paper's §3 criteria.
    pub mutability: Mutability,
}

/// Static description of a workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadMeta {
    /// Benchmark name as it appears in the paper's figures.
    pub name: String,
    /// The ARs the workload executes at least once (Table 1, column 2).
    pub ars: Vec<ArSpec>,
}

/// One dynamic invocation of an atomic region.
#[derive(Clone, Debug)]
pub struct ArInvocation {
    /// Static AR identity (ERT key).
    pub ar: ArId,
    /// The AR body. Shared so retries re-run the identical program.
    pub program: Arc<Program>,
    /// Entry register values, computed *outside* the AR (indirection-free).
    pub args: Vec<(Reg, u64)>,
    /// Non-AR cycles the thread spends before entering this AR (models the
    /// code between atomic regions).
    pub think_cycles: u64,
    /// The exact cachelines this invocation will access, when knowable
    /// *before* execution (immutable ARs only). Used by the a-priori
    /// locking comparator (MCAS \[33\] / MAD atomics \[16\], §2.2 of the
    /// paper): under that model, eligible ARs lock their footprint up
    /// front and execute non-speculatively from the first attempt.
    /// `None` for ARs whose footprint depends on loaded values.
    pub static_footprint: Option<Vec<clear_mem::LineAddr>>,
}

/// A benchmark: lays out simulated memory and streams AR invocations to each
/// simulated thread.
///
/// Implementations must be deterministic for a fixed construction seed: the
/// machine drives threads in a reproducible order and expects identical runs
/// for identical seeds.
pub trait Workload {
    /// Static description (name + AR classification).
    fn meta(&self) -> WorkloadMeta;

    /// Lays out the benchmark's data structures in simulated memory.
    /// Called exactly once before any [`Workload::next_ar`].
    fn setup(&mut self, mem: &mut Memory, threads: usize);

    /// Produces the next AR for simulated thread `tid`, or `None` when the
    /// thread has finished its share of work.
    ///
    /// `mem` exposes committed memory state; implementations may read it to
    /// parameterise the next operation (like the non-transactional code
    /// between ARs in the original benchmarks) but must not write it.
    fn next_ar(&mut self, tid: usize, mem: &Memory) -> Option<ArInvocation>;

    /// Post-run invariant check over final committed memory, used by
    /// integration tests to verify that atomicity was actually preserved.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let _ = mem;
        Ok(())
    }
}

impl fmt::Debug for dyn Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Workload({})", self.meta().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutability_display() {
        assert_eq!(Mutability::Immutable.to_string(), "immutable");
        assert_eq!(Mutability::LikelyImmutable.to_string(), "likely-immutable");
        assert_eq!(Mutability::Mutable.to_string(), "mutable");
    }

    #[test]
    fn ar_id_display() {
        assert_eq!(ArId(3).to_string(), "AR3");
    }

    #[test]
    fn default_validate_accepts() {
        struct W;
        impl Workload for W {
            fn meta(&self) -> WorkloadMeta {
                WorkloadMeta {
                    name: "w".into(),
                    ars: vec![],
                }
            }
            fn setup(&mut self, _: &mut Memory, _: usize) {}
            fn next_ar(&mut self, _: usize, _: &Memory) -> Option<ArInvocation> {
                None
            }
        }
        assert!(W.validate(&Memory::new()).is_ok());
    }
}
