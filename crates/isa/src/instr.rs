//! Instruction set definition.

use std::fmt;

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 32;

/// A general-purpose register identifier (`r0` .. `r31`).
///
/// All registers are general purpose; there is no hardwired zero register.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Asserts the register index is in range and returns it as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        let i = self.0 as usize;
        assert!(i < NUM_REGS, "register r{} out of range", self.0);
        i
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// ALU operations. All operate on 64-bit values with wrapping semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount masked to 63).
    Shl,
    /// Logical shift right (shift amount masked to 63).
    Shr,
    /// Unsigned remainder; divisor of zero yields zero (no fault).
    Rem,
}

impl AluOp {
    /// Applies the operation.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a % b
                }
            }
        }
    }
}

/// Branch conditions comparing two registers (unsigned).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned greater-or-equal.
    Ge,
}

impl Cond {
    /// Evaluates the condition.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }
}

/// A branch target label, resolved by [`ProgramBuilder`](crate::ProgramBuilder).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) u32);

/// One mini-ISA instruction.
///
/// Memory operands use base-register + immediate-offset addressing; the
/// base register's indirection bit determines whether the access is an
/// *indirection* in the paper's sense (the address depends on a value loaded
/// inside the AR).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Instr {
    /// `rd <- imm`. Clears `rd`'s indirection bit.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// `rd <- rs`. Propagates `rs`'s indirection bit.
    Mv {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd <- op(rs1, rs2)`. Propagates the OR of source indirection bits.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `rd <- op(rs, imm)`. Propagates `rs`'s indirection bit.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// Immediate operand.
        imm: u64,
    },
    /// `rd <- mem[rs_base + offset]`. Sets `rd`'s indirection bit.
    Ld {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
    },
    /// `mem[rs_base + offset] <- rs_val`.
    St {
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base.
        offset: i64,
        /// Value register.
        src: Reg,
    },
    /// Conditional branch to `target`.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left comparand.
        rs1: Reg,
        /// Right comparand.
        rs2: Reg,
        /// Branch target.
        target: Label,
    },
    /// Unconditional jump.
    Jmp {
        /// Jump target.
        target: Label,
    },
    /// Models non-memory work (e.g. floating-point compute) taking `cycles`
    /// cycles to retire.
    Nop {
        /// Retire latency in cycles.
        cycles: u32,
    },
    /// Commit the atomic region.
    XEnd,
    /// Explicitly abort the atomic region with a program-defined code.
    XAbort {
        /// Abort code surfaced to the runtime.
        code: u64,
    },
}

impl Instr {
    /// `true` if control never falls through to the next sequential
    /// instruction (`XEnd`, `XAbort`, `Jmp`).
    pub fn is_terminator(&self) -> bool {
        matches!(self, Instr::XEnd | Instr::XAbort { .. } | Instr::Jmp { .. })
    }

    /// `true` if this instruction ends the atomic region (`XEnd`/`XAbort`).
    pub fn ends_region(&self) -> bool {
        matches!(self, Instr::XEnd | Instr::XAbort { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_apply() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::Mul.apply(4, 4), 16);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(16, 4), 1);
        assert_eq!(AluOp::Rem.apply(17, 5), 2);
        assert_eq!(AluOp::Rem.apply(17, 0), 0);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(AluOp::Shl.apply(1, 64), 1);
        assert_eq!(AluOp::Shr.apply(2, 65), 1);
    }

    #[test]
    fn conds_eval() {
        assert!(Cond::Eq.eval(1, 1));
        assert!(Cond::Ne.eval(1, 2));
        assert!(Cond::Lt.eval(1, 2));
        assert!(Cond::Ge.eval(2, 2));
        assert!(!Cond::Lt.eval(2, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        Reg(32).index();
    }

    #[test]
    fn reg_display() {
        assert_eq!(format!("{}", Reg(5)), "r5");
        assert_eq!(format!("{:?}", Reg(5)), "r5");
    }
}
