//! The per-core virtual machine interpreting one atomic-region program.

use crate::{Instr, Program, Reg, NUM_REGS};
use clear_mem::Addr;
use std::fmt;
use std::sync::Arc;

/// Architectural side effect of retiring one instruction.
///
/// The VM itself never touches memory: loads and stores surface as effects
/// so the machine can route them through the store queue, the cache
/// hierarchy, HTM conflict detection and CLEAR.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effect {
    /// A register-only instruction retired.
    Compute {
        /// Cycles the instruction occupies the core.
        cycles: u32,
    },
    /// A load issued. The VM is now blocked in [`VmState::AwaitLoad`]; call
    /// [`Vm::finish_load`] with the loaded value to unblock it.
    Load {
        /// Effective byte address.
        addr: Addr,
        /// Destination register (already recorded internally; exposed for
        /// tracing).
        dst: Reg,
        /// `true` if the address base register carried the indirection bit —
        /// i.e. the address depends on a value loaded inside this AR (§3).
        addr_indirect: bool,
    },
    /// A store retired.
    Store {
        /// Effective byte address.
        addr: Addr,
        /// Value to store.
        value: u64,
        /// `true` if the address base register carried the indirection bit.
        addr_indirect: bool,
    },
    /// A conditional branch retired.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
        /// `true` if either comparand carried the indirection bit — a
        /// control dependence on a value loaded inside the AR (§3).
        cond_indirect: bool,
    },
    /// `XEnd` retired: the atomic region requests commit.
    Commit,
    /// `XAbort` retired: the program explicitly aborts.
    Abort {
        /// Program-supplied abort code.
        code: u64,
    },
}

/// Execution state of a [`Vm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmState {
    /// Ready to retire the next instruction.
    Ready,
    /// Blocked on an outstanding load into the given register.
    AwaitLoad(Reg),
    /// The program committed or aborted; no further steps are legal.
    Finished,
}

/// Interprets one atomic-region [`Program`], tracking per-register
/// indirection bits exactly as the paper's extended register file (§5 ①).
///
/// The indirection bit of a register is set when it is written by a load,
/// or by any instruction whose source registers have the bit set; `Li`
/// clears it. Entry registers set via [`Vm::set_reg`] start non-indirect
/// (they were computed outside the AR).
#[derive(Clone)]
pub struct Vm {
    program: Arc<Program>,
    pc: usize,
    regs: [u64; NUM_REGS],
    indirect: [bool; NUM_REGS],
    state: VmState,
    retired: u64,
    stores_retired: u64,
    loads_retired: u64,
}

impl Vm {
    /// Creates a VM at the start of `program` with all registers zero.
    pub fn new(program: Arc<Program>) -> Self {
        Vm {
            program,
            pc: 0,
            regs: [0; NUM_REGS],
            indirect: [false; NUM_REGS],
            state: VmState::Ready,
            retired: 0,
            stores_retired: 0,
            loads_retired: 0,
        }
    }

    /// Sets an entry register (outside-the-AR input; indirection bit clear).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
        self.indirect[r.index()] = false;
    }

    /// Current value of a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Current indirection bit of a register.
    pub fn reg_indirect(&self, r: Reg) -> bool {
        self.indirect[r.index()]
    }

    /// Current state.
    pub fn state(&self) -> VmState {
        self.state
    }

    /// Instructions retired so far in this execution.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Stores retired so far (the machine checks this against the SQ size).
    pub fn stores_retired(&self) -> u64 {
        self.stores_retired
    }

    /// Loads retired so far.
    pub fn loads_retired(&self) -> u64 {
        self.loads_retired
    }

    /// Resets to the start of the program, clearing registers' indirection
    /// bits but *keeping their values* — the machine restores entry registers
    /// itself via [`Vm::set_reg`] on a retry.
    pub fn restart(&mut self) {
        self.pc = 0;
        self.state = VmState::Ready;
        self.retired = 0;
        self.stores_retired = 0;
        self.loads_retired = 0;
        self.indirect = [false; NUM_REGS];
    }

    fn effective_addr(&self, base: Reg, offset: i64) -> Addr {
        Addr(self.regs[base.index()].wrapping_add_signed(offset))
    }

    /// Returns the effect [`Vm::step`] would produce without retiring the
    /// instruction — the parallel-step classifier's lookahead. Implemented
    /// by stepping a clone, so it can never disagree with the real step.
    ///
    /// # Panics
    ///
    /// Panics exactly when [`Vm::step`] would.
    pub fn peek_effect(&self) -> Effect {
        let mut probe = self.clone();
        probe.step()
    }

    /// Retires the next instruction and returns its effect.
    ///
    /// # Panics
    ///
    /// Panics if the VM is [`VmState::Finished`] or blocked in
    /// [`VmState::AwaitLoad`] (call [`Vm::finish_load`] first). Null or
    /// unaligned effective addresses are *not* VM errors: they surface in
    /// the returned effect and the runtime treats them as simulated faults.
    pub fn step(&mut self) -> Effect {
        assert_eq!(self.state, VmState::Ready, "step() while not ready");
        let instr = self.program.fetch(self.pc).clone();
        self.pc += 1;
        self.retired += 1;
        match instr {
            Instr::Li { rd, imm } => {
                self.regs[rd.index()] = imm;
                self.indirect[rd.index()] = false;
                Effect::Compute { cycles: 1 }
            }
            Instr::Mv { rd, rs } => {
                self.regs[rd.index()] = self.regs[rs.index()];
                self.indirect[rd.index()] = self.indirect[rs.index()];
                Effect::Compute { cycles: 1 }
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                self.regs[rd.index()] = op.apply(self.regs[rs1.index()], self.regs[rs2.index()]);
                self.indirect[rd.index()] =
                    self.indirect[rs1.index()] || self.indirect[rs2.index()];
                Effect::Compute { cycles: 1 }
            }
            Instr::AluImm { op, rd, rs, imm } => {
                self.regs[rd.index()] = op.apply(self.regs[rs.index()], imm);
                self.indirect[rd.index()] = self.indirect[rs.index()];
                Effect::Compute { cycles: 1 }
            }
            Instr::Ld { rd, base, offset } => {
                // Null/unaligned addresses are surfaced to the runtime,
                // which treats them as simulated faults (§7's "Others"
                // abort class), not VM panics.
                let addr = self.effective_addr(base, offset);
                let addr_indirect = self.indirect[base.index()];
                self.state = VmState::AwaitLoad(rd);
                self.loads_retired += 1;
                Effect::Load {
                    addr,
                    dst: rd,
                    addr_indirect,
                }
            }
            Instr::St { base, offset, src } => {
                let addr = self.effective_addr(base, offset);
                self.stores_retired += 1;
                Effect::Store {
                    addr,
                    value: self.regs[src.index()],
                    addr_indirect: self.indirect[base.index()],
                }
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond.eval(self.regs[rs1.index()], self.regs[rs2.index()]);
                let cond_indirect = self.indirect[rs1.index()] || self.indirect[rs2.index()];
                if taken {
                    self.pc = self.program.resolve(target);
                }
                Effect::Branch {
                    taken,
                    cond_indirect,
                }
            }
            Instr::Jmp { target } => {
                self.pc = self.program.resolve(target);
                Effect::Compute { cycles: 1 }
            }
            Instr::Nop { cycles } => Effect::Compute { cycles },
            Instr::XEnd => {
                self.state = VmState::Finished;
                Effect::Commit
            }
            Instr::XAbort { code } => {
                self.state = VmState::Finished;
                Effect::Abort { code }
            }
        }
    }

    /// Completes an outstanding load with `value`, setting the destination
    /// register's indirection bit.
    ///
    /// # Panics
    ///
    /// Panics if no load is outstanding.
    pub fn finish_load(&mut self, value: u64) {
        match self.state {
            VmState::AwaitLoad(rd) => {
                self.regs[rd.index()] = value;
                self.indirect[rd.index()] = true;
                self.state = VmState::Ready;
            }
            _ => panic!("finish_load without outstanding load"),
        }
    }
}

impl fmt::Debug for Vm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm")
            .field("pc", &self.pc)
            .field("state", &self.state)
            .field("retired", &self.retired)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, ProgramBuilder};

    fn run_to_end(vm: &mut Vm, mem: &mut clear_mem::Memory) -> Effect {
        loop {
            match vm.step() {
                Effect::Load { addr, .. } => {
                    let v = mem.load_word(addr);
                    vm.finish_load(v);
                }
                Effect::Store { addr, value, .. } => mem.store_word(addr, value),
                e @ (Effect::Commit | Effect::Abort { .. }) => return e,
                _ => {}
            }
        }
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(0), 6)
            .li(Reg(1), 7)
            .alu(crate::AluOp::Mul, Reg(2), Reg(0), Reg(1))
            .xend();
        let mut vm = Vm::new(Arc::new(b.build()));
        let mut mem = clear_mem::Memory::new();
        assert_eq!(run_to_end(&mut vm, &mut mem), Effect::Commit);
        assert_eq!(vm.reg(Reg(2)), 42);
        assert_eq!(vm.retired(), 4);
    }

    #[test]
    fn load_sets_indirection_and_propagates() {
        let mut b = ProgramBuilder::new();
        b.ld(Reg(1), Reg(0), 0) // r1 <- mem[r0], r1 indirect
            .addi(Reg(2), Reg(1), 8) // r2 indirect via r1
            .ld(Reg(3), Reg(2), 0) // address base r2 is indirect
            .xend();
        let mut vm = Vm::new(Arc::new(b.build()));
        let mut mem = clear_mem::Memory::new();
        let a = mem.alloc_words(2);
        mem.store_word(a, a.0); // self-pointer
        vm.set_reg(Reg(0), a.0);

        // First load: base r0 is a direct entry register.
        match vm.step() {
            Effect::Load {
                addr_indirect,
                addr,
                ..
            } => {
                assert!(!addr_indirect);
                vm.finish_load(mem.load_word(addr));
            }
            e => panic!("unexpected {e:?}"),
        }
        assert!(vm.reg_indirect(Reg(1)));
        assert!(matches!(vm.step(), Effect::Compute { .. }));
        assert!(vm.reg_indirect(Reg(2)));

        // Second load: base r2 is indirect.
        match vm.step() {
            Effect::Load { addr_indirect, .. } => assert!(addr_indirect),
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn li_clears_indirection() {
        let mut b = ProgramBuilder::new();
        b.ld(Reg(1), Reg(0), 0)
            .li(Reg(1), 5)
            .st(Reg(1), 0, Reg(1))
            .xend();
        let mut vm = Vm::new(Arc::new(b.build()));
        let mut mem = clear_mem::Memory::new();
        let a = mem.alloc_words(1);
        vm.set_reg(Reg(0), a.0);
        match vm.step() {
            Effect::Load { addr, .. } => vm.finish_load(mem.load_word(addr)),
            e => panic!("unexpected {e:?}"),
        }
        vm.step(); // li
        match vm.step() {
            Effect::Store { addr_indirect, .. } => assert!(!addr_indirect),
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn branch_reports_control_indirection() {
        let mut b = ProgramBuilder::new();
        let out = b.label();
        b.ld(Reg(1), Reg(0), 0)
            .branch(Cond::Eq, Reg(1), Reg(2), out)
            .bind(out)
            .xend();
        let mut vm = Vm::new(Arc::new(b.build()));
        let mut mem = clear_mem::Memory::new();
        let a = mem.alloc_words(1);
        vm.set_reg(Reg(0), a.0);
        match vm.step() {
            Effect::Load { addr, .. } => vm.finish_load(mem.load_word(addr)),
            e => panic!("unexpected {e:?}"),
        }
        match vm.step() {
            Effect::Branch {
                cond_indirect,
                taken,
            } => {
                assert!(cond_indirect);
                assert!(taken); // 0 == 0
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn loop_terminates_via_branch() {
        // for r1 in 0..4 { }
        let mut b = ProgramBuilder::new();
        let top = b.label();
        let done = b.label();
        b.li(Reg(1), 0).li(Reg(2), 4);
        b.bind(top)
            .branch(Cond::Ge, Reg(1), Reg(2), done)
            .addi(Reg(1), Reg(1), 1)
            .jmp(top)
            .bind(done)
            .xend();
        let mut vm = Vm::new(Arc::new(b.build()));
        let mut mem = clear_mem::Memory::new();
        assert_eq!(run_to_end(&mut vm, &mut mem), Effect::Commit);
        assert_eq!(vm.reg(Reg(1)), 4);
    }

    #[test]
    fn xabort_surfaces_code() {
        let mut b = ProgramBuilder::new();
        b.xabort(3);
        let mut vm = Vm::new(Arc::new(b.build()));
        assert_eq!(vm.step(), Effect::Abort { code: 3 });
        assert_eq!(vm.state(), VmState::Finished);
    }

    #[test]
    fn restart_resets_counters_and_indirection() {
        let mut b = ProgramBuilder::new();
        b.ld(Reg(1), Reg(0), 0).xend();
        let mut vm = Vm::new(Arc::new(b.build()));
        let mut mem = clear_mem::Memory::new();
        let a = mem.alloc_words(1);
        vm.set_reg(Reg(0), a.0);
        match vm.step() {
            Effect::Load { addr, .. } => vm.finish_load(mem.load_word(addr)),
            e => panic!("unexpected {e:?}"),
        }
        assert!(vm.reg_indirect(Reg(1)));
        vm.restart();
        assert_eq!(vm.retired(), 0);
        assert!(!vm.reg_indirect(Reg(1)));
        assert_eq!(vm.state(), VmState::Ready);
    }

    #[test]
    fn store_counts_tracked() {
        let mut b = ProgramBuilder::new();
        b.st(Reg(0), 0, Reg(1)).st(Reg(0), 8, Reg(1)).xend();
        let mut vm = Vm::new(Arc::new(b.build()));
        let mut mem = clear_mem::Memory::new();
        let a = mem.alloc_words(2);
        vm.set_reg(Reg(0), a.0);
        run_to_end(&mut vm, &mut mem);
        assert_eq!(vm.stores_retired(), 2);
        assert_eq!(vm.loads_retired(), 0);
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn step_while_awaiting_load_panics() {
        let mut b = ProgramBuilder::new();
        b.ld(Reg(1), Reg(0), 0).xend();
        let mut vm = Vm::new(Arc::new(b.build()));
        vm.set_reg(Reg(0), 64);
        vm.step();
        vm.step();
    }

    #[test]
    #[should_panic(expected = "without outstanding load")]
    fn finish_load_when_ready_panics() {
        let mut b = ProgramBuilder::new();
        b.xend();
        let mut vm = Vm::new(Arc::new(b.build()));
        vm.finish_load(0);
    }
}
