//! Disassemble → reparse round-trip property test.
//!
//! `Program::disassemble` is the surface the static analyzer uses for
//! diagnostics; `parse_program` is its inverse. This test generates a few
//! hundred random (but deterministic — in-tree xorshift, fixed seed, per
//! the no-external-deps rule) programs covering every instruction shape
//! and checks the round trip is exact: the reassembled program renders to
//! byte-identical text and has identical resolved control flow.

use clear_isa::{parse_program, AluOp, Cond, ProgramBuilder, Reg};

/// Minimal xorshift64* PRNG; deterministic substitute for proptest.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn reg(&mut self) -> Reg {
        Reg(self.below(clear_isa::NUM_REGS as u64) as u8)
    }
}

const ALU_OPS: [AluOp; 9] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Rem,
];

const CONDS: [Cond; 4] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge];

/// Builds a random program of `body` instructions plus a final `xend`.
/// All labels are bound to uniformly random pcs in range, so branches can
/// go forwards, backwards, or to the very end.
fn random_program(rng: &mut XorShift, body: usize) -> clear_isa::Program {
    let mut b = ProgramBuilder::new();
    let len = body + 1; // + trailing xend
                        // Pre-plan jump targets so labels can be bound while emitting.
    let mut pending: Vec<(usize, u64)> = Vec::new(); // (bind pc, label idx order)
    let n_labels = 1 + rng.below(4) as usize;
    let labels: Vec<_> = (0..n_labels).map(|_| b.label()).collect();
    let mut bind_at: Vec<usize> = (0..n_labels)
        .map(|_| rng.below(len as u64 + 1) as usize)
        .collect();
    bind_at.sort_unstable();
    for pc in 0..len {
        for (i, &at) in bind_at.iter().enumerate() {
            if at == pc && !pending.iter().any(|&(_, l)| l == i as u64) {
                pending.push((pc, i as u64));
                b.bind(labels[i]);
            }
        }
        if pc == len - 1 {
            b.xend();
            break;
        }
        match rng.below(10) {
            0 => {
                b.li(rng.reg(), rng.next() % 1_000_000);
            }
            1 => {
                b.mv(rng.reg(), rng.reg());
            }
            2 => {
                let op = ALU_OPS[rng.below(9) as usize];
                b.alu(op, rng.reg(), rng.reg(), rng.reg());
            }
            3 => {
                let op = ALU_OPS[rng.below(9) as usize];
                b.alui(op, rng.reg(), rng.reg(), rng.next() % 4096);
            }
            4 => {
                let off = rng.below(64) as i64 * 8 - 128;
                b.ld(rng.reg(), rng.reg(), off);
            }
            5 => {
                let off = rng.below(64) as i64 * 8 - 128;
                b.st(rng.reg(), off, rng.reg());
            }
            6 => {
                let c = CONDS[rng.below(4) as usize];
                let l = labels[rng.below(n_labels as u64) as usize];
                b.branch(c, rng.reg(), rng.reg(), l);
            }
            7 => {
                let l = labels[rng.below(n_labels as u64) as usize];
                b.jmp(l);
            }
            8 => {
                b.compute(1 + rng.below(50) as u32);
            }
            _ => {
                b.xabort(rng.below(16));
            }
        }
    }
    // Bind any labels planned past the final emitted instruction.
    for (i, &at) in bind_at.iter().enumerate() {
        if at >= len && !pending.iter().any(|&(_, l)| l == i as u64) {
            pending.push((len, i as u64));
            b.bind(labels[i]);
        }
    }
    b.build()
}

#[test]
fn random_programs_round_trip_exactly() {
    let mut rng = XorShift(0x5EED_CAFE_F00D_0001);
    for case in 0..300 {
        let body = 1 + rng.below(40) as usize;
        let p = random_program(&mut rng, body);
        let text = p.disassemble();
        let q = parse_program(&text)
            .unwrap_or_else(|e| panic!("case {case}: parse failed: {e}\n{text}"));
        assert_eq!(q.len(), p.len(), "case {case}");
        for pc in 0..p.len() {
            assert_eq!(
                q.successors(pc),
                p.successors(pc),
                "case {case}, pc {pc}\n{text}"
            );
        }
        let round = q.disassemble();
        assert_eq!(round, text, "case {case}: text drifted");
    }
}

#[test]
fn workload_programs_round_trip_exactly() {
    // The generated random programs above cover shapes; this covers the
    // real corpus the analyzer will parse: nothing fancy, but it pins the
    // exact disassembly text of a known program.
    let mut b = ProgramBuilder::new();
    let lp = b.label();
    let out = b.label();
    b.li(Reg(1), 0)
        .bind(lp)
        .branch(Cond::Ge, Reg(1), Reg(2), out)
        .ld(Reg(3), Reg(0), 0)
        .addi(Reg(1), Reg(1), 1)
        .jmp(lp)
        .bind(out)
        .xend();
    let p = b.build();
    let text = p.disassemble();
    let q = parse_program(&text).unwrap();
    assert_eq!(q.disassemble(), text);
}
