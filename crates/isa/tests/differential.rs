//! Differential testing of the VM against an independent reference
//! interpreter: random structured programs (straight-line arithmetic,
//! loads/stores into a scratch array, counted loops) must produce
//! identical final registers and memory.

use clear_isa::{AluOp, Cond, Effect, Instr, Program, ProgramBuilder, Reg, Vm, NUM_REGS};
use clear_mem::{Addr, Memory};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const SLOTS: u64 = 8;

/// One generated block of program structure.
#[derive(Clone, Debug)]
enum Block {
    Alu { op: u8, rd: u8, rs1: u8, rs2: u8 },
    AluImm { op: u8, rd: u8, rs: u8, imm: u64 },
    Load { rd: u8, slot: u64 },
    Store { slot: u64, rs: u8 },
    /// `for i in 0..count { body }` over 1..=3 simple ALU ops.
    Loop { count: u64, body: Vec<(u8, u8, u8, u8)> },
}

const OPS: [AluOp; 9] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Rem,
];

// Scratch registers r4..r11; r0 = array base, r1 = loop counter,
// r2 = zero, r3 = loop bound.
fn reg_strategy() -> impl Strategy<Value = u8> {
    4u8..12
}

fn block_strategy() -> impl Strategy<Value = Block> {
    prop_oneof![
        (0u8..9, reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, rd, rs1, rs2)| Block::Alu { op, rd, rs1, rs2 }),
        (0u8..9, reg_strategy(), reg_strategy(), any::<u64>())
            .prop_map(|(op, rd, rs, imm)| Block::AluImm { op, rd, rs, imm }),
        (reg_strategy(), 0..SLOTS).prop_map(|(rd, slot)| Block::Load { rd, slot }),
        ((0..SLOTS), reg_strategy()).prop_map(|(slot, rs)| Block::Store { slot, rs }),
        (
            1u64..4,
            prop::collection::vec(
                (0u8..9, reg_strategy(), reg_strategy(), reg_strategy()),
                1..4
            )
        )
            .prop_map(|(count, body)| Block::Loop { count, body }),
    ]
}

fn compile(blocks: &[Block]) -> Program {
    let mut b = ProgramBuilder::new();
    for blk in blocks {
        match blk {
            Block::Alu { op, rd, rs1, rs2 } => {
                b.alu(OPS[*op as usize], Reg(*rd), Reg(*rs1), Reg(*rs2));
            }
            Block::AluImm { op, rd, rs, imm } => {
                b.alui(OPS[*op as usize], Reg(*rd), Reg(*rs), *imm);
            }
            Block::Load { rd, slot } => {
                b.ld(Reg(*rd), Reg(0), (slot * 8) as i64);
            }
            Block::Store { slot, rs } => {
                b.st(Reg(0), (slot * 8) as i64, Reg(*rs));
            }
            Block::Loop { count, body } => {
                let top = b.label();
                let done = b.label();
                b.li(Reg(1), 0).li(Reg(3), *count);
                b.bind(top).branch(Cond::Ge, Reg(1), Reg(3), done);
                for (op, rd, rs1, rs2) in body {
                    b.alu(OPS[*op as usize], Reg(*rd), Reg(*rs1), Reg(*rs2));
                }
                b.addi(Reg(1), Reg(1), 1).jmp(top).bind(done);
            }
        }
    }
    b.xend();
    b.build()
}

/// Independent reference interpreter over the same block list (not over
/// the compiled program, so a compiler bug cannot hide).
fn reference(blocks: &[Block], base: Addr, init_regs: &[u64; NUM_REGS]) -> ([u64; NUM_REGS], HashMap<u64, u64>) {
    let mut regs = *init_regs;
    let mut mem: HashMap<u64, u64> = HashMap::new();
    for blk in blocks {
        match blk {
            Block::Alu { op, rd, rs1, rs2 } => {
                regs[*rd as usize] =
                    OPS[*op as usize].apply(regs[*rs1 as usize], regs[*rs2 as usize]);
            }
            Block::AluImm { op, rd, rs, imm } => {
                regs[*rd as usize] = OPS[*op as usize].apply(regs[*rs as usize], *imm);
            }
            Block::Load { rd, slot } => {
                regs[*rd as usize] = mem.get(&(base.0 + slot * 8)).copied().unwrap_or(0);
            }
            Block::Store { slot, rs } => {
                mem.insert(base.0 + slot * 8, regs[*rs as usize]);
            }
            Block::Loop { count, body } => {
                regs[1] = 0;
                regs[3] = *count;
                while regs[1] < regs[3] {
                    for (op, rd, rs1, rs2) in body {
                        regs[*rd as usize] =
                            OPS[*op as usize].apply(regs[*rs1 as usize], regs[*rs2 as usize]);
                    }
                    regs[1] = regs[1].wrapping_add(1);
                }
            }
        }
    }
    (regs, mem)
}

fn run_vm(program: Program, init_regs: &[u64; NUM_REGS], mem: &mut Memory) -> Vm {
    let mut vm = Vm::new(Arc::new(program));
    for (i, &v) in init_regs.iter().enumerate() {
        vm.set_reg(Reg(i as u8), v);
    }
    loop {
        match vm.step() {
            Effect::Load { addr, .. } => {
                let v = mem.load_word(addr);
                vm.finish_load(v);
            }
            Effect::Store { addr, value, .. } => mem.store_word(addr, value),
            Effect::Commit | Effect::Abort { .. } => break,
            _ => {}
        }
    }
    vm
}

proptest! {
    #[test]
    fn vm_matches_reference_interpreter(
        blocks in prop::collection::vec(block_strategy(), 1..30),
        seeds in prop::collection::vec(any::<u64>(), 8),
    ) {
        let mut memory = Memory::new();
        let base = memory.alloc_words(SLOTS);

        let mut init = [0u64; NUM_REGS];
        init[0] = base.0;
        for (i, &s) in seeds.iter().enumerate() {
            init[4 + i] = s;
        }

        let program = compile(&blocks);
        let vm = run_vm(program, &init, &mut memory);
        let (ref_regs, ref_mem) = reference(&blocks, base, &init);

        for r in 0..NUM_REGS as u8 {
            prop_assert_eq!(
                vm.reg(Reg(r)), ref_regs[r as usize],
                "register r{} diverged", r
            );
        }
        for slot in 0..SLOTS {
            let addr = base.add_words(slot);
            let want = ref_mem.get(&addr.0).copied().unwrap_or(0);
            prop_assert_eq!(memory.load_word(addr), want, "slot {} diverged", slot);
        }
    }

    /// Programs round-trip through serde (they are plain data).
    #[test]
    fn programs_roundtrip_through_serde_value(
        blocks in prop::collection::vec(block_strategy(), 1..10),
    ) {
        let program = compile(&blocks);
        // Serialize through serde's generic token representation by
        // cloning via Debug-equality (serde_json is not a dependency; the
        // derived impls are exercised by constructing an identical copy).
        let copied: Vec<Instr> = (0..program.len()).map(|pc| program.fetch(pc).clone()).collect();
        prop_assert_eq!(copied.len(), program.len());
    }
}
