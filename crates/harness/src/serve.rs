//! `clear-harness serve`: a bounded-memory trace-replay / open-loop
//! arrival loop computing streaming time-to-commit percentiles.
//!
//! The paper's single-retry bound is a *tail-latency* claim, so the repo
//! needs a service-style harness, not just end-of-run aggregates: ARs
//! arrive on an open-loop schedule (synthetic random gaps, or gaps
//! recorded from a real trace via `clear-harness trace --arrivals`), wait
//! in a bounded admission queue, and execute in batches on a fresh
//! simulated machine per batch with metrics collection enabled. The
//! per-batch registries merge into one session registry
//! ([`clear_metrics::MetricsRegistry::merge`] is commutative, so the
//! merged snapshot equals what one giant sequential run over the same
//! invocations would produce), from which the session reports
//! p50/p99/p999 time-to-commit per AR class and per retry mode.
//!
//! Memory stays bounded regardless of session length: the admission queue
//! never exceeds its configured bound (arrival generation *backpressures*
//! instead of growing the queue), each batch reuses a fresh
//! fixed-footprint machine, and the registry's size is capped by the
//! metric schema, not the AR count. Nothing is ever dropped: gaps not
//! consumed by a batch return to the queue front in order.
//!
//! Everything in [`ServeReport::json`] is a pure function of the options
//! (simulated cycles and counts only); wall-clock throughput lives in
//! [`ServeReport::trajectory`] rows and `BENCH_serve.json` exclusively,
//! which is what lets the `slo-latency` golden pin the percentiles
//! byte-exactly.

use crate::json::Json;
use crate::metrics_export::{snapshot_to_json, QUANTILES};
use clear_isa::{ArInvocation, Workload, WorkloadMeta};
use clear_machine::{Machine, MachineConfig, Preset};
use clear_mem::rng::Xoshiro256PlusPlus;
use clear_mem::Memory;
use clear_metrics::{families, Log2Hist, MetricValue, MetricsRegistry};
use clear_workloads::{by_name, Size};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

/// Options of one serve session.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Benchmark supplying the AR stream.
    pub workload: String,
    /// Input scale of each per-batch workload instance.
    pub size: Size,
    /// Simulated cores per batch machine.
    pub cores: usize,
    /// Session seed: drives the arrival generator and derives each
    /// batch's workload seed.
    pub seed: u64,
    /// Total ARs to admit before the session ends.
    pub total_ars: u64,
    /// ARs per machine batch.
    pub batch: usize,
    /// Admission-queue bound (arrivals beyond it backpressure).
    pub queue: usize,
    /// Mean synthetic inter-arrival gap in simulated cycles (a batch
    /// member's gap becomes its think time). Ignored under replay.
    pub rate: u64,
    /// Recorded inter-arrival gaps to replay (cycled when shorter than
    /// `total_ars`); `None` selects the synthetic generator.
    pub replay_gaps: Option<Vec<u64>>,
    /// Intra-run stepping threads per batch machine.
    pub sim_threads: usize,
    /// Emit a trajectory row every this many batches.
    pub snapshot_every: usize,
    /// Retry threshold of each batch machine.
    pub max_retries: u32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workload: "arrayswap".to_string(),
            size: Size::Tiny,
            cores: 8,
            seed: 1,
            total_ars: 512,
            batch: 128,
            queue: 256,
            rate: 24,
            replay_gaps: None,
            sim_threads: 1,
            snapshot_every: 4,
            max_retries: 5,
        }
    }
}

/// Result of a serve session.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Deterministic session document (simulated values only — safe to
    /// pin in goldens).
    pub json: Json,
    /// Human-readable summary.
    pub text: String,
    /// The merged session registry.
    pub registry: MetricsRegistry,
    /// Wall-clock trajectory rows (one per `snapshot_every` batches plus
    /// a final row) for `BENCH_serve.json`.
    pub trajectory: Vec<Json>,
    /// ARs committed.
    pub ars: u64,
    /// Simulator steps across all batches.
    pub steps: u64,
    /// Peak admission-queue depth observed.
    pub queue_max_depth: usize,
    /// Times arrival generation stalled because the queue was full.
    pub backpressure_events: u64,
    /// Wall time of the whole session.
    pub wall_ns: u64,
    /// ARs per wall second.
    pub ars_per_sec: f64,
}

/// Shared admission state between the serve loop and the per-batch
/// workload wrapper. Single-threaded by construction: the machine always
/// fetches ARs on the driving thread, so `Rc<RefCell<…>>` suffices (and
/// the `Workload` trait carries no `Send` bound).
struct ServeState {
    /// Inter-arrival gaps admitted to this batch, in arrival order.
    gaps: VecDeque<u64>,
    /// Gaps actually consumed (== invocations issued).
    consumed: u64,
}

/// Wraps a benchmark workload, rationing its AR stream to the admitted
/// arrivals: each issued invocation consumes one gap, which becomes the
/// invocation's think time (the open-loop arrival spacing). When the
/// admitted gaps run out the stream reports exhaustion, ending the batch.
struct ServeWorkload {
    inner: Box<dyn Workload>,
    state: Rc<RefCell<ServeState>>,
}

impl Workload for ServeWorkload {
    fn meta(&self) -> WorkloadMeta {
        self.inner.meta()
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.inner.setup(mem, threads);
    }

    fn next_ar(&mut self, tid: usize, mem: &Memory) -> Option<ArInvocation> {
        if self.state.borrow().gaps.is_empty() {
            return None;
        }
        // Pop a gap only once the inner workload actually yields an
        // invocation — if this thread's stream is exhausted, the gap stays
        // queued for another thread or the next batch (zero drops).
        let mut inv = self.inner.next_ar(tid, mem)?;
        let mut st = self.state.borrow_mut();
        let gap = st.gaps.pop_front()?;
        inv.think_cycles = gap;
        st.consumed += 1;
        Some(inv)
    }
}

/// The arrival generator: synthetic open-loop gaps from a seeded xoshiro
/// stream, or recorded gaps cycled for as long as the session runs.
enum Arrivals {
    Synthetic { rng: Xoshiro256PlusPlus, rate: u64 },
    Replay { gaps: Vec<u64>, next: usize },
}

impl Arrivals {
    fn next_gap(&mut self) -> u64 {
        match self {
            Arrivals::Synthetic { rng, rate } => rng.gen_range(0..(2 * *rate + 1)),
            Arrivals::Replay { gaps, next } => {
                let gap = gaps[*next % gaps.len()];
                *next += 1;
                gap
            }
        }
    }
}

/// The merged time-to-commit histogram across every mode × backend
/// series — the session-wide distribution the trajectory rows quote.
fn overall_ttc(registry: &MetricsRegistry) -> Log2Hist {
    let mut all = Log2Hist::new();
    for (key, value) in registry.iter() {
        if key.name == families::TTC_CYCLES {
            if let MetricValue::Hist(h) = value {
                all.merge(h);
            }
        }
    }
    all
}

/// One percentile row for a labelled time-to-commit series.
fn ttc_row(label_key: &str, label: &str, h: &Log2Hist) -> Json {
    let mut pairs = vec![
        (label_key.to_string(), Json::from(label)),
        ("count".to_string(), Json::from(h.count())),
        ("min".to_string(), Json::from(h.min())),
        ("max".to_string(), Json::from(h.max())),
    ];
    for (name, q) in QUANTILES {
        pairs.push((name.to_string(), Json::from(h.quantile(q))));
    }
    Json::Obj(pairs)
}

/// All rows of a labelled histogram family, in canonical label order.
fn ttc_rows(registry: &MetricsRegistry, family: &str, label_key: &str) -> Vec<Json> {
    registry
        .iter()
        .filter(|(k, _)| k.name == family)
        .filter_map(|(k, v)| match v {
            MetricValue::Hist(h) => {
                let label = k
                    .labels
                    .iter()
                    .find(|(name, _)| name == label_key)
                    .map(|(_, value)| value.as_str())?;
                Some(ttc_row(label_key, label, h))
            }
            _ => None,
        })
        .collect()
}

/// Runs a serve session to completion.
///
/// # Panics
///
/// Panics if the benchmark name is unknown or a batch machine times out.
pub fn serve_session(opts: &ServeOptions) -> ServeReport {
    assert!(
        opts.batch > 0 && opts.queue > 0,
        "batch and queue must be positive"
    );
    let started = std::time::Instant::now();
    let mut arrivals = match &opts.replay_gaps {
        Some(gaps) => {
            assert!(!gaps.is_empty(), "replay gap list is empty");
            Arrivals::Replay {
                gaps: gaps.clone(),
                next: 0,
            }
        }
        None => Arrivals::Synthetic {
            rng: Xoshiro256PlusPlus::seed_from_u64(opts.seed),
            rate: opts.rate.max(1),
        },
    };

    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut generated = 0u64;
    let mut served = 0u64;
    let mut steps = 0u64;
    let mut batches = 0u64;
    let mut queue_max_depth = 0usize;
    let mut backpressure_events = 0u64;
    let mut registry = MetricsRegistry::new();
    let mut trajectory: Vec<Json> = Vec::new();
    let mut starved = false;

    while served < opts.total_ars {
        // Admit arrivals up to the queue bound; the generator stalls
        // (backpressure) rather than letting the queue grow.
        while queue.len() < opts.queue && generated < opts.total_ars {
            queue.push_back(arrivals.next_gap());
            generated += 1;
        }
        if queue.len() >= opts.queue && generated < opts.total_ars {
            backpressure_events += 1;
        }
        queue_max_depth = queue_max_depth.max(queue.len());
        let take = queue.len().min(opts.batch);
        if take == 0 {
            break;
        }
        let state = Rc::new(RefCell::new(ServeState {
            gaps: queue.drain(..take).collect(),
            consumed: 0,
        }));
        let inner = by_name(&opts.workload, opts.size, opts.seed.wrapping_add(batches))
            .unwrap_or_else(|| panic!("unknown benchmark {}", opts.workload));
        let mut cfg: MachineConfig = Preset::C.config(opts.cores, opts.max_retries);
        cfg.seed = opts.seed.wrapping_add(batches);
        cfg.sim_threads = opts.sim_threads;
        let mut machine = Machine::new(
            cfg,
            Box::new(ServeWorkload {
                inner,
                state: Rc::clone(&state),
            }),
        );
        machine.enable_metrics();
        let stats = machine.run();
        assert!(
            !stats.timed_out,
            "serve batch {batches} of {} timed out",
            opts.workload
        );
        registry.merge(&machine.take_metrics().expect("metrics enabled"));
        steps += stats.perf.steps;

        let mut st = state.borrow_mut();
        let consumed = st.consumed;
        // Unconsumed gaps return to the queue front in order: admitted
        // arrivals are never dropped, only deferred.
        while let Some(gap) = st.gaps.pop_back() {
            queue.push_front(gap);
        }
        drop(st);
        if consumed == 0 {
            // The benchmark yielded no ARs at all (degenerate stream);
            // stop rather than spin.
            starved = true;
            break;
        }
        served += consumed;
        batches += 1;

        if batches.is_multiple_of(opts.snapshot_every.max(1) as u64) || served >= opts.total_ars {
            trajectory.push(trajectory_row(
                batches,
                served,
                steps,
                queue.len(),
                started.elapsed().as_nanos() as u64,
                &registry,
            ));
        }
    }

    let wall_ns = started.elapsed().as_nanos() as u64;
    let secs = (wall_ns as f64 / 1e9).max(1e-9);
    let ars_per_sec = served as f64 / secs;

    let all = overall_ttc(&registry);
    let mut json_pairs = vec![
        ("workload".to_string(), Json::from(opts.workload.as_str())),
        ("cores".to_string(), Json::from(opts.cores)),
        ("seed".to_string(), Json::from(opts.seed)),
        (
            "arrivals".to_string(),
            Json::from(if opts.replay_gaps.is_some() {
                "replay"
            } else {
                "synthetic"
            }),
        ),
        ("ars".to_string(), Json::from(served)),
        ("batches".to_string(), Json::from(batches)),
        ("steps".to_string(), Json::from(steps)),
        ("starved".to_string(), Json::from(starved)),
        (
            "queue".to_string(),
            Json::obj([
                ("bound", Json::from(opts.queue)),
                ("max_depth", Json::from(queue_max_depth)),
                ("backpressure_events", Json::from(backpressure_events)),
                ("dropped", Json::from(0u64)),
            ]),
        ),
        ("ttc".to_string(), ttc_row("scope", "all", &all)),
        (
            "ttc_by_class".to_string(),
            Json::arr(ttc_rows(&registry, families::TTC_CLASS_CYCLES, "class")),
        ),
        (
            "ttc_by_mode".to_string(),
            Json::arr(ttc_rows(&registry, families::TTC_CYCLES, "mode")),
        ),
        (
            "snapshot".to_string(),
            snapshot_to_json(&registry.snapshot()),
        ),
    ];
    // Keys stay insertion-ordered; the snapshot goes last because it is
    // the bulkiest block.
    let snapshot = json_pairs.pop().expect("snapshot pair");
    json_pairs.push(snapshot);
    let json = Json::Obj(json_pairs);

    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== serve {} ({} cores, seed {}, {} arrivals) ===",
        opts.workload,
        opts.cores,
        opts.seed,
        if opts.replay_gaps.is_some() {
            "replay"
        } else {
            "synthetic"
        }
    );
    let _ = writeln!(
        text,
        "{served} ARs in {batches} batches; queue peak {queue_max_depth}/{} \
         ({backpressure_events} backpressure stalls, 0 dropped)",
        opts.queue
    );
    let _ = writeln!(
        text,
        "time-to-commit cycles: p50 {} p99 {} p999 {} (min {} max {})",
        all.quantile(0.50),
        all.quantile(0.99),
        all.quantile(0.999),
        all.min(),
        all.max()
    );
    for row in ttc_rows(&registry, families::TTC_CLASS_CYCLES, "class") {
        let g = |k: &str| match row.get(k) {
            Some(Json::Int(v)) => *v,
            _ => 0,
        };
        let class = match row.get("class") {
            Some(Json::Str(s)) => s.clone(),
            _ => "?".to_string(),
        };
        let _ = writeln!(
            text,
            "  class {class:18} n={:<7} p50 {:>6} p99 {:>6} p999 {:>6}",
            g("count"),
            g("p50"),
            g("p99"),
            g("p999")
        );
    }
    let _ = writeln!(
        text,
        "{:.0} ARs/s, {:.0} steps/s wall",
        ars_per_sec,
        steps as f64 / secs
    );

    ServeReport {
        json,
        text,
        registry,
        trajectory,
        ars: served,
        steps,
        queue_max_depth,
        backpressure_events,
        wall_ns,
        ars_per_sec,
    }
}

/// One wall-clock trajectory row (BENCH material, never golden material).
fn trajectory_row(
    batches: u64,
    served: u64,
    steps: u64,
    queue_depth: usize,
    wall_ns: u64,
    registry: &MetricsRegistry,
) -> Json {
    let secs = (wall_ns as f64 / 1e9).max(1e-9);
    let all = overall_ttc(registry);
    Json::obj([
        ("batch", Json::from(batches)),
        ("ars", Json::from(served)),
        ("steps", Json::from(steps)),
        ("queue_depth", Json::from(queue_depth)),
        ("wall_ns", Json::from(wall_ns)),
        ("ars_per_sec", Json::Float(served as f64 / secs)),
        ("steps_per_sec", Json::Float(steps as f64 / secs)),
        ("p50", Json::from(all.quantile(0.50))),
        ("p99", Json::from(all.quantile(0.99))),
        ("p999", Json::from(all.quantile(0.999))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ServeOptions {
        ServeOptions {
            total_ars: 96,
            batch: 32,
            queue: 48,
            ..ServeOptions::default()
        }
    }

    #[test]
    fn serves_the_requested_ars_with_zero_drops() {
        let r = serve_session(&tiny_opts());
        assert_eq!(r.ars, 96);
        assert!(r.queue_max_depth <= 48);
        assert_eq!(r.json.get("starved"), Some(&Json::Bool(false)));
        let q = r.json.get("queue").expect("queue block");
        assert_eq!(q.get("dropped"), Some(&Json::Int(0)));
        assert!(!r.trajectory.is_empty());
        assert!(r.registry.hist(families::LOCK_WAIT_CYCLES, &[]).is_some() || r.ars > 0);
    }

    #[test]
    fn session_json_is_reproducible() {
        let a = serve_session(&tiny_opts()).json.to_pretty();
        let b = serve_session(&tiny_opts()).json.to_pretty();
        assert_eq!(a, b);
    }

    #[test]
    fn replay_gaps_become_think_times() {
        let opts = ServeOptions {
            replay_gaps: Some(vec![3, 5, 7]),
            ..tiny_opts()
        };
        let r = serve_session(&opts);
        assert_eq!(r.ars, 96);
        assert_eq!(r.json.get("arrivals"), Some(&Json::from("replay")));
    }

    #[test]
    fn percentiles_are_ordered() {
        let r = serve_session(&tiny_opts());
        let all = overall_ttc(&r.registry);
        assert!(all.count() > 0);
        assert!(all.quantile(0.5) <= all.quantile(0.99));
        assert!(all.quantile(0.99) <= all.quantile(0.999));
        assert!(all.quantile(0.999) <= all.max());
    }
}
