//! Golden-baseline storage and drift comparison.
//!
//! Each gated experiment stores its JSON result under `goldens/<name>.json`
//! at the repository root. A check re-runs the experiment with the pinned
//! options and walks both trees: integers must match exactly, floats must
//! agree within a relative tolerance (a default plus per-metric overrides
//! keyed on path fragments), and any structural difference — missing key,
//! extra row, type change — is a drift. The CLI exits nonzero if any drift
//! survives, which is what CI gates on.

use crate::json::Json;
use std::path::PathBuf;

/// Where golden files live: `goldens/` at the repository root.
pub fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../goldens")
}

/// Path of one golden file.
pub fn golden_path(name: &str) -> PathBuf {
    goldens_dir().join(format!("{name}.json"))
}

/// Loads a golden baseline.
///
/// # Errors
///
/// Returns a message if the file is missing or malformed.
pub fn load(name: &str) -> Result<Json, String> {
    let path = golden_path(name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Writes a golden baseline (pretty-printed, trailing newline).
///
/// # Errors
///
/// Returns a message on I/O failure.
pub fn store(name: &str, value: &Json) -> Result<PathBuf, String> {
    let dir = goldens_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let path = golden_path(name);
    std::fs::write(&path, value.to_pretty())
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// One detected difference between golden and actual.
#[derive(Clone, Debug, PartialEq)]
pub struct Drift {
    /// Slash-separated path into the JSON tree (`rows/3/cycles`).
    pub path: String,
    /// Human-readable description of the difference.
    pub detail: String,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

/// Float comparison tolerances: a default relative bound plus overrides
/// that apply to any path containing the given fragment.
#[derive(Clone, Copy, Debug)]
pub struct Tolerances {
    /// Relative tolerance for floats with no matching override.
    pub default_rel: f64,
    /// `(path fragment, relative tolerance)` overrides; the first matching
    /// fragment wins.
    pub overrides: &'static [(&'static str, f64)],
    /// Path fragments whose values are skipped entirely — for
    /// non-deterministic metrics such as wall-clock timings, where both
    /// sides must have the key but any value (and value type) passes.
    pub ignored: &'static [&'static str],
}

impl Default for Tolerances {
    fn default() -> Self {
        // The simulation is deterministic, so goldens should reproduce to
        // the last bit; the nonzero default only absorbs float-formatting
        // round-trips.
        Tolerances {
            default_rel: 1e-9,
            overrides: &[],
            ignored: &[],
        }
    }
}

impl Tolerances {
    fn rel_for(&self, path: &str) -> f64 {
        for (fragment, rel) in self.overrides {
            if path.contains(fragment) {
                return *rel;
            }
        }
        self.default_rel
    }

    fn is_ignored(&self, path: &str) -> bool {
        self.ignored.iter().any(|fragment| path.contains(fragment))
    }
}

/// Compares an actual result against the golden baseline.
///
/// Returns every drift found (empty = pass).
pub fn compare(golden: &Json, actual: &Json, tol: &Tolerances) -> Vec<Drift> {
    let mut drifts = Vec::new();
    walk(golden, actual, "", tol, &mut drifts);
    drifts
}

fn walk(golden: &Json, actual: &Json, path: &str, tol: &Tolerances, out: &mut Vec<Drift>) {
    if tol.is_ignored(path) {
        return;
    }
    let here = |p: &str| {
        if p.is_empty() {
            "<root>".to_string()
        } else {
            p.to_string()
        }
    };
    match (golden, actual) {
        (Json::Null, Json::Null) => {}
        (Json::Bool(g), Json::Bool(a)) => {
            if g != a {
                out.push(Drift {
                    path: here(path),
                    detail: format!("expected {g}, got {a}"),
                });
            }
        }
        (Json::Int(g), Json::Int(a)) => {
            if g != a {
                out.push(Drift {
                    path: here(path),
                    detail: format!("expected {g}, got {a} (exact integer match required)"),
                });
            }
        }
        (Json::Float(g), Json::Float(a)) => {
            let rel = tol.rel_for(path);
            let scale = g.abs().max(a.abs()).max(1e-300);
            if (g - a).abs() > rel * scale {
                out.push(Drift {
                    path: here(path),
                    detail: format!(
                        "expected {g}, got {a} (relative error {:.3e} > tolerance {rel:.1e})",
                        (g - a).abs() / scale
                    ),
                });
            }
        }
        // Integer/float mixes compare numerically (a metric may cross the
        // serialization boundary when a mean lands on a whole number).
        (Json::Int(g), Json::Float(a)) | (Json::Float(a), Json::Int(g)) => {
            walk(&Json::Float(*g as f64), &Json::Float(*a), path, tol, out);
        }
        (Json::Str(g), Json::Str(a)) => {
            if g != a {
                out.push(Drift {
                    path: here(path),
                    detail: format!("expected {g:?}, got {a:?}"),
                });
            }
        }
        (Json::Arr(g), Json::Arr(a)) => {
            if g.len() != a.len() {
                out.push(Drift {
                    path: here(path),
                    detail: format!("array length {} != {}", g.len(), a.len()),
                });
            }
            for (i, (gv, av)) in g.iter().zip(a.iter()).enumerate() {
                walk(gv, av, &format!("{path}/{i}"), tol, out);
            }
        }
        (Json::Obj(g), Json::Obj(a)) => {
            for (k, gv) in g {
                let child = format!("{path}/{k}");
                match a.iter().find(|(ak, _)| ak == k) {
                    Some((_, av)) => walk(gv, av, &child, tol, out),
                    None => out.push(Drift {
                        path: child,
                        detail: "missing in actual result".to_string(),
                    }),
                }
            }
            for (k, _) in a {
                if !g.iter().any(|(gk, _)| gk == k) {
                    out.push(Drift {
                        path: format!("{path}/{k}"),
                        detail: "unexpected key (absent from golden)".to_string(),
                    });
                }
            }
        }
        (g, a) => {
            out.push(Drift {
                path: here(path),
                detail: format!("type mismatch: golden {g:?} vs actual {a:?}"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cycles: i64, ratio: f64) -> Json {
        Json::obj([(
            "rows",
            Json::arr([Json::obj([
                ("benchmark", Json::from("bst")),
                ("cycles", Json::Int(cycles)),
                ("ratio", Json::Float(ratio)),
            ])]),
        )])
    }

    #[test]
    fn identical_documents_pass() {
        let t = Tolerances::default();
        assert!(compare(&doc(100, 0.5), &doc(100, 0.5), &t).is_empty());
    }

    #[test]
    fn integer_drift_is_exact() {
        let t = Tolerances::default();
        let drifts = compare(&doc(100, 0.5), &doc(101, 0.5), &t);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].path, "/rows/0/cycles");
    }

    #[test]
    fn float_within_tolerance_passes_beyond_fails() {
        let t = Tolerances {
            default_rel: 1e-6,
            overrides: &[],
            ignored: &[],
        };
        assert!(compare(&doc(1, 0.5), &doc(1, 0.5 * (1.0 + 1e-8)), &t).is_empty());
        let drifts = compare(&doc(1, 0.5), &doc(1, 0.5 * (1.0 + 1e-3)), &t);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].path, "/rows/0/ratio");
    }

    #[test]
    fn per_metric_override_applies_by_fragment() {
        let t = Tolerances {
            default_rel: 1e-9,
            overrides: &[("ratio", 0.5)],
            ignored: &[],
        };
        assert!(compare(&doc(1, 0.5), &doc(1, 0.6), &t).is_empty());
    }

    #[test]
    fn structural_differences_are_drifts() {
        let t = Tolerances::default();
        let golden = Json::obj([("a", Json::Int(1)), ("b", Json::Int(2))]);
        let actual = Json::obj([("a", Json::Int(1)), ("c", Json::Int(3))]);
        let drifts = compare(&golden, &actual, &t);
        assert_eq!(drifts.len(), 2, "{drifts:?}");
        let golden = Json::arr([Json::Int(1)]);
        let actual = Json::arr([Json::Int(1), Json::Int(2)]);
        assert_eq!(compare(&golden, &actual, &t).len(), 1);
    }

    #[test]
    fn int_float_mix_compares_numerically() {
        let t = Tolerances::default();
        assert!(compare(&Json::Int(3), &Json::Float(3.0), &t).is_empty());
        assert_eq!(compare(&Json::Int(3), &Json::Float(3.1), &t).len(), 1);
    }

    #[test]
    fn ignored_fragments_skip_values_and_types() {
        let t = Tolerances {
            default_rel: 1e-9,
            overrides: &[],
            ignored: &["wall_ns"],
        };
        let golden = Json::obj([("steps", Json::Int(10)), ("wall_ns", Json::Int(123))]);
        // Value drift, and even a type change, under an ignored path passes.
        let actual = Json::obj([("steps", Json::Int(10)), ("wall_ns", Json::Float(9.5))]);
        assert!(compare(&golden, &actual, &t).is_empty());
        // Non-ignored siblings still compare exactly.
        let bad = Json::obj([("steps", Json::Int(11)), ("wall_ns", Json::Int(0))]);
        assert_eq!(compare(&golden, &bad, &t).len(), 1);
    }
}
