//! Serializers for [`clear_metrics`] snapshots: the harness JSON shape
//! embedded in experiment documents, and a Prometheus text exposition for
//! scrape-style consumers of `clear-harness serve`.
//!
//! Both exporters are pure functions of the snapshot, which itself holds
//! only simulated-deterministic values — so the rendered bytes are
//! reproducible across hosts, workers and `sim_threads` modes. The
//! Prometheus writer shares its label escaping with the JSON layer
//! ([`crate::json::escape_into`]), and [`validate_prometheus`] re-parses
//! the rendered text as a structural self-check, the same honesty rule the
//! Chrome-trace exporter follows.

use crate::json::{escape_into, EscapeStyle, Json};
use clear_metrics::{MetricValue, Snapshot};
use std::fmt::Write as _;

/// Quantiles the harness reports everywhere it renders a histogram: the
/// SLO gate's p50/p99/p999.
pub const QUANTILES: [(&str, f64); 3] = [("p50", 0.50), ("p99", 0.99), ("p999", 0.999)];

/// Renders a snapshot as the harness JSON shape: one row per series with
/// the family name, its labels as an object, and a kind-tagged value.
/// Histograms carry count/sum/min/max/mean, the gated quantiles, and the
/// trailing-zero-trimmed log2 bucket array.
pub fn snapshot_to_json(snap: &Snapshot) -> Json {
    let series = snap.series.iter().map(|s| {
        let labels = Json::obj(
            s.labels
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(v.as_str()))),
        );
        let mut pairs = vec![
            ("name".to_string(), Json::from(s.name.as_str())),
            ("labels".to_string(), labels),
        ];
        match &s.value {
            MetricValue::Counter(c) => {
                pairs.push(("kind".to_string(), Json::from("counter")));
                pairs.push(("value".to_string(), Json::from(*c)));
            }
            MetricValue::Gauge(g) => {
                pairs.push(("kind".to_string(), Json::from("gauge")));
                pairs.push(("value".to_string(), Json::from(*g)));
            }
            MetricValue::Hist(h) => {
                pairs.push(("kind".to_string(), Json::from("hist")));
                pairs.push(("count".to_string(), Json::from(h.count())));
                pairs.push(("sum".to_string(), Json::from(h.sum())));
                pairs.push(("min".to_string(), Json::from(h.min())));
                pairs.push(("max".to_string(), Json::from(h.max())));
                pairs.push(("mean".to_string(), Json::Float(h.mean())));
                for (name, q) in QUANTILES {
                    pairs.push((name.to_string(), Json::from(h.quantile(q))));
                }
                let top = h
                    .buckets()
                    .iter()
                    .rposition(|&n| n > 0)
                    .map_or(0, |i| i + 1);
                pairs.push((
                    "buckets_log2".to_string(),
                    Json::arr(h.buckets()[..top].iter().map(|&n| Json::from(n))),
                ));
            }
        }
        Json::Obj(pairs)
    });
    Json::obj([("series", Json::arr(series))])
}

/// Appends one `name{labels}` series reference (or bare `name` without
/// labels), with `extra` label pairs appended after the series' own.
fn write_series_ref(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
) {
    out.push_str(name);
    if labels.is_empty() && extra.is_empty() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_into(out, v, EscapeStyle::PrometheusLabel);
        out.push('"');
    }
    out.push('}');
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Counters and gauges become single samples with `# TYPE` headers;
/// histograms become the standard `_bucket`/`_sum`/`_count` triplet with
/// cumulative `le` buckets at the log2 upper bounds plus `le="+Inf"`.
/// Series order follows the snapshot's canonical order, so the rendered
/// text is deterministic byte-for-byte.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_typed: Option<(String, &'static str)> = None;
    for s in &snap.series {
        let (type_str, base) = match &s.value {
            MetricValue::Counter(_) => ("counter", s.name.clone()),
            MetricValue::Gauge(_) => ("gauge", s.name.clone()),
            MetricValue::Hist(_) => ("histogram", s.name.clone()),
        };
        if last_typed.as_ref() != Some(&(base.clone(), type_str)) {
            let _ = writeln!(out, "# TYPE {base} {type_str}");
            last_typed = Some((base.clone(), type_str));
        }
        match &s.value {
            MetricValue::Counter(c) => {
                write_series_ref(&mut out, &s.name, &s.labels, &[]);
                let _ = writeln!(out, " {c}");
            }
            MetricValue::Gauge(g) => {
                write_series_ref(&mut out, &s.name, &s.labels, &[]);
                let _ = writeln!(out, " {g}");
            }
            MetricValue::Hist(h) => {
                let mut cumulative = 0u64;
                let top = h
                    .buckets()
                    .iter()
                    .rposition(|&n| n > 0)
                    .map_or(0, |i| i + 1);
                for (i, &n) in h.buckets()[..top].iter().enumerate() {
                    cumulative += n;
                    // Bucket i holds values < 2^(i+1), so that power is the
                    // inclusive upper bound in `le` terms.
                    let le = format!("{}", (1u128 << (i + 1)) - 1);
                    write_series_ref(
                        &mut out,
                        &format!("{}_bucket", s.name),
                        &s.labels,
                        &[("le", &le)],
                    );
                    let _ = writeln!(out, " {cumulative}");
                }
                write_series_ref(
                    &mut out,
                    &format!("{}_bucket", s.name),
                    &s.labels,
                    &[("le", "+Inf")],
                );
                let _ = writeln!(out, " {}", h.count());
                write_series_ref(&mut out, &format!("{}_sum", s.name), &s.labels, &[]);
                let _ = writeln!(out, " {}", h.sum());
                write_series_ref(&mut out, &format!("{}_count", s.name), &s.labels, &[]);
                let _ = writeln!(out, " {}", h.count());
            }
        }
    }
    out
}

/// What [`validate_prometheus`] measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrometheusSummary {
    /// Sample lines in the document.
    pub samples: usize,
    /// `# TYPE` headers.
    pub families: usize,
}

/// Structural validation of a rendered exposition: every non-comment line
/// must parse as `name{labels} value` with balanced, properly escaped
/// label quoting, histogram `_bucket` series must be cumulative, and
/// `_count` must equal the `+Inf` bucket.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_prometheus(text: &str) -> Result<PrometheusSummary, String> {
    let mut samples = 0usize;
    let mut families = 0usize;
    // (series ref without le) -> last cumulative bucket value.
    let mut last_bucket: Option<(String, u64)> = None;
    for (ln, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            families += 1;
            if rest.split_whitespace().count() != 2 {
                return Err(format!("line {}: malformed TYPE header", ln + 1));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = split_sample(line)
            .ok_or_else(|| format!("line {}: not a `name{{labels}} value` sample", ln + 1))?;
        if value != "+Inf" && value.parse::<f64>().is_err() {
            return Err(format!("line {}: bad sample value `{value}`", ln + 1));
        }
        samples += 1;
        // Cumulativity check for histogram buckets.
        if let Some((base, le)) = strip_le(&series) {
            if le == "+Inf" {
                last_bucket = None;
            } else {
                let v: u64 = value
                    .parse()
                    .map_err(|_| format!("line {}: non-integer bucket", ln + 1))?;
                if let Some((prev_base, prev)) = &last_bucket {
                    if *prev_base == base && v < *prev {
                        return Err(format!(
                            "line {}: bucket count decreased ({prev} -> {v})",
                            ln + 1
                        ));
                    }
                }
                last_bucket = Some((base, v));
            }
        } else {
            last_bucket = None;
        }
    }
    if samples == 0 {
        return Err("no samples".to_string());
    }
    Ok(PrometheusSummary { samples, families })
}

/// Splits a sample line into its series reference and value, walking the
/// label block quote-aware so escaped quotes inside label values (the
/// escaping under test) do not break the split.
fn split_sample(line: &str) -> Option<(String, String)> {
    let bytes = line.as_bytes();
    let mut i = 0;
    // Metric name.
    while i < bytes.len() && bytes[i] != b'{' && bytes[i] != b' ' {
        i += 1;
    }
    if i == 0 {
        return None;
    }
    if bytes.get(i) == Some(&b'{') {
        let mut in_quotes = false;
        i += 1;
        loop {
            match bytes.get(i)? {
                b'\\' if in_quotes => i += 2,
                b'"' => {
                    in_quotes = !in_quotes;
                    i += 1;
                }
                b'}' if !in_quotes => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
    }
    let series = line.get(..i)?.to_string();
    let value = line.get(i..)?.trim();
    if value.is_empty() {
        return None;
    }
    Some((series, value.to_string()))
}

/// For `name_bucket{...,le="X"}` refs: the ref minus the `le` pair, plus
/// the `le` value.
fn strip_le(series: &str) -> Option<(String, String)> {
    // `le` is either appended after the series' own labels or, for a
    // label-free histogram, the only pair in the block.
    let start = series.find(",le=\"").or_else(|| series.find("{le=\""))?;
    let after = &series[start + 5..];
    let end = after.find('"')?;
    let le = after[..end].to_string();
    let mut base = series[..start].to_string();
    base.push_str(&after[end + 1..]);
    Some((base, le))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clear_metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.inc("clear_aborts_total", &[("cause", "memory-conflict")], 3);
        r.inc("clear_aborts_total", &[("cause", "nacked")], 1);
        r.set_gauge("clear_shard_lines", &[("shard", "0")], 12);
        for v in [0, 1, 7, 130, 131, 9000] {
            r.observe("clear_ttc_cycles", &[("mode", "speculative")], v);
        }
        r
    }

    #[test]
    fn json_shape_carries_quantiles_and_buckets() {
        let doc = snapshot_to_json(&sample_registry().snapshot());
        let Some(Json::Arr(series)) = doc.get("series") else {
            panic!("missing series");
        };
        assert_eq!(series.len(), 4);
        let hist = series
            .iter()
            .find(|s| s.get("kind") == Some(&Json::from("hist")))
            .expect("hist row");
        assert_eq!(hist.get("count"), Some(&Json::Int(6)));
        assert_eq!(hist.get("min"), Some(&Json::Int(0)));
        assert_eq!(hist.get("max"), Some(&Json::Int(9000)));
        assert!(hist.get("p50").is_some() && hist.get("p999").is_some());
        // The document round-trips through the in-tree parser.
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).expect("parse"), doc);
    }

    #[test]
    fn prometheus_text_validates_and_is_cumulative() {
        let text = prometheus_text(&sample_registry().snapshot());
        let summary = validate_prometheus(&text).expect("valid exposition");
        assert!(summary.samples >= 7, "{text}");
        assert_eq!(summary.families, 3, "{text}");
        assert!(text.contains("# TYPE clear_ttc_cycles histogram"));
        assert!(text.contains("clear_ttc_cycles_bucket{mode=\"speculative\",le=\"+Inf\"} 6"));
        assert!(text.contains("clear_aborts_total{cause=\"memory-conflict\"} 3"));
    }

    #[test]
    fn label_escaping_round_trips_through_the_validator() {
        let mut r = MetricsRegistry::new();
        r.inc("weird_total", &[("why", "a\"b\\c\nd")], 1);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("why=\"a\\\"b\\\\c\\nd\""), "{text}");
        let summary = validate_prometheus(&text).expect("escaped labels must parse");
        assert_eq!(summary.samples, 1);
    }

    #[test]
    fn validator_rejects_garbage_and_regressions() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("just words\n").is_err());
        let decreasing = "# TYPE h histogram\n\
                          h_bucket{le=\"1\"} 5\n\
                          h_bucket{le=\"3\"} 3\n";
        let err = validate_prometheus(decreasing).unwrap_err();
        assert!(err.contains("decreased"), "{err}");
    }
}
