//! Figure experiments: Fig. 1 (motivation) and Figs. 8-13 (evaluation),
//! plus the one-pass `report` that derives Figs. 8-13 from a single suite
//! run. Text output is byte-identical to the legacy binaries.

use super::{opts_json, ExperimentOutput};
use crate::json::Json;
use crate::pool;
use crate::suite::{
    format_table, geomean, run_once, run_suite, trimmed_mean, CellResult, SuiteOptions,
};
use clear_htm::AbortKind;
use clear_machine::{Preset, RunStats};
use std::fmt::Write as _;

/// Per-cell JSON: the raw per-seed cycle counts are included as integers
/// so golden checks gate the Fig. 8 inputs bit-exactly.
fn cell_json(cell: &CellResult) -> Json {
    Json::obj([
        ("preset", Json::from(cell.preset.letter().to_string())),
        ("best_retries", Json::from(cell.best_retries)),
        ("cycles", Json::from(cell.cycles())),
        ("energy", Json::from(cell.energy())),
        (
            "seed_cycles",
            Json::arr(cell.runs.iter().map(|r| Json::from(r.total_cycles))),
        ),
        (
            "aborts_per_commit",
            Json::from(cell.mean(RunStats::aborts_per_commit)),
        ),
    ])
}

fn suite_json(suite: &[[CellResult; 4]]) -> Json {
    Json::arr(suite.iter().map(|cells| {
        Json::obj([
            ("benchmark", Json::from(cells[0].name.clone())),
            ("cells", Json::arr(cells.iter().map(cell_json))),
        ])
    }))
}

pub(super) fn fig01(opts: &SuiteOptions) -> ExperimentOutput {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== Figure 1: ARs that do not change their accessed cachelines on the first retry ==="
    );
    let _ = writeln!(
        text,
        "{:14} {:>10} {:>12} {:>8}",
        "benchmark", "retried", "immutable", "ratio"
    );
    let (nb, ns) = (opts.benchmarks.len(), opts.seeds.len());
    let all_runs = pool::run_indexed(nb * ns, opts.workers, |i| {
        run_once(
            opts.benchmarks[i / ns],
            Preset::B,
            opts.cores,
            5,
            opts.size,
            opts.seeds[i % ns],
        )
    });
    let mut ratios = Vec::new();
    let mut rows = Vec::new();
    for (b, name) in opts.benchmarks.iter().enumerate() {
        let runs = &all_runs[b * ns..(b + 1) * ns];
        let retried: u64 = runs.iter().map(|r| r.retried_ars).sum();
        let immutable: u64 = runs.iter().map(|r| r.immutable_small_retries).sum();
        let ratio = trimmed_mean(
            &runs
                .iter()
                .map(|r| r.immutable_retry_ratio())
                .collect::<Vec<_>>(),
        );
        ratios.push(ratio);
        let _ = writeln!(
            text,
            "{:14} {:>10} {:>12} {:>8.2}",
            name, retried, immutable, ratio
        );
        rows.push(Json::obj([
            ("benchmark", Json::from(*name)),
            ("retried", Json::from(retried)),
            ("immutable", Json::from(immutable)),
            ("ratio", Json::from(ratio)),
        ]));
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let _ = writeln!(text, "{:14} {:>10} {:>12} {:>8.2}", "average", "", "", avg);
    let _ = writeln!(
        text,
        "\npaper: 60.2% of ARs that abort keep a small immutable footprint on the first retry"
    );
    let json = Json::obj([
        ("experiment", Json::from("fig01")),
        ("options", opts_json(opts)),
        ("rows", Json::Arr(rows)),
        ("average_ratio", Json::from(avg)),
    ]);
    ExperimentOutput::new(text, json)
}

pub(super) fn fig08(opts: &SuiteOptions) -> ExperimentOutput {
    let suite = run_suite(opts);
    let mut text = String::new();
    let mut rows = Vec::new();
    let mut norms = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut disc_rows = Vec::new();
    for cells in &suite {
        let base = cells[0].cycles();
        let mut vals = [0.0; 4];
        let mut disc = [0.0; 4];
        for (i, cell) in cells.iter().enumerate() {
            vals[i] = cell.cycles() / base;
            norms[i].push(vals[i]);
            disc[i] = cell.mean(|r| {
                r.discovery_failed_cycles as f64 / (r.total_cycles as f64 * opts.cores as f64)
            });
        }
        rows.push((cells[0].name.clone(), vals));
        disc_rows.push((cells[0].name.clone(), disc));
    }
    let agg = [
        geomean(&norms[0]),
        geomean(&norms[1]),
        geomean(&norms[2]),
        geomean(&norms[3]),
    ];
    text.push_str(&format_table(
        "Figure 8: Normalized execution time",
        "lower is better; normalized to B",
        &rows,
        ("geomean", agg),
    ));
    text.push_str(&format_table(
        "Figure 8 overlay: time running aborted in discovery",
        "fraction of machine time",
        &disc_rows,
        (
            "average",
            [0, 1, 2, 3]
                .map(|i| disc_rows.iter().map(|r| r.1[i]).sum::<f64>() / disc_rows.len() as f64),
        ),
    ));
    let _ = writeln!(text, "\nbest retry threshold per cell:");
    for cells in &suite {
        let _ = writeln!(
            text,
            "  {:14} B={} P={} C={} W={}",
            cells[0].name,
            cells[0].best_retries,
            cells[1].best_retries,
            cells[2].best_retries,
            cells[3].best_retries
        );
    }
    let _ = writeln!(text, "\npaper: P -12.7%, C -27.4%, W -35.0% vs B (geomean)");
    let json = Json::obj([
        ("experiment", Json::from("fig08")),
        ("options", opts_json(opts)),
        ("suite", suite_json(&suite)),
        (
            "normalized_geomean",
            Json::arr(agg.iter().map(|&v| Json::from(v))),
        ),
    ]);
    ExperimentOutput::new(text, json)
}

pub(super) fn fig09(opts: &SuiteOptions) -> ExperimentOutput {
    let suite = run_suite(opts);
    let mut rows = Vec::new();
    let mut sums = [0.0; 4];
    for cells in &suite {
        let mut vals = [0.0; 4];
        for (i, cell) in cells.iter().enumerate() {
            vals[i] = cell.mean(|r| r.aborts_per_commit());
            sums[i] += vals[i];
        }
        rows.push((cells[0].name.clone(), vals));
    }
    let n = rows.len() as f64;
    let mut text = format_table(
        "Figure 9: Aborts per committed transaction",
        "lower is better",
        &rows,
        ("average", sums.map(|s| s / n)),
    );
    let _ = writeln!(text, "\npaper: B 7.9, P 6.6, C 1.6, W 2.3 (average)");
    let json = Json::obj([
        ("experiment", Json::from("fig09")),
        ("options", opts_json(opts)),
        ("suite", suite_json(&suite)),
        (
            "average",
            Json::arr(sums.iter().map(|&s| Json::from(s / n))),
        ),
    ]);
    ExperimentOutput::new(text, json)
}

pub(super) fn fig10(opts: &SuiteOptions) -> ExperimentOutput {
    let suite = run_suite(opts);
    let mut rows = Vec::new();
    let mut norms = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for cells in &suite {
        let base = cells[0].energy();
        let mut vals = [0.0; 4];
        for (i, cell) in cells.iter().enumerate() {
            vals[i] = cell.energy() / base;
            norms[i].push(vals[i]);
        }
        rows.push((cells[0].name.clone(), vals));
    }
    let agg = [
        geomean(&norms[0]),
        geomean(&norms[1]),
        geomean(&norms[2]),
        geomean(&norms[3]),
    ];
    let mut text = format_table(
        "Figure 10: Normalized energy consumption",
        "lower is better; normalized to B",
        &rows,
        ("geomean", agg),
    );
    let _ = writeln!(text, "\npaper: C -26.4% vs B, W -30.6% vs B (average)");
    let json = Json::obj([
        ("experiment", Json::from("fig10")),
        ("options", opts_json(opts)),
        ("suite", suite_json(&suite)),
        (
            "normalized_geomean",
            Json::arr(agg.iter().map(|&v| Json::from(v))),
        ),
    ]);
    ExperimentOutput::new(text, json)
}

fn abort_shares(r: &RunStats) -> [f64; 4] {
    let total = r.aborts.total().max(1) as f64;
    let mem = r.aborts.get(AbortKind::MemoryConflict) as f64;
    let efb = r.aborts.get(AbortKind::ExplicitFallback) as f64;
    let ofb = r.aborts.get(AbortKind::OtherFallback) as f64;
    let others = total - mem - efb - ofb;
    [mem / total, efb / total, ofb / total, others / total]
}

pub(super) fn fig11(opts: &SuiteOptions) -> ExperimentOutput {
    let suite = run_suite(opts);
    let mut text = String::new();
    let _ = writeln!(text, "=== Figure 11: Abort breakdown per type ===");
    let _ = writeln!(
        text,
        "{:14} {:>2}  {:>8} {:>10} {:>10} {:>8}  {:>10}",
        "benchmark", "", "mem-conf", "expl-fb", "other-fb", "others", "aborts/AR"
    );
    for cells in &suite {
        for cell in cells {
            let s = [0, 1, 2, 3].map(|k| cell.mean(|r| abort_shares(r)[k]));
            let apc = cell.mean(|r| r.aborts_per_commit());
            let _ = writeln!(
                text,
                "{:14} {:>2}  {:>8.2} {:>10.2} {:>10.2} {:>8.2}  {:>10.2}",
                cell.name,
                cell.preset.letter(),
                s[0],
                s[1],
                s[2],
                s[3],
                apc
            );
        }
        let _ = writeln!(text);
    }
    let _ = writeln!(
        text,
        "shares are fractions of each configuration's own aborts"
    );
    let json = Json::obj([
        ("experiment", Json::from("fig11")),
        ("options", opts_json(opts)),
        ("suite", suite_json(&suite)),
    ]);
    ExperimentOutput::new(text, json)
}

fn mode_shares(r: &RunStats) -> [f64; 4] {
    let m = &r.commits_by_mode;
    let total = m.total().max(1) as f64;
    [
        m.speculative as f64 / total,
        m.scl as f64 / total,
        m.nscl as f64 / total,
        m.fallback as f64 / total,
    ]
}

pub(super) fn fig12(opts: &SuiteOptions) -> ExperimentOutput {
    let suite = run_suite(opts);
    let mut text = String::new();
    let _ = writeln!(text, "=== Figure 12: Commit breakdown per mode ===");
    let _ = writeln!(
        text,
        "{:14} {:>2}  {:>11} {:>8} {:>8} {:>9}",
        "benchmark", "", "speculative", "S-CL", "NS-CL", "fallback"
    );
    for cells in &suite {
        for cell in cells {
            let s = [0, 1, 2, 3].map(|k| cell.mean(|r| mode_shares(r)[k]));
            let _ = writeln!(
                text,
                "{:14} {:>2}  {:>11.2} {:>8.2} {:>8.2} {:>9.2}",
                cell.name,
                cell.preset.letter(),
                s[0],
                s[1],
                s[2],
                s[3]
            );
        }
        let _ = writeln!(text);
    }
    let json = Json::obj([
        ("experiment", Json::from("fig12")),
        ("options", opts_json(opts)),
        ("suite", suite_json(&suite)),
    ]);
    ExperimentOutput::new(text, json)
}

fn retry_shares(r: &RunStats) -> [f64; 3] {
    let one = r.commits_by_retries.get(&1).copied().unwrap_or(0);
    let many: u64 = r
        .commits_by_retries
        .iter()
        .filter(|(&k, _)| k >= 2)
        .map(|(_, &v)| v)
        .sum();
    let fb = r.commits_by_mode.fallback;
    let total = (one + many + fb).max(1) as f64;
    [one as f64 / total, many as f64 / total, fb as f64 / total]
}

pub(super) fn fig13(opts: &SuiteOptions) -> ExperimentOutput {
    let suite = run_suite(opts);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== Figure 13: Commit breakdown per number of retries (retried ARs only) ==="
    );
    let _ = writeln!(
        text,
        "{:14} {:>2}  {:>9} {:>9} {:>9}",
        "benchmark", "", "1-retry", "n-retry", "fallback"
    );
    let mut sums = [[0.0; 3]; 4];
    for cells in &suite {
        for (i, cell) in cells.iter().enumerate() {
            let s = [0, 1, 2].map(|k| cell.mean(|r| retry_shares(r)[k]));
            for k in 0..3 {
                sums[i][k] += s[k];
            }
            let _ = writeln!(
                text,
                "{:14} {:>2}  {:>9.2} {:>9.2} {:>9.2}",
                cell.name,
                cell.preset.letter(),
                s[0],
                s[1],
                s[2]
            );
        }
        let _ = writeln!(text);
    }
    let n = suite.len() as f64;
    for (i, letter) in ['B', 'P', 'C', 'W'].iter().enumerate() {
        let _ = writeln!(
            text,
            "average {letter}: 1-retry {:.2}  n-retry {:.2}  fallback {:.2}",
            sums[i][0] / n,
            sums[i][1] / n,
            sums[i][2] / n
        );
    }
    let _ = writeln!(
        text,
        "\npaper averages: B 35.4%/37.2%, P 46.4%/27.4%, C 64.2%/15.5%, W 64.4%/15.4% (1-retry/fallback)"
    );
    let json = Json::obj([
        ("experiment", Json::from("fig13")),
        ("options", opts_json(opts)),
        ("suite", suite_json(&suite)),
    ]);
    ExperimentOutput::new(text, json)
}

fn norm_rows(
    suite: &[[CellResult; 4]],
    metric: impl Fn(&CellResult) -> f64,
) -> (Vec<(String, [f64; 4])>, [f64; 4]) {
    let mut rows = Vec::new();
    let mut norms = [const { Vec::new() }; 4];
    for cells in suite {
        let base = metric(&cells[0]);
        let mut vals = [0.0; 4];
        for (i, cell) in cells.iter().enumerate() {
            vals[i] = metric(cell) / base;
            norms[i].push(vals[i]);
        }
        rows.push((cells[0].name.clone(), vals));
    }
    (rows, [0, 1, 2, 3].map(|i| geomean(&norms[i])))
}

fn mean_rows(
    suite: &[[CellResult; 4]],
    metric: impl Fn(&RunStats) -> f64,
) -> (Vec<(String, [f64; 4])>, [f64; 4]) {
    let mut rows = Vec::new();
    let mut sums = [0.0; 4];
    for cells in suite {
        let mut vals = [0.0; 4];
        for (i, cell) in cells.iter().enumerate() {
            vals[i] = cell.mean(&metric);
            sums[i] += vals[i];
        }
        rows.push((cells[0].name.clone(), vals));
    }
    let n = suite.len() as f64;
    (rows, sums.map(|s| s / n))
}

pub(super) fn report(opts: &SuiteOptions) -> ExperimentOutput {
    eprintln!(
        "suite: {:?} size, {} cores, {} seeds, sweep {:?}",
        opts.size,
        opts.cores,
        opts.seeds.len(),
        opts.retry_sweep
    );
    let suite = run_suite(opts);
    let mut text = String::new();

    // Figure 8.
    let (rows, agg) = norm_rows(&suite, CellResult::cycles);
    let fig8_geomean = agg;
    text.push_str(&format_table(
        "Figure 8: Normalized execution time",
        "normalized to B; lower is better",
        &rows,
        ("geomean", agg),
    ));

    // Figure 9.
    let (rows, agg) = mean_rows(&suite, RunStats::aborts_per_commit);
    text.push_str(&format_table(
        "Figure 9: Aborts per committed transaction",
        "lower is better",
        &rows,
        ("average", agg),
    ));

    // Figure 10.
    let (rows, agg) = norm_rows(&suite, CellResult::energy);
    text.push_str(&format_table(
        "Figure 10: Normalized energy consumption",
        "normalized to B; lower is better",
        &rows,
        ("geomean", agg),
    ));

    // Figure 11: averaged abort-type shares.
    let _ = writeln!(
        text,
        "\n=== Figure 11: Abort breakdown per type (suite average shares) ==="
    );
    for (i, letter) in ['B', 'P', 'C', 'W'].iter().enumerate() {
        let share = |kind: AbortKind| {
            suite
                .iter()
                .map(|cells| {
                    cells[i].mean(|r| r.aborts.get(kind) as f64 / r.aborts.total().max(1) as f64)
                })
                .sum::<f64>()
                / suite.len() as f64
        };
        let mem = share(AbortKind::MemoryConflict);
        let efb = share(AbortKind::ExplicitFallback);
        let ofb = share(AbortKind::OtherFallback);
        let _ = writeln!(
            text,
            "{letter}: memory-conflict {:.2}  explicit-fallback {:.2}  other-fallback {:.2}  others {:.2}",
            mem,
            efb,
            ofb,
            (1.0 - mem - efb - ofb).max(0.0)
        );
    }

    // Figure 12: commit mode shares.
    let _ = writeln!(text, "\n=== Figure 12: Commit breakdown per mode ===");
    let _ = writeln!(
        text,
        "{:14} {:>2}  {:>11} {:>8} {:>8} {:>9}",
        "benchmark", "", "speculative", "S-CL", "NS-CL", "fallback"
    );
    for cells in &suite {
        for cell in cells {
            let s = cell.mean(|r| r.commits_by_mode.speculative as f64 / r.commits() as f64);
            let scl = cell.mean(|r| r.commits_by_mode.scl as f64 / r.commits() as f64);
            let nscl = cell.mean(|r| r.commits_by_mode.nscl as f64 / r.commits() as f64);
            let fb = cell.mean(|r| r.commits_by_mode.fallback as f64 / r.commits() as f64);
            let _ = writeln!(
                text,
                "{:14} {:>2}  {:>11.2} {:>8.2} {:>8.2} {:>9.2}",
                cell.name,
                cell.preset.letter(),
                s,
                scl,
                nscl,
                fb
            );
        }
    }

    // Figure 13: retried-AR outcome shares.
    let _ = writeln!(
        text,
        "\n=== Figure 13: Commit breakdown per number of retries (retried ARs only) ==="
    );
    for (i, letter) in ['B', 'P', 'C', 'W'].iter().enumerate() {
        let avg = |k: usize| {
            suite
                .iter()
                .map(|cells| cells[i].mean(|r| retry_shares(r)[k]))
                .sum::<f64>()
                / suite.len() as f64
        };
        let _ = writeln!(
            text,
            "{letter}: 1-retry {:.2}  n-retry {:.2}  fallback {:.2}",
            avg(0),
            avg(1),
            avg(2)
        );
    }

    let _ = writeln!(text, "\nbest retry threshold per cell:");
    for cells in &suite {
        let _ = writeln!(
            text,
            "  {:14} B={} P={} C={} W={}",
            cells[0].name,
            cells[0].best_retries,
            cells[1].best_retries,
            cells[2].best_retries,
            cells[3].best_retries
        );
    }

    let json = Json::obj([
        ("experiment", Json::from("report")),
        ("options", opts_json(opts)),
        ("suite", suite_json(&suite)),
        (
            "fig08_geomean",
            Json::arr(fig8_geomean.iter().map(|&v| Json::from(v))),
        ),
    ]);
    ExperimentOutput::new(text, json)
}
