//! The `verify` experiment: run every benchmark under every configuration
//! and check its atomicity invariant over final simulated memory.

use super::{opts_json, ExperimentOutput};
use crate::json::Json;
use crate::suite::SuiteOptions;
use clear_machine::{Machine, Preset};
use clear_workloads::by_name;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn check_cell(name: &str, preset: Preset, opts: &SuiteOptions) -> Result<(), String> {
    let run = || {
        let w = by_name(name, opts.size, opts.seeds[0]).expect("known benchmark");
        let mut cfg = preset.config(opts.cores, 5);
        cfg.seed = opts.seeds[0];
        let mut m = Machine::new(cfg, w);
        let stats = m.run();
        if stats.timed_out {
            return Err("TIMEOUT".to_string());
        }
        m.workload().validate(m.memory()).map_err(|e| e.to_string())
    };
    // A panicking simulator run must count as a failed check, not take the
    // whole verification suite down with it.
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            Err(format!("PANIC: {msg}"))
        }
    }
}

pub(super) fn verify(opts: &SuiteOptions) -> ExperimentOutput {
    let mut text = String::new();
    let mut failures = 0usize;
    let _ = writeln!(
        text,
        "verifying {} benchmarks x 4 configurations ({:?}, {} cores, seed {})",
        opts.benchmarks.len(),
        opts.size,
        opts.cores,
        opts.seeds[0]
    );
    let mut rows = Vec::new();
    for name in &opts.benchmarks {
        let _ = write!(text, "{name:14}");
        for preset in Preset::ALL {
            let verdict = match check_cell(name, preset, opts) {
                Ok(()) => "ok".to_string(),
                Err(e) => {
                    failures += 1;
                    if e == "TIMEOUT" {
                        e
                    } else {
                        eprintln!("\n{name}/{preset}: {e}");
                        "FAIL".to_string()
                    }
                }
            };
            let _ = write!(text, "  {preset}:{verdict:<8}");
            rows.push(Json::obj([
                ("benchmark", Json::from(*name)),
                ("preset", Json::from(preset.letter().to_string())),
                ("ok", Json::Bool(verdict == "ok")),
            ]));
        }
        let _ = writeln!(text);
    }
    if failures == 0 {
        let _ = writeln!(text, "\nall invariants hold");
    } else {
        eprintln!("\n{failures} failures");
    }
    let json = Json::obj([
        ("experiment", Json::from("verify")),
        ("options", opts_json(opts)),
        ("rows", Json::Arr(rows)),
        ("failures", Json::from(failures)),
    ]);
    ExperimentOutput {
        text,
        json,
        failures,
        metrics: None,
    }
}
