//! The `fuzz` subcommand backend and the `litmus-conformance` gate.
//!
//! `fuzz_output` drives the clear-fuzz differential oracle over a seeded
//! case range, shrinks every failure to a minimal reproducer, and renders
//! a fully deterministic report (no wall-clock fields — `main` measures
//! throughput separately for `BENCH_fuzz.json`). `matrix_output`
//! (`fuzz --matrix`) runs the same case range through every speculation
//! backend via the backend-differential oracle. `replay_output` re-runs
//! a checked-in regression corpus. `litmus_conformance` is the ninth
//! gated experiment: the classic SB/LB/MP/IRIW shapes across every
//! machine preset and a seed sweep, with each forbidden relaxed outcome
//! pinned to zero in the golden; `litmus_backends` is its sibling gate
//! sweeping the speculation backends instead of the presets.

use super::{opts_json, ExperimentOutput};
use crate::json::Json;
use crate::pool;
use crate::suite::SuiteOptions;
use clear_fuzz::litmus::{cases, outcome_from, LitmusWorkload};
use clear_fuzz::{
    check_case, check_case_at, check_case_matrix, shrink, shrink_with, CaseReport, FuzzCase,
    MatrixReport, Shrunk,
};
use clear_machine::{BackendId, Machine, Preset};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Parses a seed argument: decimal, `0x`-prefixed hex, or — for mnemonic
/// seeds like `0xC1EAR` that are not valid hex — a deterministic FNV-1a
/// fold of the bytes. Never fails, so any string names a reproducible
/// corpus.
pub fn parse_seed(s: &str) -> u64 {
    if let Ok(v) = s.parse::<u64>() {
        return v;
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return v;
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// `u64` values (seeds, digests) travel as hex strings: JSON integers are
/// `i64` and seeds use the full range.
fn hex(v: u64) -> Json {
    Json::from(format!("{v:#x}"))
}

/// One fuzzed case's outcome as the report keeps it.
struct CaseOutcome {
    report: CaseReport,
    shrunk: Option<Shrunk>,
}

/// Runs one generated case; `cores = 0` keeps the case's own
/// contended-phase thread count, anything else overrides it (the
/// `fuzz --cores` flag — wide-machine oracle runs).
fn run_case(master_seed: u64, index: u64, cores: usize) -> CaseOutcome {
    let case = Arc::new(FuzzCase::generate(master_seed, index));
    let report = if cores == 0 {
        check_case(&case)
    } else {
        check_case_at(&case, cores)
    };
    let shrunk = report.divergence.is_some().then(|| shrink(case));
    CaseOutcome { report, shrunk }
}

fn failure_json(o: &CaseOutcome) -> Json {
    let d = o.report.divergence.as_ref().expect("failing case");
    let mut fields = vec![
        ("index", Json::from(o.report.index)),
        ("seed", hex(o.report.seed)),
        ("kind", Json::from(d.kind())),
        ("detail", Json::from(d.to_string())),
    ];
    if let Some(s) = &o.shrunk {
        let program: Vec<Json> = s
            .case
            .program
            .instrs()
            .iter()
            .map(|i| Json::from(i.to_string()))
            .collect();
        fields.push((
            "shrunk",
            Json::obj([
                ("threads", Json::from(s.case.threads)),
                ("invocations", Json::from(s.case.invocations)),
                ("shapes", Json::from(s.case.shapes.len())),
                ("attempts", Json::from(s.attempts)),
                ("program", Json::Arr(program)),
            ]),
        ));
    }
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Aggregates a slice of case outcomes into the deterministic report
/// document shared by `fuzz` and `fuzz --replay`.
fn aggregate(
    command: &str,
    seed_str: &str,
    master_seed: u64,
    outcomes: &[CaseOutcome],
) -> ExperimentOutput {
    let mut rejected = 0u64;
    let mut machine_instructions = 0u64;
    let mut reference_steps = 0u64;
    let mut commits = (0u64, 0u64, 0u64, 0u64);
    let mut aborts = 0u64;
    let mut verdicts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut soundness = 0u64;
    let mut planned_cases = 0u64;
    let mut elided = 0u64;
    let mut partial = 0u64;
    let mut failures = Vec::new();
    let (mut len_min, mut len_max, mut len_sum) = (usize::MAX, 0usize, 0u64);

    for o in outcomes {
        let r = &o.report;
        rejected += u64::from(r.rejected);
        machine_instructions += r.machine_instructions;
        reference_steps += r.reference_steps;
        commits.0 += r.mode_commits.0;
        commits.1 += r.mode_commits.1;
        commits.2 += r.mode_commits.2;
        commits.3 += r.mode_commits.3;
        aborts += r.aborts;
        planned_cases += u64::from(r.planned_ars > 0);
        elided += r.fastpath_elided;
        partial += r.fastpath_partial;
        *verdicts.entry(r.verdict).or_default() += 1;
        len_min = len_min.min(r.program_len);
        len_max = len_max.max(r.program_len);
        len_sum += r.program_len as u64;
        if let Some(d) = &r.divergence {
            *kinds.entry(d.kind()).or_default() += 1;
            if d.kind() == "soundness-violation" {
                soundness += 1;
            }
            failures.push(failure_json(o));
        }
    }
    let diverged = failures.len();
    let cases = outcomes.len();

    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== {command}: {cases} cases, seed {seed_str} ({master_seed:#x}) ==="
    );
    let _ = writeln!(
        text,
        "rejected drafts: {rejected}   machine instructions: {machine_instructions}   \
         reference steps: {reference_steps}"
    );
    let _ = writeln!(
        text,
        "contended commits: speculative {} / NS-CL {} / S-CL {} / fallback {}   aborts: {aborts}",
        commits.0, commits.1, commits.2, commits.3
    );
    let verdict_line = verdicts
        .iter()
        .map(|(v, n)| format!("{v} {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(text, "static verdicts: {verdict_line}");
    let _ = writeln!(
        text,
        "static fast path: {planned_cases} planned cases, {elided} discovery runs elided, \
         {partial} shortened to root confirmation"
    );
    if diverged == 0 {
        let _ = writeln!(text, "oracle: all {cases} cases agree (0 divergences)");
    } else {
        let _ = writeln!(text, "oracle: {diverged} DIVERGENCES:");
        for (kind, n) in &kinds {
            let _ = writeln!(text, "  {kind}: {n}");
        }
    }

    let json = Json::obj([
        ("command", Json::from(command)),
        ("seed", Json::from(seed_str)),
        ("seed_value", hex(master_seed)),
        ("cases", Json::from(cases)),
        ("rejected_drafts", Json::from(rejected)),
        ("divergences", Json::from(diverged)),
        ("soundness_violations", Json::from(soundness)),
        ("planned_cases", Json::from(planned_cases)),
        ("discovery_runs_elided", Json::from(elided)),
        ("partial_discovery_runs", Json::from(partial)),
        ("machine_instructions", Json::from(machine_instructions)),
        ("reference_steps", Json::from(reference_steps)),
        (
            "contended_commits",
            Json::obj([
                ("speculative", Json::from(commits.0)),
                ("nscl", Json::from(commits.1)),
                ("scl", Json::from(commits.2)),
                ("fallback", Json::from(commits.3)),
            ]),
        ),
        ("aborts", Json::from(aborts)),
        (
            "verdicts",
            Json::Obj(
                verdicts
                    .iter()
                    .map(|(v, n)| (v.to_string(), Json::from(*n)))
                    .collect(),
            ),
        ),
        (
            "program_len",
            Json::obj([
                (
                    "min",
                    Json::from(if cases == 0 { 0 } else { len_min as u64 }),
                ),
                ("max", Json::from(len_max as u64)),
                (
                    "mean",
                    Json::Float(if cases == 0 {
                        0.0
                    } else {
                        len_sum as f64 / cases as f64
                    }),
                ),
            ]),
        ),
        ("failures", Json::Arr(failures)),
    ]);
    let mut out = ExperimentOutput::new(text, json);
    out.failures = diverged;
    out
}

/// Runs `count` seeded cases through the differential oracle in parallel
/// and renders the deterministic fuzz report. Failing cases are shrunk to
/// minimal reproducers embedded in the `failures` array. `cores = 0` runs
/// each case at its own generated thread count; a nonzero value widens
/// every contended phase to that many simulated cores (`fuzz --cores`).
pub fn fuzz_output(seed_str: &str, count: u64, workers: usize, cores: usize) -> ExperimentOutput {
    let master_seed = parse_seed(seed_str);
    let outcomes = pool::run_indexed(count as usize, workers, |i| {
        run_case(master_seed, i as u64, cores)
    });
    let mut out = aggregate("fuzz", seed_str, master_seed, &outcomes);
    if let Json::Obj(fields) = &mut out.json {
        fields.insert(3, ("cores_override".to_string(), Json::from(cores)));
    }
    out
}

/// Replays an explicit `(master_seed, index)` list — the checked-in
/// regression corpus — through the oracle. Entries keep their original
/// master seed, so a corpus survives changes to the default CLI seed.
pub fn replay_output(entries: &[(String, u64, u64)], workers: usize) -> ExperimentOutput {
    let outcomes = pool::run_indexed(entries.len(), workers, |i| {
        let (_, master_seed, index) = &entries[i];
        // Corpus entries replay at their original thread counts: a pinned
        // regression must reproduce the machine shape it was found on.
        run_case(*master_seed, *index, 0)
    });
    let mut out = aggregate("replay", "corpus", 0, &outcomes);
    // Name each replayed entry in the text so CI logs read well.
    let mut text = String::new();
    for ((name, seed, index), o) in entries.iter().zip(&outcomes) {
        let verdict = match &o.report.divergence {
            None => "ok".to_string(),
            Some(d) => format!("DIVERGED: {d}"),
        };
        let _ = writeln!(
            text,
            "replay {name} (seed {seed:#x}, index {index}): {verdict}"
        );
    }
    out.text = format!("{text}{}", out.text);
    out
}

/// Pinned options for the `litmus-conformance` golden: every preset, six
/// seeds, retry threshold 5. Cores-per-run always equals the case's
/// thread count, so `cores` here is only documentation.
pub(super) fn litmus_opts() -> SuiteOptions {
    SuiteOptions {
        size: clear_workloads::Size::Tiny,
        cores: 4,
        seeds: (1..=6).collect(),
        retry_sweep: vec![5],
        benchmarks: vec![],
        workers: pool::default_workers(),
        sim_threads: 1,
        backends: BackendId::ALL.iter().map(|b| b.name()).collect(),
    }
}

/// The `litmus-conformance` experiment: SB, LB, MP and IRIW across every
/// preset × seed, with outcome histograms and the forbidden relaxed
/// outcome of each shape pinned to zero.
pub(super) fn litmus_conformance(opts: &SuiteOptions) -> ExperimentOutput {
    let catalogue = cases();
    let grid: Vec<(usize, Preset, u64)> = catalogue
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| {
            Preset::ALL
                .into_iter()
                .flat_map(move |p| opts.seeds.iter().map(move |&s| (ci, p, s)))
        })
        .collect();

    let results = pool::run_indexed(grid.len(), opts.workers, |g| {
        let (ci, preset, seed) = grid[g];
        let case = Arc::new(cases().swap_remove(ci));
        let threads = case.threads.len();
        let workload = LitmusWorkload::new(Arc::clone(&case), seed);
        let layout = workload.layout_handle();
        let mut cfg = preset.config(threads, opts.retry_sweep[0]);
        cfg.seed = seed;
        let mut machine = Machine::new(cfg, Box::new(workload));
        let stats = machine.run();
        let layout = layout.get().expect("setup published the layout");
        let outcome = outcome_from(&case, &layout, machine.memory());
        let label = case.label(&outcome);
        let forbidden = (case.forbidden)(&outcome);
        let committed = stats.commits_by_mode.total() == threads as u64;
        (ci, preset, stats.timed_out, committed, forbidden, label)
    });

    // (case, preset) -> outcome histogram + violation counters.
    type RowAccum = (BTreeMap<String, u64>, u64, u64);
    let mut rows: BTreeMap<(usize, char), RowAccum> = BTreeMap::new();
    for (ci, preset, timed_out, committed, forbidden, label) in &results {
        let slot = rows.entry((*ci, preset.letter())).or_default();
        *slot.0.entry(label.clone()).or_default() += 1;
        if *forbidden {
            slot.1 += 1;
        }
        if *timed_out || !committed {
            slot.2 += 1;
        }
    }

    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== litmus-conformance: atomic outcomes of the classic shapes ==="
    );
    let _ = writeln!(
        text,
        "{:6} {:7} {:>6} {:>10} {:>7}  outcomes",
        "case", "preset", "runs", "forbidden", "broken"
    );
    let mut row_json = Vec::new();
    let mut total_forbidden = 0u64;
    let mut total_broken = 0u64;
    for ((ci, letter), (hist, forbidden, broken)) in &rows {
        let case = &catalogue[*ci];
        let runs: u64 = hist.values().sum();
        total_forbidden += forbidden;
        total_broken += broken;
        let outcomes = hist
            .iter()
            .map(|(l, n)| format!("{l} x{n}"))
            .collect::<Vec<_>>()
            .join("; ");
        let _ = writeln!(
            text,
            "{:6} {:7} {:>6} {:>10} {:>7}  {outcomes}",
            case.name, letter, runs, forbidden, broken
        );
        row_json.push(Json::obj([
            ("case", Json::from(case.name)),
            ("preset", Json::from(letter.to_string())),
            ("runs", Json::from(runs)),
            ("forbidden", Json::from(*forbidden)),
            ("broken_runs", Json::from(*broken)),
            (
                "outcomes",
                Json::Obj(
                    hist.iter()
                        .map(|(l, n)| (l.clone(), Json::from(*n)))
                        .collect(),
                ),
            ),
        ]));
    }
    let _ = writeln!(
        text,
        "\ntotal forbidden outcomes: {total_forbidden}   broken runs: {total_broken}"
    );
    let _ = writeln!(
        text,
        "(atomic regions serialize: every relaxed litmus outcome must be impossible)"
    );

    let json = Json::obj([
        ("experiment", Json::from("litmus-conformance")),
        ("options", opts_json(opts)),
        (
            "cases",
            Json::arr(catalogue.iter().map(|c| {
                Json::obj([
                    ("name", Json::from(c.name)),
                    ("threads", Json::from(c.threads.len())),
                    ("about", Json::from(c.about)),
                ])
            })),
        ),
        ("rows", Json::Arr(row_json)),
        ("forbidden_outcomes", Json::from(total_forbidden)),
        ("broken_runs", Json::from(total_broken)),
    ]);
    let mut out = ExperimentOutput::new(text, json);
    out.failures = (total_forbidden + total_broken) as usize;
    out
}

/// Pinned options for the `litmus-backends` golden: every speculation
/// backend, six seeds, retry threshold 5. As with `litmus-conformance`,
/// each run uses the case's own thread count.
pub(super) fn litmus_backends_opts() -> SuiteOptions {
    SuiteOptions {
        size: clear_workloads::Size::Tiny,
        cores: 4,
        seeds: (1..=6).collect(),
        retry_sweep: vec![5],
        benchmarks: vec![],
        workers: pool::default_workers(),
        sim_threads: 1,
        backends: BackendId::ALL.iter().map(|b| b.name()).collect(),
    }
}

/// The `litmus-backends` experiment: SB, LB, MP and IRIW across every
/// speculation backend × seed (the `--backend` flag restricts the sweep),
/// with the forbidden relaxed outcome of each shape pinned to zero. The
/// preset-sweep sibling is [`litmus_conformance`]; this gate proves the
/// atomicity argument is backend-independent — including under the
/// limited-R/W-set backend's capacity aborts.
pub(super) fn litmus_backends(opts: &SuiteOptions) -> ExperimentOutput {
    let catalogue = cases();
    let backends: Vec<BackendId> = opts
        .backends
        .iter()
        .map(|n| BackendId::from_name(n).expect("SuiteOptions validated the backend names"))
        .collect();
    let grid: Vec<(usize, BackendId, u64)> = catalogue
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| {
            backends
                .iter()
                .flat_map(move |&b| opts.seeds.iter().map(move |&s| (ci, b, s)))
        })
        .collect();

    let results = pool::run_indexed(grid.len(), opts.workers, |g| {
        let (ci, backend, seed) = grid[g];
        let case = Arc::new(cases().swap_remove(ci));
        let threads = case.threads.len();
        let workload = LitmusWorkload::new(Arc::clone(&case), seed);
        let layout = workload.layout_handle();
        let mut cfg = backend.config(threads, opts.retry_sweep[0]);
        cfg.seed = seed;
        let mut machine = Machine::new(cfg, Box::new(workload));
        let stats = machine.run();
        let layout = layout.get().expect("setup published the layout");
        let outcome = outcome_from(&case, &layout, machine.memory());
        let label = case.label(&outcome);
        let forbidden = (case.forbidden)(&outcome);
        let committed = stats.commits_by_mode.total() == threads as u64;
        (ci, backend, stats.timed_out, committed, forbidden, label)
    });

    // (case, backend) -> outcome histogram + violation counters.
    type RowAccum = (BTreeMap<String, u64>, u64, u64);
    let mut rows: BTreeMap<(usize, &'static str), RowAccum> = BTreeMap::new();
    for (ci, backend, timed_out, committed, forbidden, label) in &results {
        let slot = rows.entry((*ci, backend.name())).or_default();
        *slot.0.entry(label.clone()).or_default() += 1;
        if *forbidden {
            slot.1 += 1;
        }
        if *timed_out || !committed {
            slot.2 += 1;
        }
    }

    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== litmus-backends: atomic outcomes across speculation backends ==="
    );
    let _ = writeln!(
        text,
        "{:6} {:8} {:>6} {:>10} {:>7}  outcomes",
        "case", "backend", "runs", "forbidden", "broken"
    );
    let mut row_json = Vec::new();
    let mut total_forbidden = 0u64;
    let mut total_broken = 0u64;
    for ((ci, backend), (hist, forbidden, broken)) in &rows {
        let case = &catalogue[*ci];
        let runs: u64 = hist.values().sum();
        total_forbidden += forbidden;
        total_broken += broken;
        let outcomes = hist
            .iter()
            .map(|(l, n)| format!("{l} x{n}"))
            .collect::<Vec<_>>()
            .join("; ");
        let _ = writeln!(
            text,
            "{:6} {:8} {:>6} {:>10} {:>7}  {outcomes}",
            case.name, backend, runs, forbidden, broken
        );
        row_json.push(Json::obj([
            ("case", Json::from(case.name)),
            ("backend", Json::from(*backend)),
            ("runs", Json::from(runs)),
            ("forbidden", Json::from(*forbidden)),
            ("broken_runs", Json::from(*broken)),
            (
                "outcomes",
                Json::Obj(
                    hist.iter()
                        .map(|(l, n)| (l.clone(), Json::from(*n)))
                        .collect(),
                ),
            ),
        ]));
    }
    let _ = writeln!(
        text,
        "\ntotal forbidden outcomes: {total_forbidden}   broken runs: {total_broken}"
    );
    let _ = writeln!(
        text,
        "(serializability is a backend contract: no backend may admit a relaxed outcome)"
    );

    let json = Json::obj([
        ("experiment", Json::from("litmus-backends")),
        ("options", opts_json(opts)),
        (
            "backends",
            Json::arr(backends.iter().map(|b| Json::from(b.name()))),
        ),
        (
            "cases",
            Json::arr(catalogue.iter().map(|c| {
                Json::obj([
                    ("name", Json::from(c.name)),
                    ("threads", Json::from(c.threads.len())),
                    ("about", Json::from(c.about)),
                ])
            })),
        ),
        ("rows", Json::Arr(row_json)),
        ("forbidden_outcomes", Json::from(total_forbidden)),
        ("broken_runs", Json::from(total_broken)),
    ]);
    let mut out = ExperimentOutput::new(text, json);
    out.failures = (total_forbidden + total_broken) as usize;
    out
}

/// One backend-matrix case's outcome as the report keeps it.
struct MatrixOutcome {
    report: MatrixReport,
    shrunk: Option<Shrunk>,
}

fn run_matrix_case(master_seed: u64, index: u64) -> MatrixOutcome {
    let case = Arc::new(FuzzCase::generate(master_seed, index));
    let report = check_case_matrix(&case);
    let shrunk = (!report.passed()).then(|| shrink_with(case, |c| !check_case_matrix(c).passed()));
    MatrixOutcome { report, shrunk }
}

fn matrix_failure_json(o: &MatrixOutcome) -> Json {
    let (backend, d) = o.report.divergence().expect("failing case");
    let mut fields = vec![
        ("index", Json::from(o.report.index)),
        ("seed", hex(o.report.seed)),
        ("backend", Json::from(backend)),
        ("kind", Json::from(d.kind())),
        ("detail", Json::from(d.to_string())),
    ];
    if let Some(s) = &o.shrunk {
        let program: Vec<Json> = s
            .case
            .program
            .instrs()
            .iter()
            .map(|i| Json::from(i.to_string()))
            .collect();
        fields.push((
            "shrunk",
            Json::obj([
                ("threads", Json::from(s.case.threads)),
                ("invocations", Json::from(s.case.invocations)),
                ("shapes", Json::from(s.case.shapes.len())),
                ("attempts", Json::from(s.attempts)),
                ("program", Json::Arr(program)),
            ]),
        ));
    }
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Runs `count` seeded cases through the backend-differential matrix
/// oracle (`fuzz --matrix`): each case executes once per built-in
/// speculation backend, and every backend must agree with the serial VM
/// replay and its own accounting contract. Failing cases are shrunk
/// against the matrix predicate. The report is byte-deterministic across
/// runs and worker counts.
pub fn matrix_output(seed_str: &str, count: u64, workers: usize) -> ExperimentOutput {
    let master_seed = parse_seed(seed_str);
    let outcomes = pool::run_indexed(count as usize, workers, |i| {
        run_matrix_case(master_seed, i as u64)
    });

    // Per-backend aggregates: commits, aborts, capacity, R/W-set
    // overflows, fast-path elisions, divergences.
    let mut per_backend: BTreeMap<&'static str, (u64, u64, u64, u64, u64, u64)> = BTreeMap::new();
    let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut failures = Vec::new();
    for o in &outcomes {
        for b in &o.report.outcomes {
            let slot = per_backend.entry(b.backend).or_default();
            slot.0 += b.commits;
            slot.1 += b.aborts;
            slot.2 += b.capacity_aborts;
            slot.3 += b.lrws_capacity_aborts;
            slot.4 += b.fastpath_elided;
            if b.divergence.is_some() {
                slot.5 += 1;
            }
        }
        if let Some((_, d)) = o.report.divergence() {
            *kinds.entry(d.kind()).or_default() += 1;
            failures.push(matrix_failure_json(o));
        }
    }
    let diverged = failures.len();
    let cases = outcomes.len();
    let n_backends = BackendId::ALL.len();

    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== fuzz --matrix: {cases} cases x {n_backends} backends, seed {seed_str} \
         ({master_seed:#x}) ==="
    );
    let _ = writeln!(
        text,
        "{:8} {:>9} {:>8} {:>9} {:>9} {:>8} {:>10}",
        "backend", "commits", "aborts", "capacity", "rw-ovfl", "elided", "diverged"
    );
    // BackendId::ALL order, not BTreeMap order: the table reads in the
    // same sequence as every other backend sweep.
    for id in BackendId::ALL {
        let (commits, aborts, capacity, lrws, elided, div) =
            per_backend.get(id.name()).copied().unwrap_or_default();
        let _ = writeln!(
            text,
            "{:8} {:>9} {:>8} {:>9} {:>9} {:>8} {:>10}",
            id.name(),
            commits,
            aborts,
            capacity,
            lrws,
            elided,
            div
        );
    }
    if diverged == 0 {
        let _ = writeln!(
            text,
            "matrix: all {cases} cases agree across {n_backends} backends (0 divergences)"
        );
    } else {
        let _ = writeln!(text, "matrix: {diverged} DIVERGENCES:");
        for (kind, n) in &kinds {
            let _ = writeln!(text, "  {kind}: {n}");
        }
    }

    let backend_json = Json::arr(BackendId::ALL.iter().map(|id| {
        let (commits, aborts, capacity, lrws, elided, div) =
            per_backend.get(id.name()).copied().unwrap_or_default();
        Json::obj([
            ("backend", Json::from(id.name())),
            ("commits", Json::from(commits)),
            ("aborts", Json::from(aborts)),
            ("capacity_aborts", Json::from(capacity)),
            ("lrws_capacity_aborts", Json::from(lrws)),
            ("discovery_runs_elided", Json::from(elided)),
            ("diverged_cases", Json::from(div)),
        ])
    }));
    let json = Json::obj([
        ("command", Json::from("fuzz-matrix")),
        ("seed", Json::from(seed_str)),
        ("seed_value", hex(master_seed)),
        ("cases", Json::from(cases)),
        ("divergences", Json::from(diverged)),
        ("backends", backend_json),
        ("failures", Json::Arr(failures)),
    ]);
    let mut out = ExperimentOutput::new(text, json);
    out.failures = diverged;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parsing_covers_decimal_hex_and_mnemonics() {
        assert_eq!(parse_seed("42"), 42);
        assert_eq!(parse_seed("0xff"), 255);
        assert_eq!(parse_seed("0XFF"), 255);
        // `0xC1EAR` is not valid hex (R); it folds deterministically.
        let m = parse_seed("0xC1EAR");
        assert_eq!(m, parse_seed("0xC1EAR"));
        assert_ne!(m, parse_seed("0xC1EAS"));
        assert_ne!(m, 0);
    }

    #[test]
    fn small_fuzz_run_is_clean_and_deterministic() {
        let a = fuzz_output("0xC1EAR", 24, 4, 0);
        assert_eq!(a.failures, 0, "{}", a.text);
        let b = fuzz_output("0xC1EAR", 24, 1, 0);
        assert_eq!(a.json.to_pretty(), b.json.to_pretty());
        assert_eq!(a.text, b.text);
        assert!(a.text.contains("all 24 cases agree"));
    }

    #[test]
    fn wide_cores_override_scales_the_contended_phase() {
        let out = fuzz_output("0xC1EAR", 4, 4, 128);
        assert_eq!(out.failures, 0, "{}", out.text);
        assert_eq!(out.json.get("cores_override"), Some(&Json::Int(128)));
        // 4 cases x 128 threads x >= 1 invocation each, all committed in
        // some mode: total contended commits must be at least 512.
        let commits = out.json.get("contended_commits").expect("commits");
        let total: i64 = ["speculative", "nscl", "scl", "fallback"]
            .iter()
            .map(|k| match commits.get(k) {
                Some(Json::Int(v)) => *v,
                _ => 0,
            })
            .sum();
        assert!(total >= 512, "expected >=512 wide commits, got {total}");
    }

    #[test]
    fn replay_reports_entries_by_name() {
        let entries = vec![
            ("sb-regression".to_string(), parse_seed("0xC1EAR"), 0),
            ("probe".to_string(), 7, 3),
        ];
        let out = replay_output(&entries, 2);
        assert_eq!(out.failures, 0, "{}", out.text);
        assert!(out.text.contains("replay sb-regression"));
        assert!(out.text.contains("replay probe"));
    }

    #[test]
    fn litmus_gate_pins_forbidden_outcomes_to_zero() {
        let opts = SuiteOptions {
            seeds: vec![1, 2],
            workers: 4,
            ..litmus_opts()
        };
        let out = litmus_conformance(&opts);
        assert_eq!(out.failures, 0, "{}", out.text);
        assert!(out.json.get("forbidden_outcomes").is_some());
        // 4 cases x 4 presets x 2 seeds.
        assert!(out.text.contains("IRIW"));
    }

    #[test]
    fn litmus_backends_gate_pins_forbidden_outcomes_to_zero() {
        let opts = SuiteOptions {
            seeds: vec![1, 2],
            workers: 4,
            ..litmus_backends_opts()
        };
        let out = litmus_backends(&opts);
        assert_eq!(out.failures, 0, "{}", out.text);
        // Every backend shows up as a row label.
        for id in BackendId::ALL {
            assert!(out.text.contains(id.name()), "missing {id}:\n{}", out.text);
        }
        assert!(out.text.contains("IRIW"));
    }

    #[test]
    fn backend_flag_restricts_the_litmus_backend_sweep() {
        let opts = SuiteOptions {
            seeds: vec![1],
            workers: 2,
            backends: vec!["tsx", "lrws"],
            ..litmus_backends_opts()
        };
        let out = litmus_backends(&opts);
        assert_eq!(out.failures, 0, "{}", out.text);
        let backends = out.json.get("backends").expect("backends array");
        assert_eq!(
            backends.to_pretty(),
            Json::arr(["tsx", "lrws"].iter().map(|b| Json::from(*b))).to_pretty()
        );
        assert!(!out.text.contains("powertm"));
    }

    #[test]
    fn small_matrix_run_is_clean_and_deterministic() {
        let a = matrix_output("0xC1EAR", 8, 4);
        assert_eq!(a.failures, 0, "{}", a.text);
        let b = matrix_output("0xC1EAR", 8, 1);
        assert_eq!(a.json.to_pretty(), b.json.to_pretty());
        assert_eq!(a.text, b.text);
        assert!(a.text.contains("all 8 cases agree across 5 backends"));
        // Every backend committed work; only lrws may overflow buffers.
        let backends = match a.json.get("backends") {
            Some(Json::Arr(rows)) => rows.clone(),
            other => panic!("expected backends array, got {other:?}"),
        };
        assert_eq!(backends.len(), 5);
        for row in &backends {
            let commits = row.get("commits").cloned();
            assert!(matches!(commits, Some(Json::Int(c)) if c > 0), "{row:?}");
            if row.get("backend") != Some(&Json::from("lrws")) {
                assert_eq!(row.get("lrws_capacity_aborts"), Some(&Json::Int(0)));
            }
        }
    }
}
