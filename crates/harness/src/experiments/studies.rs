//! Study experiments: the ablation grid, per-AR breakdown, retry-threshold
//! DSE, a-priori-locking comparison, core scaling, SLE-vs-HTM speculation,
//! and the trace dump.

use super::{opts_json, ExperimentOutput};
use crate::json::Json;
use crate::pool;
use crate::suite::{run_once, trimmed_mean, SuiteOptions};
use clear_core::{ClearConfig, SclLockPolicy};
use clear_machine::{Machine, MachineConfig, Preset, RunStats, SpeculationKind};
use clear_workloads::{by_name, Size};
use std::fmt::Write as _;

fn run_clear_variant(
    name: &str,
    opts: &SuiteOptions,
    tweak: impl Fn(&mut ClearConfig),
) -> RunStats {
    let w = by_name(name, opts.size, opts.seeds[0]).expect("known benchmark");
    let mut cfg = Preset::C.config(opts.cores, 5);
    cfg.seed = opts.seeds[0];
    tweak(cfg.clear.as_mut().expect("preset C has CLEAR"));
    let mut m = Machine::new(cfg, w);
    let s = m.run();
    m.workload().validate(m.memory()).expect("invariant");
    s
}

const ABLATION_APPS: [&str; 6] = [
    "arrayswap",
    "bst",
    "hashmap",
    "intruder",
    "labyrinth",
    "mwobject",
];
const ABLATION_VARIANTS: [&str; 7] = [
    "baseline_b",
    "c",
    "no_crt",
    "lock_all",
    "alt8",
    "alt64",
    "ert4",
];

fn ablation_variant(name: &str, variant: usize, opts: &SuiteOptions) -> RunStats {
    match variant {
        0 => run_once(name, Preset::B, opts.cores, 5, opts.size, opts.seeds[0]),
        1 => run_clear_variant(name, opts, |_| {}),
        2 => run_clear_variant(name, opts, |cc| {
            cc.crt_sets = 1;
            cc.crt_ways = 1;
        }),
        3 => run_clear_variant(name, opts, |cc| {
            cc.scl_lock_policy = SclLockPolicy::AllAccessed;
        }),
        4 => run_clear_variant(name, opts, |cc| cc.alt_entries = 8),
        5 => run_clear_variant(name, opts, |cc| cc.alt_entries = 64),
        6 => run_clear_variant(name, opts, |cc| cc.ert_entries = 4),
        _ => unreachable!("seven ablation variants"),
    }
}

pub(super) fn ablation(opts: &SuiteOptions) -> ExperimentOutput {
    let apps: Vec<&str> = ABLATION_APPS
        .iter()
        .copied()
        .filter(|n| opts.benchmarks.contains(n))
        .collect();
    let nv = ABLATION_VARIANTS.len();
    let stats = pool::run_indexed(apps.len() * nv, opts.workers, |i| {
        ablation_variant(apps[i / nv], i % nv, opts)
    });
    let mut text = String::new();
    let _ = writeln!(text, "=== CLEAR ablations (configuration C, retries=5) ===");
    let _ = writeln!(
        text,
        "{:12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "baseline-B", "C", "C/no-CRT", "C/lock-all", "C/ALT-8", "C/ALT-64", "C/ERT-4"
    );
    let mut rows = Vec::new();
    for (a, name) in apps.iter().enumerate() {
        let v = &stats[a * nv..(a + 1) * nv];
        let base = v[0].total_cycles;
        let ratio = |i: usize| v[i].total_cycles as f64 / base as f64;
        let _ = writeln!(
            text,
            "{:12} {:>12} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            name,
            base,
            ratio(1),
            ratio(2),
            ratio(3),
            ratio(4),
            ratio(5),
            ratio(6),
        );
        rows.push(Json::obj([
            ("benchmark", Json::from(*name)),
            (
                "variant_cycles",
                Json::obj(
                    ABLATION_VARIANTS
                        .iter()
                        .zip(v)
                        .map(|(label, s)| (*label, Json::from(s.total_cycles))),
                ),
            ),
            (
                "variant_ratio",
                Json::obj(
                    ABLATION_VARIANTS
                        .iter()
                        .enumerate()
                        .skip(1)
                        .map(|(i, label)| (*label, Json::from(ratio(i)))),
                ),
            ),
        ]));
    }
    let _ = writeln!(
        text,
        "\ncolumns (except baseline-B, in cycles) are normalized to B; lower is better"
    );
    let json = Json::obj([
        ("experiment", Json::from("ablation")),
        ("options", opts_json(opts)),
        ("rows", Json::Arr(rows)),
    ]);
    ExperimentOutput::new(text, json)
}

pub(super) fn ar_breakdown(opts: &SuiteOptions) -> ExperimentOutput {
    let stats = pool::run_indexed(opts.benchmarks.len(), opts.workers, |i| {
        let name = opts.benchmarks[i];
        let w = by_name(name, opts.size, opts.seeds[0]).expect("known benchmark");
        let mut cfg = Preset::C.config(opts.cores, 5);
        cfg.seed = opts.seeds[0];
        let mut m = Machine::new(cfg, w);
        let stats = m.run();
        m.workload().validate(m.memory()).expect("invariant");
        stats
    });
    let mut text = String::new();
    let mut rows = Vec::new();
    for (name, stats) in opts.benchmarks.iter().zip(&stats) {
        let w = by_name(name, opts.size, opts.seeds[0]).expect("known benchmark");
        let meta = w.meta();
        let _ = writeln!(text, "\n=== {name} (configuration C) ===");
        let _ = writeln!(
            text,
            "{:16} {:18} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9}",
            "AR", "static class", "commits", "aborts", "spec%", "S-CL%", "NS-CL%", "fallback%"
        );
        for spec in &meta.ars {
            let e = stats.ar_stats.get(&spec.id.0).copied().unwrap_or_default();
            let total = e.by_mode.total().max(1) as f64;
            let _ = writeln!(
                text,
                "{:16} {:18} {:>8} {:>8} {:>7.1} {:>7.1} {:>7.1} {:>9.1}",
                spec.name,
                spec.mutability.to_string(),
                e.commits,
                e.aborts,
                100.0 * e.by_mode.speculative as f64 / total,
                100.0 * e.by_mode.scl as f64 / total,
                100.0 * e.by_mode.nscl as f64 / total,
                100.0 * e.by_mode.fallback as f64 / total,
            );
            rows.push(Json::obj([
                ("benchmark", Json::from(*name)),
                ("ar", Json::from(spec.name.clone())),
                ("class", Json::from(spec.mutability.to_string())),
                ("commits", Json::from(e.commits)),
                ("aborts", Json::from(e.aborts)),
                ("speculative", Json::from(e.by_mode.speculative)),
                ("scl", Json::from(e.by_mode.scl)),
                ("nscl", Json::from(e.by_mode.nscl)),
                ("fallback", Json::from(e.by_mode.fallback)),
            ]));
        }
    }
    let _ = writeln!(
        text,
        "\nimmutable ARs should convert to NS-CL under contention; likely-immutable"
    );
    let _ = writeln!(
        text,
        "and small mutable ARs to S-CL; oversized ARs stay speculative/fallback"
    );
    let json = Json::obj([
        ("experiment", Json::from("ar-breakdown")),
        ("options", opts_json(opts)),
        ("rows", Json::Arr(rows)),
    ]);
    ExperimentOutput::new(text, json)
}

pub(super) fn dse_retries(opts: &SuiteOptions) -> ExperimentOutput {
    let mut opts = opts.clone();
    if opts.retry_sweep.len() <= 3 {
        opts.retry_sweep = (1..=10).collect();
    }
    let presets = Preset::ALL;
    let (nb, np, nr, ns) = (
        opts.benchmarks.len(),
        presets.len(),
        opts.retry_sweep.len(),
        opts.seeds.len(),
    );
    let grid = pool::run_indexed(nb * np * nr * ns, opts.workers, |i| {
        let s = i % ns;
        let r = (i / ns) % nr;
        let p = (i / (ns * nr)) % np;
        let b = i / (ns * nr * np);
        run_once(
            opts.benchmarks[b],
            presets[p],
            opts.cores,
            opts.retry_sweep[r],
            opts.size,
            opts.seeds[s],
        )
        .total_cycles as f64
    });
    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== Retry-threshold design-space exploration (cycles, per threshold) ==="
    );
    let mut rows = Vec::new();
    for (b, name) in opts.benchmarks.iter().enumerate() {
        let _ = writeln!(text, "\n{name}:");
        let _ = write!(text, "{:>4}", "cfg");
        for r in &opts.retry_sweep {
            let _ = write!(text, " {:>10}", format!("r={r}"));
        }
        let _ = writeln!(text, " {:>6}", "best");
        for (p, preset) in presets.iter().enumerate() {
            let _ = write!(text, "{:>4}", preset.letter());
            let mut best = (0u32, f64::INFINITY);
            let mut means = Vec::new();
            for (r, &retries) in opts.retry_sweep.iter().enumerate() {
                let base = ((b * np + p) * nr + r) * ns;
                let cycles: Vec<f64> = grid[base..base + ns].to_vec();
                let mean = trimmed_mean(&cycles);
                if mean < best.1 {
                    best = (retries, mean);
                }
                means.push(mean);
                let _ = write!(text, " {:>10.0}", mean);
            }
            let _ = writeln!(text, " {:>6}", format!("r={}", best.0));
            rows.push(Json::obj([
                ("benchmark", Json::from(*name)),
                ("preset", Json::from(preset.letter().to_string())),
                ("mean_cycles", Json::arr(means.into_iter().map(Json::from))),
                ("best_retries", Json::from(best.0)),
            ]));
        }
    }
    let json = Json::obj([
        ("experiment", Json::from("dse-retries")),
        ("options", opts_json(&opts)),
        ("rows", Json::Arr(rows)),
    ]);
    ExperimentOutput::new(text, json)
}

fn run_with_config(name: &str, cfg: MachineConfig, seed: u64, size: Size) -> RunStats {
    let w = by_name(name, size, seed).expect("known benchmark");
    let mut cfg = cfg;
    cfg.seed = seed;
    let mut m = Machine::new(cfg, w);
    let s = m.run();
    m.workload().validate(m.memory()).expect("invariant");
    s
}

pub(super) fn mad_vs_clear(opts: &SuiteOptions) -> ExperimentOutput {
    // Benchmarks with at least one statically-lockable AR.
    let eligible = [
        "arrayswap",
        "mwobject",
        "kmeans-h",
        "kmeans-l",
        "ssca2",
        "sorted-list",
    ];
    let apps: Vec<&str> = eligible
        .iter()
        .copied()
        .filter(|n| opts.benchmarks.contains(n))
        .collect();
    let cores_axis = [2usize, 8, 32];
    let (nc, nv) = (cores_axis.len(), 3);
    let stats = pool::run_indexed(apps.len() * nc * nv, opts.workers, |i| {
        let v = i % nv;
        let c = (i / nv) % nc;
        let name = apps[i / (nv * nc)];
        let cores = cores_axis[c];
        let cfg = match v {
            0 => Preset::B.config(cores, 5),
            1 => {
                let mut cfg = Preset::B.config(cores, 5);
                cfg.a_priori_locking = true;
                cfg
            }
            _ => Preset::C.config(cores, 5),
        };
        run_with_config(name, cfg, opts.seeds[0], opts.size)
    });
    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== a-priori locking (MAD/MCAS-style) vs speculation vs CLEAR ==="
    );
    let _ = writeln!(
        text,
        "{:14} {:>6} | {:>12} {:>12} {:>12} | {:>8} {:>8}",
        "benchmark", "cores", "B cycles", "MAD cycles", "C cycles", "MAD/B", "C/B"
    );
    let mut rows = Vec::new();
    for (a, name) in apps.iter().enumerate() {
        for (c, &cores) in cores_axis.iter().enumerate() {
            let base = (a * nc + c) * nv;
            let (b, mad, cl) = (&stats[base], &stats[base + 1], &stats[base + 2]);
            let _ = writeln!(
                text,
                "{:14} {:>6} | {:>12} {:>12} {:>12} | {:>8.2} {:>8.2}",
                name,
                cores,
                b.total_cycles,
                mad.total_cycles,
                cl.total_cycles,
                mad.total_cycles as f64 / b.total_cycles as f64,
                cl.total_cycles as f64 / b.total_cycles as f64,
            );
            rows.push(Json::obj([
                ("benchmark", Json::from(*name)),
                ("cores", Json::from(cores)),
                ("b_cycles", Json::from(b.total_cycles)),
                ("mad_cycles", Json::from(mad.total_cycles)),
                ("c_cycles", Json::from(cl.total_cycles)),
            ]));
        }
    }
    let _ = writeln!(
        text,
        "\nreading the table: MAD excels exactly where its static footprints apply"
    );
    let _ = writeln!(
        text,
        "(write-heavy immutable ARs like arrayswap/mwobject) but cannot touch the"
    );
    let _ = writeln!(
        text,
        "mutable/indirect ARs, so CLEAR matches or beats it on mixed workloads"
    );
    let _ = writeln!(
        text,
        "(kmeans, ssca2, sorted-list) — and needs no new instructions (§1)"
    );
    let json = Json::obj([
        ("experiment", Json::from("mad-vs-clear")),
        ("options", opts_json(opts)),
        ("rows", Json::Arr(rows)),
    ]);
    ExperimentOutput::new(text, json)
}

pub(super) fn scaling(opts: &SuiteOptions) -> ExperimentOutput {
    let cores_axis = [2usize, 4, 8, 16, 32];
    let presets = Preset::ALL;
    let (nb, nc, np) = (opts.benchmarks.len(), cores_axis.len(), presets.len());
    let grid = pool::run_indexed(nb * nc * np, opts.workers, |i| {
        let p = i % np;
        let c = (i / np) % nc;
        let b = i / (np * nc);
        run_once(
            opts.benchmarks[b],
            presets[p],
            cores_axis[c],
            5,
            opts.size,
            opts.seeds[0],
        )
        .total_cycles
    });
    let mut text = String::new();
    let mut rows = Vec::new();
    for (b, name) in opts.benchmarks.iter().enumerate() {
        let _ = writeln!(text, "\n=== {name}: execution cycles vs cores ===");
        let _ = write!(text, "{:>6}", "cores");
        for preset in presets {
            let _ = write!(text, " {:>12}", format!("{preset}"));
        }
        let _ = writeln!(text, " {:>8}", "C/B");
        for (c, &cores) in cores_axis.iter().enumerate() {
            let _ = write!(text, "{cores:>6}");
            let mut cycles = [0u64; 4];
            for p in 0..np {
                let v = grid[(b * nc + c) * np + p];
                cycles[p] = v;
                let _ = write!(text, " {v:>12}");
            }
            let _ = writeln!(text, " {:>8.2}", cycles[2] as f64 / cycles[0] as f64);
            rows.push(Json::obj([
                ("benchmark", Json::from(*name)),
                ("cores", Json::from(cores)),
                ("cycles", Json::arr(cycles.iter().map(|&v| Json::from(v)))),
            ]));
        }
    }
    let _ = writeln!(
        text,
        "\nC/B < 1 means CLEAR beats the requester-wins baseline at that core count"
    );
    let json = Json::obj([
        ("experiment", Json::from("scaling")),
        ("options", opts_json(opts)),
        ("rows", Json::Arr(rows)),
    ]);
    ExperimentOutput::new(text, json)
}

pub(super) fn sle_vs_htm(opts: &SuiteOptions) -> ExperimentOutput {
    let kinds = [SpeculationKind::Htm, SpeculationKind::InCore];
    let stats = pool::run_indexed(opts.benchmarks.len() * 2, opts.workers, |i| {
        let name = opts.benchmarks[i / 2];
        let w = by_name(name, opts.size, opts.seeds[0]).expect("known benchmark");
        let mut cfg = Preset::C.config(opts.cores, 5);
        cfg.seed = opts.seeds[0];
        cfg.speculation = kinds[i % 2];
        let mut m = Machine::new(cfg, w);
        let s = m.run();
        m.workload().validate(m.memory()).expect("invariant");
        s
    });
    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== CLEAR with in-core (SLE) vs out-of-core (HTM) speculation ==="
    );
    let _ = writeln!(
        text,
        "{:14} {:>12} {:>12} {:>9} | {:>12} {:>12} {:>9}",
        "benchmark", "HTM cycles", "HTM fb%", "HTM apc", "SLE cycles", "SLE fb%", "SLE apc"
    );
    let mut rows = Vec::new();
    for (b, name) in opts.benchmarks.iter().enumerate() {
        let cols: Vec<(u64, f64, f64)> = (0..2)
            .map(|k| {
                let s = &stats[b * 2 + k];
                (
                    s.total_cycles,
                    100.0 * s.commits_by_mode.fallback as f64 / s.commits() as f64,
                    s.aborts_per_commit(),
                )
            })
            .collect();
        let _ = writeln!(
            text,
            "{:14} {:>12} {:>12.1} {:>9.2} | {:>12} {:>12.1} {:>9.2}",
            name, cols[0].0, cols[0].1, cols[0].2, cols[1].0, cols[1].1, cols[1].2
        );
        let side = |c: &(u64, f64, f64)| {
            Json::obj([
                ("cycles", Json::from(c.0)),
                ("fallback_pct", Json::from(c.1)),
                ("aborts_per_commit", Json::from(c.2)),
            ])
        };
        rows.push(Json::obj([
            ("benchmark", Json::from(*name)),
            ("htm", side(&cols[0])),
            ("sle", side(&cols[1])),
        ]));
    }
    let _ = writeln!(
        text,
        "\nfb% = share of ARs completing on the fallback path; apc = aborts per commit"
    );
    let _ = writeln!(
        text,
        "in-core speculation pushes ROB-exceeding ARs (long traversals) to fallback"
    );
    let json = Json::obj([
        ("experiment", Json::from("sle")),
        ("options", opts_json(opts)),
        ("rows", Json::Arr(rows)),
    ]);
    ExperimentOutput::new(text, json)
}

pub(super) fn trace_dump(opts: &SuiteOptions) -> ExperimentOutput {
    let name = opts.benchmarks.first().copied().unwrap_or("mwobject");
    let cores = opts.cores.min(8);
    let w = by_name(name, Size::Tiny, opts.seeds[0]).expect("known benchmark");
    let mut cfg = Preset::C.config(cores, 5);
    cfg.seed = opts.seeds[0];
    let mut m = Machine::new(cfg, w);
    m.enable_tracing();
    let stats = m.run();
    m.workload().validate(m.memory()).expect("invariant");

    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== trace of {name} under CLEAR ({cores} cores, tiny input) ===\n"
    );
    let total = m.trace().len();
    let shown = total.min(400);
    for r in m.trace().records().take(shown) {
        let _ = writeln!(text, "{:>8}  core{:<2}  {}", r.cycle, r.core, r.event);
    }
    if total > shown {
        let _ = writeln!(text, "... {} more events", total - shown);
    }
    let _ = writeln!(
        text,
        "\n{} commits ({} NS-CL, {} S-CL, {} fallback), {} aborts, {} cycles",
        stats.commits(),
        stats.commits_by_mode.nscl,
        stats.commits_by_mode.scl,
        stats.commits_by_mode.fallback,
        stats.aborts.total(),
        stats.total_cycles
    );
    let json = Json::obj([
        ("experiment", Json::from("trace")),
        ("options", opts_json(opts)),
        ("benchmark", Json::from(name)),
        ("events", Json::from(total)),
        ("events_recorded", Json::from(m.trace().recorded())),
        ("events_dropped", Json::from(m.trace().dropped())),
        (
            "digest",
            Json::from(crate::trace_export::digest_hex(m.trace().digest())),
        ),
        ("commits", Json::from(stats.commits())),
        ("aborts", Json::from(stats.aborts.total())),
        ("total_cycles", Json::from(stats.total_cycles)),
    ]);
    ExperimentOutput::new(text, json)
}
