//! The `sim-throughput` and `scaling-wide` experiments: simulator-kernel
//! performance counters.
//!
//! Unlike every other experiment these measure the *simulator*, not the
//! simulated machine: scheduler steps, coherence requests, avoided
//! allocations, and wall-clock throughput. The deterministic counters are
//! golden-gated (a kernel change that alters the simulated schedule shows
//! up as drift here before it shows up in a paper figure); the wall-clock
//! fields are host-dependent and excluded from the comparison.
//!
//! `sim-throughput` runs a fixed tiny grid; `scaling-wide` sweeps one
//! benchmark up a 64→1024 simulated-core ladder with sharded-directory
//! occupancy and parallel-batch counters per point, checking that commit
//! throughput survives the widest configuration.

use super::{opts_json, ExperimentOutput};
use crate::json::Json;
use crate::metrics_export::snapshot_to_json;
use crate::pool;
use crate::suite::{run_once_threaded, SuiteOptions};
use clear_machine::{Preset, RunStats};
use clear_metrics::{families, MetricsRegistry};
use std::fmt::Write as _;

/// Surfaces each grid point's `PerfCounters` (plus the LRWS capacity-abort
/// tallies) as `clear_sim_perf` gauges in a `clear-metrics` snapshot —
/// the same numbers as the `rows` array, but in the uniform metrics shape.
/// Attached to [`ExperimentOutput::metrics`], which `run --json` appends
/// to the printed document only, so the golden-gated `json` stays
/// byte-identical.
fn perf_metrics<'a>(
    points: impl Iterator<Item = (Vec<(&'static str, String)>, &'a RunStats)>,
) -> Json {
    let mut reg = MetricsRegistry::new();
    for (point, s) in points {
        let p = &s.perf;
        for (counter, value) in [
            ("steps", p.steps),
            ("sched_updates", p.sched_updates),
            ("coherence_requests", p.coherence_requests),
            ("allocs_avoided", p.allocs_avoided),
            ("trace_events_recorded", p.trace_events_recorded),
            ("trace_events_dropped", p.trace_events_dropped),
            ("shards", p.shards),
            ("shard_lines", p.shard_lines),
            ("shard_lines_max", p.shard_lines_max),
            ("par_batches", p.par_batches),
            ("par_batch_steps", p.par_batch_steps),
            ("par_batch_max", p.par_batch_max),
            ("lrws_read_capacity_aborts", s.lrws_read_capacity_aborts),
            ("lrws_write_capacity_aborts", s.lrws_write_capacity_aborts),
        ] {
            let mut labels: Vec<(&str, &str)> =
                point.iter().map(|(k, v)| (*k, v.as_str())).collect();
            labels.push(("counter", counter));
            reg.set_gauge(families::SIM_PERF, &labels, value);
        }
    }
    snapshot_to_json(&reg.snapshot())
}

pub(super) fn sim_throughput(opts: &SuiteOptions) -> ExperimentOutput {
    let presets = Preset::ALL;
    let np = presets.len();
    let stats = pool::run_indexed(opts.benchmarks.len() * np, opts.workers, |i| {
        run_once_threaded(
            opts.benchmarks[i / np],
            presets[i % np],
            opts.cores,
            5,
            opts.size,
            opts.seeds[0],
            opts.sim_threads,
        )
    });
    let mut text = String::new();
    let _ = writeln!(text, "=== simulator kernel throughput ===");
    let _ = writeln!(
        text,
        "{:14} {:>6} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "benchmark", "preset", "steps", "sched-upd", "coh-reqs", "allocs-avd", "Msteps/s"
    );
    let mut rows = Vec::new();
    let (mut steps, mut wall_ns) = (0u64, 0u64);
    for (i, s) in stats.iter().enumerate() {
        let (name, preset) = (opts.benchmarks[i / np], presets[i % np]);
        let p = &s.perf;
        let _ = writeln!(
            text,
            "{:14} {:>6} {:>10} {:>12} {:>12} {:>12} {:>10.2}",
            name,
            format!("{preset}"),
            p.steps,
            p.sched_updates,
            p.coherence_requests,
            p.allocs_avoided,
            p.steps_per_sec() / 1e6,
        );
        steps += p.steps;
        wall_ns += p.run_wall_ns;
        rows.push(Json::obj([
            ("benchmark", Json::from(name)),
            ("preset", Json::from(format!("{preset}"))),
            ("total_cycles", Json::from(s.total_cycles)),
            ("commits", Json::from(s.commits())),
            ("steps", Json::from(p.steps)),
            ("sched_updates", Json::from(p.sched_updates)),
            ("coherence_requests", Json::from(p.coherence_requests)),
            ("allocs_avoided", Json::from(p.allocs_avoided)),
            // Tracing is off in throughput runs, so gating these at zero
            // pins the zero-overhead-when-disabled contract.
            ("trace_events_recorded", Json::from(p.trace_events_recorded)),
            ("trace_events_dropped", Json::from(p.trace_events_dropped)),
            ("wall_ns", Json::from(p.run_wall_ns)),
            ("steps_per_sec", Json::Float(p.steps_per_sec())),
        ]));
    }
    let aggregate = if wall_ns == 0 {
        0.0
    } else {
        steps as f64 * 1e9 / wall_ns as f64
    };
    let _ = writeln!(
        text,
        "aggregate: {steps} steps in {:.1} ms = {:.2} Msteps/s",
        wall_ns as f64 / 1e6,
        aggregate / 1e6,
    );
    let json = Json::obj([
        ("experiment", Json::from("sim-throughput")),
        ("options", opts_json(opts)),
        ("rows", Json::Arr(rows)),
        ("total_steps", Json::from(steps)),
        ("total_wall_ns", Json::from(wall_ns)),
        ("aggregate_steps_per_sec", Json::Float(aggregate)),
    ]);
    let mut out = ExperimentOutput::new(text, json);
    out.metrics = Some(perf_metrics(stats.iter().enumerate().map(|(i, s)| {
        (
            vec![
                ("bench", opts.benchmarks[i / np].to_string()),
                ("preset", format!("{}", presets[i % np])),
            ],
            s,
        )
    })));
    out
}

/// The simulated-core ladder `scaling-wide` sweeps, clipped to the
/// requested `--cores`.
const WIDE_LADDER: [usize; 5] = [64, 128, 256, 512, 1024];

/// Minimum acceptable 1024-core steps/sec relative to the 64-core rate
/// when the full ladder ran with measured wall time.
const WIDE_MIN_RATIO: f64 = 0.25;

/// `scaling-wide`: one benchmark stepped up the core ladder. Each point is
/// a full run whose deterministic counters (steps, commits, cycles,
/// coherence traffic, directory-shard occupancy, parallel-batch stats) are
/// golden-gated; the wall-clock columns feed `BENCH_sim.json` and the
/// throughput-retention check but never the golden comparison. Points run
/// sequentially — never through the grid pool — so their wall clocks are
/// not distorted by each other.
pub(super) fn scaling_wide(opts: &SuiteOptions) -> ExperimentOutput {
    let bench = opts.benchmarks.first().copied().unwrap_or("arrayswap");
    let mut ladder: Vec<usize> = WIDE_LADDER
        .iter()
        .copied()
        .filter(|&c| c <= opts.cores)
        .collect();
    if ladder.is_empty() {
        ladder.push(opts.cores);
    }
    let stats: Vec<_> = ladder
        .iter()
        .map(|&cores| {
            run_once_threaded(
                bench,
                Preset::C,
                cores,
                5,
                opts.size,
                opts.seeds[0],
                opts.sim_threads,
            )
        })
        .collect();

    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== scaling-wide: {bench} commit throughput up the core ladder ==="
    );
    let _ = writeln!(
        text,
        "{:>6} {:>10} {:>9} {:>12} {:>12} {:>7} {:>8} {:>9} {:>10}",
        "cores",
        "steps",
        "commits",
        "cycles",
        "coh-reqs",
        "shards",
        "batches",
        "max-batch",
        "Msteps/s"
    );
    let mut rows = Vec::new();
    for (&cores, s) in ladder.iter().zip(&stats) {
        let p = &s.perf;
        let _ = writeln!(
            text,
            "{:>6} {:>10} {:>9} {:>12} {:>12} {:>7} {:>8} {:>9} {:>10.2}",
            cores,
            p.steps,
            s.commits(),
            s.total_cycles,
            p.coherence_requests,
            p.shards,
            p.par_batches,
            p.par_batch_max,
            p.steps_per_sec() / 1e6,
        );
        rows.push(Json::obj([
            ("cores", Json::from(cores)),
            ("steps", Json::from(p.steps)),
            ("commits", Json::from(s.commits())),
            ("total_cycles", Json::from(s.total_cycles)),
            ("coherence_requests", Json::from(p.coherence_requests)),
            ("shards", Json::from(p.shards)),
            ("shard_lines", Json::from(p.shard_lines)),
            ("shard_lines_max", Json::from(p.shard_lines_max)),
            ("par_batches", Json::from(p.par_batches)),
            ("par_batch_steps", Json::from(p.par_batch_steps)),
            ("par_batch_max", Json::from(p.par_batch_max)),
            ("wall_ns", Json::from(p.run_wall_ns)),
            ("steps_per_sec", Json::Float(p.steps_per_sec())),
        ]));
    }

    // Throughput retention: the widest point must keep at least
    // WIDE_MIN_RATIO of the narrowest point's steps/sec. Only meaningful
    // when the full ladder ran with measured wall time; the ratio is
    // host-dependent and excluded from the golden comparison.
    let full_ladder = ladder == WIDE_LADDER;
    let (first, last) = (
        stats.first().map(|s| s.perf.steps_per_sec()).unwrap_or(0.0),
        stats.last().map(|s| s.perf.steps_per_sec()).unwrap_or(0.0),
    );
    let ratio = if first > 0.0 { last / first } else { 0.0 };
    let mut failures = 0;
    if full_ladder && first > 0.0 {
        let _ = writeln!(
            text,
            "\n1024-core vs 64-core steps/sec ratio: {ratio:.3} (floor {WIDE_MIN_RATIO})"
        );
        if ratio < WIDE_MIN_RATIO {
            failures = 1;
            let _ = writeln!(text, "FAIL: wide-core throughput collapsed");
        }
    }

    let json = Json::obj([
        ("experiment", Json::from("scaling-wide")),
        ("options", opts_json(opts)),
        ("benchmark", Json::from(bench)),
        ("sim_threads", Json::from(opts.sim_threads)),
        ("rows", Json::Arr(rows)),
        ("throughput_ratio_wide_vs_narrow", Json::Float(ratio)),
    ]);
    let mut out = ExperimentOutput::new(text, json);
    out.failures = failures;
    out.metrics = Some(perf_metrics(
        ladder
            .iter()
            .zip(&stats)
            .map(|(&cores, s)| (vec![("cores", cores.to_string())], s)),
    ));
    out
}
