//! The `sim-throughput` experiment: simulator-kernel performance counters.
//!
//! Unlike every other experiment this one measures the *simulator*, not
//! the simulated machine: scheduler steps, coherence requests, avoided
//! allocations, and wall-clock throughput for a fixed tiny grid. The
//! deterministic counters are golden-gated (a kernel change that alters
//! the simulated schedule shows up as drift here before it shows up in a
//! paper figure); the wall-clock fields are host-dependent and excluded
//! from the comparison.

use super::{opts_json, ExperimentOutput};
use crate::json::Json;
use crate::pool;
use crate::suite::{run_once, SuiteOptions};
use clear_machine::Preset;
use std::fmt::Write as _;

pub(super) fn sim_throughput(opts: &SuiteOptions) -> ExperimentOutput {
    let presets = Preset::ALL;
    let np = presets.len();
    let stats = pool::run_indexed(opts.benchmarks.len() * np, opts.workers, |i| {
        run_once(
            opts.benchmarks[i / np],
            presets[i % np],
            opts.cores,
            5,
            opts.size,
            opts.seeds[0],
        )
    });
    let mut text = String::new();
    let _ = writeln!(text, "=== simulator kernel throughput ===");
    let _ = writeln!(
        text,
        "{:14} {:>6} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "benchmark", "preset", "steps", "sched-upd", "coh-reqs", "allocs-avd", "Msteps/s"
    );
    let mut rows = Vec::new();
    let (mut steps, mut wall_ns) = (0u64, 0u64);
    for (i, s) in stats.iter().enumerate() {
        let (name, preset) = (opts.benchmarks[i / np], presets[i % np]);
        let p = &s.perf;
        let _ = writeln!(
            text,
            "{:14} {:>6} {:>10} {:>12} {:>12} {:>12} {:>10.2}",
            name,
            format!("{preset}"),
            p.steps,
            p.sched_updates,
            p.coherence_requests,
            p.allocs_avoided,
            p.steps_per_sec() / 1e6,
        );
        steps += p.steps;
        wall_ns += p.run_wall_ns;
        rows.push(Json::obj([
            ("benchmark", Json::from(name)),
            ("preset", Json::from(format!("{preset}"))),
            ("total_cycles", Json::from(s.total_cycles)),
            ("commits", Json::from(s.commits())),
            ("steps", Json::from(p.steps)),
            ("sched_updates", Json::from(p.sched_updates)),
            ("coherence_requests", Json::from(p.coherence_requests)),
            ("allocs_avoided", Json::from(p.allocs_avoided)),
            // Tracing is off in throughput runs, so gating these at zero
            // pins the zero-overhead-when-disabled contract.
            ("trace_events_recorded", Json::from(p.trace_events_recorded)),
            ("trace_events_dropped", Json::from(p.trace_events_dropped)),
            ("wall_ns", Json::from(p.run_wall_ns)),
            ("steps_per_sec", Json::Float(p.steps_per_sec())),
        ]));
    }
    let aggregate = if wall_ns == 0 {
        0.0
    } else {
        steps as f64 * 1e9 / wall_ns as f64
    };
    let _ = writeln!(
        text,
        "aggregate: {steps} steps in {:.1} ms = {:.2} Msteps/s",
        wall_ns as f64 / 1e6,
        aggregate / 1e6,
    );
    let json = Json::obj([
        ("experiment", Json::from("sim-throughput")),
        ("options", opts_json(opts)),
        ("rows", Json::Arr(rows)),
        ("total_steps", Json::from(steps)),
        ("total_wall_ns", Json::from(wall_ns)),
        ("aggregate_steps_per_sec", Json::Float(aggregate)),
    ]);
    ExperimentOutput::new(text, json)
}
