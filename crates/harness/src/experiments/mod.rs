//! The experiment registry: one named entry per reproduced figure, table
//! or study.
//!
//! Every experiment is a pure function from [`SuiteOptions`] to an
//! [`ExperimentOutput`]: the exact text the legacy `clear-bench` binary
//! printed to stdout (those binaries are now thin wrappers over this
//! registry) plus a machine-readable JSON document. Gated experiments
//! additionally declare a [`GoldenSpec`] pinning the options and
//! tolerances used for regression checks against `goldens/`.

mod digest;
mod fastpath;
mod figures;
mod fuzz;
mod perf;
mod shootout;
mod slo;
mod statics;
mod studies;
mod tables;
mod verify;

pub use fuzz::{fuzz_output, matrix_output, parse_seed, replay_output};
pub use statics::analyze_output;

use crate::golden::Tolerances;
use crate::json::Json;
use crate::suite::SuiteOptions;
use clear_workloads::Size;

/// Result of running one experiment.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Exact stdout of the legacy binary.
    pub text: String,
    /// Machine-readable result document.
    pub json: Json,
    /// Failed checks (only `verify` sets this; drives the exit status).
    pub failures: usize,
    /// Optional side-channel metrics snapshot (simulator `PerfCounters`
    /// surfaced through `clear-metrics`). Deliberately NOT part of `json`:
    /// golden baselines compare `json` byte-for-byte, while `run --json`
    /// appends this block to the *printed* document only, so observability
    /// can grow without re-pinning twelve goldens.
    pub metrics: Option<Json>,
}

impl ExperimentOutput {
    fn new(text: String, json: Json) -> Self {
        ExperimentOutput {
            text,
            json,
            failures: 0,
            metrics: None,
        }
    }
}

/// A registered experiment.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// Registry name (`cargo run -p clear-harness -- run <name>`).
    pub name: &'static str,
    /// Paper artifact it reproduces.
    pub artifact: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// The runner.
    pub run: fn(&SuiteOptions) -> ExperimentOutput,
    /// Golden gating, if this experiment is regression-checked.
    pub golden: Option<GoldenSpec>,
}

/// How a gated experiment pins its golden baseline.
#[derive(Clone, Copy, Debug)]
pub struct GoldenSpec {
    /// Options the golden was generated with (fixed, CLI flags ignored).
    pub opts: fn() -> SuiteOptions,
    /// Float tolerances for the comparison.
    pub tolerances: Tolerances,
}

fn small() -> SuiteOptions {
    SuiteOptions {
        size: Size::Small,
        ..SuiteOptions::default()
    }
}

fn medium() -> SuiteOptions {
    SuiteOptions {
        size: Size::Medium,
        ..SuiteOptions::default()
    }
}

/// Tolerances for gated experiments: integer metrics (cycles, counts)
/// must match exactly; derived float metrics (ratios, percentages, means)
/// absorb only serialization round-off.
const GATED_TOLERANCES: Tolerances = Tolerances {
    default_rel: 1e-9,
    overrides: &[("pct", 1e-6), ("ratio", 1e-6), ("share", 1e-6)],
    ignored: &[],
};

/// `sim-throughput` tolerances: the simulated-schedule counters are exact,
/// but wall-clock timing fields vary per host and are skipped outright.
const PERF_TOLERANCES: Tolerances = Tolerances {
    default_rel: 1e-9,
    overrides: &[],
    ignored: &["wall_ns", "steps_per_sec"],
};

/// Pinned options for the `sim-throughput` and `trace-digest` goldens: a
/// tiny 8-core grid that finishes in well under a second, so CI can gate
/// on both cheaply.
fn tiny_perf() -> SuiteOptions {
    SuiteOptions {
        size: Size::Tiny,
        cores: 8,
        seeds: vec![1],
        ..SuiteOptions::default()
    }
}

/// `slo-latency` tolerances: the streaming percentiles, abort taxonomy
/// and queue accounting are simulated values and must match exactly; only
/// the wall-clock throughput fields riding along for humans are skipped.
const SLO_TOLERANCES: Tolerances = Tolerances {
    default_rel: 1e-9,
    overrides: &[],
    ignored: &["wall_ns", "ars_per_sec"],
};

/// `scaling-wide` tolerances: per-run schedule counters are exact; the
/// wall-clock columns and the throughput-retention ratio derived from them
/// are host-dependent and skipped.
const SCALING_TOLERANCES: Tolerances = Tolerances {
    default_rel: 1e-9,
    overrides: &[],
    ignored: &["wall_ns", "steps_per_sec", "ratio"],
};

/// Pinned options for the `scaling-wide` golden: the full 64→1024 core
/// ladder on a benchmark whose footprint spans many directory shards
/// (genome reaches ~23 shards and ~12k parallel batches at 1024 cores),
/// with intra-run parallel stepping pinned *on* (`sim_threads: 2`) so the
/// gate also locks down the batch-formation counters. The simulation is
/// byte-identical for any `sim_threads`, so the deterministic row fields
/// would match a sequential run too.
fn wide_opts() -> SuiteOptions {
    SuiteOptions {
        size: Size::Tiny,
        cores: 1024,
        seeds: vec![1],
        benchmarks: vec!["genome"],
        sim_threads: 2,
        ..SuiteOptions::default()
    }
}

/// Every registered experiment, in documentation order.
pub static EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "fig01",
        artifact: "Figure 1",
        about: "share of retried ARs with a small immutable footprint",
        run: figures::fig01,
        golden: Some(GoldenSpec {
            opts: medium,
            tolerances: GATED_TOLERANCES,
        }),
    },
    Experiment {
        name: "fig08",
        artifact: "Figure 8",
        about: "execution time normalized to requester-wins",
        run: figures::fig08,
        golden: None,
    },
    Experiment {
        name: "fig09",
        artifact: "Figure 9",
        about: "aborts per committed transaction",
        run: figures::fig09,
        golden: None,
    },
    Experiment {
        name: "fig10",
        artifact: "Figure 10",
        about: "energy normalized to requester-wins",
        run: figures::fig10,
        golden: None,
    },
    Experiment {
        name: "fig11",
        artifact: "Figure 11",
        about: "abort breakdown per type",
        run: figures::fig11,
        golden: None,
    },
    Experiment {
        name: "fig12",
        artifact: "Figure 12",
        about: "commit breakdown per execution mode",
        run: figures::fig12,
        golden: None,
    },
    Experiment {
        name: "fig13",
        artifact: "Figure 13",
        about: "commit breakdown per number of retries",
        run: figures::fig13,
        golden: None,
    },
    Experiment {
        name: "report",
        artifact: "Figures 8-13",
        about: "one-pass evaluation report over a single suite run",
        run: figures::report,
        golden: Some(GoldenSpec {
            opts: medium,
            tolerances: GATED_TOLERANCES,
        }),
    },
    Experiment {
        name: "table1",
        artifact: "Table 1",
        about: "static AR characterization per benchmark",
        run: tables::table1,
        golden: None,
    },
    Experiment {
        name: "table1-measured",
        artifact: "Table 1 (measured)",
        about: "dynamic immutability of discovery decisions per AR",
        run: tables::table1_measured,
        golden: Some(GoldenSpec {
            opts: SuiteOptions::default,
            tolerances: GATED_TOLERANCES,
        }),
    },
    Experiment {
        name: "table2",
        artifact: "Table 2",
        about: "instantiated baseline system configuration",
        run: tables::table2,
        golden: None,
    },
    Experiment {
        name: "ablation",
        artifact: "DESIGN.md ablations",
        about: "CLEAR design-choice ablations (CRT, lock policy, ALT, ERT)",
        run: studies::ablation,
        golden: Some(GoldenSpec {
            opts: small,
            tolerances: GATED_TOLERANCES,
        }),
    },
    Experiment {
        name: "ar-breakdown",
        artifact: "Table 1 follow-up",
        about: "per-AR dynamic outcome under CLEAR",
        run: studies::ar_breakdown,
        golden: None,
    },
    Experiment {
        name: "dse-retries",
        artifact: "paper §6 methodology",
        about: "retry-threshold sensitivity curves",
        run: studies::dse_retries,
        golden: None,
    },
    Experiment {
        name: "mad-vs-clear",
        artifact: "paper §1-§2 motivation",
        about: "a-priori cacheline locking vs speculation vs CLEAR",
        run: studies::mad_vs_clear,
        golden: None,
    },
    Experiment {
        name: "scaling",
        artifact: "extension study",
        about: "execution cycles vs core count",
        run: studies::scaling,
        golden: None,
    },
    Experiment {
        name: "scaling-wide",
        artifact: "simulator engineering",
        about: "commit throughput and shard/batch counters at 64-1024 cores",
        run: perf::scaling_wide,
        golden: Some(GoldenSpec {
            opts: wide_opts,
            tolerances: SCALING_TOLERANCES,
        }),
    },
    Experiment {
        name: "sle",
        artifact: "extension study (§4.1 vs §4.2)",
        about: "CLEAR with in-core (SLE) vs HTM speculation",
        run: studies::sle_vs_htm,
        golden: Some(GoldenSpec {
            opts: small,
            tolerances: GATED_TOLERANCES,
        }),
    },
    Experiment {
        name: "slo-latency",
        artifact: "observability / SLO gate",
        about: "streaming p50/p99/p999 time-to-commit from the serve loop",
        run: slo::slo_latency,
        golden: Some(GoldenSpec {
            opts: slo::slo_opts,
            tolerances: SLO_TOLERANCES,
        }),
    },
    Experiment {
        name: "sim-throughput",
        artifact: "simulator engineering",
        about: "simulator-kernel counters and steps/s over a tiny grid",
        run: perf::sim_throughput,
        golden: Some(GoldenSpec {
            opts: tiny_perf,
            tolerances: PERF_TOLERANCES,
        }),
    },
    Experiment {
        name: "trace",
        artifact: "debugging aid",
        about: "event timeline of a short traced run",
        run: studies::trace_dump,
        golden: None,
    },
    Experiment {
        name: "trace-digest",
        artifact: "observability",
        about: "golden-gated FxHash digests of the full trace stream",
        run: digest::trace_digest,
        golden: Some(GoldenSpec {
            opts: tiny_perf,
            tolerances: GATED_TOLERANCES,
        }),
    },
    Experiment {
        name: "static-agreement",
        artifact: "static analyzer validation",
        about: "ahead-of-time AR verdicts vs dynamic discovery observations",
        run: statics::static_agreement,
        golden: Some(GoldenSpec {
            opts: SuiteOptions::default,
            tolerances: GATED_TOLERANCES,
        }),
    },
    Experiment {
        name: "litmus-conformance",
        artifact: "atomicity conformance",
        about: "SB/LB/MP/IRIW litmus shapes with forbidden outcomes pinned to zero",
        run: fuzz::litmus_conformance,
        golden: Some(GoldenSpec {
            opts: fuzz::litmus_opts,
            tolerances: GATED_TOLERANCES,
        }),
    },
    Experiment {
        name: "litmus-backends",
        artifact: "atomicity conformance",
        about: "SB/LB/MP/IRIW litmus shapes across every speculation backend",
        run: fuzz::litmus_backends,
        golden: Some(GoldenSpec {
            opts: fuzz::litmus_backends_opts,
            tolerances: GATED_TOLERANCES,
        }),
    },
    Experiment {
        name: "backend-shootout",
        artifact: "backend comparison study",
        about: "commit throughput, abort taxonomy and fallback occupancy per backend",
        run: shootout::backend_shootout,
        golden: Some(GoldenSpec {
            opts: shootout::shootout_opts,
            tolerances: GATED_TOLERANCES,
        }),
    },
    Experiment {
        name: "static-fastpath",
        artifact: "static-analysis-driven execution",
        about: "dynamic discovery vs precomputed lock sets per backend",
        run: fastpath::static_fastpath,
        golden: Some(GoldenSpec {
            opts: fastpath::fastpath_opts,
            tolerances: GATED_TOLERANCES,
        }),
    },
    Experiment {
        name: "verify",
        artifact: "install check",
        about: "atomicity invariants across the full benchmark grid",
        run: verify::verify,
        golden: None,
    },
];

/// Finds an experiment by registry name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.name == name)
}

/// Runs an experiment and streams its legacy text to stdout; the process
/// exit code reflects `failures`. This is the whole body of every thin
/// wrapper binary in `clear-bench`.
pub fn run_to_stdout(name: &str, opts: &SuiteOptions) {
    let exp = find(name).unwrap_or_else(|| panic!("unknown experiment {name}"));
    let out = (exp.run)(opts);
    print!("{}", out.text);
    if out.failures > 0 {
        std::process::exit(1);
    }
}

/// `Size` as its CLI spelling.
pub fn size_str(size: Size) -> &'static str {
    match size {
        Size::Tiny => "tiny",
        Size::Small => "small",
        Size::Medium => "medium",
    }
}

/// The options block embedded in every result document, so a golden file
/// is self-describing.
pub(crate) fn opts_json(opts: &SuiteOptions) -> Json {
    Json::obj([
        ("size", Json::from(size_str(opts.size))),
        ("cores", Json::from(opts.cores)),
        (
            "seeds",
            Json::arr(opts.seeds.iter().map(|&s| Json::from(s))),
        ),
        (
            "retry_sweep",
            Json::arr(opts.retry_sweep.iter().map(|&r| Json::from(r))),
        ),
        (
            "benchmarks",
            Json::arr(opts.benchmarks.iter().map(|&b| Json::from(b))),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        for e in EXPERIMENTS {
            assert_eq!(find(e.name).map(|f| f.name), Some(e.name));
            assert_eq!(
                EXPERIMENTS.iter().filter(|o| o.name == e.name).count(),
                1,
                "{}",
                e.name
            );
        }
        assert!(find("no-such-experiment").is_none());
    }

    #[test]
    fn gated_experiments_cover_the_legacy_snapshots_plus_perf() {
        let gated: Vec<&str> = EXPERIMENTS
            .iter()
            .filter(|e| e.golden.is_some())
            .map(|e| e.name)
            .collect();
        assert_eq!(
            gated,
            [
                "fig01",
                "report",
                "table1-measured",
                "ablation",
                "scaling-wide",
                "sle",
                "slo-latency",
                "sim-throughput",
                "trace-digest",
                "static-agreement",
                "litmus-conformance",
                "litmus-backends",
                "backend-shootout",
                "static-fastpath"
            ]
        );
    }

    #[test]
    fn scaling_wide_golden_pins_the_full_ladder_with_batching_on() {
        let spec = find("scaling-wide").unwrap().golden.unwrap();
        let opts = (spec.opts)();
        assert_eq!(opts.cores, 1024);
        assert_eq!(opts.sim_threads, 2);
        assert_eq!(opts.benchmarks, ["genome"]);
        for frag in ["wall_ns", "steps_per_sec", "ratio"] {
            assert!(spec.tolerances.ignored.contains(&frag), "{frag}");
        }
        assert_eq!(spec.tolerances.default_rel, 1e-9);
    }

    #[test]
    fn scaling_wide_clips_the_ladder_to_requested_cores() {
        let opts = SuiteOptions {
            size: Size::Tiny,
            cores: 16,
            seeds: vec![1],
            benchmarks: vec!["arrayswap"],
            ..SuiteOptions::default()
        };
        let out = (find("scaling-wide").unwrap().run)(&opts);
        assert_eq!(out.failures, 0);
        let Some(Json::Arr(rows)) = out.json.get("rows") else {
            panic!("rows missing");
        };
        // 16 < 64: the ladder degenerates to the requested width.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("cores"), Some(&Json::Int(16)));
        assert!(rows[0].get("shards").is_some());
        assert!(rows[0].get("par_batches").is_some());
    }

    #[test]
    fn sim_throughput_golden_skips_wall_clock_only() {
        let spec = find("sim-throughput").unwrap().golden.unwrap();
        assert!(spec.tolerances.ignored.contains(&"wall_ns"));
        assert!(spec.tolerances.ignored.contains(&"steps_per_sec"));
        // The deterministic counters stay exact.
        assert_eq!(spec.tolerances.default_rel, 1e-9);
    }

    #[test]
    fn quick_experiments_produce_text_and_json() {
        let opts = SuiteOptions {
            size: Size::Tiny,
            cores: 4,
            seeds: vec![1],
            retry_sweep: vec![5],
            benchmarks: vec!["mwobject"],
            workers: 4,
            sim_threads: 1,
            backends: vec!["tsx", "clear"],
        };
        for name in [
            "fig01",
            "table1",
            "table2",
            "sle",
            "verify",
            "trace",
            "backend-shootout",
        ] {
            let exp = find(name).expect(name);
            let out = (exp.run)(&opts);
            assert!(!out.text.is_empty(), "{name} produced no text");
            assert!(
                matches!(out.json, Json::Obj(_)),
                "{name} produced no object"
            );
            if name != "verify" {
                assert_eq!(out.failures, 0, "{name}");
            }
        }
    }
}
