//! The `slo-latency` experiment: golden-gated streaming time-to-commit
//! percentiles from the serve loop.
//!
//! CLEAR's central claim is a *bound* — at most one speculative retry —
//! so its user-visible promise is a latency SLO, not just mean
//! throughput. This gate runs [`crate::serve::serve_session`] over a
//! tiny pinned grid and pins the simulated-cycle p50/p99/p999
//! time-to-commit (overall, per AR class, and per retry mode), the
//! abort-cause taxonomy, and the admission-queue accounting exactly.
//! Wall-clock fields (`wall_ns`, `ars_per_sec`) are host-dependent and
//! tolerance-ignored; everything else must match byte-for-byte, which
//! works because the serve session document contains only simulated
//! values ([`crate::serve`] explains the determinism argument).

use super::{opts_json, size_str, ExperimentOutput};
use crate::json::Json;
use crate::serve::{serve_session, ServeOptions};
use crate::suite::SuiteOptions;
use clear_workloads::Size;
use std::fmt::Write as _;

/// Pinned options for the `slo-latency` golden: two benchmarks with
/// different AR-class mixes (arrayswap's ARs are all immutable-footprint,
/// queue mixes mutable and likely-immutable ARs) on the tiny 8-core grid,
/// with intra-run parallel stepping on so the gate also re-checks that
/// `sim_threads` cannot leak into the percentiles.
pub(super) fn slo_opts() -> SuiteOptions {
    SuiteOptions {
        size: Size::Tiny,
        cores: 8,
        seeds: vec![1],
        benchmarks: vec!["arrayswap", "queue"],
        sim_threads: 2,
        ..SuiteOptions::default()
    }
}

/// Serve parameters of one gate cell, derived from the suite options.
fn cell_opts(opts: &SuiteOptions, bench: &str) -> ServeOptions {
    ServeOptions {
        workload: bench.to_string(),
        size: opts.size,
        cores: opts.cores,
        seed: opts.seeds[0],
        total_ars: 512,
        batch: 128,
        queue: 256,
        rate: 24,
        replay_gaps: None,
        sim_threads: opts.sim_threads,
        snapshot_every: 4,
        max_retries: 5,
    }
}

pub(super) fn slo_latency(opts: &SuiteOptions) -> ExperimentOutput {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== slo-latency: streaming time-to-commit percentiles ({}, {} cores) ===",
        size_str(opts.size),
        opts.cores
    );
    let mut rows = Vec::new();
    let mut wall_ns = 0u64;
    let mut ars = 0u64;
    for bench in &opts.benchmarks {
        let report = serve_session(&cell_opts(opts, bench));
        text.push_str(&report.text);
        wall_ns += report.wall_ns;
        ars += report.ars;
        let mut pairs = vec![("benchmark".to_string(), Json::from(*bench))];
        if let Json::Obj(fields) = report.json {
            // The session document is already deterministic; lift it into
            // the row wholesale (workload key dropped as redundant).
            pairs.extend(fields.into_iter().filter(|(k, _)| k != "workload"));
        }
        // Wall-clock throughput rides along for humans but is ignored by
        // the golden comparison.
        pairs.push(("ars_per_sec".to_string(), Json::Float(report.ars_per_sec)));
        rows.push(Json::Obj(pairs));
    }
    let secs = (wall_ns as f64 / 1e9).max(1e-9);
    let _ = writeln!(
        text,
        "aggregate: {ars} ARs in {:.1} ms = {:.0} ARs/s",
        wall_ns as f64 / 1e6,
        ars as f64 / secs
    );
    let json = Json::obj([
        ("experiment", Json::from("slo-latency")),
        ("options", opts_json(opts)),
        ("rows", Json::Arr(rows)),
        ("total_ars", Json::from(ars)),
        ("wall_ns", Json::from(wall_ns)),
    ]);
    ExperimentOutput::new(text, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_rows_pin_percentiles_per_class_and_mode() {
        let out = slo_latency(&slo_opts());
        assert_eq!(out.failures, 0);
        let Some(Json::Arr(rows)) = out.json.get("rows") else {
            panic!("rows missing");
        };
        assert_eq!(rows.len(), 2);
        for row in rows {
            let ttc = row.get("ttc").expect("overall ttc");
            for q in ["p50", "p99", "p999"] {
                assert!(matches!(ttc.get(q), Some(Json::Int(_))), "{q}");
            }
            let Some(Json::Arr(by_mode)) = row.get("ttc_by_mode") else {
                panic!("ttc_by_mode missing");
            };
            assert!(!by_mode.is_empty());
            let q = row.get("queue").expect("queue block");
            assert_eq!(q.get("dropped"), Some(&Json::Int(0)));
        }
    }

    #[test]
    fn slo_document_is_deterministic_across_runs() {
        // Strip the wall fields the golden ignores; the rest must be
        // byte-identical run to run (and across sim_threads, which the
        // serve tests check separately).
        fn strip(json: &Json) -> String {
            let text = json.to_pretty();
            text.lines()
                .filter(|l| !l.contains("wall_ns") && !l.contains("ars_per_sec"))
                .collect::<Vec<_>>()
                .join("\n")
        }
        let a = slo_latency(&slo_opts());
        let b = slo_latency(&slo_opts());
        assert_eq!(strip(&a.json), strip(&b.json));
    }
}
