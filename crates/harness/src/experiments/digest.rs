//! The `trace-digest` experiment: a golden-gated fingerprint of the
//! execution-trace stream.
//!
//! Every (benchmark × preset) cell of a tiny 8-core grid runs with
//! tracing enabled and reports the FxHash digest of its full event
//! stream (see [`Trace::digest`](clear_machine::Trace::digest)) plus the
//! recorded/dropped totals. Aggregate statistics can coincide across two
//! subtly different protocol schedules; the digest cannot — any
//! reordering of attempts, conflicts, decisions, lock acquisitions,
//! aborts or commits on any core changes it. Gating the digests makes
//! the whole traced state machine part of the regression surface at the
//! cost of a sub-second run.

use super::{opts_json, ExperimentOutput};
use crate::json::Json;
use crate::pool;
use crate::suite::SuiteOptions;
use crate::trace_export::{digest_hex, run_traced};
use clear_machine::Preset;
use std::fmt::Write as _;

pub(super) fn trace_digest(opts: &SuiteOptions) -> ExperimentOutput {
    let presets = Preset::ALL;
    let np = presets.len();
    let cells = pool::run_indexed(opts.benchmarks.len() * np, opts.workers, |i| {
        let m = run_traced(
            opts.benchmarks[i / np],
            presets[i % np],
            opts.cores,
            5,
            opts.size,
            opts.seeds[0],
        );
        (
            m.trace().recorded(),
            m.trace().dropped(),
            m.trace().digest(),
        )
    });
    let mut text = String::new();
    let _ = writeln!(text, "=== trace digests (full event-stream hashes) ===");
    let _ = writeln!(
        text,
        "{:14} {:>6} {:>10} {:>8}  digest",
        "benchmark", "preset", "events", "dropped"
    );
    let mut rows = Vec::new();
    for (i, (recorded, dropped, digest)) in cells.iter().enumerate() {
        let (name, preset) = (opts.benchmarks[i / np], presets[i % np]);
        let _ = writeln!(
            text,
            "{:14} {:>6} {:>10} {:>8}  {}",
            name,
            format!("{preset}"),
            recorded,
            dropped,
            digest_hex(*digest)
        );
        rows.push(Json::obj([
            ("benchmark", Json::from(name)),
            ("preset", Json::from(format!("{preset}"))),
            ("events", Json::from(*recorded)),
            ("dropped", Json::from(*dropped)),
            ("digest", Json::from(digest_hex(*digest))),
        ]));
    }
    let json = Json::obj([
        ("experiment", Json::from("trace-digest")),
        ("options", opts_json(opts)),
        ("rows", Json::Arr(rows)),
    ]);
    ExperimentOutput::new(text, json)
}
