//! The `static-fastpath` experiment: baseline dynamic discovery vs the
//! analyzer-driven fast path over the full benchmark × backend grid.
//!
//! Each cell runs twice on identical seeds: once with pure dynamic
//! discovery and once with [`clear_analysis::workload_plans`] installed in
//! the machine configuration, so proved-immutable ARs skip the discovery
//! run (NS-CL straight from the precomputed lock set) and likely-immutable
//! ARs shorten it to a root-slot confirmation. Only the CLEAR backend can
//! act on plans — the other backends double as a no-effect control. The
//! gated golden pins the cycle win, the elision counters and zero guard
//! violations bit-exactly.

use super::{opts_json, ExperimentOutput};
use crate::json::Json;
use crate::pool;
use crate::suite::{benchmark_plans, run_once_backend_planned, SuiteOptions};
use clear_core::StaticPlanSet;
use clear_machine::{BackendId, RunStats};
use clear_workloads::Size;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Pinned options for the `static-fastpath` golden: the tiny inputs on an
/// 8-core machine, one seed, retry threshold 5, all benchmarks and all
/// backends — 190 runs, still well under CI noise thresholds.
pub(super) fn fastpath_opts() -> SuiteOptions {
    SuiteOptions {
        size: Size::Tiny,
        cores: 8,
        seeds: vec![1],
        retry_sweep: vec![5],
        sim_threads: 1,
        ..SuiteOptions::default()
    }
}

/// One leg (baseline or fast-path) of a cell, summed over seeds.
#[derive(Clone, Copy, Default)]
struct Leg {
    cycles: u64,
    commits: u64,
    aborts: u64,
    elided: u64,
    partial: u64,
    violations: u64,
}

impl Leg {
    fn absorb(&mut self, s: &RunStats) {
        self.cycles += s.total_cycles;
        self.commits += s.commits_by_mode.total();
        self.aborts += s.aborts.total();
        self.elided += s.discovery_runs_elided;
        self.partial += s.partial_discovery_runs;
        self.violations += s.static_plan_violations;
    }
}

/// Cycle delta of the fast path relative to the baseline, in percent
/// (negative = faster).
fn delta_pct(base: u64, fast: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        100.0 * (fast as f64 - base as f64) / base as f64
    }
}

/// The `static-fastpath` experiment: `opts.backends` × `opts.benchmarks`
/// × `opts.seeds` at the first retry threshold, each cell run with and
/// without static plans, reporting cycles, aborts, elided and partial
/// discovery runs, and guard violations. Violations count as failures: a
/// plan emitted by the real analyzer must never trip its own guard.
pub(super) fn static_fastpath(opts: &SuiteOptions) -> ExperimentOutput {
    let backends: Vec<BackendId> = opts
        .backends
        .iter()
        .map(|n| BackendId::from_name(n).expect("SuiteOptions validated the backend names"))
        .collect();
    let retries = opts.retry_sweep[0];
    let plan_seed = opts.seeds[0];

    // Plans are derived once per benchmark; they are symbolic in the entry
    // registers, so the same set serves every seed.
    let plans: Vec<Arc<StaticPlanSet>> =
        pool::run_indexed(opts.benchmarks.len(), opts.workers, |b| {
            benchmark_plans(opts.benchmarks[b], opts.size, plan_seed, opts.cores)
        });

    // One coordinate per (benchmark, backend, seed, leg); index order is
    // preserved by the pool, so the reduce is deterministic.
    let grid: Vec<(usize, usize, u64, bool)> = (0..opts.benchmarks.len())
        .flat_map(|b| {
            (0..backends.len()).flat_map(move |k| {
                opts.seeds
                    .iter()
                    .flat_map(move |&s| [(b, k, s, false), (b, k, s, true)])
            })
        })
        .collect();
    let results = pool::run_indexed(grid.len(), opts.workers, |g| {
        let (b, k, seed, planned) = grid[g];
        run_once_backend_planned(
            opts.benchmarks[b],
            backends[k],
            opts.cores,
            retries,
            opts.size,
            seed,
            opts.sim_threads,
            planned.then(|| Arc::clone(&plans[b])),
        )
    });

    let mut cells: BTreeMap<(usize, usize), (Leg, Leg)> = BTreeMap::new();
    for (g, stats) in results.iter().enumerate() {
        let (b, k, _, planned) = grid[g];
        let cell = cells.entry((b, k)).or_default();
        if planned {
            cell.1.absorb(stats);
        } else {
            cell.0.absorb(stats);
        }
    }

    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== static-fastpath: dynamic discovery vs precomputed lock sets \
         ({} backends x {} benchmarks, size {}, {} cores, retries {retries}) ===",
        backends.len(),
        opts.benchmarks.len(),
        super::size_str(opts.size),
        opts.cores
    );
    let _ = writeln!(
        text,
        "{:12} {:8} {:>5} {:>10} {:>10} {:>7} {:>7} {:>7} {:>7} {:>8} {:>5}",
        "benchmark",
        "backend",
        "plans",
        "base-cyc",
        "fast-cyc",
        "delta%",
        "b-abrt",
        "f-abrt",
        "elided",
        "partial",
        "viol"
    );
    let mut rows = Vec::new();
    for (b, name) in opts.benchmarks.iter().enumerate() {
        for (k, id) in backends.iter().enumerate() {
            let (base, fast) = &cells[&(b, k)];
            let delta = delta_pct(base.cycles, fast.cycles);
            let _ = writeln!(
                text,
                "{:12} {:8} {:>5} {:>10} {:>10} {:>7.2} {:>7} {:>7} {:>7} {:>8} {:>5}",
                name,
                id.name(),
                plans[b].len(),
                base.cycles,
                fast.cycles,
                delta,
                base.aborts,
                fast.aborts,
                fast.elided,
                fast.partial,
                fast.violations
            );
            rows.push(Json::obj([
                ("benchmark", Json::from(*name)),
                ("backend", Json::from(id.name())),
                ("planned_ars", Json::from(plans[b].len())),
                ("baseline_cycles", Json::from(base.cycles)),
                ("fastpath_cycles", Json::from(fast.cycles)),
                ("cycles_delta_pct", Json::Float(delta)),
                ("baseline_commits", Json::from(base.commits)),
                ("fastpath_commits", Json::from(fast.commits)),
                ("baseline_aborts", Json::from(base.aborts)),
                ("fastpath_aborts", Json::from(fast.aborts)),
                ("discovery_runs_elided", Json::from(fast.elided)),
                ("partial_discovery_runs", Json::from(fast.partial)),
                ("static_plan_violations", Json::from(fast.violations)),
            ]));
        }
    }

    // Per-backend totals: the CLEAR row carries the signal, the rest are
    // the no-effect control.
    let _ = writeln!(text, "\n--- per-backend totals ---");
    let _ = writeln!(
        text,
        "{:8} {:>12} {:>12} {:>7} {:>8} {:>8} {:>5}",
        "backend", "base-cyc", "fast-cyc", "delta%", "elided", "partial", "viol"
    );
    let mut summary = Vec::new();
    let mut total = (Leg::default(), Leg::default());
    for (k, id) in backends.iter().enumerate() {
        let mut base = Leg::default();
        let mut fast = Leg::default();
        for b in 0..opts.benchmarks.len() {
            let (cb, cf) = &cells[&(b, k)];
            for (acc, leg) in [(&mut base, cb), (&mut fast, cf)] {
                acc.cycles += leg.cycles;
                acc.commits += leg.commits;
                acc.aborts += leg.aborts;
                acc.elided += leg.elided;
                acc.partial += leg.partial;
                acc.violations += leg.violations;
            }
        }
        let delta = delta_pct(base.cycles, fast.cycles);
        let _ = writeln!(
            text,
            "{:8} {:>12} {:>12} {:>7.2} {:>8} {:>8} {:>5}",
            id.name(),
            base.cycles,
            fast.cycles,
            delta,
            fast.elided,
            fast.partial,
            fast.violations
        );
        summary.push(Json::obj([
            ("backend", Json::from(id.name())),
            ("baseline_cycles", Json::from(base.cycles)),
            ("fastpath_cycles", Json::from(fast.cycles)),
            ("cycles_delta_pct", Json::Float(delta)),
            ("baseline_aborts", Json::from(base.aborts)),
            ("fastpath_aborts", Json::from(fast.aborts)),
            ("discovery_runs_elided", Json::from(fast.elided)),
            ("partial_discovery_runs", Json::from(fast.partial)),
            ("static_plan_violations", Json::from(fast.violations)),
        ]));
        for (acc, leg) in [(&mut total.0, &base), (&mut total.1, &fast)] {
            acc.cycles += leg.cycles;
            acc.aborts += leg.aborts;
            acc.elided += leg.elided;
            acc.partial += leg.partial;
            acc.violations += leg.violations;
        }
    }
    let _ = writeln!(
        text,
        "\ntotals: discovery runs elided {}, partial discovery runs {}, \
         plan violations {}",
        total.1.elided, total.1.partial, total.1.violations
    );

    let json = Json::obj([
        ("experiment", Json::from("static-fastpath")),
        ("options", opts_json(opts)),
        (
            "backends",
            Json::arr(backends.iter().map(|b| Json::from(b.name()))),
        ),
        ("retries", Json::from(retries)),
        ("rows", Json::Arr(rows)),
        ("summary", Json::Arr(summary)),
        ("discovery_runs_elided", Json::from(total.1.elided)),
        ("partial_discovery_runs", Json::from(total.1.partial)),
        ("static_plan_violations", Json::from(total.1.violations)),
    ]);
    let mut out = ExperimentOutput::new(text, json);
    // A real-analyzer plan tripping its own guard is a soundness bug.
    out.failures = total.1.violations as usize;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SuiteOptions {
        SuiteOptions {
            size: Size::Tiny,
            cores: 4,
            seeds: vec![1],
            retry_sweep: vec![5],
            benchmarks: vec!["mwobject", "arrayswap"],
            workers: 4,
            sim_threads: 1,
            ..SuiteOptions::default()
        }
    }

    #[test]
    fn fastpath_covers_the_grid_and_preserves_commits() {
        let out = static_fastpath(&tiny());
        assert_eq!(out.failures, 0, "analyzer plans must not trip the guard");
        let Some(Json::Arr(rows)) = out.json.get("rows") else {
            panic!("rows missing");
        };
        // 2 benchmarks x 5 backends.
        assert_eq!(rows.len(), 10);
        for row in rows {
            assert_eq!(
                row.get("baseline_commits"),
                row.get("fastpath_commits"),
                "the fast path must not change the committed work: {row:?}"
            );
            assert_eq!(row.get("static_plan_violations"), Some(&Json::Int(0)));
            if row.get("backend") != Some(&Json::from("clear")) {
                // Only the CLEAR backend can act on plans.
                assert_eq!(row.get("discovery_runs_elided"), Some(&Json::Int(0)));
                assert_eq!(
                    row.get("baseline_cycles"),
                    row.get("fastpath_cycles"),
                    "plans must be inert off-CLEAR: {row:?}"
                );
            }
        }
    }

    #[test]
    fn fastpath_elides_discovery_under_clear() {
        let out = static_fastpath(&SuiteOptions {
            backends: vec!["clear"],
            ..tiny()
        });
        let Some(&Json::Int(elided)) = out.json.get("discovery_runs_elided") else {
            panic!("counter missing");
        };
        assert!(
            elided > 0,
            "proved-immutable benchmarks should skip discovery"
        );
    }

    #[test]
    fn fastpath_is_deterministic_across_worker_counts() {
        let opts = SuiteOptions {
            backends: vec!["clear"],
            ..tiny()
        };
        let a = static_fastpath(&opts);
        let b = static_fastpath(&SuiteOptions { workers: 1, ..opts });
        assert_eq!(a.text, b.text);
        assert_eq!(a.json.to_pretty(), b.json.to_pretty());
    }
}
