//! Static-analysis experiments: the `analyze` CLI backend and the
//! `static-agreement` gate comparing ahead-of-time verdicts against
//! dynamic discovery observations.
//!
//! The agreement gate holds the analyzer's soundness line as a
//! regression check: a [`StaticVerdict::StaticImmutable`] AR must never
//! produce a discovery decision with `immutable == false`. Any such
//! observation counts as a failure (non-zero exit) *and* is pinned to
//! zero in `goldens/static-agreement.json`.

use super::{opts_json, size_str, ExperimentOutput};
use crate::json::Json;
use crate::pool;
use crate::suite::SuiteOptions;
use clear_analysis::{
    analyze_workload, workload_plans, ArReport, LockPrediction, OverflowPrediction, StaticBudget,
    StaticVerdict, WorkloadReport,
};
use clear_core::{ObservedClass, PlanAddr, PlanClass, StaticPlan, StaticPlanSet};
use clear_machine::{backend_from_config, BackendId, Machine, Preset, TraceEvent};
use clear_workloads::{by_name, Size, BENCHMARK_NAMES};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Sampling context pinned for the gate, matching `table1-measured`'s
/// dynamic run: Small input, 16 cores, retry threshold 5, seed 5.
const SAMPLE_THREADS: usize = 16;
const SAMPLE_SEED: u64 = 5;

/// Observed classes in fixed column order (also the majority tie-break).
const OBSERVED: [ObservedClass; 4] = [
    ObservedClass::Immutable,
    ObservedClass::Mutable,
    ObservedClass::Overflowed,
    ObservedClass::Unlockable,
];

fn observed_idx(class: ObservedClass) -> usize {
    OBSERVED
        .iter()
        .position(|&o| o == class)
        .expect("in OBSERVED")
}

fn overflow_str(p: OverflowPrediction) -> &'static str {
    match p {
        OverflowPrediction::Fits => "fits",
        OverflowPrediction::Overflow => "overflow",
        OverflowPrediction::Unknown => "unknown",
    }
}

fn lock_str(p: LockPrediction) -> &'static str {
    match p {
        LockPrediction::Lockable => "lockable",
        LockPrediction::Unlockable => "unlockable",
        LockPrediction::Unknown => "unknown",
    }
}

/// Static side of the gate: sample and analyze one benchmark under the
/// pinned context.
fn static_side(name: &str) -> WorkloadReport {
    analyze(name, Size::Small, SAMPLE_THREADS, SAMPLE_SEED)
        .unwrap_or_else(|e| panic!("static analysis of {name} failed: {e}"))
}

/// Samples and statically analyzes one benchmark.
fn analyze(name: &str, size: Size, threads: usize, seed: u64) -> Result<WorkloadReport, String> {
    let mut w = by_name(name, size, seed).ok_or_else(|| format!("unknown benchmark {name}"))?;
    analyze_workload(&mut *w, threads, &StaticBudget::default())
}

/// Dynamic side of the gate: per-AR counts of observed classes derived
/// from every discovery decision of one traced run.
fn dynamic_side(name: &str) -> HashMap<u32, [u64; 4]> {
    let w = by_name(name, Size::Small, SAMPLE_SEED).expect("known benchmark");
    let mut cfg = Preset::C.config(SAMPLE_THREADS, 5);
    cfg.seed = SAMPLE_SEED;
    let mut m = Machine::new(cfg, w);
    m.enable_tracing();
    m.run();
    let mut per_ar: HashMap<u32, [u64; 4]> = HashMap::new();
    for r in m.trace().records() {
        if let TraceEvent::Decision {
            ar,
            mode,
            immutable,
            ..
        } = &r.event
        {
            let class = ObservedClass::from_mode(*mode, *immutable);
            per_ar.entry(ar.0).or_default()[observed_idx(class)] += 1;
        }
    }
    per_ar
}

/// The observed class seen most often (ties break in `OBSERVED` order);
/// `None` when the AR never reached a discovery decision.
fn majority(counts: &[u64; 4]) -> Option<ObservedClass> {
    let mut best = OBSERVED[0];
    for &c in &OBSERVED[1..] {
        if counts[observed_idx(c)] > counts[observed_idx(best)] {
            best = c;
        }
    }
    (counts[observed_idx(best)] > 0).then_some(best)
}

pub(super) fn static_agreement(opts: &SuiteOptions) -> ExperimentOutput {
    let per_bench = pool::run_indexed(BENCHMARK_NAMES.len(), opts.workers, |i| {
        let name = BENCHMARK_NAMES[i];
        (static_side(name), dynamic_side(name))
    });

    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== static-agreement: ahead-of-time verdicts vs dynamic discovery ==="
    );
    let _ = writeln!(
        text,
        "{:14} {:16} {:18} {:18} {:>6} {:>9}  {:10} {:>5}",
        "benchmark", "AR", "declared", "static verdict", "lines", "decisions", "majority", "agree"
    );

    let mut rows = Vec::new();
    // confusion[verdict][observed-or-none]
    let mut confusion = [[0u64; 5]; 4];
    let mut ars = 0u64;
    let mut with_decisions = 0u64;
    let mut agreeing = 0u64;
    let mut unsound = 0u64;

    for (name, (report, dynamics)) in BENCHMARK_NAMES.iter().zip(&per_bench) {
        for ar in &report.ars {
            ars += 1;
            let verdict = ar.analysis.verdict;
            let counts = dynamics.get(&ar.spec.id.0).copied().unwrap_or_default();
            let decisions: u64 = counts.iter().sum();
            let maj = majority(&counts);
            let agree = maj.map(|m| verdict.agrees_with(m));
            let vi = StaticVerdict::ALL
                .iter()
                .position(|&v| v == verdict)
                .expect("in ALL");
            match maj {
                Some(m) => {
                    with_decisions += 1;
                    confusion[vi][observed_idx(m)] += 1;
                    if agree == Some(true) {
                        agreeing += 1;
                    }
                }
                None => confusion[vi][4] += 1,
            }
            if verdict == StaticVerdict::StaticImmutable {
                // Soundness: every immutable==false observation of a
                // proved-immutable AR is an analyzer bug.
                unsound += counts[observed_idx(ObservedClass::Mutable)];
            }

            let lines_txt = match ar.analysis.footprint.lines {
                Some(n) => n.to_string(),
                None => "-".into(),
            };
            let _ = writeln!(
                text,
                "{:14} {:16} {:18} {:18} {:>6} {:>9}  {:10} {:>5}",
                name,
                ar.spec.name,
                ar.spec.mutability.to_string(),
                verdict.to_string(),
                lines_txt,
                decisions,
                maj.map(|m| m.to_string()).unwrap_or_else(|| "-".into()),
                match agree {
                    Some(true) => "yes",
                    Some(false) => "NO",
                    None => "-",
                },
            );
            rows.push(agreement_row_json(name, ar, &counts, decisions, maj, agree));
        }
    }

    let agreement_pct = if with_decisions == 0 {
        f64::NAN
    } else {
        100.0 * agreeing as f64 / with_decisions as f64
    };
    let _ = writeln!(
        text,
        "\nARs: {ars}   with decisions: {with_decisions}   agreeing: {agreeing} \
         ({agreement_pct:.1}%)   unsound immutable observations: {unsound}"
    );
    let _ = writeln!(
        text,
        "note: non-convertible is an upper-bound prediction; a mutable majority \
         means this run never reached the bound (imprecision, not unsoundness)."
    );
    let _ = writeln!(text, "\nconfusion (static verdict x observed majority):");
    let _ = writeln!(
        text,
        "{:18} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "verdict", "immutable", "mutable", "overflowed", "unlockable", "none"
    );
    let mut confusion_json = Vec::new();
    for (vi, verdict) in StaticVerdict::ALL.iter().enumerate() {
        let c = &confusion[vi];
        let _ = writeln!(
            text,
            "{:18} {:>10} {:>10} {:>10} {:>10} {:>6}",
            verdict.name(),
            c[0],
            c[1],
            c[2],
            c[3],
            c[4]
        );
        confusion_json.push(Json::obj([
            ("verdict", Json::from(verdict.name())),
            ("immutable", Json::from(c[0])),
            ("mutable", Json::from(c[1])),
            ("overflowed", Json::from(c[2])),
            ("unlockable", Json::from(c[3])),
            ("none", Json::from(c[4])),
        ]));
    }

    let json = Json::obj([
        ("experiment", Json::from("static-agreement")),
        ("options", opts_json(opts)),
        ("sample_threads", Json::from(SAMPLE_THREADS)),
        ("sample_seed", Json::from(SAMPLE_SEED)),
        ("rows", Json::Arr(rows)),
        ("confusion", Json::Arr(confusion_json)),
        ("ars", Json::from(ars)),
        ("ars_with_decisions", Json::from(with_decisions)),
        ("agreeing", Json::from(agreeing)),
        ("agreement_pct", Json::from(agreement_pct)),
        ("unsound_immutable_observations", Json::from(unsound)),
    ]);
    let mut out = ExperimentOutput::new(text, json);
    out.failures = unsound as usize;
    out
}

fn agreement_row_json(
    name: &str,
    ar: &ArReport,
    counts: &[u64; 4],
    decisions: u64,
    maj: Option<ObservedClass>,
    agree: Option<bool>,
) -> Json {
    Json::obj([
        ("benchmark", Json::from(name)),
        ("ar", Json::from(ar.spec.name.clone())),
        ("declared", Json::from(ar.spec.mutability.to_string())),
        ("verdict", Json::from(ar.analysis.verdict.name())),
        (
            "lines",
            ar.analysis
                .footprint
                .lines
                .map(Json::from)
                .unwrap_or(Json::Null),
        ),
        ("max_depth", Json::from(u64::from(ar.analysis.max_depth))),
        ("overflow", Json::from(overflow_str(ar.analysis.overflow))),
        ("lockability", Json::from(lock_str(ar.analysis.lockability))),
        ("decisions", Json::from(decisions)),
        (
            "observed",
            Json::obj([
                ("immutable", Json::from(counts[0])),
                ("mutable", Json::from(counts[1])),
                ("overflowed", Json::from(counts[2])),
                ("unlockable", Json::from(counts[3])),
            ]),
        ),
        (
            "majority",
            maj.map(|m| Json::from(m.to_string())).unwrap_or(Json::Null),
        ),
        ("agree", agree.map(Json::from).unwrap_or(Json::Null)),
    ])
}

/// Renders a [`PlanAddr`] the way the analyzer thinks about it:
/// `r<reg>+<delta>` for entry-relative sites, a hex byte address for
/// constant ones.
fn plan_addr_str(a: &PlanAddr) -> String {
    match a {
        PlanAddr::Abs(addr) => format!("{addr:#x}"),
        PlanAddr::Sym { reg, delta } => format!("r{reg}+{delta}"),
    }
}

fn plan_class_str(c: PlanClass) -> &'static str {
    match c {
        PlanClass::Immutable => "immutable",
        PlanClass::LikelyImmutable => "likely-immutable",
    }
}

/// Per-backend budget fit of one plan: every built-in backend's
/// `rw_limits` answer against the plan's static line bounds.
fn plan_budget(plan: &StaticPlan) -> Vec<(&'static str, bool, bool)> {
    BackendId::ALL
        .iter()
        .map(|&id| {
            let backend = backend_from_config(&id.config(1, 5));
            let limits = backend.rw_limits();
            let fits = plan.fits_rw(
                limits.as_ref().map(|l| l.read_lines),
                limits.as_ref().map(|l| l.write_lines),
            );
            (id.name(), limits.is_some(), fits)
        })
        .collect()
}

fn plan_json(ar_id: u32, ar_name: &str, plan: &StaticPlan) -> Json {
    let addrs = |set: &[PlanAddr]| Json::arr(set.iter().map(|a| Json::from(plan_addr_str(a))));
    Json::obj([
        ("id", Json::from(u64::from(ar_id))),
        ("ar", Json::from(ar_name)),
        ("class", Json::from(plan_class_str(plan.class))),
        ("complete", Json::from(plan.complete)),
        ("bound_lines", Json::from(plan.bound_lines)),
        ("bound_written", Json::from(plan.bound_written)),
        ("lock_set", addrs(&plan.lock_set)),
        ("written", addrs(&plan.written)),
        ("root_slots", addrs(&plan.root_slots)),
        (
            "budget",
            Json::arr(plan_budget(plan).into_iter().map(|(name, tracked, fits)| {
                Json::obj([
                    ("backend", Json::from(name)),
                    ("tracked", Json::from(tracked)),
                    ("fits", Json::from(fits)),
                ])
            })),
        ),
    ])
}

/// Derives the [`StaticPlanSet`] of one benchmark under the CLI context.
fn plans_for(name: &str, size: Size, threads: usize, seed: u64) -> Result<StaticPlanSet, String> {
    let mut w = by_name(name, size, seed).ok_or_else(|| format!("unknown benchmark {name}"))?;
    workload_plans(&mut *w, threads, &StaticBudget::default())
}

/// Backend of `clear-harness analyze <workload>`: full per-AR static
/// report for one benchmark, or for every registered benchmark when
/// `name` is `all`. Uses the CLI's size/cores/seed, so the same command
/// inspects any input scale. With `with_plans` (`analyze --plan`) each
/// workload section additionally prints the emitted [`StaticPlan`]s —
/// lock set, written subset, root slots, and the per-backend budget fit —
/// and the JSON document carries them under `plans`.
///
/// # Errors
///
/// Reports unknown benchmark names and sampling failures (an AR that
/// never appears within the pull budget at this size/thread count).
pub fn analyze_output(
    name: &str,
    opts: &SuiteOptions,
    with_plans: bool,
) -> Result<ExperimentOutput, String> {
    let names: Vec<&str> = if name == "all" {
        BENCHMARK_NAMES.to_vec()
    } else {
        vec![*BENCHMARK_NAMES
            .iter()
            .find(|&&n| n == name)
            .ok_or_else(|| format!("unknown benchmark {name} (try `all`)"))?]
    };
    let seed = opts.seeds[0];
    let reports = names
        .iter()
        .map(|n| analyze(n, opts.size, opts.cores, seed))
        .collect::<Result<Vec<_>, String>>()?;
    let plan_sets: Vec<Option<StaticPlanSet>> = names
        .iter()
        .map(|n| {
            with_plans
                .then(|| plans_for(n, opts.size, opts.cores, seed))
                .transpose()
        })
        .collect::<Result<_, String>>()?;

    let mut text = String::new();
    let mut workloads = Vec::new();
    for (report, plan_set) in reports.iter().zip(&plan_sets) {
        let _ = writeln!(
            text,
            "=== static analysis of {} ({} input, {} threads, seed {}) ===",
            report.name,
            size_str(opts.size),
            opts.cores,
            seed
        );
        let _ = writeln!(text, "mapped memory: {} bytes", report.mapped_bytes);
        let _ = writeln!(
            text,
            "{:16} {:18} {:18} {:>6} {:>6} {:>6} {:>9} {:>11}",
            "AR", "declared", "verdict", "insns", "blocks", "lines", "overflow", "lockability"
        );
        let mut ars = Vec::new();
        for ar in &report.ars {
            let lines_txt = match ar.analysis.footprint.lines {
                Some(n) => n.to_string(),
                None => "-".into(),
            };
            let _ = writeln!(
                text,
                "{:16} {:18} {:18} {:>6} {:>6} {:>6} {:>9} {:>11}",
                ar.spec.name,
                ar.spec.mutability.to_string(),
                ar.analysis.verdict.to_string(),
                ar.analysis.instructions,
                ar.analysis.blocks,
                lines_txt,
                overflow_str(ar.analysis.overflow),
                lock_str(ar.analysis.lockability),
            );
            for lint in &ar.analysis.lints {
                let _ = writeln!(text, "    lint: {lint}");
            }
            ars.push(analyze_ar_json(ar));
        }
        let mut fields = vec![
            ("benchmark".to_string(), Json::from(report.name.clone())),
            ("mapped_bytes".to_string(), Json::from(report.mapped_bytes)),
            ("ars".to_string(), Json::Arr(ars)),
        ];
        if let Some(plans) = plan_set {
            let _ = writeln!(text, "static plans (fast-path lock sets):");
            let mut plan_rows = Vec::new();
            for ar in &report.ars {
                match plans.get(ar.spec.id.0) {
                    Some(plan) => {
                        let _ = writeln!(
                            text,
                            "  {}: {} plan, {} ({} site lock set, {} written, \
                             bound {} lines / {} written)",
                            ar.spec.name,
                            plan_class_str(plan.class),
                            if plan.complete { "complete" } else { "partial" },
                            plan.lock_set.len(),
                            plan.written.len(),
                            plan.bound_lines,
                            plan.bound_written,
                        );
                        let set_line = |label: &str, set: &[PlanAddr]| {
                            if set.is_empty() {
                                None
                            } else {
                                Some(format!(
                                    "    {label}: {}",
                                    set.iter().map(plan_addr_str).collect::<Vec<_>>().join(" ")
                                ))
                            }
                        };
                        for line in [
                            set_line("lock set", &plan.lock_set),
                            set_line("written", &plan.written),
                            set_line("root slots", &plan.root_slots),
                        ]
                        .into_iter()
                        .flatten()
                        {
                            let _ = writeln!(text, "{line}");
                        }
                        let budget = plan_budget(plan)
                            .into_iter()
                            .map(|(name, tracked, fits)| {
                                let word = match (tracked, fits) {
                                    (false, _) => "untracked",
                                    (true, true) => "fits",
                                    (true, false) => "EXCEEDS",
                                };
                                format!("{name} {word}")
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        let _ = writeln!(text, "    budget: {budget}");
                        plan_rows.push(plan_json(ar.spec.id.0, &ar.spec.name, plan));
                    }
                    None => {
                        let _ = writeln!(
                            text,
                            "  {}: no plan ({} verdict takes the discovery path)",
                            ar.spec.name, ar.analysis.verdict
                        );
                    }
                }
            }
            fields.push(("plans".to_string(), Json::Arr(plan_rows)));
        }
        let _ = writeln!(text);
        workloads.push(Json::Obj(fields));
    }

    let lint_count: usize = reports
        .iter()
        .flat_map(|r| &r.ars)
        .map(|a| a.analysis.lints.len())
        .sum();
    let json = Json::obj([
        ("command", Json::from("analyze")),
        ("options", opts_json(opts)),
        ("plan", Json::from(with_plans)),
        ("workloads", Json::Arr(workloads)),
        ("lints", Json::from(lint_count)),
    ]);
    let mut out = ExperimentOutput::new(text, json);
    // A lint in a registered workload is a defect: fail the invocation.
    out.failures = lint_count;
    Ok(out)
}

fn analyze_ar_json(ar: &ArReport) -> Json {
    let fp = &ar.analysis.footprint;
    let opt = |v: Option<usize>| v.map(Json::from).unwrap_or(Json::Null);
    Json::obj([
        ("id", Json::from(u64::from(ar.spec.id.0))),
        ("ar", Json::from(ar.spec.name.clone())),
        ("declared", Json::from(ar.spec.mutability.to_string())),
        ("verdict", Json::from(ar.analysis.verdict.name())),
        ("instructions", Json::from(ar.analysis.instructions)),
        ("blocks", Json::from(ar.analysis.blocks)),
        ("reachable_blocks", Json::from(ar.analysis.reachable_blocks)),
        ("lines", opt(fp.lines)),
        ("written_lines", opt(fp.written_lines)),
        ("exact_lines", Json::from(fp.exact_lines)),
        ("unknown_sites", Json::from(fp.unknown_sites)),
        ("concrete", Json::from(fp.concrete)),
        ("max_depth", Json::from(u64::from(ar.analysis.max_depth))),
        ("indirect_sites", Json::from(ar.analysis.indirect_sites)),
        (
            "dependent_branches",
            Json::from(ar.analysis.dependent_branches),
        ),
        ("overflow", Json::from(overflow_str(ar.analysis.overflow))),
        ("lockability", Json::from(lock_str(ar.analysis.lockability))),
        (
            "lints",
            Json::arr(ar.analysis.lints.iter().map(|l| Json::from(l.to_string()))),
        ),
        (
            "declared_footprint_matches",
            ar.declared_footprint_matches
                .map(Json::from)
                .unwrap_or(Json::Null),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> SuiteOptions {
        SuiteOptions {
            size: Size::Tiny,
            cores: 4,
            seeds: vec![1],
            retry_sweep: vec![5],
            benchmarks: vec!["mwobject"],
            workers: 2,
            sim_threads: 1,
            ..SuiteOptions::default()
        }
    }

    #[test]
    fn analyze_reports_one_workload() {
        let out = analyze_output("mwobject", &tiny_opts(), false).unwrap();
        assert!(out.text.contains("static analysis of mwobject"));
        assert_eq!(out.failures, 0, "registered workload has lints");
        let Json::Obj(fields) = &out.json else {
            panic!("not an object")
        };
        assert!(fields.iter().any(|(k, _)| k == "workloads"));
        assert!(
            !out.text.contains("static plans"),
            "plan section must be opt-in"
        );
    }

    #[test]
    fn analyze_rejects_unknown_names() {
        let err = analyze_output("no-such-benchmark", &tiny_opts(), false).unwrap_err();
        assert!(err.contains("unknown benchmark"), "{err}");
    }

    #[test]
    fn analyze_plan_prints_lock_sets_and_budget_fit() {
        // mwobject's AR is proved immutable: the plan section must show a
        // complete lock set and a per-backend budget verdict.
        let out = analyze_output("mwobject", &tiny_opts(), true).unwrap();
        assert!(out.text.contains("static plans"), "{}", out.text);
        assert!(out.text.contains("lock set:"), "{}", out.text);
        assert!(out.text.contains("budget:"), "{}", out.text);
        for id in BackendId::ALL {
            assert!(out.text.contains(id.name()), "missing {id}:\n{}", out.text);
        }
        let Some(Json::Arr(workloads)) = out.json.get("workloads") else {
            panic!("workloads missing");
        };
        let Some(Json::Arr(plans)) = workloads[0].get("plans") else {
            panic!("plans missing under --plan");
        };
        assert!(!plans.is_empty(), "mwobject should carry at least one plan");
        for p in plans {
            let Some(Json::Arr(budget)) = p.get("budget") else {
                panic!("budget missing");
            };
            assert_eq!(budget.len(), BackendId::ALL.len());
            let Some(Json::Arr(lock_set)) = p.get("lock_set") else {
                panic!("lock_set missing");
            };
            assert!(!lock_set.is_empty());
        }
    }

    #[test]
    fn majority_breaks_ties_and_handles_empty() {
        assert_eq!(majority(&[0, 0, 0, 0]), None);
        assert_eq!(majority(&[2, 2, 0, 0]), Some(ObservedClass::Immutable));
        assert_eq!(majority(&[0, 1, 5, 0]), Some(ObservedClass::Overflowed));
    }
}
